file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_reinstall.dir/bench_table1_reinstall.cpp.o"
  "CMakeFiles/bench_table1_reinstall.dir/bench_table1_reinstall.cpp.o.d"
  "bench_table1_reinstall"
  "bench_table1_reinstall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_reinstall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
