# Empty dependencies file for bench_kickstart_gen.
# This may be replaced when dependencies are built.
