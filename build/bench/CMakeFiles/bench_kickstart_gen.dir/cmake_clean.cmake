file(REMOVE_RECURSE
  "CMakeFiles/bench_kickstart_gen.dir/bench_kickstart_gen.cpp.o"
  "CMakeFiles/bench_kickstart_gen.dir/bench_kickstart_gen.cpp.o.d"
  "bench_kickstart_gen"
  "bench_kickstart_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kickstart_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
