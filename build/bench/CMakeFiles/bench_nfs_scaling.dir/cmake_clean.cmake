file(REMOVE_RECURSE
  "CMakeFiles/bench_nfs_scaling.dir/bench_nfs_scaling.cpp.o"
  "CMakeFiles/bench_nfs_scaling.dir/bench_nfs_scaling.cpp.o.d"
  "bench_nfs_scaling"
  "bench_nfs_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nfs_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
