# Empty dependencies file for bench_nfs_scaling.
# This may be replaced when dependencies are built.
