# Empty compiler generated dependencies file for bench_rocksdist_build.
# This may be replaced when dependencies are built.
