file(REMOVE_RECURSE
  "CMakeFiles/bench_rocksdist_build.dir/bench_rocksdist_build.cpp.o"
  "CMakeFiles/bench_rocksdist_build.dir/bench_rocksdist_build.cpp.o.d"
  "bench_rocksdist_build"
  "bench_rocksdist_build.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rocksdist_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
