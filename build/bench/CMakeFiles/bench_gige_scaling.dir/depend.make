# Empty dependencies file for bench_gige_scaling.
# This may be replaced when dependencies are built.
