file(REMOVE_RECURSE
  "CMakeFiles/bench_gige_scaling.dir/bench_gige_scaling.cpp.o"
  "CMakeFiles/bench_gige_scaling.dir/bench_gige_scaling.cpp.o.d"
  "bench_gige_scaling"
  "bench_gige_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gige_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
