file(REMOVE_RECURSE
  "CMakeFiles/bench_driver_rebuild.dir/bench_driver_rebuild.cpp.o"
  "CMakeFiles/bench_driver_rebuild.dir/bench_driver_rebuild.cpp.o.d"
  "bench_driver_rebuild"
  "bench_driver_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_driver_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
