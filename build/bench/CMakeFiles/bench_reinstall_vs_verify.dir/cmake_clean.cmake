file(REMOVE_RECURSE
  "CMakeFiles/bench_reinstall_vs_verify.dir/bench_reinstall_vs_verify.cpp.o"
  "CMakeFiles/bench_reinstall_vs_verify.dir/bench_reinstall_vs_verify.cpp.o.d"
  "bench_reinstall_vs_verify"
  "bench_reinstall_vs_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reinstall_vs_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
