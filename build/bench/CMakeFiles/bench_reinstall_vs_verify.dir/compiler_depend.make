# Empty compiler generated dependencies file for bench_reinstall_vs_verify.
# This may be replaced when dependencies are built.
