# Empty dependencies file for bench_insert_ethers.
# This may be replaced when dependencies are built.
