file(REMOVE_RECURSE
  "CMakeFiles/bench_insert_ethers.dir/bench_insert_ethers.cpp.o"
  "CMakeFiles/bench_insert_ethers.dir/bench_insert_ethers.cpp.o.d"
  "bench_insert_ethers"
  "bench_insert_ethers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insert_ethers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
