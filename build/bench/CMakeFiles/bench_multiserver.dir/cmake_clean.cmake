file(REMOVE_RECURSE
  "CMakeFiles/bench_multiserver.dir/bench_multiserver.cpp.o"
  "CMakeFiles/bench_multiserver.dir/bench_multiserver.cpp.o.d"
  "bench_multiserver"
  "bench_multiserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
