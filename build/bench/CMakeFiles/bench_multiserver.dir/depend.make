# Empty dependencies file for bench_multiserver.
# This may be replaced when dependencies are built.
