file(REMOVE_RECURSE
  "CMakeFiles/bench_http_microbench.dir/bench_http_microbench.cpp.o"
  "CMakeFiles/bench_http_microbench.dir/bench_http_microbench.cpp.o.d"
  "bench_http_microbench"
  "bench_http_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_http_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
