# Empty dependencies file for bench_update_tracking.
# This may be replaced when dependencies are built.
