file(REMOVE_RECURSE
  "CMakeFiles/bench_update_tracking.dir/bench_update_tracking.cpp.o"
  "CMakeFiles/bench_update_tracking.dir/bench_update_tracking.cpp.o.d"
  "bench_update_tracking"
  "bench_update_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
