file(REMOVE_RECURSE
  "CMakeFiles/test_rocksdist.dir/test_rocksdist.cpp.o"
  "CMakeFiles/test_rocksdist.dir/test_rocksdist.cpp.o.d"
  "test_rocksdist"
  "test_rocksdist.pdb"
  "test_rocksdist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rocksdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
