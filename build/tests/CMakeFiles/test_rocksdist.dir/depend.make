# Empty dependencies file for test_rocksdist.
# This may be replaced when dependencies are built.
