# Empty dependencies file for test_rpm.
# This may be replaced when dependencies are built.
