# Empty dependencies file for test_sqldb.
# This may be replaced when dependencies are built.
