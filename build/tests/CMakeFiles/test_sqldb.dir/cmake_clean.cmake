file(REMOVE_RECURSE
  "CMakeFiles/test_sqldb.dir/test_sqldb.cpp.o"
  "CMakeFiles/test_sqldb.dir/test_sqldb.cpp.o.d"
  "test_sqldb"
  "test_sqldb.pdb"
  "test_sqldb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
