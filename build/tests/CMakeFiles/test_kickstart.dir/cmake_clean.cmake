file(REMOVE_RECURSE
  "CMakeFiles/test_kickstart.dir/test_kickstart.cpp.o"
  "CMakeFiles/test_kickstart.dir/test_kickstart.cpp.o.d"
  "test_kickstart"
  "test_kickstart.pdb"
  "test_kickstart[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
