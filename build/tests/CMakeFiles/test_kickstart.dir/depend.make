# Empty dependencies file for test_kickstart.
# This may be replaced when dependencies are built.
