# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_xml[1]_include.cmake")
include("/root/repo/build/tests/test_vfs[1]_include.cmake")
include("/root/repo/build/tests/test_sqldb[1]_include.cmake")
include("/root/repo/build/tests/test_rpm[1]_include.cmake")
include("/root/repo/build/tests/test_netsim[1]_include.cmake")
include("/root/repo/build/tests/test_kickstart[1]_include.cmake")
include("/root/repo/build/tests/test_services[1]_include.cmake")
include("/root/repo/build/tests/test_rocksdist[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_batch[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
