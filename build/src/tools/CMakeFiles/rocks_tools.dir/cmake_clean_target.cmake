file(REMOVE_RECURSE
  "librocks_tools.a"
)
