file(REMOVE_RECURSE
  "CMakeFiles/rocks_tools.dir/cluster_tools.cpp.o"
  "CMakeFiles/rocks_tools.dir/cluster_tools.cpp.o.d"
  "librocks_tools.a"
  "librocks_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
