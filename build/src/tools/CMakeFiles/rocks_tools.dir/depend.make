# Empty dependencies file for rocks_tools.
# This may be replaced when dependencies are built.
