file(REMOVE_RECURSE
  "CMakeFiles/rocks_support.dir/error.cpp.o"
  "CMakeFiles/rocks_support.dir/error.cpp.o.d"
  "CMakeFiles/rocks_support.dir/ip.cpp.o"
  "CMakeFiles/rocks_support.dir/ip.cpp.o.d"
  "CMakeFiles/rocks_support.dir/log.cpp.o"
  "CMakeFiles/rocks_support.dir/log.cpp.o.d"
  "CMakeFiles/rocks_support.dir/strings.cpp.o"
  "CMakeFiles/rocks_support.dir/strings.cpp.o.d"
  "CMakeFiles/rocks_support.dir/table.cpp.o"
  "CMakeFiles/rocks_support.dir/table.cpp.o.d"
  "librocks_support.a"
  "librocks_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
