# Empty dependencies file for rocks_support.
# This may be replaced when dependencies are built.
