file(REMOVE_RECURSE
  "librocks_support.a"
)
