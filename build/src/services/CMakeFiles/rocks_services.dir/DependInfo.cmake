
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/generators.cpp" "src/services/CMakeFiles/rocks_services.dir/generators.cpp.o" "gcc" "src/services/CMakeFiles/rocks_services.dir/generators.cpp.o.d"
  "/root/repo/src/services/manager.cpp" "src/services/CMakeFiles/rocks_services.dir/manager.cpp.o" "gcc" "src/services/CMakeFiles/rocks_services.dir/manager.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rocks_support.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/rocks_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/rocks_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
