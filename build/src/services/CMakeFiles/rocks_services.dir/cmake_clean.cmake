file(REMOVE_RECURSE
  "CMakeFiles/rocks_services.dir/generators.cpp.o"
  "CMakeFiles/rocks_services.dir/generators.cpp.o.d"
  "CMakeFiles/rocks_services.dir/manager.cpp.o"
  "CMakeFiles/rocks_services.dir/manager.cpp.o.d"
  "librocks_services.a"
  "librocks_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
