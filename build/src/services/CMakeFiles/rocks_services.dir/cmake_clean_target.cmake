file(REMOVE_RECURSE
  "librocks_services.a"
)
