# Empty compiler generated dependencies file for rocks_services.
# This may be replaced when dependencies are built.
