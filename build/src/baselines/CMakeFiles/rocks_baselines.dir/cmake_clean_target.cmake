file(REMOVE_RECURSE
  "librocks_baselines.a"
)
