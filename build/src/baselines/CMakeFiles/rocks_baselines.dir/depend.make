# Empty dependencies file for rocks_baselines.
# This may be replaced when dependencies are built.
