file(REMOVE_RECURSE
  "CMakeFiles/rocks_baselines.dir/cfengine.cpp.o"
  "CMakeFiles/rocks_baselines.dir/cfengine.cpp.o.d"
  "CMakeFiles/rocks_baselines.dir/disk_cloning.cpp.o"
  "CMakeFiles/rocks_baselines.dir/disk_cloning.cpp.o.d"
  "CMakeFiles/rocks_baselines.dir/hand_admin.cpp.o"
  "CMakeFiles/rocks_baselines.dir/hand_admin.cpp.o.d"
  "librocks_baselines.a"
  "librocks_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
