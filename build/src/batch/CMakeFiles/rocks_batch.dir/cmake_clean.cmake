file(REMOVE_RECURSE
  "CMakeFiles/rocks_batch.dir/mpirun.cpp.o"
  "CMakeFiles/rocks_batch.dir/mpirun.cpp.o.d"
  "CMakeFiles/rocks_batch.dir/pbs.cpp.o"
  "CMakeFiles/rocks_batch.dir/pbs.cpp.o.d"
  "CMakeFiles/rocks_batch.dir/rexec.cpp.o"
  "CMakeFiles/rocks_batch.dir/rexec.cpp.o.d"
  "librocks_batch.a"
  "librocks_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
