# Empty compiler generated dependencies file for rocks_batch.
# This may be replaced when dependencies are built.
