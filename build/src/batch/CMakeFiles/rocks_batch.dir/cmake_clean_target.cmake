file(REMOVE_RECURSE
  "librocks_batch.a"
)
