# Empty compiler generated dependencies file for rocks_rpm.
# This may be replaced when dependencies are built.
