file(REMOVE_RECURSE
  "CMakeFiles/rocks_rpm.dir/package.cpp.o"
  "CMakeFiles/rocks_rpm.dir/package.cpp.o.d"
  "CMakeFiles/rocks_rpm.dir/repository.cpp.o"
  "CMakeFiles/rocks_rpm.dir/repository.cpp.o.d"
  "CMakeFiles/rocks_rpm.dir/rpmdb.cpp.o"
  "CMakeFiles/rocks_rpm.dir/rpmdb.cpp.o.d"
  "CMakeFiles/rocks_rpm.dir/solver.cpp.o"
  "CMakeFiles/rocks_rpm.dir/solver.cpp.o.d"
  "CMakeFiles/rocks_rpm.dir/synth.cpp.o"
  "CMakeFiles/rocks_rpm.dir/synth.cpp.o.d"
  "CMakeFiles/rocks_rpm.dir/version.cpp.o"
  "CMakeFiles/rocks_rpm.dir/version.cpp.o.d"
  "librocks_rpm.a"
  "librocks_rpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_rpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
