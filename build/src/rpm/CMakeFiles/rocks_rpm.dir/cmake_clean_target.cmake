file(REMOVE_RECURSE
  "librocks_rpm.a"
)
