
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpm/package.cpp" "src/rpm/CMakeFiles/rocks_rpm.dir/package.cpp.o" "gcc" "src/rpm/CMakeFiles/rocks_rpm.dir/package.cpp.o.d"
  "/root/repo/src/rpm/repository.cpp" "src/rpm/CMakeFiles/rocks_rpm.dir/repository.cpp.o" "gcc" "src/rpm/CMakeFiles/rocks_rpm.dir/repository.cpp.o.d"
  "/root/repo/src/rpm/rpmdb.cpp" "src/rpm/CMakeFiles/rocks_rpm.dir/rpmdb.cpp.o" "gcc" "src/rpm/CMakeFiles/rocks_rpm.dir/rpmdb.cpp.o.d"
  "/root/repo/src/rpm/solver.cpp" "src/rpm/CMakeFiles/rocks_rpm.dir/solver.cpp.o" "gcc" "src/rpm/CMakeFiles/rocks_rpm.dir/solver.cpp.o.d"
  "/root/repo/src/rpm/synth.cpp" "src/rpm/CMakeFiles/rocks_rpm.dir/synth.cpp.o" "gcc" "src/rpm/CMakeFiles/rocks_rpm.dir/synth.cpp.o.d"
  "/root/repo/src/rpm/version.cpp" "src/rpm/CMakeFiles/rocks_rpm.dir/version.cpp.o" "gcc" "src/rpm/CMakeFiles/rocks_rpm.dir/version.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rocks_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/rocks_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
