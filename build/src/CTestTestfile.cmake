# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("xml")
subdirs("vfs")
subdirs("sqldb")
subdirs("rpm")
subdirs("netsim")
subdirs("kickstart")
subdirs("rocksdist")
subdirs("services")
subdirs("cluster")
subdirs("tools")
subdirs("baselines")
subdirs("batch")
subdirs("monitor")
