file(REMOVE_RECURSE
  "librocks_monitor.a"
)
