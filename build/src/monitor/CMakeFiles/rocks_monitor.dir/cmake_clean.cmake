file(REMOVE_RECURSE
  "CMakeFiles/rocks_monitor.dir/ganglia.cpp.o"
  "CMakeFiles/rocks_monitor.dir/ganglia.cpp.o.d"
  "CMakeFiles/rocks_monitor.dir/recovery.cpp.o"
  "CMakeFiles/rocks_monitor.dir/recovery.cpp.o.d"
  "librocks_monitor.a"
  "librocks_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
