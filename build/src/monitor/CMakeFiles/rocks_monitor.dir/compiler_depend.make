# Empty compiler generated dependencies file for rocks_monitor.
# This may be replaced when dependencies are built.
