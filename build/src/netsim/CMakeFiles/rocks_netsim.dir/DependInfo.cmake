
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/dhcp.cpp" "src/netsim/CMakeFiles/rocks_netsim.dir/dhcp.cpp.o" "gcc" "src/netsim/CMakeFiles/rocks_netsim.dir/dhcp.cpp.o.d"
  "/root/repo/src/netsim/engine.cpp" "src/netsim/CMakeFiles/rocks_netsim.dir/engine.cpp.o" "gcc" "src/netsim/CMakeFiles/rocks_netsim.dir/engine.cpp.o.d"
  "/root/repo/src/netsim/flow.cpp" "src/netsim/CMakeFiles/rocks_netsim.dir/flow.cpp.o" "gcc" "src/netsim/CMakeFiles/rocks_netsim.dir/flow.cpp.o.d"
  "/root/repo/src/netsim/http.cpp" "src/netsim/CMakeFiles/rocks_netsim.dir/http.cpp.o" "gcc" "src/netsim/CMakeFiles/rocks_netsim.dir/http.cpp.o.d"
  "/root/repo/src/netsim/power.cpp" "src/netsim/CMakeFiles/rocks_netsim.dir/power.cpp.o" "gcc" "src/netsim/CMakeFiles/rocks_netsim.dir/power.cpp.o.d"
  "/root/repo/src/netsim/syslog.cpp" "src/netsim/CMakeFiles/rocks_netsim.dir/syslog.cpp.o" "gcc" "src/netsim/CMakeFiles/rocks_netsim.dir/syslog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rocks_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
