file(REMOVE_RECURSE
  "librocks_netsim.a"
)
