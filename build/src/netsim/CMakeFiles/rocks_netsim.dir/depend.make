# Empty dependencies file for rocks_netsim.
# This may be replaced when dependencies are built.
