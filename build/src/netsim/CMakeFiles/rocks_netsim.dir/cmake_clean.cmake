file(REMOVE_RECURSE
  "CMakeFiles/rocks_netsim.dir/dhcp.cpp.o"
  "CMakeFiles/rocks_netsim.dir/dhcp.cpp.o.d"
  "CMakeFiles/rocks_netsim.dir/engine.cpp.o"
  "CMakeFiles/rocks_netsim.dir/engine.cpp.o.d"
  "CMakeFiles/rocks_netsim.dir/flow.cpp.o"
  "CMakeFiles/rocks_netsim.dir/flow.cpp.o.d"
  "CMakeFiles/rocks_netsim.dir/http.cpp.o"
  "CMakeFiles/rocks_netsim.dir/http.cpp.o.d"
  "CMakeFiles/rocks_netsim.dir/power.cpp.o"
  "CMakeFiles/rocks_netsim.dir/power.cpp.o.d"
  "CMakeFiles/rocks_netsim.dir/syslog.cpp.o"
  "CMakeFiles/rocks_netsim.dir/syslog.cpp.o.d"
  "librocks_netsim.a"
  "librocks_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
