# Empty dependencies file for rocks_cluster.
# This may be replaced when dependencies are built.
