file(REMOVE_RECURSE
  "librocks_cluster.a"
)
