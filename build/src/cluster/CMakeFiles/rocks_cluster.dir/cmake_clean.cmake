file(REMOVE_RECURSE
  "CMakeFiles/rocks_cluster.dir/cluster.cpp.o"
  "CMakeFiles/rocks_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/rocks_cluster.dir/ekv.cpp.o"
  "CMakeFiles/rocks_cluster.dir/ekv.cpp.o.d"
  "CMakeFiles/rocks_cluster.dir/frontend.cpp.o"
  "CMakeFiles/rocks_cluster.dir/frontend.cpp.o.d"
  "CMakeFiles/rocks_cluster.dir/insert_ethers.cpp.o"
  "CMakeFiles/rocks_cluster.dir/insert_ethers.cpp.o.d"
  "CMakeFiles/rocks_cluster.dir/node.cpp.o"
  "CMakeFiles/rocks_cluster.dir/node.cpp.o.d"
  "librocks_cluster.a"
  "librocks_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
