file(REMOVE_RECURSE
  "CMakeFiles/rocks_sqldb.dir/engine.cpp.o"
  "CMakeFiles/rocks_sqldb.dir/engine.cpp.o.d"
  "CMakeFiles/rocks_sqldb.dir/expr.cpp.o"
  "CMakeFiles/rocks_sqldb.dir/expr.cpp.o.d"
  "CMakeFiles/rocks_sqldb.dir/lexer.cpp.o"
  "CMakeFiles/rocks_sqldb.dir/lexer.cpp.o.d"
  "CMakeFiles/rocks_sqldb.dir/parser.cpp.o"
  "CMakeFiles/rocks_sqldb.dir/parser.cpp.o.d"
  "CMakeFiles/rocks_sqldb.dir/table.cpp.o"
  "CMakeFiles/rocks_sqldb.dir/table.cpp.o.d"
  "CMakeFiles/rocks_sqldb.dir/value.cpp.o"
  "CMakeFiles/rocks_sqldb.dir/value.cpp.o.d"
  "librocks_sqldb.a"
  "librocks_sqldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
