file(REMOVE_RECURSE
  "librocks_sqldb.a"
)
