# Empty compiler generated dependencies file for rocks_sqldb.
# This may be replaced when dependencies are built.
