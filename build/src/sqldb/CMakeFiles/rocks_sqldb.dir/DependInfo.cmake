
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqldb/engine.cpp" "src/sqldb/CMakeFiles/rocks_sqldb.dir/engine.cpp.o" "gcc" "src/sqldb/CMakeFiles/rocks_sqldb.dir/engine.cpp.o.d"
  "/root/repo/src/sqldb/expr.cpp" "src/sqldb/CMakeFiles/rocks_sqldb.dir/expr.cpp.o" "gcc" "src/sqldb/CMakeFiles/rocks_sqldb.dir/expr.cpp.o.d"
  "/root/repo/src/sqldb/lexer.cpp" "src/sqldb/CMakeFiles/rocks_sqldb.dir/lexer.cpp.o" "gcc" "src/sqldb/CMakeFiles/rocks_sqldb.dir/lexer.cpp.o.d"
  "/root/repo/src/sqldb/parser.cpp" "src/sqldb/CMakeFiles/rocks_sqldb.dir/parser.cpp.o" "gcc" "src/sqldb/CMakeFiles/rocks_sqldb.dir/parser.cpp.o.d"
  "/root/repo/src/sqldb/table.cpp" "src/sqldb/CMakeFiles/rocks_sqldb.dir/table.cpp.o" "gcc" "src/sqldb/CMakeFiles/rocks_sqldb.dir/table.cpp.o.d"
  "/root/repo/src/sqldb/value.cpp" "src/sqldb/CMakeFiles/rocks_sqldb.dir/value.cpp.o" "gcc" "src/sqldb/CMakeFiles/rocks_sqldb.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rocks_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
