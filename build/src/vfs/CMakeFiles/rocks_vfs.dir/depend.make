# Empty dependencies file for rocks_vfs.
# This may be replaced when dependencies are built.
