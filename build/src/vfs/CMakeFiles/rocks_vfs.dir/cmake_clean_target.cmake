file(REMOVE_RECURSE
  "librocks_vfs.a"
)
