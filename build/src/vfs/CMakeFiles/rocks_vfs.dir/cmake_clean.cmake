file(REMOVE_RECURSE
  "CMakeFiles/rocks_vfs.dir/filesystem.cpp.o"
  "CMakeFiles/rocks_vfs.dir/filesystem.cpp.o.d"
  "CMakeFiles/rocks_vfs.dir/path.cpp.o"
  "CMakeFiles/rocks_vfs.dir/path.cpp.o.d"
  "librocks_vfs.a"
  "librocks_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
