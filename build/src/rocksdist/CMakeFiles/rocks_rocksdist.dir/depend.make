# Empty dependencies file for rocks_rocksdist.
# This may be replaced when dependencies are built.
