file(REMOVE_RECURSE
  "librocks_rocksdist.a"
)
