
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rocksdist/rocksdist.cpp" "src/rocksdist/CMakeFiles/rocks_rocksdist.dir/rocksdist.cpp.o" "gcc" "src/rocksdist/CMakeFiles/rocks_rocksdist.dir/rocksdist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rocks_support.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/rocks_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/rpm/CMakeFiles/rocks_rpm.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rocks_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/kickstart/CMakeFiles/rocks_kickstart.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/rocks_sqldb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
