file(REMOVE_RECURSE
  "CMakeFiles/rocks_rocksdist.dir/rocksdist.cpp.o"
  "CMakeFiles/rocks_rocksdist.dir/rocksdist.cpp.o.d"
  "librocks_rocksdist.a"
  "librocks_rocksdist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_rocksdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
