file(REMOVE_RECURSE
  "librocks_xml.a"
)
