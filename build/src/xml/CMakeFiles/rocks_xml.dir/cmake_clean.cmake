file(REMOVE_RECURSE
  "CMakeFiles/rocks_xml.dir/dom.cpp.o"
  "CMakeFiles/rocks_xml.dir/dom.cpp.o.d"
  "CMakeFiles/rocks_xml.dir/parser.cpp.o"
  "CMakeFiles/rocks_xml.dir/parser.cpp.o.d"
  "CMakeFiles/rocks_xml.dir/writer.cpp.o"
  "CMakeFiles/rocks_xml.dir/writer.cpp.o.d"
  "librocks_xml.a"
  "librocks_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
