# Empty compiler generated dependencies file for rocks_xml.
# This may be replaced when dependencies are built.
