file(REMOVE_RECURSE
  "CMakeFiles/rocks_kickstart.dir/defaults.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/defaults.cpp.o.d"
  "CMakeFiles/rocks_kickstart.dir/frontend_form.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/frontend_form.cpp.o.d"
  "CMakeFiles/rocks_kickstart.dir/generator.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/generator.cpp.o.d"
  "CMakeFiles/rocks_kickstart.dir/graph.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/graph.cpp.o.d"
  "CMakeFiles/rocks_kickstart.dir/nodefile.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/nodefile.cpp.o.d"
  "CMakeFiles/rocks_kickstart.dir/profile.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/profile.cpp.o.d"
  "CMakeFiles/rocks_kickstart.dir/server.cpp.o"
  "CMakeFiles/rocks_kickstart.dir/server.cpp.o.d"
  "librocks_kickstart.a"
  "librocks_kickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rocks_kickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
