
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kickstart/defaults.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/defaults.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/defaults.cpp.o.d"
  "/root/repo/src/kickstart/frontend_form.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/frontend_form.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/frontend_form.cpp.o.d"
  "/root/repo/src/kickstart/generator.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/generator.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/generator.cpp.o.d"
  "/root/repo/src/kickstart/graph.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/graph.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/graph.cpp.o.d"
  "/root/repo/src/kickstart/nodefile.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/nodefile.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/nodefile.cpp.o.d"
  "/root/repo/src/kickstart/profile.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/profile.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/profile.cpp.o.d"
  "/root/repo/src/kickstart/server.cpp" "src/kickstart/CMakeFiles/rocks_kickstart.dir/server.cpp.o" "gcc" "src/kickstart/CMakeFiles/rocks_kickstart.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/rocks_support.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/rocks_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/rocks_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/rpm/CMakeFiles/rocks_rpm.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/rocks_vfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
