# Empty compiler generated dependencies file for rocks_kickstart.
# This may be replaced when dependencies are built.
