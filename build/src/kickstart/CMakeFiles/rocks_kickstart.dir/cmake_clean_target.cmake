file(REMOVE_RECURSE
  "librocks_kickstart.a"
)
