# Empty dependencies file for shoot_node_ekv.
# This may be replaced when dependencies are built.
