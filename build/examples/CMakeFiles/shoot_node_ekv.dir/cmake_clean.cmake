file(REMOVE_RECURSE
  "CMakeFiles/shoot_node_ekv.dir/shoot_node_ekv.cpp.o"
  "CMakeFiles/shoot_node_ekv.dir/shoot_node_ekv.cpp.o.d"
  "shoot_node_ekv"
  "shoot_node_ekv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shoot_node_ekv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
