# Empty dependencies file for upgrade_cycle.
# This may be replaced when dependencies are built.
