file(REMOVE_RECURSE
  "CMakeFiles/upgrade_cycle.dir/upgrade_cycle.cpp.o"
  "CMakeFiles/upgrade_cycle.dir/upgrade_cycle.cpp.o.d"
  "upgrade_cycle"
  "upgrade_cycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/upgrade_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
