# Empty dependencies file for health_monitoring.
# This may be replaced when dependencies are built.
