file(REMOVE_RECURSE
  "CMakeFiles/health_monitoring.dir/health_monitoring.cpp.o"
  "CMakeFiles/health_monitoring.dir/health_monitoring.cpp.o.d"
  "health_monitoring"
  "health_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
