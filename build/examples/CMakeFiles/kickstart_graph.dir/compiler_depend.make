# Empty compiler generated dependencies file for kickstart_graph.
# This may be replaced when dependencies are built.
