file(REMOVE_RECURSE
  "CMakeFiles/kickstart_graph.dir/kickstart_graph.cpp.o"
  "CMakeFiles/kickstart_graph.dir/kickstart_graph.cpp.o.d"
  "kickstart_graph"
  "kickstart_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kickstart_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
