# Empty dependencies file for campus_distribution.
# This may be replaced when dependencies are built.
