file(REMOVE_RECURSE
  "CMakeFiles/campus_distribution.dir/campus_distribution.cpp.o"
  "CMakeFiles/campus_distribution.dir/campus_distribution.cpp.o.d"
  "campus_distribution"
  "campus_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
