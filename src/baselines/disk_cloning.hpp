// Baseline 1: disk cloning (paper Section 3.1).
//
// "a model node is hand-configured with desired software and then a
// bit-image of the system partition is made. Commercial software (ImageCast
// in this case) is then used to clone this image on homogeneous hardware."
// The pitfall the paper calls out: clusters drift heterogeneous, and a
// bit-image neither fits foreign hardware nor carries per-node
// configuration.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.hpp"

namespace rocks::baselines {

struct CloneImage {
  std::string source_host;
  std::string arch;             // images are architecture-specific
  std::uint64_t bytes = 0;      // bit-image size (system partition blocks)
  const cluster::Node* model = nullptr;
};

struct CloneReport {
  bool applied = false;
  std::string failure;          // non-empty when the clone was refused
  double seconds = 0.0;         // image transfer + reboot
};

class DiskCloner {
 public:
  /// `image_rate` = unicast image streaming rate in bytes/s (ImageCast over
  /// Fast Ethernet), `reboot_seconds` = post-clone reboot.
  explicit DiskCloner(double image_rate = 8.0 * 1024 * 1024, double reboot_seconds = 120.0)
      : image_rate_(image_rate), reboot_seconds_(reboot_seconds) {}

  /// Snapshots the model node's system partition.
  [[nodiscard]] CloneImage capture(const cluster::Node& model) const;

  /// Streams the image onto `target`. Refuses architecture mismatches (the
  /// heterogeneity pitfall); on success the target becomes a bit-copy of
  /// the model — including the model's hostname-specific configuration,
  /// which is exactly the bug the paper's XML+SQL generation avoids.
  CloneReport apply(const CloneImage& image, cluster::Node& target) const;

 private:
  double image_rate_;
  double reboot_seconds_;
};

}  // namespace rocks::baselines
