#include "baselines/disk_cloning.hpp"

#include "support/strings.hpp"

namespace rocks::baselines {

CloneImage DiskCloner::capture(const cluster::Node& model) const {
  CloneImage image;
  image.source_host = model.hostname();
  image.arch = model.arch();
  // A bit image copies partition blocks, not packages: size is the disk
  // usage of everything outside the preserved /state partition.
  std::uint64_t state_bytes = 0;
  if (model.fs().exists("/state")) state_bytes = model.fs().disk_usage("/state");
  image.bytes = model.fs().disk_usage("/") - state_bytes;
  image.model = &model;
  return image;
}

CloneReport DiskCloner::apply(const CloneImage& image, cluster::Node& target) const {
  CloneReport report;
  if (target.arch() != image.arch) {
    report.failure = strings::cat("image built for ", image.arch, " cannot boot on ",
                                  target.arch(), " hardware");
    return report;
  }
  if (!target.is_running()) {
    report.failure = "target must be up to receive a clone stream";
    return report;
  }
  target.clone_software_from(*image.model);
  report.applied = true;
  report.seconds = static_cast<double>(image.bytes) / image_rate_ + reboot_seconds_;
  return report;
}

}  // namespace rocks::baselines
