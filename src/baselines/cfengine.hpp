// Baseline 2: cfengine-style policy convergence (paper Sections 1 and 2).
//
// "configuration management tools like Cfengine ... perform exhaustive
// examination and parity checking of an installed OS." This agent audits a
// node's root partition against a reference node, optionally repairing
// drift, with a cost model (per-file stat+checksum, per-byte repair copy,
// per-node policy fetch over the frontend's NFS). The reinstall-vs-verify
// bench measures what the paper argues: parity checking scales with the
// number of files examined every time, repairs only what policy covers,
// and silently misses drift outside the managed set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/node.hpp"

namespace rocks::baselines {

struct ParityCosts {
  /// stat + md5 of one managed file (disk-bound on a PIII).
  double seconds_per_file = 0.02;
  /// repair copy rate, bytes/s (pull from the central server).
  double repair_rate = 2.0 * 1024 * 1024;
  /// fetching the central policy over NFS before any check (Section 2:
  /// "a central policy file (accessed through NFS)").
  double policy_fetch_seconds = 3.0;
};

struct ParityReport {
  std::size_t files_examined = 0;
  std::size_t drifted = 0;        // managed files differing from reference
  std::size_t repaired = 0;
  std::size_t unmanaged_extra = 0;  // files on the node policy knows nothing about
  std::uint64_t bytes_repaired = 0;
  double seconds = 0.0;
};

class CfengineAgent {
 public:
  explicit CfengineAgent(ParityCosts costs = {}) : costs_(costs) {}

  /// Examine only: compares every reference file against the node.
  [[nodiscard]] ParityReport audit(const cluster::Node& node,
                                   const cluster::Node& reference) const;

  /// Examine and repair: drifted or missing managed files are restored from
  /// the reference. Files the node has that the policy does not describe
  /// are counted but NOT removed — cfengine only converges what its policy
  /// names, which is the residual-risk the paper's reinstall avoids.
  ParityReport converge(cluster::Node& node, const cluster::Node& reference) const;

 private:
  ParityReport run(const cluster::Node& node, const cluster::Node& reference,
                   cluster::Node* repair_target) const;
  ParityCosts costs_;
};

}  // namespace rocks::baselines
