// Baseline 3: installing and maintaining each system by hand (paper
// Section 3.2).
//
// "Even savvy computer professionals will occasionally enter incorrect
// command line sequences" — this administrator pushes a change to nodes one
// at a time, occasionally fat-fingering it or silently skipping a node that
// was down, producing exactly the configuration drift whose detection the
// paper's four questions revolve around.
#pragma once

#include <string>
#include <vector>

#include "cluster/node.hpp"
#include "support/rng.hpp"

namespace rocks::baselines {

struct HandAdminOptions {
  std::uint64_t seed = 42;
  /// Probability a command is mistyped on a node (wrong content lands).
  double typo_probability = 0.02;
  /// Probability a node is skipped (offline / missed in the loop).
  double skip_probability = 0.03;
  /// Seconds of operator time per node per change.
  double seconds_per_node = 45.0;
};

struct HandAdminReport {
  int attempted = 0;
  int clean = 0;
  int typos = 0;    // wrong content written
  int skipped = 0;  // node never touched
  double operator_seconds = 0.0;
};

class HandAdministrator {
 public:
  explicit HandAdministrator(HandAdminOptions options = {})
      : options_(options), rng_(options.seed) {}

  /// Applies "write `content` to `path`" across the nodes, with error
  /// injection. Errors are *silent* — the report's totals are only known to
  /// the simulation, not to the administrator, which is the point.
  HandAdminReport push_change(const std::vector<cluster::Node*>& nodes,
                              const std::string& path, const std::string& content);

 private:
  HandAdminOptions options_;
  Rng rng_;
};

}  // namespace rocks::baselines
