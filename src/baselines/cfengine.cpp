#include "baselines/cfengine.hpp"

#include <set>

#include "support/strings.hpp"
#include "vfs/path.hpp"

namespace rocks::baselines {
namespace {

bool managed_path(const std::string& path) {
  // Policy covers the system partition; /state is user data, and the
  // rocks-post output is node-specific generated configuration (localized
  // per host) that a sane policy excludes rather than "repairing" every
  // node to the gold host's hostname.
  return !vfs::is_within(path, "/state") &&
         !vfs::is_within(path, "/etc/rc.d/rocks-post.d");
}

}  // namespace

ParityReport CfengineAgent::audit(const cluster::Node& node,
                                  const cluster::Node& reference) const {
  return run(node, reference, nullptr);
}

ParityReport CfengineAgent::converge(cluster::Node& node,
                                     const cluster::Node& reference) const {
  return run(node, reference, &node);
}

ParityReport CfengineAgent::run(const cluster::Node& node, const cluster::Node& reference,
                                cluster::Node* repair_target) const {
  ParityReport report;
  report.seconds = costs_.policy_fetch_seconds;

  // Pass 1: every file the policy (reference image) describes.
  std::set<std::string> managed;
  reference.fs().walk("/", [&](const std::string& path, const vfs::Stat& st) {
    if (st.type != vfs::NodeType::kFile || !managed_path(path)) return;
    managed.insert(path);
    ++report.files_examined;
    report.seconds += costs_.seconds_per_file;

    const bool missing = !node.fs().is_file(path);
    const bool differs =
        !missing && node.fs().file_hash(path) != reference.fs().file_hash(path);
    if (!missing && !differs) return;
    ++report.drifted;
    if (repair_target != nullptr) {
      auto& fs = repair_target->fs();
      if (fs.exists(path)) fs.remove(path);
      fs.mkdir_p(vfs::dirname(path));
      fs.copy_tree(reference.fs(), path, path);
      ++report.repaired;
      report.bytes_repaired += st.size;
      report.seconds += static_cast<double>(st.size) / costs_.repair_rate;
    }
  });

  // Pass 2: what the node carries that policy does not mention. cfengine
  // walks these directories anyway (that is where the examination cost of
  // "exhaustive examination" comes from) but has no rule to fix them.
  node.fs().walk("/", [&](const std::string& path, const vfs::Stat& st) {
    if (st.type != vfs::NodeType::kFile || !managed_path(path)) return;
    ++report.files_examined;
    report.seconds += costs_.seconds_per_file;
    if (!managed.contains(path)) ++report.unmanaged_extra;
  });
  return report;
}

}  // namespace rocks::baselines
