#include "baselines/hand_admin.hpp"

#include "support/strings.hpp"

namespace rocks::baselines {

HandAdminReport HandAdministrator::push_change(const std::vector<cluster::Node*>& nodes,
                                               const std::string& path,
                                               const std::string& content) {
  HandAdminReport report;
  for (cluster::Node* node : nodes) {
    if (!node->is_running()) continue;
    ++report.attempted;
    report.operator_seconds += options_.seconds_per_node;
    if (rng_.chance(options_.skip_probability)) {
      ++report.skipped;
      continue;  // "was node X offline?"
    }
    if (rng_.chance(options_.typo_probability)) {
      ++report.typos;
      node->corrupt_file(path, strings::cat(content, " --typo-on-", node->hostname()));
      continue;
    }
    node->corrupt_file(path, content);
    ++report.clean;
  }
  return report;
}

}  // namespace rocks::baselines
