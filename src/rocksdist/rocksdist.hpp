// rocks-dist: building and deriving cluster distributions.
//
// "Rocks-dist gathers software components from [Red Hat software, third
// party software, local software] and constructs a single new distribution
// ... The resulting Rocks distribution looks just like a Red Hat
// distribution, only with more software" (paper Section 6.2, Figure 5).
//
// Two-step workflow, as in the real tool:
//   mirror  — pull an upstream section (stock release, updates, contrib)
//             over HTTP into /home/install/mirror/<section>; bytes are
//             materialized in the host's vfs.
//   dist    — resolve every package name to its newest version across all
//             mirrored sections plus locally built RPMs, then build
//             /home/install/dist/<version>/<arch> as a tree of symbolic
//             links into the mirror, plus the XML build directory and
//             installer metadata. Lightweight (~25 MB) and fast (<1 min).
//
// Derived ("object-oriented", Figure 6) distributions: a child host mirrors
// a parent's *distribution* section and layers its own packages on top —
// export one with as_upstream().
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "kickstart/graph.hpp"
#include "kickstart/nodefile.hpp"
#include "rpm/repository.hpp"
#include "support/threadpool.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::rocksdist {

struct DistConfig {
  std::string root = "/home/install";
  std::string version = "7.2";
  std::string arch = "i386";
  /// Installer metadata (hdlist) bytes written per package — the dominant
  /// real-bytes cost of a distribution tree. 32 KiB/package plus the 4 KiB
  /// block per symlink lands a ~650-package tree at the paper's ~25 MB.
  std::uint64_t hdlist_bytes_per_package = 32 * 1024;
};

struct MirrorReport {
  std::string section;
  std::size_t packages_fetched = 0;
  std::size_t packages_refreshed = 0;  // newer version replaced an older one
  std::uint64_t bytes_fetched = 0;
  std::size_t workers = 1;             // parallel fetch lanes used
  double mirror_seconds = 0.0;         // simulated wall time of the fetches
};

struct DistReport {
  std::size_t package_count = 0;     // resolved (newest) packages linked
  std::size_t symlink_count = 0;
  std::size_t dropped_stale = 0;     // older versions excluded by resolution
  std::uint64_t tree_bytes = 0;      // disk usage of the dist tree
  std::size_t workers = 1;           // parallel build lanes used
  double build_seconds = 0.0;        // simulated wall time of the build
};

class RocksDist {
 public:
  RocksDist(vfs::FileSystem& fs, DistConfig config = {});

  /// Fans per-package work (payload materialization during mirror(), the
  /// symlink-tree prep during dist()) across `pool`; the reports' simulated
  /// times then charge ceil(items / pool->size()) serial rounds. nullptr
  /// (the default) runs everything on the calling thread, byte- and
  /// time-identical to the pre-pool behavior.
  void set_pool(support::ThreadPool* pool) { pool_ = pool; }

  /// Pulls `upstream` into mirror/<section>. Incremental and EVR-aware:
  /// a package is fetched only when its file is absent from this section
  /// AND its EVR is newer than anything already gathered — re-mirroring a
  /// warm host (same section or a sibling carrying equal-EVR copies) is a
  /// no-op, which is what keeps nightly update mirroring cheap
  /// (Section 6.2.1).
  MirrorReport mirror(const rpm::Repository& upstream, std::string_view section);

  /// Registers a locally built RPM (Section 6.2.1 "Local software") and
  /// materializes it under local/RPMS.
  void add_local(const rpm::Package& package);

  /// Builds the distribution tree from everything mirrored + local.
  /// The XML configuration infrastructure is serialized into
  /// dist/<version>/<arch>/build/{nodes,graphs}.
  DistReport dist(const kickstart::NodeFileSet& files, const kickstart::Graph& graph);

  /// The resolved distribution (newest version of every package) — what
  /// kickstart installs from. Empty before the first dist().
  [[nodiscard]] const rpm::Repository& distribution() const { return distribution_; }

  /// Exports the resolved distribution for a child rocks-dist to mirror
  /// (the Figure 6 hierarchy).
  [[nodiscard]] rpm::Repository as_upstream(std::string name) const;

  [[nodiscard]] const DistConfig& config() const { return config_; }
  [[nodiscard]] std::string dist_path() const;
  [[nodiscard]] std::string mirror_path(std::string_view section) const;

  /// All packages currently gathered (mirrored + local), pre-resolution.
  [[nodiscard]] const rpm::Repository& gathered() const { return gathered_; }

 private:
  [[nodiscard]] std::string local_path() const;
  [[nodiscard]] std::size_t workers() const { return pool_ != nullptr ? pool_->size() : 1; }

  vfs::FileSystem& fs_;
  DistConfig config_;
  support::ThreadPool* pool_ = nullptr;
  rpm::Repository gathered_{"gathered"};
  rpm::Repository distribution_{"distribution"};
  // filename -> mirror path, for symlink targets.
  std::map<std::string, std::string> package_locations_;
};

}  // namespace rocks::rocksdist
