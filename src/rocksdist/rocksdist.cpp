#include "rocksdist/rocksdist.hpp"

#include "support/strings.hpp"
#include "vfs/path.hpp"

namespace rocks::rocksdist {

using strings::cat;

namespace {

/// Simulated build-cost model: creating a symlink or writing a metadata
/// record is a few milliseconds of frontend disk time. With these constants
/// a ~1100-package tree builds in roughly 30 s — comfortably "under a
/// minute" (paper Section 6.2.3) and proportional to package count.
constexpr double kSecondsPerSymlink = 0.012;
constexpr double kSecondsPerHeader = 0.010;
constexpr double kSecondsFixed = 3.0;

}  // namespace

RocksDist::RocksDist(vfs::FileSystem& fs, DistConfig config)
    : fs_(fs), config_(std::move(config)) {
  fs_.mkdir_p(cat(config_.root, "/mirror"));
  fs_.mkdir_p(local_path());
}

std::string RocksDist::dist_path() const {
  return cat(config_.root, "/dist/", config_.version, "/", config_.arch);
}

std::string RocksDist::mirror_path(std::string_view section) const {
  return cat(config_.root, "/mirror/", section);
}

std::string RocksDist::local_path() const { return cat(config_.root, "/local/RPMS"); }

MirrorReport RocksDist::mirror(const rpm::Repository& upstream, std::string_view section) {
  MirrorReport report;
  report.section = std::string(section);
  const std::string base = cat(mirror_path(section), "/RPMS");
  fs_.mkdir_p(base);
  for (const rpm::Package* pkg : upstream.all()) {
    const std::string path = cat(base, "/", pkg->filename());
    if (fs_.exists(path)) continue;  // incremental: already mirrored
    const rpm::Package* had = gathered_.newest(pkg->name, pkg->arch);
    if (had != nullptr && had->evr < pkg->evr) ++report.packages_refreshed;
    fs_.write_file(path, cat("RPM ", pkg->nevra(), "\n"), pkg->size_bytes);
    gathered_.add(*pkg);
    package_locations_[pkg->filename()] = path;
    ++report.packages_fetched;
    report.bytes_fetched += pkg->size_bytes;
  }
  return report;
}

void RocksDist::add_local(const rpm::Package& package) {
  const std::string path = cat(local_path(), "/", package.filename());
  if (fs_.exists(path)) fs_.remove(path);
  fs_.write_file(path, cat("RPM ", package.nevra(), "\n"), package.size_bytes);
  gathered_.add(package);
  package_locations_[package.filename()] = path;
}

DistReport RocksDist::dist(const kickstart::NodeFileSet& files, const kickstart::Graph& graph) {
  DistReport report;
  const std::string dist = dist_path();
  if (fs_.exists(dist)) fs_.remove(dist);
  const std::string rpms = cat(dist, "/RedHat/RPMS");
  const std::string base = cat(dist, "/RedHat/base");
  fs_.mkdir_p(rpms);
  fs_.mkdir_p(base);

  // Version resolution: newest of every (name, arch) survives.
  distribution_ = rpm::Repository(cat("rocks-", config_.version));
  const auto resolved = gathered_.resolve_newest();
  report.dropped_stale = gathered_.package_count() - resolved.size();
  for (const rpm::Package* pkg : resolved) {
    distribution_.add(*pkg);
    const auto location = package_locations_.find(pkg->filename());
    if (location != package_locations_.end()) {
      fs_.symlink(location->second, cat(rpms, "/", pkg->filename()));
      ++report.symlink_count;
    }
  }
  report.package_count = resolved.size();

  // Installer metadata: hdlist (per-package headers) and a comps file.
  fs_.write_file(cat(base, "/hdlist"), "rocks hdlist\n",
                 config_.hdlist_bytes_per_package * resolved.size());
  fs_.write_file(cat(base, "/comps"), cat("# comps for rocks-", config_.version, "\n"),
                 256 * 1024);

  // The XML configuration infrastructure travels with the distribution so a
  // derived distribution can be customized by editing these files
  // (Section 6.2.3).
  const std::string build_nodes = cat(dist, "/build/nodes");
  const std::string build_graphs = cat(dist, "/build/graphs");
  fs_.mkdir_p(build_nodes);
  fs_.mkdir_p(build_graphs);
  for (const auto& name : files.names())
    fs_.write_file(cat(build_nodes, "/", name, ".xml"), files.get(name).to_xml());
  fs_.write_file(cat(build_graphs, "/default.xml"), graph.to_xml());

  report.tree_bytes = fs_.disk_usage(dist);
  report.build_seconds = kSecondsFixed +
                         kSecondsPerSymlink * static_cast<double>(report.symlink_count) +
                         kSecondsPerHeader * static_cast<double>(report.package_count);
  return report;
}

rpm::Repository RocksDist::as_upstream(std::string name) const {
  rpm::Repository out(std::move(name));
  for (const rpm::Package* pkg : distribution_.all()) out.add(*pkg);
  return out;
}

}  // namespace rocks::rocksdist
