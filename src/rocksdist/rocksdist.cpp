#include "rocksdist/rocksdist.hpp"

#include "support/strings.hpp"
#include "vfs/path.hpp"

namespace rocks::rocksdist {

using strings::cat;

namespace {

/// Simulated build-cost model: creating a symlink or writing a metadata
/// record is a few milliseconds of frontend disk time. With these constants
/// a ~1100-package tree builds in roughly 30 s — comfortably "under a
/// minute" (paper Section 6.2.3) and proportional to package count. With a
/// thread pool attached the per-item terms are charged as
/// ceil(items/workers) serial rounds (support::parallel_wall_seconds), so a
/// 1-worker pool reproduces the serial numbers exactly.
constexpr double kSecondsPerSymlink = 0.012;
constexpr double kSecondsPerHeader = 0.010;
constexpr double kSecondsFixed = 3.0;
/// Per-package fetch cost during mirror(): one HTTP GET of an average RPM
/// over the campus network, dominated by the transfer.
constexpr double kSecondsPerFetch = 0.050;

}  // namespace

RocksDist::RocksDist(vfs::FileSystem& fs, DistConfig config)
    : fs_(fs), config_(std::move(config)) {
  fs_.mkdir_p(cat(config_.root, "/mirror"));
  fs_.mkdir_p(local_path());
}

std::string RocksDist::dist_path() const {
  return cat(config_.root, "/dist/", config_.version, "/", config_.arch);
}

std::string RocksDist::mirror_path(std::string_view section) const {
  return cat(config_.root, "/mirror/", section);
}

std::string RocksDist::local_path() const { return cat(config_.root, "/local/RPMS"); }

MirrorReport RocksDist::mirror(const rpm::Repository& upstream, std::string_view section) {
  MirrorReport report;
  report.section = std::string(section);
  report.workers = workers();
  const std::string base = cat(mirror_path(section), "/RPMS");

  // Decide what to fetch serially (cheap map lookups against this host's
  // gathered state), then materialize payloads in parallel, then apply the
  // single-threaded vfs/repository mutations.
  struct Fetch {
    const rpm::Package* pkg = nullptr;
    std::string path;
    bool refresh = false;
    std::string payload;
  };
  std::vector<Fetch> fetches;
  for (const rpm::Package* pkg : upstream.all()) {
    std::string path = cat(base, "/", pkg->filename());
    if (fs_.exists(path)) continue;  // incremental: this section has the file
    const rpm::Package* had = gathered_.newest(pkg->name, pkg->arch);
    // EVR-aware: an equal-or-newer copy gathered earlier (same host,
    // possibly another section) means there is nothing to refresh —
    // re-mirroring a warm host must not rewrite files or recount bytes.
    if (had != nullptr && !(had->evr < pkg->evr)) continue;
    fetches.push_back({pkg, std::move(path), had != nullptr, {}});
  }

  // A fully-skipped pass touches nothing — not even the section directory.
  if (!fetches.empty()) fs_.mkdir_p(base);

  const auto materialize = [&fetches](std::size_t i) {
    fetches[i].payload = cat("RPM ", fetches[i].pkg->nevra(), "\n");
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(fetches.size(), materialize);
  } else {
    for (std::size_t i = 0; i < fetches.size(); ++i) materialize(i);
  }

  for (Fetch& fetch : fetches) {
    if (fetch.refresh) ++report.packages_refreshed;
    fs_.write_file(fetch.path, std::move(fetch.payload), fetch.pkg->size_bytes);
    gathered_.add(*fetch.pkg);
    package_locations_[fetch.pkg->filename()] = fetch.path;
    ++report.packages_fetched;
    report.bytes_fetched += fetch.pkg->size_bytes;
  }
  report.mirror_seconds =
      support::parallel_wall_seconds(fetches.size(), report.workers, kSecondsPerFetch);
  return report;
}

void RocksDist::add_local(const rpm::Package& package) {
  const std::string path = cat(local_path(), "/", package.filename());
  if (fs_.exists(path)) fs_.remove(path);
  fs_.write_file(path, cat("RPM ", package.nevra(), "\n"), package.size_bytes);
  gathered_.add(package);
  package_locations_[package.filename()] = path;
}

DistReport RocksDist::dist(const kickstart::NodeFileSet& files, const kickstart::Graph& graph) {
  DistReport report;
  report.workers = workers();
  const std::string dist = dist_path();
  if (fs_.exists(dist)) fs_.remove(dist);
  const std::string rpms = cat(dist, "/RedHat/RPMS");
  const std::string base = cat(dist, "/RedHat/base");
  fs_.mkdir_p(rpms);
  fs_.mkdir_p(base);

  // Version resolution: newest of every (name, arch) survives.
  distribution_ = rpm::Repository(cat("rocks-", config_.version));
  const auto resolved = gathered_.resolve_newest();
  report.dropped_stale = gathered_.package_count() - resolved.size();

  // Per-package link prep fans across the pool (package_locations_ and the
  // resolved set are read-only here); the vfs and Repository mutations
  // stay on this thread — the in-memory filesystem is not thread-safe.
  struct Link {
    std::string target;
    std::string path;
  };
  std::vector<Link> links(resolved.size());
  const auto prepare = [&](std::size_t i) {
    const rpm::Package* pkg = resolved[i];
    const auto location = package_locations_.find(pkg->filename());
    if (location == package_locations_.end()) return;
    links[i] = {location->second, cat(rpms, "/", pkg->filename())};
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(resolved.size(), prepare);
  } else {
    for (std::size_t i = 0; i < resolved.size(); ++i) prepare(i);
  }

  for (const rpm::Package* pkg : resolved) distribution_.add(*pkg);
  for (Link& link : links) {
    if (link.path.empty()) continue;
    fs_.symlink(link.target, link.path);
    ++report.symlink_count;
  }
  report.package_count = resolved.size();

  // Installer metadata: hdlist (per-package headers) and a comps file.
  fs_.write_file(cat(base, "/hdlist"), "rocks hdlist\n",
                 config_.hdlist_bytes_per_package * resolved.size());
  fs_.write_file(cat(base, "/comps"), cat("# comps for rocks-", config_.version, "\n"),
                 256 * 1024);

  // The XML configuration infrastructure travels with the distribution so a
  // derived distribution can be customized by editing these files
  // (Section 6.2.3).
  const std::string build_nodes = cat(dist, "/build/nodes");
  const std::string build_graphs = cat(dist, "/build/graphs");
  fs_.mkdir_p(build_nodes);
  fs_.mkdir_p(build_graphs);
  for (const auto& name : files.names())
    fs_.write_file(cat(build_nodes, "/", name, ".xml"), files.get(name).to_xml());
  fs_.write_file(cat(build_graphs, "/default.xml"), graph.to_xml());

  report.tree_bytes = fs_.disk_usage(dist);
  // Symlink creation and header assembly parallelize per package; the
  // fixed setup cost (directory scaffolding, comps, XML) does not.
  report.build_seconds =
      kSecondsFixed +
      support::parallel_wall_seconds(report.symlink_count, report.workers, kSecondsPerSymlink) +
      support::parallel_wall_seconds(report.package_count, report.workers, kSecondsPerHeader);
  return report;
}

rpm::Repository RocksDist::as_upstream(std::string name) const {
  rpm::Repository out(std::move(name));
  for (const rpm::Package* pkg : distribution_.all()) out.add(*pkg);
  return out;
}

}  // namespace rocks::rocksdist
