// Batch jobs.
//
// "To support job launching in production environments, we've packaged the
// Portable Batch System (PBS) and the Maui scheduler. PBS is used for its
// workload management system (starting and monitoring jobs) and Maui is
// used for its rich scheduling functionality" (paper Section 4.1).
//
// Two job kinds matter to the reproduction: ordinary parallel user jobs,
// and the Section 5 "reinstall cluster" job that upgrades production nodes
// between user jobs without disturbing anything running.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rocks::batch {

using JobId = std::uint64_t;

enum class JobKind {
  kUser,       // occupies its nodes for walltime seconds
  kReinstall,  // shoots each assigned node; completes when all are back
};

enum class JobState {
  kQueued,
  kRunning,
  kComplete,   // ran to completion
  kCancelled,  // qdel'd, or requeue retry budget exhausted
};

[[nodiscard]] std::string_view job_state_name(JobState state);

struct JobSpec {
  std::string name;
  JobKind kind = JobKind::kUser;
  /// How many nodes the job needs (reinstall jobs: 0 = every compute node).
  std::size_t nodes = 1;
  /// User jobs: execution time once started.
  double walltime_seconds = 60.0;
  /// Graceful degradation floor (Scheduler only): a job whose head-of-queue
  /// wait exceeds the shrink threshold may start on fewer nodes, down to
  /// this many, instead of blocking the queue. 0 = rigid (min == nodes).
  std::size_t min_nodes = 0;
  /// Requeue budget (Scheduler only): how many times the job may be
  /// requeued after losing a node before it ends kCancelled.
  int max_retries = 3;
};

struct JobRecord {
  JobId id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  double submitted_at = 0.0;
  double started_at = -1.0;
  double completed_at = -1.0;
  std::vector<std::string> assigned_nodes;
};

}  // namespace rocks::batch
