#include "batch/rexec.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::batch {

using cluster::Node;
using strings::cat;

std::string Rexec::process_tag(RunId id) { return cat("rexec:", id); }

RunId Rexec::launch(const std::vector<std::string>& hosts, const std::string& command,
                    double duration_seconds, RexecContext context) {
  const RunId id = next_id_++;
  Run run;
  run.command = command;
  run.context = std::move(context);

  for (const auto& hostname : hosts) {
    RexecProcess process;
    process.node = hostname;
    Node* node = cluster_.node(hostname);
    if (node == nullptr || !node->is_running()) {
      // Unreachable: recorded, never started (exit_code stays -1).
      run.processes.push_back(std::move(process));
      continue;
    }
    process.running = true;
    // Stdio redirection: the remote process's first output line reflects
    // the propagated context, exactly what rexec's demo programs print.
    process.stdout_lines.push_back(cat(hostname, ": $ ", command, " (uid=", run.context.uid,
                                       " gid=", run.context.gid, " cwd=", run.context.cwd,
                                       ")"));
    for (const auto& [key, value] : run.context.env)
      process.stdout_lines.push_back(cat(hostname, ": env ", key, "=", value));
    node->launch_process(process_tag(id));
    run.processes.push_back(std::move(process));
  }
  runs_.emplace(id, std::move(run));

  // Natural completion after the workload's duration.
  cluster_.sim().schedule(duration_seconds, [this, id] {
    Run& run = runs_.at(id);
    for (auto& process : run.processes) {
      if (!process.running) continue;
      process.running = false;
      process.exit_code = 0;
      process.stdout_lines.push_back(cat(process.node, ": exited 0"));
      Node* node = cluster_.node(process.node);
      if (node != nullptr) node->kill_processes(process_tag(id));
    }
  });
  return id;
}

std::size_t Rexec::forward_signal(RunId id, int signo) {
  const auto it = runs_.find(id);
  require_found(it != runs_.end(), cat("rexec: no such run ", id));
  std::size_t delivered = 0;
  for (auto& process : it->second.processes) {
    if (!process.running) continue;
    process.running = false;
    process.exit_code = 128 + signo;
    process.stdout_lines.push_back(
        cat(process.node, ": terminated by forwarded signal ", signo));
    Node* node = cluster_.node(process.node);
    if (node != nullptr) node->kill_processes(process_tag(id));
    ++delivered;
  }
  return delivered;
}

std::size_t Rexec::running_count(RunId id) const {
  const auto it = runs_.find(id);
  require_found(it != runs_.end(), cat("rexec: no such run ", id));
  std::size_t count = 0;
  for (const auto& process : it->second.processes)
    if (process.running) ++count;
  return count;
}

const std::vector<RexecProcess>& Rexec::processes(RunId id) const {
  const auto it = runs_.find(id);
  require_found(it != runs_.end(), cat("rexec: no such run ", id));
  return it->second.processes;
}

}  // namespace rocks::batch
