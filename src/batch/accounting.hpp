// Durable job accounting (DESIGN.md §16.3) — the sacct of the batch layer.
//
// SLURM separates the live scheduler state (squeue) from the accounting
// store (sacct): jobs leave the queue, but their outcome is appended to a
// durable record that survives controller restarts and answers "did my job
// run, where, and how many times was it retried?". This module is that
// store for the Scheduler: an append-only `sched_accounting` table in the
// frontend database, keyed by job id, riding the WAL/snapshot/replication
// machinery like every other table.
//
// Exactly-once contract: a job's terminal transition writes its accounting
// row FIRST and deletes its live `sched_jobs` row second. A crash between
// the two statements leaves a live row whose id already has an accounting
// row; recovery (Scheduler::resume) treats the accounting table as the
// truth and deletes the stale live row instead of finishing the job again.
// The id is the table's PRIMARY KEY, so "ended exactly once" is checkable
// by scanning for duplicate ids — the chaos drill does.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "batch/job.hpp"
#include "sqldb/engine.hpp"

namespace rocks::batch {

/// One finished job, as durably recorded.
struct AccountingRecord {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kComplete;  // kComplete or kCancelled only
  std::string reason;                    // "", "qdel", "retry budget exhausted", ...
  double submitted = 0.0;
  double started = -1.0;  // <0 = never ran (cancelled while queued)
  double ended = 0.0;
  std::size_t nodes_used = 0;
  int retries = 0;
};

/// Aggregate view over the accounting table (cluster-status --jobs, bench).
struct AccountingTotals {
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t duplicate_ids = 0;  // must stay 0: the exactly-once tripwire
  double node_seconds = 0.0;        // sum of (ended - started) * nodes_used
  double total_wait = 0.0;          // sum of (started - submitted) over ran jobs
  std::uint64_t ran = 0;            // records with started >= 0
};

class Accounting {
 public:
  /// Creates the `sched_accounting` table when absent; idempotent. Followers
  /// receive the table via replication, so they never create it themselves.
  static void ensure_schema(sqldb::Database& db);

  /// Appends one terminal record. The caller owns the exactly-once ordering
  /// (append, then delete the live row).
  static void append(sqldb::Database& db, const AccountingRecord& record);

  /// True when `id` already has a terminal record — the recovery-repair
  /// probe (one indexed SELECT).
  [[nodiscard]] static bool has(sqldb::Database& db, JobId id);

  [[nodiscard]] static std::optional<AccountingRecord> lookup(sqldb::Database& db, JobId id);

  /// Full-table aggregate; O(records). Duplicate ids are counted, not
  /// thrown — the chaos drill asserts the count is zero.
  [[nodiscard]] static AccountingTotals totals(sqldb::Database& db);

  /// Largest job id ever recorded (0 when empty) — recovery's id-cursor
  /// floor, since finished jobs have left the live table.
  [[nodiscard]] static JobId max_id(sqldb::Database& db);

  /// sacct-style report of the newest <= `limit` records.
  [[nodiscard]] static std::string report(sqldb::Database& db, std::size_t limit = 20);
};

}  // namespace rocks::batch
