#include "batch/scheduler.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <unordered_set>

#include "cluster/cluster.hpp"
#include "events/bus.hpp"
#include "events/trigger.hpp"
#include "support/crashpoint.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::batch {

using strings::cat;

namespace {

std::string sql_text(std::string_view text) {
  std::string out = "'";
  for (char c : text) {
    out += c;
    if (c == '\'') out += c;  // doubled-quote escape
  }
  out += '\'';
  return out;
}

// Round-trippable REAL literal: a recovered queue must replay the same
// backoff/deadline decisions the pre-crash scheduler made.
std::string sql_real(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

constexpr double kEpsilon = 1e-9;  // shadow-window comparisons

}  // namespace

std::string_view node_life_name(NodeLife life) {
  switch (life) {
    case NodeLife::kIdle: return "idle";
    case NodeLife::kBusy: return "busy";
    case NodeLife::kDraining: return "drain";
    case NodeLife::kDown: return "down";
    case NodeLife::kReinstalling: return "reinstall";
    case NodeLife::kPendingReinstall: return "pending";
  }
  return "?";
}

bool parse_node_life(std::string_view name, NodeLife& out) {
  for (NodeLife life : {NodeLife::kIdle, NodeLife::kBusy, NodeLife::kDraining,
                        NodeLife::kDown, NodeLife::kReinstalling,
                        NodeLife::kPendingReinstall}) {
    if (node_life_name(life) == name) {
      out = life;
      return true;
    }
  }
  return false;
}

Scheduler::Scheduler(sqldb::Database& db, netsim::Simulator& sim, SchedulerConfig config)
    : db_(db), sim_(sim), config_(std::move(config)), rng_(config_.rng_seed) {
  Accounting::ensure_schema(db_);
  if (!db_.has_table("sched_jobs")) {
    db_.execute(
        "CREATE TABLE sched_jobs ("
        "id INT PRIMARY KEY, "
        "name TEXT, want INT, min_want INT, walltime REAL, max_retries INT, "
        "state TEXT, retries INT, submitted REAL, started REAL, "
        "deadline REAL, not_before REAL, assigned TEXT)");
  }
  if (!db_.has_table("sched_nodes")) {
    db_.execute("CREATE TABLE sched_nodes (host TEXT PRIMARY KEY, state TEXT)");
  }
  load();
}

Scheduler::~Scheduler() {
  *alive_ = false;
  if (bus_ != nullptr && bus_subscription_ != 0) bus_->unsubscribe(bus_subscription_);
}

void Scheduler::set_hooks(SchedulerHooks hooks) {
  std::lock_guard lock(mutex_);
  hooks_ = std::move(hooks);
}

void Scheduler::set_event_bus(events::EventBus* bus) {
  std::lock_guard lock(mutex_);
  bus_ = bus;
}

// --- recovery ----------------------------------------------------------------

void Scheduler::load() {
  // The accounting table is the truth about "ended": a live row whose id
  // already has a terminal record is the footprint of a crash between the
  // accounting INSERT and the live-row DELETE — repair by finishing the
  // delete, never by finishing the job twice.
  std::unordered_set<std::uint64_t> ended;
  {
    const sqldb::ResultSet rows = db_.execute("SELECT id FROM sched_accounting");
    ended.reserve(rows.row_count());
    const std::size_t id_col = rows.row_count() ? rows.column_index("id") : 0;
    for (std::size_t i = 0; i < rows.row_count(); ++i) {
      const auto id = static_cast<std::uint64_t>(rows.at(i, id_col).as_int());
      ended.insert(id);
      next_id_ = std::max(next_id_, id + 1);
    }
  }

  const sqldb::ResultSet rows = db_.execute(
      "SELECT id, name, want, min_want, walltime, max_retries, state, retries, "
      "submitted, started, deadline, not_before, assigned FROM sched_jobs");
  const std::size_t n = rows.row_count();
  std::vector<std::size_t> col(13);
  if (n != 0) {
    const char* names[] = {"id",        "name",     "want",      "min_want",
                           "walltime",  "max_retries", "state",  "retries",
                           "submitted", "started",  "deadline",  "not_before",
                           "assigned"};
    for (std::size_t c = 0; c < 13; ++c) col[c] = rows.column_index(names[c]);
  }
  std::vector<JobId> stale;
  for (std::size_t i = 0; i < n; ++i) {
    ActiveJob job;
    job.id = static_cast<JobId>(rows.at(i, col[0]).as_int());
    next_id_ = std::max(next_id_, job.id + 1);
    if (ended.contains(job.id)) {
      stale.push_back(job.id);
      continue;
    }
    job.name = rows.at(i, col[1]).as_text();
    job.want = static_cast<std::size_t>(rows.at(i, col[2]).as_int());
    job.min_want = static_cast<std::size_t>(rows.at(i, col[3]).as_int());
    job.walltime = rows.at(i, col[4]).as_real();
    job.max_retries = static_cast<int>(rows.at(i, col[5]).as_int());
    job.state = rows.at(i, col[6]).as_text() == "R" ? JobState::kRunning : JobState::kQueued;
    job.retries = static_cast<int>(rows.at(i, col[7]).as_int());
    job.submitted = rows.at(i, col[8]).as_real();
    job.started = rows.at(i, col[9]).as_real();
    job.deadline = rows.at(i, col[10]).as_real();
    job.not_before = rows.at(i, col[11]).as_real();
    job.assigned = strings::split_ws(rows.at(i, col[12]).as_text());
    if (job.state == JobState::kQueued) queue_.insert(job.id);
    jobs_.emplace(job.id, std::move(job));
  }
  for (JobId id : stale) {
    db_.execute(cat("DELETE FROM sched_jobs WHERE id = ", id));
    ++stats_.stale_rows_repaired;
  }

  const sqldb::ResultSet node_rows = db_.execute("SELECT host, state FROM sched_nodes");
  for (std::size_t i = 0; i < node_rows.row_count(); ++i) {
    NodeLife life{};
    if (parse_node_life(node_rows.at(i, "state").as_text(), life))
      loaded_nodes_.emplace(node_rows.at(i, "host").as_text(), life);
  }
}

void Scheduler::resume() {
  std::lock_guard lock(mutex_);
  const double now = sim_.now();

  // Pass 1: reconcile running jobs against the registered node set. A job
  // whose every node is still in service picks up where it left off (its
  // completion re-arms at the original deadline, or immediately if that has
  // passed); a job that lost a node requeues under its retry budget.
  std::vector<JobId> running;
  for (auto& [id, job] : jobs_)
    if (job.state == JobState::kRunning) running.push_back(id);
  for (JobId id : running) {
    ActiveJob& job = jobs_.at(id);
    bool whole = !job.assigned.empty();
    for (const std::string& host : job.assigned) {
      const auto it = nodes_.find(host);
      if (it == nodes_.end() ||
          (it->second.life != NodeLife::kIdle && it->second.life != NodeLife::kDraining)) {
        whole = false;
        break;
      }
      if (it->second.job != 0 && it->second.job != id) whole = false;
    }
    if (whole) {
      for (const std::string& host : job.assigned) {
        NodeInfo& info = nodes_.at(host);
        info.job = id;
        if (info.life == NodeLife::kIdle) {
          info.life = NodeLife::kBusy;
          idle_.erase(host);
        }
      }
      job.shadow_entry = running_by_deadline_.emplace(job.deadline, job.assigned.size());
      arm_completion(job);
    } else if (job.retries >= job.max_retries) {
      finish(job, JobState::kCancelled, "retry budget exhausted");
    } else {
      // Not stop_running(): nothing was claimed, there is no completion
      // event, and the nodes it named may not even exist anymore.
      ++job.retries;
      ++job.run_epoch;
      job.state = JobState::kQueued;
      job.started = -1.0;
      job.deadline = -1.0;
      job.not_before = now + config_.requeue_backoff.delay(job.retries, rng_);
      job.assigned.clear();
      persist_requeue(job);
      queue_.insert(job.id);
      publish_job(job, "requeue");
      ++stats_.requeued;
      arm_wake(job.not_before);
    }
  }

  // Pass 2: restart interrupted node lifecycles. A drained node whose job
  // is gone moves on to its reinstall; a node recorded reinstalling or down
  // that is in fact running again rejoins.
  std::vector<std::string> hosts;
  hosts.reserve(nodes_.size());
  for (const auto& [host, info] : nodes_) hosts.push_back(host);
  for (const std::string& host : hosts) {
    NodeInfo& info = nodes_.at(host);
    switch (info.life) {
      case NodeLife::kDraining:
        if (info.job == 0) begin_or_queue_reinstall(host, info);
        break;
      case NodeLife::kReinstalling:
      case NodeLife::kDown:
        if (cluster_ != nullptr) {
          cluster::Node* node = cluster_->node(host);
          if (node != nullptr && node->is_running()) node_up(host);
        }
        break;
      default:
        break;
    }
  }
  promote_pending_reinstalls();
  kick();
}

// --- workload ----------------------------------------------------------------

JobId Scheduler::submit(const JobSpec& spec) {
  return submit_batch(std::vector<JobSpec>{spec});
}

JobId Scheduler::submit_batch(const std::vector<JobSpec>& specs) {
  require_state(!specs.empty(), "submit_batch: empty batch");
  std::lock_guard lock(mutex_);
  const double now = sim_.now();
  const JobId first = next_id_;
  std::vector<const ActiveJob*> batch;
  batch.reserve(specs.size());
  for (const JobSpec& spec : specs) {
    require_state(spec.kind == JobKind::kUser,
                  "Scheduler: reinstalls are node lifecycle requests "
                  "(request_reinstall), not jobs");
    ActiveJob job;
    job.id = next_id_++;
    job.name = spec.name;
    job.want = std::max<std::size_t>(spec.nodes, 1);
    job.min_want = spec.min_nodes == 0 ? job.want : std::min(spec.min_nodes, job.want);
    job.walltime = spec.walltime_seconds;
    job.max_retries = spec.max_retries;
    job.submitted = now;
    const JobId id = job.id;
    auto [it, inserted] = jobs_.emplace(id, std::move(job));
    queue_.insert(id);
    batch.push_back(&it->second);
    ++stats_.submitted;
  }
  persist_submit_rows(batch);
  if (bus_ != nullptr)
    for (const ActiveJob* job : batch) publish_job(*job, "queued");
  kick();
  return first;
}

bool Scheduler::cancel(JobId id) {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  ActiveJob& job = it->second;
  if (job.state == JobState::kRunning) stop_running(job);
  finish(job, JobState::kCancelled, "qdel");
  return true;
}

// --- node lifecycle ----------------------------------------------------------

void Scheduler::register_node(const std::string& host) {
  std::lock_guard lock(mutex_);
  if (nodes_.contains(host)) return;
  NodeInfo info;
  const auto loaded = loaded_nodes_.find(host);
  if (loaded != loaded_nodes_.end()) info.life = loaded->second;
  if (info.life == NodeLife::kReinstalling) ++reinstalling_;
  if (info.life == NodeLife::kPendingReinstall) pending_reinstall_.insert(host);
  if (info.life == NodeLife::kIdle) idle_.insert(host);
  nodes_.emplace(host, info);
}

void Scheduler::node_down(const std::string& host) {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find(host);
  if (it == nodes_.end()) return;
  NodeInfo& info = it->second;
  if (info.life == NodeLife::kDown) return;
  // A reinstalling node going dark IS the reinstall (shoot = power off +
  // on), not a failure; a parked one will be power-cycled by its wave
  // anyway. Both rejoin through node_up, so don't demote them to kDown.
  if (info.life == NodeLife::kReinstalling || info.life == NodeLife::kPendingReinstall)
    return;
  const JobId owner = info.job;
  info.job = 0;
  idle_.erase(host);
  set_life(host, info, NodeLife::kDown);
  publish_node(host, "down");
  if (owner != 0) {
    const auto jit = jobs_.find(owner);
    if (jit != jobs_.end() && jit->second.state == JobState::kRunning) {
      ActiveJob& job = jit->second;
      if (job.retries >= job.max_retries) {
        stop_running(job);
        finish(job, JobState::kCancelled, "retry budget exhausted");
      } else {
        requeue(job);
      }
    }
  }
  kick();
}

void Scheduler::node_up(const std::string& host) {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find(host);
  if (it == nodes_.end()) {
    // A node we never met joined service: adopt it.
    NodeInfo info;
    nodes_.emplace(host, info);
    idle_.insert(host);
    kick();
    return;
  }
  NodeInfo& info = it->second;
  switch (info.life) {
    case NodeLife::kReinstalling:
      ++stats_.reinstalls_finished;
      [[fallthrough]];
    case NodeLife::kDown:
      set_life(host, info, NodeLife::kIdle);
      idle_.insert(host);
      publish_node(host, "rejoin");
      promote_pending_reinstalls();
      kick();
      break;
    default:
      break;  // busy / idle / draining / pending: nothing to do
  }
}

void Scheduler::request_reinstall(const std::string& host) {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find(host);
  if (it == nodes_.end()) return;
  NodeInfo& info = it->second;
  switch (info.life) {
    case NodeLife::kBusy:
      // Drain, never preempt: the running job keeps its nodes; the
      // reinstall begins when it finishes (release_assigned advances it).
      set_life(host, info, NodeLife::kDraining);
      publish_node(host, "drain");
      ++stats_.drains_started;
      break;
    case NodeLife::kIdle:
      idle_.erase(host);
      begin_or_queue_reinstall(host, info);
      break;
    default:
      break;  // already draining / down / reinstalling / pending
  }
}

void Scheduler::request_reinstall_all() {
  std::vector<std::string> hosts;
  {
    std::lock_guard lock(mutex_);
    hosts.reserve(nodes_.size());
    for (const auto& [host, info] : nodes_) hosts.push_back(host);
  }
  for (const std::string& host : hosts) request_reinstall(host);
}

void Scheduler::health_report(std::size_t alive, std::size_t total) {
  std::lock_guard lock(mutex_);
  healthy_alive_ = alive;
  healthy_total_ = total;
  if (health_gate_open()) {
    promote_pending_reinstalls();
    kick();
  }
}

bool Scheduler::health_gate_open() const {
  if (config_.min_healthy_fraction <= 0.0 || healthy_total_ == 0) return true;
  return static_cast<double>(healthy_alive_) >=
         config_.min_healthy_fraction * static_cast<double>(healthy_total_);
}

void Scheduler::begin_or_queue_reinstall(const std::string& host, NodeInfo& info) {
  if (reinstalling_ < config_.reinstall_wave && health_gate_open()) {
    begin_reinstall(host, info);
  } else {
    set_life(host, info, NodeLife::kPendingReinstall);
    publish_node(host, "pending");
  }
}

void Scheduler::begin_reinstall(const std::string& host, NodeInfo& info) {
  set_life(host, info, NodeLife::kReinstalling);
  publish_node(host, "reinstall");
  ++stats_.reinstalls_started;
  if (hooks_.reinstall) hooks_.reinstall(host);
}

void Scheduler::promote_pending_reinstalls() {
  while (reinstalling_ < config_.reinstall_wave && health_gate_open() &&
         !pending_reinstall_.empty()) {
    const std::string host = *pending_reinstall_.begin();
    begin_reinstall(host, nodes_.at(host));
  }
}

void Scheduler::set_life(const std::string& host, NodeInfo& info, NodeLife life) {
  if (info.life == life) return;
  const auto persisted = [](NodeLife l) {
    return l != NodeLife::kIdle && l != NodeLife::kBusy;
  };
  if (info.life == NodeLife::kReinstalling) --reinstalling_;
  if (life == NodeLife::kReinstalling) ++reinstalling_;
  if (info.life == NodeLife::kPendingReinstall) pending_reinstall_.erase(host);
  if (life == NodeLife::kPendingReinstall) pending_reinstall_.insert(host);
  const bool was = persisted(info.life);
  const bool is = persisted(life);
  info.life = life;
  if (was && is)
    persist_node(host, life, /*existed=*/true);
  else if (!was && is)
    persist_node(host, life, /*existed=*/false);
  else if (was && !is)
    persist_node_delete(host);
}

// --- policy ------------------------------------------------------------------

void Scheduler::kick() {
  if (cycle_pending_) return;
  cycle_pending_ = true;
  sim_.schedule(0.0, [this, alive = alive_] {
    if (!*alive) return;
    std::lock_guard lock(mutex_);
    cycle_pending_ = false;
    schedule_cycle();
  });
}

void Scheduler::schedule_now() {
  std::lock_guard lock(mutex_);
  schedule_cycle();
}

void Scheduler::arm_wake(double at) {
  const double now = sim_.now();
  if (at <= now) {
    kick();
    return;
  }
  if (wake_event_ != 0 && wake_time_ >= 0.0 && wake_time_ <= at) return;
  if (wake_event_ != 0) sim_.cancel(wake_event_);
  wake_time_ = at;
  wake_event_ = sim_.schedule_at(at, [this, alive = alive_] {
    if (!*alive) return;
    std::lock_guard lock(mutex_);
    wake_event_ = 0;
    wake_time_ = -1.0;
    schedule_cycle();
  });
}

void Scheduler::schedule_cycle() {
  ++stats_.cycles;
  const double now = sim_.now();

  // Phase 1: start heads in FIFO order while they fit; past shrink_after a
  // moldable head starts on what is idle. Jobs inside a requeue-backoff
  // window are not contenders yet (a wake is armed for them).
  JobId head_id = 0;
  for (;;) {
    bool started = false;
    head_id = 0;
    for (JobId id : queue_) {
      ActiveJob& job = jobs_.at(id);
      if (job.not_before > now) {
        arm_wake(job.not_before);
        continue;
      }
      if (idle_.size() >= job.want) {
        start_job(job, job.want, /*backfill=*/false);
        started = true;
        break;  // queue_ changed: rescan from the front
      }
      if (job.min_want < job.want) {
        if (now - job.submitted >= config_.shrink_after && idle_.size() >= job.min_want) {
          start_job(job, std::min(idle_.size(), job.want), /*backfill=*/false);
          started = true;
          break;
        }
        arm_wake(job.submitted + config_.shrink_after);
      }
      head_id = id;  // the blocked head: phase 2 backfills behind it
      break;
    }
    if (!started) break;
  }
  if (head_id == 0 || idle_.empty()) return;

  // Phase 2: EASY backfill. The blocked head holds a shadow reservation at
  // the earliest time enough nodes will have freed; later jobs start now
  // only if they end before the shadow or fit in the nodes the head will
  // leave over ("extra") — either way the head's start time cannot move,
  // which is the no-starvation guarantee. Past starvation_bound the valve
  // closes entirely and freed nodes accumulate for the head alone.
  const ActiveJob& head = jobs_.at(head_id);
  if (now - head.submitted >= config_.starvation_bound) return;
  double shadow = std::numeric_limits<double>::infinity();
  std::size_t extra = 0;
  {
    std::size_t avail = idle_.size();
    for (const auto& [deadline, count] : running_by_deadline_) {
      avail += count;
      if (avail >= head.want) {
        shadow = deadline;
        extra = avail - head.want;
        break;
      }
    }
    // shadow stays infinite when even a fully drained cluster cannot seat
    // the head (it needs nodes that do not exist yet): backfill freely —
    // nothing can delay a start that cannot happen.
  }
  std::size_t idle_left = idle_.size();
  std::size_t examined = 0;
  std::vector<JobId> starts;
  for (auto it = queue_.upper_bound(head_id);
       it != queue_.end() && examined < config_.backfill_depth && idle_left > 0; ++it) {
    ++examined;
    ActiveJob& cand = jobs_.at(*it);
    if (cand.not_before > now) {
      arm_wake(cand.not_before);
      continue;
    }
    if (cand.want > idle_left) continue;
    if (now + cand.walltime > shadow + kEpsilon) {
      if (cand.want > extra) continue;
      extra -= cand.want;
    }
    idle_left -= cand.want;
    starts.push_back(*it);
  }
  for (JobId id : starts) start_job(jobs_.at(id), jobs_.at(id).want, /*backfill=*/true);
}

void Scheduler::start_job(ActiveJob& job, std::size_t width, bool backfill) {
  const double now = sim_.now();
  job.assigned.clear();
  job.assigned.reserve(width);
  auto it = idle_.begin();
  for (std::size_t i = 0; i < width; ++i) {
    job.assigned.push_back(*it);
    it = idle_.erase(it);
  }
  for (const std::string& host : job.assigned) {
    NodeInfo& info = nodes_.at(host);
    info.life = NodeLife::kBusy;  // derivable: never persisted
    info.job = job.id;
  }
  job.state = JobState::kRunning;
  job.started = now;
  job.deadline = now + job.walltime;
  ++job.run_epoch;
  queue_.erase(job.id);
  job.shadow_entry = running_by_deadline_.emplace(job.deadline, width);
  persist_start(job);
  arm_completion(job);
  if (hooks_.launch)
    for (const std::string& host : job.assigned) hooks_.launch(host, job.id);
  publish_job(job, "start");
  ++stats_.started;
  if (backfill) ++stats_.backfilled;
  if (width < job.want) ++stats_.shrunk;
}

void Scheduler::arm_completion(ActiveJob& job) {
  const double delay = std::max(0.0, job.deadline - sim_.now());
  job.completion = sim_.schedule(delay, [this, alive = alive_, id = job.id,
                                         epoch = job.run_epoch] {
    if (!*alive) return;
    on_completion(id, epoch);
  });
}

void Scheduler::on_completion(JobId id, std::uint64_t run_epoch) {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  ActiveJob& job = it->second;
  if (job.state != JobState::kRunning || job.run_epoch != run_epoch) return;
  job.completion = 0;
  running_by_deadline_.erase(job.shadow_entry);
  release_assigned(job);
  finish(job, JobState::kComplete, "");
}

void Scheduler::stop_running(ActiveJob& job) {
  sim_.cancel(job.completion);
  job.completion = 0;
  ++job.run_epoch;
  running_by_deadline_.erase(job.shadow_entry);
  release_assigned(job);
}

void Scheduler::release_assigned(ActiveJob& job) {
  for (const std::string& host : job.assigned) {
    const auto it = nodes_.find(host);
    if (it == nodes_.end() || it->second.job != job.id) continue;  // lost node
    NodeInfo& info = it->second;
    info.job = 0;
    if (hooks_.release) hooks_.release(host, job.id);
    if (info.life == NodeLife::kBusy) {
      info.life = NodeLife::kIdle;
      idle_.insert(host);
    } else if (info.life == NodeLife::kDraining) {
      begin_or_queue_reinstall(host, info);  // the drain completes
    }
  }
}

void Scheduler::requeue(ActiveJob& job) {
  stop_running(job);
  ++job.retries;
  job.state = JobState::kQueued;
  job.started = -1.0;
  job.deadline = -1.0;
  job.not_before = sim_.now() + config_.requeue_backoff.delay(job.retries, rng_);
  job.assigned.clear();
  persist_requeue(job);
  queue_.insert(job.id);
  publish_job(job, "requeue");
  ++stats_.requeued;
  arm_wake(job.not_before);
}

void Scheduler::finish(ActiveJob& job, JobState state, const std::string& reason) {
  AccountingRecord record;
  record.id = job.id;
  record.name = job.name;
  record.state = state;
  record.reason = reason;
  record.submitted = job.submitted;
  record.started = job.started;
  record.ended = sim_.now();
  record.nodes_used = job.assigned.size();
  record.retries = job.retries;
  Accounting::append(db_, record);
  // A crash here leaves both the accounting row and the live row; recovery
  // repairs by deleting the live row (load()), never by re-finishing.
  support::crash_point("sched.finish.between");
  db_.execute(cat("DELETE FROM sched_jobs WHERE id = ", job.id));
  publish_job(job, state == JobState::kComplete ? "end" : "cancel");
  if (state == JobState::kComplete)
    ++stats_.completed;
  else
    ++stats_.cancelled;
  queue_.erase(job.id);
  jobs_.erase(job.id);
  kick();
}

// --- persistence -------------------------------------------------------------

void Scheduler::persist_submit_rows(const std::vector<const ActiveJob*>& jobs) {
  // One multi-row INSERT per chunk: the 1M-job drill pays ~2k statement
  // parses and WAL appends for its submissions instead of 1M.
  constexpr std::size_t kChunk = 512;
  for (std::size_t base = 0; base < jobs.size(); base += kChunk) {
    const std::size_t end = std::min(jobs.size(), base + kChunk);
    std::string sql =
        "INSERT INTO sched_jobs (id, name, want, min_want, walltime, "
        "max_retries, state, retries, submitted, started, deadline, "
        "not_before, assigned) VALUES ";
    sql.reserve(160 * (end - base));
    for (std::size_t i = base; i < end; ++i) {
      const ActiveJob& job = *jobs[i];
      if (i != base) sql += ", ";
      sql += cat("(", job.id, ", ", sql_text(job.name), ", ", job.want, ", ",
                 job.min_want, ", ", sql_real(job.walltime), ", ", job.max_retries,
                 ", 'Q', ", job.retries, ", ", sql_real(job.submitted),
                 ", -1.0, -1.0, 0.0, '')");
    }
    db_.execute(sql);
  }
}

void Scheduler::persist_start(const ActiveJob& job) {
  db_.execute(cat("UPDATE sched_jobs SET state = 'R', started = ",
                  sql_real(job.started), ", deadline = ", sql_real(job.deadline),
                  ", assigned = ", sql_text(strings::join(job.assigned, " ")),
                  " WHERE id = ", job.id));
}

void Scheduler::persist_requeue(const ActiveJob& job) {
  db_.execute(cat("UPDATE sched_jobs SET state = 'Q', retries = ", job.retries,
                  ", not_before = ", sql_real(job.not_before),
                  ", started = -1.0, deadline = -1.0, assigned = '' WHERE id = ",
                  job.id));
}

void Scheduler::persist_node(const std::string& host, NodeLife life, bool existed) {
  if (existed) {
    db_.execute(cat("UPDATE sched_nodes SET state = ", sql_text(node_life_name(life)),
                    " WHERE host = ", sql_text(host)));
  } else {
    db_.execute(cat("INSERT INTO sched_nodes (host, state) VALUES (", sql_text(host),
                    ", ", sql_text(node_life_name(life)), ")"));
  }
}

void Scheduler::persist_node_delete(const std::string& host) {
  db_.execute(cat("DELETE FROM sched_nodes WHERE host = ", sql_text(host)));
}

// --- driving -----------------------------------------------------------------

void Scheduler::drain(double max_seconds) {
  {
    std::lock_guard lock(mutex_);
    schedule_cycle();
  }
  const double deadline = sim_.now() + max_seconds;
  for (;;) {
    {
      std::lock_guard lock(mutex_);
      if (jobs_.empty()) return;
    }
    if (sim_.now() >= deadline) {
      // Horizon reached: whatever is still queued is not going to start
      // (an attached cluster's recurring events would keep step() true
      // forever). Running jobs keep draining below.
      std::lock_guard lock(mutex_);
      std::vector<JobId> stuck(queue_.begin(), queue_.end());
      for (JobId id : stuck) {
        const auto it = jobs_.find(id);
        if (it != jobs_.end()) finish(it->second, JobState::kCancelled, "unschedulable");
      }
      if (jobs_.empty()) return;
    }
    if (!sim_.step()) {
      std::lock_guard lock(mutex_);
      // Simulator idle: no completion, wake, rejoin, or retry is pending,
      // so every remaining queued job is unschedulable — cancel it into the
      // accounting table instead of throwing (the PbsServer failure mode).
      std::vector<JobId> stuck(queue_.begin(), queue_.end());
      for (JobId id : stuck) {
        const auto it = jobs_.find(id);
        if (it != jobs_.end()) finish(it->second, JobState::kCancelled, "unschedulable");
      }
      // finish() kicks a zero-delay cycle, so the simulator has an event
      // again; if jobs remain running their completions are pending too.
      if (jobs_.empty()) return;
      bool running_left = false;
      for (const auto& [id, job] : jobs_)
        if (job.state == JobState::kRunning) running_left = true;
      require_state(running_left, "scheduler drain: queued jobs survived cancellation");
    }
  }
}

// --- cluster wiring ----------------------------------------------------------

void Scheduler::attach(cluster::Cluster& cluster) {
  require_state(&cluster.sim() == &sim_,
                "Scheduler::attach: cluster must share the scheduler's simulator");
  {
    std::lock_guard lock(mutex_);
    cluster_ = &cluster;
    bus_ = &cluster.events();
    cluster::Cluster* cl = &cluster;
    hooks_.launch = [cl](const std::string& host, JobId id) {
      cluster::Node* node = cl->node(host);
      if (node != nullptr && node->is_running()) node->launch_process(cat("job:", id));
    };
    hooks_.release = [cl](const std::string& host, JobId id) {
      cluster::Node* node = cl->node(host);
      if (node != nullptr && node->is_running()) node->kill_processes(cat("job:", id));
    };
    hooks_.reinstall = [cl](const std::string& host) { cl->request_reinstall(host); };
  }
  for (cluster::Node* node : cluster.nodes()) {
    if (!strings::starts_with(node->hostname(), "compute-")) continue;
    register_node(node->hostname());
    if (!node->is_running()) node_down(node->hostname());
  }
  // Fast path: follow installer transitions straight off the bus. The
  // callback runs on a publisher's stack (possibly the node's own state
  // observer), so the scheduler reaction is deferred one simulator step.
  bus_subscription_ = bus_->subscribe(
      events::EventType::kNodeState, [this, alive = alive_](const events::Event& event) {
        if (!*alive) return;
        const bool up = event.detail == "running";
        const bool down = event.detail == "off" || event.detail == "failed";
        if (!up && !down) return;
        sim_.schedule(0.0, [this, alive, host = event.subject, up] {
          if (!*alive) return;
          if (up)
            node_up(host);
          else
            node_down(host);
        });
      });
  // Policy path: durable triggers, so the requeue-on-node-down and
  // health-gated upgrade-wave rules survive crashes and replicate like any
  // other row. add() is skipped when a recovered database already carries
  // the rows; the actions re-register every attach (process-local).
  events::TriggerEngine& triggers = cluster.triggers();
  triggers.register_action(
      "sched-node-down", [this, alive = alive_](const events::Event& event, const std::string&) {
        if (!*alive) return;
        sim_.schedule(0.0, [this, alive, host = event.subject] {
          if (!*alive) return;
          node_down(host);
        });
      });
  triggers.register_action(
      "sched-health", [this, alive = alive_](const events::Event& event, const std::string&) {
        if (!*alive) return;
        sim_.schedule(0.0, [this, alive, count = event.value] {
          if (!*alive) return;
          health_report(static_cast<std::size_t>(count), registered_nodes());
        });
      });
  std::set<std::string> existing;
  for (const events::TriggerStatus& status : triggers.list()) existing.insert(status.spec.name);
  if (!existing.contains("sched-node-down")) {
    events::TriggerSpec spec;
    spec.name = "sched-node-down";
    spec.event = events::EventType::kNodeDown;
    spec.action = "sched-node-down";
    triggers.add(spec);
  }
  if (!existing.contains("sched-health-wave")) {
    events::TriggerSpec spec;
    spec.name = "sched-health-wave";
    spec.event = events::EventType::kHealthSummary;
    spec.action = "sched-health";
    triggers.add(spec);
  }
}

// --- observability -----------------------------------------------------------

std::size_t Scheduler::running_count() const {
  std::lock_guard lock(mutex_);
  return jobs_.size() - queue_.size();
}

std::optional<JobView> Scheduler::job(JobId id) const {
  std::lock_guard lock(mutex_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const ActiveJob& job = it->second;
  JobView view;
  view.id = job.id;
  view.name = job.name;
  view.state = job.state;
  view.want = job.want;
  view.min_want = job.min_want;
  view.retries = job.retries;
  view.submitted = job.submitted;
  view.started = job.started;
  view.deadline = job.deadline;
  view.assigned = job.assigned;
  return view;
}

std::optional<NodeLife> Scheduler::node_life(const std::string& host) const {
  std::lock_guard lock(mutex_);
  const auto it = nodes_.find(host);
  if (it == nodes_.end()) return std::nullopt;
  return it->second.life;
}

std::string Scheduler::qstat(std::size_t limit) const {
  std::lock_guard lock(mutex_);
  AsciiTable table({"Job", "Name", "State", "Want", "Retries", "Submitted", "Nodes"});
  std::size_t shown = 0;
  for (auto it = jobs_.rbegin(); it != jobs_.rend() && shown < limit; ++it, ++shown) {
    const ActiveJob& job = it->second;
    table.add_row({std::to_string(job.id), job.name,
                   std::string(job_state_name(job.state)), std::to_string(job.want),
                   std::to_string(job.retries), fixed(job.submitted, 0),
                   job.assigned.empty() ? "-" : strings::join(job.assigned, " ")});
  }
  return table.render();
}

void Scheduler::publish_job(const ActiveJob& job, std::string_view detail) {
  if (bus_ == nullptr) return;
  bus_->publish(events::Event{events::EventType::kJob, job.name, std::string(detail),
                              static_cast<double>(job.id), 0.0, 0});
}

void Scheduler::publish_node(const std::string& host, std::string_view detail) {
  if (bus_ == nullptr) return;
  bus_->publish(events::Event{events::EventType::kNodeAlloc, host, std::string(detail),
                              0.0, 0.0, 0});
}

}  // namespace rocks::batch
