// REXEC — transparent remote execution (paper Section 4.1).
//
// "REXEC provides transparent, secure remote execution of parallel and
// sequential jobs. It has a sophisticated signal handling system which
// provides remote forwarding of signals. REXEC also redirects stdin,
// stdout and stderr from each parallel process and it propagates a local
// environment including environment variables, user ID, group ID and
// current working directory."
//
// The simulation honours each of those properties: launches place a
// process on every reachable node with the caller's environment snapshot,
// stdout lines stream back tagged by node, and forward_signal() delivers a
// signal to every remote process of a run.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"

namespace rocks::batch {

using RunId = std::uint64_t;

/// The caller-side context REXEC propagates to every remote process.
struct RexecContext {
  int uid = 500;
  int gid = 500;
  std::string cwd = "/export/home/user";
  std::map<std::string, std::string> env;
};

struct RexecProcess {
  std::string node;
  bool running = false;
  int exit_code = -1;                  // 0 natural, 128+sig when signalled
  std::vector<std::string> stdout_lines;
};

class Rexec {
 public:
  explicit Rexec(cluster::Cluster& cluster) : cluster_(cluster) {}

  /// Starts `command` on every named host that is up; each process runs for
  /// `duration_seconds` of simulated time unless signalled first. Hosts
  /// that are down are recorded with exit_code -1 and never started.
  RunId launch(const std::vector<std::string>& hosts, const std::string& command,
               double duration_seconds, RexecContext context = {});

  /// Remote signal forwarding: delivers `signo` to every still-running
  /// process of the run. Returns how many processes received it.
  std::size_t forward_signal(RunId id, int signo);

  [[nodiscard]] std::size_t running_count(RunId id) const;
  /// Per-process records (redirected stdout included).
  [[nodiscard]] const std::vector<RexecProcess>& processes(RunId id) const;

 private:
  struct Run {
    std::string command;
    RexecContext context;
    std::vector<RexecProcess> processes;
  };

  [[nodiscard]] static std::string process_tag(RunId id);

  cluster::Cluster& cluster_;
  std::map<RunId, Run> runs_;
  RunId next_id_ = 1;
};

}  // namespace rocks::batch
