#include "batch/mpirun.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::batch {

std::vector<std::string> Mpirun::machinefile(int slots_per_node) const {
  std::vector<std::string> slots;
  for (cluster::Node* node : cluster_.nodes()) {
    if (!node->is_running()) continue;
    if (!strings::starts_with(node->hostname(), "compute-")) continue;
    for (int s = 0; s < slots_per_node; ++s) slots.push_back(node->hostname());
  }
  return slots;
}

MpirunLaunch Mpirun::run(int np, const std::string& program, double duration_seconds,
                         int slots_per_node, RexecContext context) {
  require_state(np > 0, "mpirun: -np must be positive");
  auto slots = machinefile(slots_per_node);
  require_state(static_cast<std::size_t>(np) <= slots.size(),
                strings::cat("mpirun: need ", np, " slots but only ", slots.size(),
                             " are up"));
  slots.resize(static_cast<std::size_t>(np));

  MpirunLaunch launch;
  launch.machinefile = slots;
  context.env["MPIRUN_NPROCS"] = std::to_string(np);
  launch.run = rexec_.launch(slots, strings::cat(program, " (rank launch)"),
                             duration_seconds, std::move(context));
  return launch;
}

}  // namespace rocks::batch
