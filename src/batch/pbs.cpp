#include "batch/pbs.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::batch {

using cluster::Node;
using strings::cat;

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "Q";
    case JobState::kRunning: return "R";
    case JobState::kComplete: return "C";
    case JobState::kCancelled: return "X";
  }
  return "?";
}

PbsServer::PbsServer(cluster::Cluster& cluster) : cluster_(cluster) {}

JobId PbsServer::submit(JobSpec spec) {
  const JobId id = next_id_++;
  JobRecord record;
  record.id = id;
  record.spec = std::move(spec);
  record.submitted_at = cluster_.sim().now();
  jobs_.emplace(id, std::move(record));
  queue_.push_back(id);
  return id;
}

bool PbsServer::cancel(JobId id) {
  const auto it = std::find(queue_.begin(), queue_.end(), id);
  if (it != queue_.end()) {
    queue_.erase(it);
    jobs_.at(id).state = JobState::kCancelled;
    jobs_.at(id).completed_at = cluster_.sim().now();
    return true;
  }
  // qdel of a running user job: kill its processes, free its nodes, and let
  // the (now stale) walltime event find a non-running job and do nothing.
  const auto jit = jobs_.find(id);
  if (jit == jobs_.end()) return false;
  JobRecord& record = jit->second;
  if (record.state != JobState::kRunning || record.spec.kind != JobKind::kUser) return false;
  for (const auto& hostname : record.assigned_nodes) {
    Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) node->kill_processes(cat("job:", id));
    busy_nodes_.erase(hostname);
  }
  record.state = JobState::kCancelled;
  record.completed_at = cluster_.sim().now();
  schedule();
  return true;
}

bool PbsServer::node_busy(const std::string& hostname) const {
  return busy_nodes_.contains(hostname);
}

std::vector<Node*> PbsServer::free_nodes() const {
  std::vector<Node*> out;
  for (Node* node : cluster_.nodes()) {
    if (!node->is_running()) continue;
    if (!strings::starts_with(node->hostname(), "compute-")) continue;
    if (node_busy(node->hostname())) continue;
    out.push_back(node);
  }
  return out;
}

void PbsServer::start_user_job(JobRecord& record, std::vector<Node*> nodes) {
  record.state = JobState::kRunning;
  record.started_at = cluster_.sim().now();
  for (Node* node : nodes) {
    record.assigned_nodes.push_back(node->hostname());
    busy_nodes_.insert(node->hostname());
    node->launch_process(cat("job:", record.id));
  }
  const JobId id = record.id;
  cluster_.sim().schedule(record.spec.walltime_seconds, [this, id] {
    JobRecord& job = jobs_.at(id);
    if (job.state != JobState::kRunning) return;  // cancelled mid-run
    for (const auto& hostname : job.assigned_nodes) {
      Node* node = cluster_.node(hostname);
      if (node != nullptr && node->is_running()) node->kill_processes(cat("job:", id));
      busy_nodes_.erase(hostname);
    }
    finish_job(job);
  });
}

void PbsServer::start_reinstall_on(JobRecord& record, Node* node) {
  const JobId id = record.id;
  const std::string hostname = node->hostname();
  busy_nodes_.insert(hostname);
  reinstall_pending_.at(id).erase(hostname);
  node->on_running([this, id, hostname] {
    Node* done = cluster_.node(hostname);
    if (done != nullptr) done->on_running(nullptr);
    busy_nodes_.erase(hostname);
    JobRecord& job = jobs_.at(id);
    if (--reinstall_remaining_.at(id) == 0) {
      finish_job(job);
    } else {
      schedule();
    }
  });
  node->shoot();
}

void PbsServer::finish_job(JobRecord& record) {
  record.state = JobState::kComplete;
  record.completed_at = cluster_.sim().now();
  reinstall_remaining_.erase(record.id);
  reinstall_pending_.erase(record.id);
  schedule();
}

void PbsServer::schedule() {
  // Walk the queue FIFO; a job that cannot start is skipped (simple
  // backfill — later jobs may run on nodes the head job cannot use yet).
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = queue_.begin(); it != queue_.end();) {
      JobRecord& record = jobs_.at(*it);
      if (record.spec.kind == JobKind::kUser) {
        auto free = free_nodes();
        if (free.size() >= record.spec.nodes) {
          free.resize(record.spec.nodes);
          start_user_job(record, std::move(free));
          it = queue_.erase(it);
          progressed = true;
          continue;
        }
        ++it;
        continue;
      }
      // Reinstall job: claim its target set on first touch, then shoot
      // whatever is currently free; it leaves the queue immediately and
      // drains the rest as user jobs release nodes.
      std::set<std::string> targets;
      for (Node* node : cluster_.nodes()) {
        if (!strings::starts_with(node->hostname(), "compute-")) continue;
        targets.insert(node->hostname());
        if (record.spec.nodes != 0 && targets.size() == record.spec.nodes) break;
      }
      record.state = JobState::kRunning;
      record.started_at = cluster_.sim().now();
      record.assigned_nodes.assign(targets.begin(), targets.end());
      reinstall_remaining_[record.id] = targets.size();
      reinstall_pending_[record.id] = std::move(targets);
      it = queue_.erase(it);
      progressed = true;
    }
    // Shoot pending reinstall targets that are now free.
    for (auto& [id, pending] : reinstall_pending_) {
      JobRecord& record = jobs_.at(id);
      const auto snapshot = pending;  // start_reinstall_on mutates pending
      for (const auto& hostname : snapshot) {
        Node* node = cluster_.node(hostname);
        if (node == nullptr) continue;
        if (!node->is_running() || node_busy(hostname)) continue;
        start_reinstall_on(record, node);
        progressed = true;
      }
    }
  }
}

bool PbsServer::reap_vanished_nodes() {
  // Only callable with the simulator idle: a reinstall-job node that is not
  // running now has no event pending that could ever bring it back (failed
  // installer, hardware death, external power-off), so drop it from the job
  // instead of waiting forever.
  bool reaped = false;
  std::vector<JobId> ids;
  for (const auto& [id, remaining] : reinstall_remaining_) ids.push_back(id);
  for (JobId id : ids) {
    JobRecord& record = jobs_.at(id);
    const std::vector<std::string> assigned = record.assigned_nodes;
    for (const auto& hostname : assigned) {
      Node* node = cluster_.node(hostname);
      if (node != nullptr && node->is_running()) continue;
      bool outstanding = reinstall_pending_.at(id).erase(hostname) > 0;  // never shot
      if (!outstanding && busy_nodes_.contains(hostname)) {
        outstanding = true;  // shot, never came back
        busy_nodes_.erase(hostname);
        if (node != nullptr) node->on_running(nullptr);
      }
      if (!outstanding) continue;
      reaped = true;
      if (--reinstall_remaining_.at(id) == 0) {
        finish_job(record);  // erases this job's reinstall bookkeeping
        break;
      }
    }
  }
  return reaped;
}

void PbsServer::drain() {
  schedule();
  while (true) {
    bool outstanding = false;
    for (const auto& [id, record] : jobs_)
      if (record.state == JobState::kQueued || record.state == JobState::kRunning)
        outstanding = true;
    if (!outstanding) return;
    if (cluster_.sim().step()) continue;
    // Simulator idle with work outstanding: nodes vanished mid-job. Reap
    // them and reschedule; if nothing was reapable, the remaining queued
    // jobs can never start — cancel them rather than abort the simulation.
    if (!reap_vanished_nodes()) {
      bool cancelled_any = false;
      for (auto it = queue_.begin(); it != queue_.end(); it = queue_.erase(it)) {
        JobRecord& record = jobs_.at(*it);
        record.state = JobState::kCancelled;
        record.completed_at = cluster_.sim().now();
        cancelled_any = true;
      }
      if (!cancelled_any)
        throw StateError("PBS drain: jobs outstanding but no pending events");
    }
    schedule();
  }
}

const JobRecord& PbsServer::job(JobId id) const {
  const auto it = jobs_.find(id);
  require_found(it != jobs_.end(), cat("no such job: ", id));
  return it->second;
}

std::vector<const JobRecord*> PbsServer::jobs() const {
  std::vector<const JobRecord*> out;
  for (const auto& [id, record] : jobs_) out.push_back(&record);
  return out;
}

std::size_t PbsServer::queued_count() const { return queue_.size(); }

std::size_t PbsServer::running_count() const {
  std::size_t count = 0;
  for (const auto& [id, record] : jobs_)
    if (record.state == JobState::kRunning) ++count;
  return count;
}

std::string PbsServer::qstat() const {
  AsciiTable table({"Job", "Name", "Kind", "State", "Nodes", "Submitted", "Runtime"});
  for (const auto& [id, record] : jobs_) {
    const double runtime = record.state == JobState::kComplete
                               ? record.completed_at - record.started_at
                               : (record.started_at >= 0
                                      ? cluster_.sim().now() - record.started_at
                                      : 0.0);
    table.add_row({std::to_string(id), record.spec.name,
                   record.spec.kind == JobKind::kUser ? "user" : "reinstall",
                   std::string(job_state_name(record.state)),
                   std::to_string(record.assigned_nodes.empty() ? record.spec.nodes
                                                                : record.assigned_nodes.size()),
                   fixed(record.submitted_at, 0), fixed(runtime, 0)});
  }
  return table.render();
}

}  // namespace rocks::batch
