// The fault-tolerant batch scheduler (DESIGN.md §16).
//
// PbsServer (pbs.{hpp,cpp}) proved the paper's Section 4.1 workflow — FIFO
// + backfill over live compute nodes, reinstall jobs draining one node at a
// time — but it is a toy: every job record lives in process memory, so a
// frontend crash loses the queue, and a node dying mid-job strands drain()
// ("jobs outstanding but no pending events"). The CERN and BNL large-farm
// reports (PAPERS.md) both say the hard part of operating 1000+ nodes is
// keeping the batch system correct *through* node churn. This class is the
// production-shaped replacement:
//
//   Durability. Every job and exceptional-node state transition is a SQL
//   statement against the frontend Database, so the queue rides the WAL,
//   group commit, zero-pause snapshots, crash recovery (§11: recovered
//   state byte-identical to shadow replay), and WAL-shipping replication
//   (§12: a promoted follower resumes scheduling from the exact committed
//   prefix) with no scheduler-specific persistence code. Three tables:
//     sched_jobs        live jobs only (queued + running); finished jobs
//                       leave the table, bounding its size by in-flight work
//     sched_accounting  append-only terminal records, PK = job id — the
//                       exactly-once ledger (see accounting.hpp)
//     sched_nodes       nodes in an exceptional lifecycle state (draining /
//                       down / reinstalling / pending-reinstall); healthy
//                       idle-vs-allocated is derivable from sched_jobs
//
//   Node lifecycle. allocate -> drain -> down -> reinstall -> rejoin is an
//   explicit state machine. kNodeDown (from the health tree, via a durable
//   trigger) or a kNodeState off/failed transition requeues the victim's
//   job with a per-job retry budget and support::BackoffPolicy spacing; a
//   reinstall request *drains* a busy node (the job keeps running; the
//   reinstall starts when it ends) instead of preempting — Section 5's "as
//   not to disturb any running applications" — and concurrent reinstalls
//   are capped per wave, gated on the kHealthSummary alive fraction so an
//   upgrade cannot take the cluster below a health floor.
//
//   Policy. EASY backfill: the head-of-queue job gets a shadow reservation
//   (earliest time enough nodes will have freed); later jobs may start now
//   only if they cannot delay that reservation. Two aging valves keep the
//   head from starving behind churn: past `starvation_bound` seconds of
//   head age backfill stops entirely (strict FIFO), and past `shrink_after`
//   a moldable job (min_nodes > 0) starts shrunk on what is idle rather
//   than blocking the queue.
//
// Deployment modes: standalone over a bare Database + Simulator (benches,
// replication tests — the caller drives node_up/node_down), or attach()ed
// to a live cluster::Cluster, which wires launch/release/reinstall hooks to
// real nodes, registers durable triggers, and follows kNodeState.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "batch/accounting.hpp"
#include "batch/job.hpp"
#include "netsim/engine.hpp"
#include "sqldb/engine.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace rocks::cluster {
class Cluster;
}
namespace rocks::events {
class EventBus;
}

namespace rocks::batch {

/// Where a registered node is in the allocate/drain/down/reinstall/rejoin
/// state machine. kIdle/kBusy are derivable (from sched_jobs.assigned) and
/// never persisted; the other four are rows in sched_nodes.
enum class NodeLife {
  kIdle,              // in service, no job
  kBusy,              // in service, owned by one running job
  kDraining,          // reinstall requested, job still running
  kDown,              // declared dead; jobs were requeued
  kReinstalling,      // reinstall in flight, waiting for the node to rejoin
  kPendingReinstall,  // drained but waiting for a wave slot / health gate
};

[[nodiscard]] std::string_view node_life_name(NodeLife life);
[[nodiscard]] bool parse_node_life(std::string_view name, NodeLife& out);

struct SchedulerConfig {
  /// Queue entries examined past the head per backfill pass.
  std::size_t backfill_depth = 64;
  /// Head-of-queue age (seconds) past which backfill stops entirely — the
  /// no-starvation bound: after it, only completions and the head itself
  /// consume freed nodes, so the head's start time is monotone.
  double starvation_bound = 3600.0;
  /// Head age past which a moldable job (min_nodes > 0) starts shrunk on
  /// the idle set instead of waiting for its full width.
  double shrink_after = 600.0;
  /// Spacing between a job's requeue and its next start eligibility.
  support::BackoffPolicy requeue_backoff{5.0, 120.0, 0.25};
  /// Max nodes reinstalling concurrently (one upgrade wave).
  std::size_t reinstall_wave = 4;
  /// New reinstall waves pause while alive/total (from health_report) is
  /// below this fraction. 0 disables the gate.
  double min_healthy_fraction = 0.0;
  std::uint64_t rng_seed = 0x5eedULL;
};

/// How the scheduler acts on the world. Unset hooks are no-ops, which is
/// exactly right for the standalone/bench mode where nodes are synthetic.
struct SchedulerHooks {
  std::function<void(const std::string& host, JobId id)> launch;
  std::function<void(const std::string& host, JobId id)> release;
  std::function<void(const std::string& host)> reinstall;
};

struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t started = 0;     // start events, requeue restarts included
  std::uint64_t backfilled = 0;  // subset of started that jumped the head
  std::uint64_t shrunk = 0;      // subset of started below full width
  std::uint64_t requeued = 0;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t cycles = 0;
  std::uint64_t drains_started = 0;       // busy nodes put into kDraining
  std::uint64_t reinstalls_started = 0;   // reinstall hook invocations
  std::uint64_t reinstalls_finished = 0;  // rejoins after reinstall
  std::uint64_t stale_rows_repaired = 0;  // crash landed between the
                                          // accounting INSERT and the
                                          // sched_jobs DELETE
};

/// One live job as the scheduler sees it (qstat surface).
struct JobView {
  JobId id = 0;
  std::string name;
  JobState state = JobState::kQueued;
  std::size_t want = 0;
  std::size_t min_want = 0;
  int retries = 0;
  double submitted = 0.0;
  double started = -1.0;
  double deadline = -1.0;
  std::vector<std::string> assigned;
};

class Scheduler {
 public:
  /// Binds to a (possibly freshly recovered) database: creates the three
  /// tables when absent, loads every persisted job and exceptional node
  /// state, repairs rows a crash left half-finished, and recovers the job-id
  /// cursor from max(live id, accounting id). Does NOT start anything:
  /// register nodes (register_node / attach), then call resume().
  Scheduler(sqldb::Database& db, netsim::Simulator& sim, SchedulerConfig config = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Wires this scheduler to a live cluster: registers every compute node
  /// (down when not running), installs launch/release/reinstall hooks onto
  /// the real nodes, follows kNodeState transitions on the bus, and
  /// registers durable triggers — kNodeDown -> requeue that node's jobs,
  /// kHealthSummary -> the upgrade-wave health gate. Idempotent against
  /// trigger rows a recovered database already carries. The cluster must
  /// share the Simulator passed at construction and must outlive this.
  void attach(cluster::Cluster& cluster);

  /// Standalone wiring (benches, replication tests): action hooks and an
  /// optional event bus without a full cluster. attach() supersedes both.
  void set_hooks(SchedulerHooks hooks);
  void set_event_bus(events::EventBus* bus);

  /// Completes recovery after nodes are registered: reconciles loaded jobs
  /// against node health (running jobs on healthy nodes re-arm their
  /// completion; jobs that lost a node requeue under the retry budget) and
  /// restarts interrupted reinstalls. Call once, after register_node /
  /// attach; a no-op for a fresh database.
  void resume();

  // --- workload -------------------------------------------------------------
  /// qsub. The job is durably queued when this returns; scheduling happens
  /// on the next cycle (a zero-delay simulator event).
  JobId submit(const JobSpec& spec);
  /// Bulk qsub: one multi-row INSERT per ~512 jobs — the 1M-job drill would
  /// otherwise pay a parse + WAL append per row. Returns the first id;
  /// ids are consecutive.
  JobId submit_batch(const std::vector<JobSpec>& specs);
  /// qdel, queued or running: releases nodes and records kCancelled in the
  /// accounting table. False when the id is unknown or already terminal.
  bool cancel(JobId id);

  // --- node lifecycle --------------------------------------------------------
  /// Introduces a node to the allocator (idle). Re-registering is a no-op.
  void register_node(const std::string& host);
  /// Node left service (health tree, kNodeState off/failed, or the caller's
  /// own knowledge). Requeues the node's job under its retry budget with
  /// backoff. Idempotent.
  void node_down(const std::string& host);
  /// Node (re)joined service. Completes an in-flight reinstall, revives a
  /// down node, or registers an unknown one. Idempotent.
  void node_up(const std::string& host);
  /// Rolling-upgrade request: drains a busy node (no preemption), queues
  /// behind the wave cap + health gate when idle. No-op when the node is
  /// already down/draining/reinstalling.
  void request_reinstall(const std::string& host);
  /// Section 5's "reinstall cluster": request_reinstall on every node.
  void request_reinstall_all();
  /// Health-tree input for the wave gate (alive nodes / total). attach()
  /// feeds this from kHealthSummary; standalone callers may too.
  void health_report(std::size_t alive, std::size_t total);

  // --- driving ---------------------------------------------------------------
  /// Requests a scheduling cycle on the next simulator step (coalesced).
  void kick();
  /// Runs one scheduling cycle synchronously.
  void schedule_now();
  /// Runs the simulator until every submitted job reaches the accounting
  /// table. Jobs that can never start (every node permanently gone, no
  /// event pending that could change that) are cancelled "unschedulable"
  /// instead of hanging — the PbsServer::drain StateError, retired. Past
  /// `max_seconds` of simulated time, still-queued jobs are likewise
  /// cancelled (an attached cluster's recurring events would otherwise keep
  /// the simulator alive forever).
  void drain(double max_seconds = 30.0 * 86400.0);

  // --- observability ---------------------------------------------------------
  [[nodiscard]] std::size_t queued_count() const { return queue_.size(); }
  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] std::size_t live_count() const { return jobs_.size(); }
  [[nodiscard]] std::size_t idle_nodes() const { return idle_.size(); }
  [[nodiscard]] std::size_t registered_nodes() const { return nodes_.size(); }
  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  [[nodiscard]] std::optional<JobView> job(JobId id) const;
  [[nodiscard]] std::optional<NodeLife> node_life(const std::string& host) const;
  /// qstat-style table of live jobs (newest `limit`).
  [[nodiscard]] std::string qstat(std::size_t limit = 20) const;
  [[nodiscard]] sqldb::Database& db() { return db_; }

 private:
  struct ActiveJob {
    JobId id = 0;
    std::string name;
    std::size_t want = 1;
    std::size_t min_want = 1;  // normalized: spec.min_nodes or want
    double walltime = 0.0;
    int max_retries = 0;
    JobState state = JobState::kQueued;
    int retries = 0;
    double submitted = 0.0;
    double started = -1.0;
    double deadline = -1.0;
    double not_before = 0.0;  // requeue backoff: ineligible before this
    std::vector<std::string> assigned;
    /// Bumped on every (re)start; the completion event captures it so a
    /// completion armed for a run that was since requeued is ignored.
    std::uint64_t run_epoch = 0;
    netsim::EventId completion = 0;
    std::multimap<double, std::size_t>::iterator shadow_entry;  // valid iff running
  };

  struct NodeInfo {
    NodeLife life = NodeLife::kIdle;
    JobId job = 0;  // owner while kBusy/kDraining
  };

  // Persistence (every transition is one SQL statement; see file comment).
  void persist_submit_rows(const std::vector<const ActiveJob*>& jobs);
  void persist_start(const ActiveJob& job);
  void persist_requeue(const ActiveJob& job);
  void persist_node(const std::string& host, NodeLife life, bool existed);
  void persist_node_delete(const std::string& host);
  void load();

  // Policy.
  void schedule_cycle();
  void start_job(ActiveJob& job, std::size_t width, bool backfill);
  void arm_completion(ActiveJob& job);
  void on_completion(JobId id, std::uint64_t run_epoch);
  /// Terminal path: accounting INSERT, crash point, live-row DELETE.
  void finish(ActiveJob& job, JobState state, const std::string& reason);
  void requeue(ActiveJob& job);
  void release_assigned(ActiveJob& job);

  // Node machinery.
  void set_life(const std::string& host, NodeInfo& info, NodeLife life);
  void begin_reinstall(const std::string& host, NodeInfo& info);
  /// Starts the reinstall if a wave slot is free and the health gate is
  /// open; parks the node in kPendingReinstall otherwise.
  void begin_or_queue_reinstall(const std::string& host, NodeInfo& info);
  void promote_pending_reinstalls();
  [[nodiscard]] bool health_gate_open() const;

  /// Cancels a running job's completion event, removes its shadow entry,
  /// and releases its healthy nodes — shared by requeue, cancel, and the
  /// budget-exhausted path.
  void stop_running(ActiveJob& job);

  void arm_wake(double at);
  void publish_job(const ActiveJob& job, std::string_view detail);
  void publish_node(const std::string& host, std::string_view detail);

  sqldb::Database& db_;
  netsim::Simulator& sim_;
  SchedulerConfig config_;
  SchedulerHooks hooks_;
  events::EventBus* bus_ = nullptr;       // attach() / tests
  cluster::Cluster* cluster_ = nullptr;   // attach()
  std::size_t bus_subscription_ = 0;

  // Publishers (bus callbacks, trigger actions) may re-enter the scheduler
  // while it holds the lock and is publishing — hence recursive.
  mutable std::recursive_mutex mutex_;

  std::map<JobId, ActiveJob> jobs_;   // every live (queued or running) job
  std::set<JobId> queue_;             // id order == submit order == FIFO
  std::map<std::string, NodeInfo> nodes_;
  std::set<std::string> idle_;
  std::set<std::string> pending_reinstall_;  // the kPendingReinstall queue
  std::size_t reinstalling_ = 0;             // nodes currently kReinstalling
  /// Exceptional states loaded from sched_nodes, applied as hosts register.
  std::map<std::string, NodeLife> loaded_nodes_;
  /// deadline -> node count of each running job: the EASY shadow-time walk
  /// is an O(k) prefix scan of this instead of an O(R log R) sort per cycle.
  std::multimap<double, std::size_t> running_by_deadline_;

  JobId next_id_ = 1;
  Rng rng_;
  SchedulerStats stats_;
  std::size_t healthy_alive_ = 0, healthy_total_ = 0;  // last health_report

  bool cycle_pending_ = false;  // a zero-delay cycle event is queued
  netsim::EventId wake_event_ = 0;
  double wake_time_ = -1.0;
  /// Shared with every scheduled lambda: failover destroys the scheduler
  /// while its events are still queued; they must become no-ops, not UAFs.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace rocks::batch
