#include "batch/accounting.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

#include "support/strings.hpp"

namespace rocks::batch {

namespace {

std::string sql_text(std::string_view text) {
  std::string out = "'";
  for (char c : text) {
    out += c;
    if (c == '\'') out += c;  // doubled-quote escape
  }
  out += '\'';
  return out;
}

// Round-trippable REAL literal: recovered timestamps must compare equal to
// the ones the shadow replay reconstructs.
std::string sql_real(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace

void Accounting::ensure_schema(sqldb::Database& db) {
  if (db.has_table("sched_accounting")) return;
  db.execute(
      "CREATE TABLE sched_accounting ("
      "id INT PRIMARY KEY, "
      "name TEXT, state TEXT, reason TEXT, "
      "submitted REAL, started REAL, ended REAL, "
      "nodes_used INT, retries INT)");
}

void Accounting::append(sqldb::Database& db, const AccountingRecord& record) {
  db.execute(strings::cat(
      "INSERT INTO sched_accounting (id, name, state, reason, submitted, "
      "started, ended, nodes_used, retries) VALUES (",
      record.id, ", ", sql_text(record.name), ", ",
      sql_text(job_state_name(record.state)), ", ", sql_text(record.reason), ", ",
      sql_real(record.submitted), ", ", sql_real(record.started), ", ",
      sql_real(record.ended), ", ", record.nodes_used, ", ", record.retries, ")"));
}

bool Accounting::has(sqldb::Database& db, JobId id) {
  const sqldb::ResultSet rows = db.execute(
      strings::cat("SELECT id FROM sched_accounting WHERE id = ", id));
  return rows.row_count() > 0;
}

std::optional<AccountingRecord> Accounting::lookup(sqldb::Database& db, JobId id) {
  const sqldb::ResultSet rows = db.execute(strings::cat(
      "SELECT id, name, state, reason, submitted, started, ended, nodes_used, "
      "retries FROM sched_accounting WHERE id = ",
      id));
  if (rows.row_count() == 0) return std::nullopt;
  AccountingRecord record;
  record.id = static_cast<JobId>(rows.at(0, "id").as_int());
  record.name = rows.at(0, "name").as_text();
  record.state = rows.at(0, "state").as_text() == job_state_name(JobState::kCancelled)
                     ? JobState::kCancelled
                     : JobState::kComplete;
  record.reason = rows.at(0, "reason").as_text();
  record.submitted = rows.at(0, "submitted").as_real();
  record.started = rows.at(0, "started").as_real();
  record.ended = rows.at(0, "ended").as_real();
  record.nodes_used = static_cast<std::size_t>(rows.at(0, "nodes_used").as_int());
  record.retries = static_cast<int>(rows.at(0, "retries").as_int());
  return record;
}

AccountingTotals Accounting::totals(sqldb::Database& db) {
  AccountingTotals out;
  const sqldb::ResultSet rows = db.execute(
      "SELECT id, state, submitted, started, ended, nodes_used FROM sched_accounting");
  const std::size_t id_col = rows.column_index("id");
  const std::size_t state_col = rows.column_index("state");
  const std::size_t submitted_col = rows.column_index("submitted");
  const std::size_t started_col = rows.column_index("started");
  const std::size_t ended_col = rows.column_index("ended");
  const std::size_t nodes_col = rows.column_index("nodes_used");
  std::unordered_set<std::int64_t> seen;
  seen.reserve(rows.row_count());
  for (std::size_t i = 0; i < rows.row_count(); ++i) {
    const std::int64_t id = rows.at(i, id_col).as_int();
    if (!seen.insert(id).second) ++out.duplicate_ids;
    const bool cancelled =
        rows.at(i, state_col).as_text() == job_state_name(JobState::kCancelled);
    if (cancelled)
      ++out.cancelled;
    else
      ++out.completed;
    const double started = rows.at(i, started_col).as_real();
    if (started >= 0.0) {
      ++out.ran;
      const double ended = rows.at(i, ended_col).as_real();
      out.node_seconds += (ended - started) * rows.at(i, nodes_col).as_real();
      out.total_wait += started - rows.at(i, submitted_col).as_real();
    }
  }
  return out;
}

JobId Accounting::max_id(sqldb::Database& db) {
  const sqldb::ResultSet rows = db.execute("SELECT id FROM sched_accounting");
  JobId max = 0;
  const std::size_t id_col = rows.row_count() ? rows.column_index("id") : 0;
  for (std::size_t i = 0; i < rows.row_count(); ++i)
    max = std::max(max, static_cast<JobId>(rows.at(i, id_col).as_int()));
  return max;
}

std::string Accounting::report(sqldb::Database& db, std::size_t limit) {
  const sqldb::ResultSet rows = db.execute(
      "SELECT id, name, state, reason, submitted, started, ended, nodes_used, "
      "retries FROM sched_accounting");
  std::vector<std::size_t> order(rows.row_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const std::size_t id_col = rows.row_count() ? rows.column_index("id") : 0;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rows.at(a, id_col).as_int() > rows.at(b, id_col).as_int();
  });
  if (order.size() > limit) order.resize(limit);

  std::string out = "JobID  Name                 State  Reason                Wait      Run  Nodes  Retries\n";
  char line[192];
  for (std::size_t i : order) {
    const double submitted = rows.at(i, "submitted").as_real();
    const double started = rows.at(i, "started").as_real();
    const double ended = rows.at(i, "ended").as_real();
    const double wait = started >= 0.0 ? started - submitted : ended - submitted;
    const double run = started >= 0.0 ? ended - started : 0.0;
    std::snprintf(line, sizeof line, "%5lld  %-19.19s  %-5.5s  %-20.20s  %7.1f  %7.1f  %5lld  %7lld\n",
                  static_cast<long long>(rows.at(i, "id").as_int()),
                  rows.at(i, "name").as_text().c_str(),
                  rows.at(i, "state").as_text().c_str(),
                  rows.at(i, "reason").as_text().c_str(), wait, run,
                  static_cast<long long>(rows.at(i, "nodes_used").as_int()),
                  static_cast<long long>(rows.at(i, "retries").as_int()));
    out += line;
  }
  return out;
}

}  // namespace rocks::batch
