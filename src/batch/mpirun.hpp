// mpirun — interactive parallel launch (paper Section 4.1: "For interactive
// and development environments, Rocks includes mpirun from the MPICH
// distribution and REXEC").
//
// mpirun builds its machinefile from the running compute nodes (the same
// set the PBS nodes file lists) and starts one rank per slot through REXEC,
// inheriting REXEC's environment propagation and signal forwarding.
#pragma once

#include <string>
#include <vector>

#include "batch/rexec.hpp"

namespace rocks::batch {

struct MpirunLaunch {
  RunId run = 0;
  std::vector<std::string> machinefile;  // rank i runs on machinefile[i]
};

class Mpirun {
 public:
  Mpirun(cluster::Cluster& cluster, Rexec& rexec) : cluster_(cluster), rexec_(rexec) {}

  /// `mpirun -np <np> <program>`: selects np slots round-robin over the
  /// running compute nodes (`slots_per_node` ranks fit one node, like np=2
  /// dual-PIIIs). Throws StateError when the cluster cannot seat np ranks.
  MpirunLaunch run(int np, const std::string& program, double duration_seconds,
                   int slots_per_node = 2, RexecContext context = {});

  /// The machinefile mpirun would use right now.
  [[nodiscard]] std::vector<std::string> machinefile(int slots_per_node = 2) const;

 private:
  cluster::Cluster& cluster_;
  Rexec& rexec_;
};

}  // namespace rocks::batch
