// The PBS + Maui pair, wired to a live cluster.
//
// PbsServer owns the queue and job records (workload management); the Maui
// policy inside schedule() assigns queued jobs to free compute nodes in
// FIFO order with backfill (a smaller job may jump ahead if it fits in the
// idle nodes the head-of-queue job cannot use yet). Reinstall jobs take
// nodes one at a time as they drain — the Section 5 rolling-upgrade
// behaviour: "as not to disturb any running applications".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "batch/job.hpp"
#include "cluster/cluster.hpp"

namespace rocks::batch {

class PbsServer {
 public:
  explicit PbsServer(cluster::Cluster& cluster);

  /// qsub. Returns the job id; scheduling happens on the next cycle.
  JobId submit(JobSpec spec);

  /// qdel: a queued job leaves the queue; a running user job has its
  /// processes killed and its nodes freed. Both end kCancelled. False for
  /// unknown/terminal jobs and for running reinstall jobs (a reinstall
  /// cannot be un-shot).
  bool cancel(JobId id);

  /// One Maui scheduling cycle: starts every job that fits. Called
  /// automatically when jobs complete; call manually after submits.
  void schedule();

  /// Runs the simulator until every submitted job reaches a terminal state.
  /// A node that vanishes mid-reinstall (failed installer, hardware death)
  /// is reaped from its job instead of stranding the drain; queued jobs
  /// that can never start are cancelled.
  void drain();

  [[nodiscard]] const JobRecord& job(JobId id) const;
  [[nodiscard]] std::vector<const JobRecord*> jobs() const;
  [[nodiscard]] std::size_t queued_count() const;
  [[nodiscard]] std::size_t running_count() const;

  /// Nodes currently free for scheduling (running, no job, compute
  /// membership).
  [[nodiscard]] std::vector<cluster::Node*> free_nodes() const;

  /// qstat-style report.
  [[nodiscard]] std::string qstat() const;

 private:
  void start_user_job(JobRecord& record, std::vector<cluster::Node*> nodes);
  void start_reinstall_on(JobRecord& record, cluster::Node* node);
  void finish_job(JobRecord& record);
  /// Drops dead nodes from running reinstall jobs (see drain()). Returns
  /// whether anything was reaped. Only valid while the simulator is idle.
  bool reap_vanished_nodes();
  [[nodiscard]] bool node_busy(const std::string& hostname) const;

  cluster::Cluster& cluster_;
  std::map<JobId, JobRecord> jobs_;
  std::vector<JobId> queue_;           // FIFO of queued job ids
  std::set<std::string> busy_nodes_;   // hostnames owned by running jobs
  std::map<JobId, std::size_t> reinstall_remaining_;  // nodes still to do
  std::map<JobId, std::set<std::string>> reinstall_pending_;  // not yet shot
  JobId next_id_ = 1;
};

}  // namespace rocks::batch
