#include "netsim/flow.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "support/error.hpp"

namespace rocks::netsim {
namespace {

/// Completion epsilon. Completions are scheduled at the full
/// remaining/rate interval, so at the event `remaining` is zero up to
/// floating-point error (absolute error stays far below a byte for MB-scale
/// transfers); 1e-3 bytes absorbs that error with room to spare while being
/// negligible against any real payload. A smaller epsilon (or scheduling at
/// remaining-eps) risks a zero-length-event livelock.
constexpr double kEpsilonBytes = 1e-3;

}  // namespace

FairShareChannel::FairShareChannel(Simulator& sim, double capacity)
    : sim_(sim), capacity_(capacity) {
  require_state(capacity > 0.0, "FairShareChannel: capacity must be positive");
}

FlowId FairShareChannel::start(double bytes, double demand_cap,
                               std::function<void()> on_complete, AbortCallback on_abort) {
  require_state(bytes >= 0.0, "FairShareChannel::start: negative size");
  advance_to_now();
  const FlowId id = next_id_++;
  Flow flow;
  flow.total = bytes;
  flow.remaining = bytes;
  flow.cap = demand_cap > 0.0 ? demand_cap : std::numeric_limits<double>::infinity();
  flow.on_complete = std::move(on_complete);
  flow.on_abort = std::move(on_abort);
  flows_.emplace(id, std::move(flow));
  rebalance();
  return id;
}

double FairShareChannel::abort(FlowId id) {
  advance_to_now();
  const auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  const double delivered_bytes = it->second.total - it->second.remaining;
  flows_.erase(it);
  rebalance();
  return delivered_bytes;
}

void FairShareChannel::kill(FlowId id) {
  advance_to_now();
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  const double delivered_bytes = it->second.total - it->second.remaining;
  AbortCallback callback = std::move(it->second.on_abort);
  flows_.erase(it);
  rebalance();
  if (callback) callback(delivered_bytes);
}

std::size_t FairShareChannel::kill_all() {
  advance_to_now();
  // Collect callbacks first: a notified client may immediately start a new
  // flow (a retry against a replica sharing this simulator), so the channel
  // must be consistent before any callback runs.
  std::vector<std::pair<AbortCallback, double>> callbacks;
  callbacks.reserve(flows_.size());
  for (auto& [id, flow] : flows_)
    callbacks.emplace_back(std::move(flow.on_abort), flow.total - flow.remaining);
  const std::size_t killed = flows_.size();
  flows_.clear();
  rebalance();
  for (auto& [callback, delivered_bytes] : callbacks)
    if (callback) callback(delivered_bytes);
  return killed;
}

std::vector<FlowId> FairShareChannel::active_ids() const {
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (const auto& [id, flow] : flows_) ids.push_back(id);
  return ids;
}

double FairShareChannel::rate_of(FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

double FairShareChannel::delivered(FlowId id) {
  advance_to_now();
  const auto it = flows_.find(id);
  if (it == flows_.end()) return 0.0;
  return it->second.total - it->second.remaining;
}

double FairShareChannel::remaining(FlowId id) {
  advance_to_now();
  const auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.remaining;
}

double FairShareChannel::total_delivered() const { return total_delivered_; }

void FairShareChannel::set_capacity(double capacity) {
  require_state(capacity > 0.0, "FairShareChannel: capacity must be positive");
  advance_to_now();
  capacity_ = capacity;
  rebalance();
}

void FairShareChannel::advance_to_now() {
  const double dt = sim_.now() - last_update_;
  if (dt > 0.0) {
    for (auto& [id, flow] : flows_) {
      const double moved = std::min(flow.remaining, flow.rate * dt);
      flow.remaining -= moved;
      total_delivered_ += moved;
    }
  }
  last_update_ = sim_.now();
}

void FairShareChannel::rebalance() {
  // Progressive filling: repeatedly grant every unfrozen flow an equal share
  // of the residual capacity; freeze flows whose cap binds.
  for (auto& [id, flow] : flows_) flow.rate = 0.0;
  double residual = capacity_;
  std::vector<Flow*> open;
  open.reserve(flows_.size());
  for (auto& [id, flow] : flows_) open.push_back(&flow);
  while (!open.empty() && residual > 1e-12) {
    const double share = residual / static_cast<double>(open.size());
    bool froze_any = false;
    std::vector<Flow*> still_open;
    for (Flow* flow : open) {
      if (flow->cap <= share + 1e-12) {
        flow->rate = flow->cap;
        residual -= flow->cap;
        froze_any = true;
      } else {
        still_open.push_back(flow);
      }
    }
    if (!froze_any) {
      for (Flow* flow : still_open) flow->rate = share;
      residual = 0.0;
      still_open.clear();
    }
    open = std::move(still_open);
  }

  // Schedule the next completion.
  if (event_scheduled_) {
    sim_.cancel(pending_event_);
    event_scheduled_ = false;
  }
  double next = std::numeric_limits<double>::infinity();
  for (const auto& [id, flow] : flows_) {
    if (flow.remaining <= kEpsilonBytes) {
      next = 0.0;
      continue;
    }
    if (flow.rate <= 0.0) continue;  // starved: waits for a membership change
    next = std::min(next, flow.remaining / flow.rate);
  }
  if (next != std::numeric_limits<double>::infinity()) {
    pending_event_ = sim_.schedule(next, [this] { on_next_completion(); });
    event_scheduled_ = true;
  }
}

void FairShareChannel::on_next_completion() {
  event_scheduled_ = false;
  advance_to_now();
  // Collect all flows that are done (several can finish at the same instant).
  std::vector<std::function<void()>> callbacks;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= kEpsilonBytes) {
      total_delivered_ += it->second.remaining;
      callbacks.push_back(std::move(it->second.on_complete));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  rebalance();
  for (auto& callback : callbacks) {
    if (callback) callback();
  }
}

}  // namespace rocks::netsim
