#include "netsim/flow.hpp"

#include <algorithm>
#include <limits>

#include "support/error.hpp"

namespace rocks::netsim {
namespace {

/// Completion epsilon. Completions are scheduled at the full
/// (target - service)/rate interval, so at the event the service integral
/// reaches the target up to floating-point error (absolute error stays far
/// below a byte for MB-scale transfers); 1e-3 bytes absorbs that error with
/// room to spare while being negligible against any real payload. A smaller
/// epsilon (or scheduling at target-eps) risks a zero-length-event livelock.
constexpr double kEpsilonBytes = 1e-3;

/// Freeze tolerance of the water-filling pass (caps equal to the fair share
/// up to rounding are frozen at their cap, exactly as the old progressive
/// filling did).
constexpr double kFreezeTolerance = 1e-12;

// FlowId = (seq << kSlotBits) | slot; 24 slot bits = 16.7M concurrent flows.
constexpr std::uint32_t kSlotBits = 24;
constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

constexpr double kUncapped = std::numeric_limits<double>::infinity();

}  // namespace

FairShareChannel::FairShareChannel(Simulator& sim, double capacity, Allocator allocator)
    : sim_(sim), capacity_(capacity), allocator_(allocator) {
  require_state(capacity > 0.0, "FairShareChannel: capacity must be positive");
}

std::uint32_t FairShareChannel::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  require_state(slots_.size() < kSlotMask, "FairShareChannel: too many flows");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

const FairShareChannel::FlowSlot* FairShareChannel::find(FlowId id) const {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  if (slot >= slots_.size()) return nullptr;
  const FlowSlot& flow = slots_[slot];
  if (!flow.live || flow.id != id) return nullptr;
  return &flow;
}

double FairShareChannel::service_now(const CapClass& cls) const {
  const double dt = sim_.now() - last_update_;
  return dt > 0.0 ? cls.service + cls.rate * dt : cls.service;
}

FlowId FairShareChannel::start(double bytes, double demand_cap,
                               std::function<void()> on_complete, AbortCallback on_abort) {
  require_state(bytes >= 0.0, "FairShareChannel::start: negative size");
  advance_to_now();
  const std::uint32_t slot = acquire_slot();
  const std::uint64_t seq = next_seq_++;
  const FlowId id = (seq << kSlotBits) | slot;
  const double cap_key = demand_cap > 0.0 ? demand_cap : kUncapped;

  CapClass& cls = classes_[cap_key];  // created with service = 0 when new
  FlowSlot& flow = slots_[slot];
  flow.total = bytes;
  flow.start_service = cls.service;
  flow.target = cls.service + bytes;
  flow.cap_key = cap_key;
  flow.seq = seq;
  flow.id = id;
  flow.live = true;
  flow.on_complete = std::move(on_complete);
  flow.on_abort = std::move(on_abort);

  if (allocator_ == Allocator::kIncremental) {
    ++cls.count;
    cls.start_sum += flow.start_service;
    cls.heap.push_back(TargetEntry{flow.target, seq, slot});
    std::push_heap(cls.heap.begin(), cls.heap.end(), target_later);
  }
  ++live_count_;
  ++stats_.flow_joins;
  stats_.peak_active = std::max(stats_.peak_active, live_count_);
  rebalance();
  return id;
}

double FairShareChannel::remove_flow(std::uint32_t slot) {
  FlowSlot& flow = slots_[slot];
  const auto it = classes_.find(flow.cap_key);
  require_state(it != classes_.end(), "FairShareChannel: flow without a class");
  CapClass& cls = it->second;
  const double delivered_bytes =
      std::min(flow.total, std::max(0.0, cls.service - flow.start_service));
  closed_delivered_ += delivered_bytes;

  if (allocator_ == Allocator::kIncremental) {
    --cls.count;
    cls.start_sum -= flow.start_service;
    // The flow's target entry stays in the class heap as a dead entry
    // (recognized by its stale seq) until popped or compacted away.
    ++cls.heap_dead;
    if (cls.count == 0) {
      classes_.erase(it);
    } else if (cls.heap_dead > 64 && cls.heap_dead * 2 > cls.heap.size()) {
      std::size_t kept = 0;
      for (const TargetEntry& entry : cls.heap) {
        const FlowSlot& other = slots_[entry.slot];
        if (other.live && other.seq == entry.seq && entry.slot != slot)
          cls.heap[kept++] = entry;
      }
      cls.heap.resize(kept);
      std::make_heap(cls.heap.begin(), cls.heap.end(), target_later);
      cls.heap_dead = 0;
    }
  }

  flow.live = false;
  flow.on_complete = nullptr;
  flow.on_abort = nullptr;
  free_slots_.push_back(slot);
  --live_count_;
  return delivered_bytes;
}

double FairShareChannel::abort(FlowId id) {
  advance_to_now();
  const FlowSlot* flow = find(id);
  if (flow == nullptr) return 0.0;
  const double delivered_bytes = remove_flow(static_cast<std::uint32_t>(id & kSlotMask));
  rebalance();
  return delivered_bytes;
}

void FairShareChannel::kill(FlowId id) {
  advance_to_now();
  const FlowSlot* flow = find(id);
  if (flow == nullptr) return;
  AbortCallback callback = std::move(slots_[id & kSlotMask].on_abort);
  const double delivered_bytes = remove_flow(static_cast<std::uint32_t>(id & kSlotMask));
  rebalance();
  if (callback) callback(delivered_bytes);
}

std::size_t FairShareChannel::kill_all() {
  advance_to_now();
  // Collect callbacks first: a notified client may immediately start a new
  // flow (a retry against a replica sharing this simulator), so the channel
  // must be consistent before any callback runs. Victims are notified in
  // start order, as the old flow map iteration did.
  std::vector<std::uint32_t> victims;
  victims.reserve(live_count_);
  for (std::uint32_t slot = 0; slot < slots_.size(); ++slot)
    if (slots_[slot].live) victims.push_back(slot);
  std::sort(victims.begin(), victims.end(), [this](std::uint32_t a, std::uint32_t b) {
    return slots_[a].seq < slots_[b].seq;
  });
  std::vector<std::pair<AbortCallback, double>> callbacks;
  callbacks.reserve(victims.size());
  for (const std::uint32_t slot : victims) {
    AbortCallback callback = std::move(slots_[slot].on_abort);
    callbacks.emplace_back(std::move(callback), remove_flow(slot));
  }
  rebalance();
  for (auto& [callback, delivered_bytes] : callbacks)
    if (callback) callback(delivered_bytes);
  return callbacks.size();
}

std::vector<FlowId> FairShareChannel::active_ids() const {
  std::vector<const FlowSlot*> live;
  live.reserve(live_count_);
  for (const FlowSlot& flow : slots_)
    if (flow.live) live.push_back(&flow);
  std::sort(live.begin(), live.end(),
            [](const FlowSlot* a, const FlowSlot* b) { return a->seq < b->seq; });
  std::vector<FlowId> ids;
  ids.reserve(live.size());
  for (const FlowSlot* flow : live) ids.push_back(flow->id);
  return ids;
}

double FairShareChannel::rate_of(FlowId id) const {
  const FlowSlot* flow = find(id);
  if (flow == nullptr) return 0.0;
  const auto it = classes_.find(flow->cap_key);
  return it == classes_.end() ? 0.0 : it->second.rate;
}

double FairShareChannel::delivered(FlowId id) const {
  const FlowSlot* flow = find(id);
  if (flow == nullptr) return 0.0;
  const auto it = classes_.find(flow->cap_key);
  if (it == classes_.end()) return 0.0;
  return std::min(flow->total, std::max(0.0, service_now(it->second) - flow->start_service));
}

double FairShareChannel::remaining(FlowId id) const {
  const FlowSlot* flow = find(id);
  if (flow == nullptr) return 0.0;
  return flow->total - delivered(id);
}

double FairShareChannel::total_delivered() const {
  double active = 0.0;
  for (const auto& [cap, cls] : classes_) {
    if (cls.count == 0) continue;
    active += static_cast<double>(cls.count) * service_now(cls) - cls.start_sum;
  }
  return closed_delivered_ + active;
}

void FairShareChannel::set_capacity(double capacity) {
  require_state(capacity > 0.0, "FairShareChannel: capacity must be positive");
  advance_to_now();
  capacity_ = capacity;
  rebalance();
}

void FairShareChannel::reset_stats() {
  stats_ = ChannelStats{};
  stats_.peak_active = live_count_;
}

void FairShareChannel::advance_to_now() {
  const double dt = sim_.now() - last_update_;
  if (dt > 0.0) {
    for (auto& [cap, cls] : classes_) cls.service += cls.rate * dt;
  }
  last_update_ = sim_.now();
}

void FairShareChannel::rebuild_classes_by_scan() {
  // The reference allocator's whole point: every membership change pays a
  // scan of all live flows. Service integrals persist (they are the flows'
  // progress); counts and accounting sums are recomputed from scratch.
  for (auto& [cap, cls] : classes_) {
    cls.count = 0;
    cls.start_sum = 0.0;
  }
  for (const FlowSlot& flow : slots_) {
    if (!flow.live) continue;
    CapClass& cls = classes_[flow.cap_key];
    ++cls.count;
    cls.start_sum += flow.start_service;
  }
  for (auto it = classes_.begin(); it != classes_.end();) {
    if (it->second.count == 0)
      it = classes_.erase(it);
    else
      ++it;
  }
}

void FairShareChannel::allocate() {
  // Water filling over cap classes, ascending: a class whose cap fits under
  // the current fair share freezes at its cap (raising the share for the
  // rest); the first class whose cap exceeds the share — and every class
  // above it — runs at the share. One ascending pass is exact because the
  // share is non-decreasing as classes freeze.
  double residual = capacity_;
  std::size_t open = live_count_;
  double share = 0.0;
  auto it = classes_.begin();
  for (; it != classes_.end(); ++it) {
    CapClass& cls = it->second;
    share = residual > 0.0 ? residual / static_cast<double>(open) : 0.0;
    if (it->first <= share + kFreezeTolerance) {
      cls.rate = it->first;
      residual -= it->first * static_cast<double>(cls.count);
      open -= cls.count;
    } else {
      break;
    }
  }
  for (; it != classes_.end(); ++it) it->second.rate = share;
}

void FairShareChannel::schedule_next_completion() {
  if (event_scheduled_) {
    sim_.cancel(pending_event_);
    event_scheduled_ = false;
  }
  double next = std::numeric_limits<double>::infinity();
  if (allocator_ == Allocator::kIncremental) {
    for (auto& [cap, cls] : classes_) {
      // Surface the earliest live target of this class (drop dead tops).
      while (!cls.heap.empty()) {
        const TargetEntry& top = cls.heap.front();
        const FlowSlot& flow = slots_[top.slot];
        if (flow.live && flow.seq == top.seq) break;
        std::pop_heap(cls.heap.begin(), cls.heap.end(), target_later);
        cls.heap.pop_back();
        if (cls.heap_dead > 0) --cls.heap_dead;
      }
      if (cls.heap.empty()) continue;
      const double to_go = cls.heap.front().target - cls.service;
      if (to_go <= kEpsilonBytes) {
        next = 0.0;
      } else if (cls.rate > 0.0) {
        next = std::min(next, to_go / cls.rate);
      }  // starved: waits for a membership change
    }
  } else {
    for (const FlowSlot& flow : slots_) {
      if (!flow.live) continue;
      const CapClass& cls = classes_.at(flow.cap_key);
      const double to_go = flow.target - cls.service;
      if (to_go <= kEpsilonBytes) {
        next = 0.0;
      } else if (cls.rate > 0.0) {
        next = std::min(next, to_go / cls.rate);
      }
    }
  }
  if (next != std::numeric_limits<double>::infinity()) {
    pending_event_ = sim_.schedule(next, [this] { on_next_completion(); });
    event_scheduled_ = true;
  }
}

void FairShareChannel::rebalance() {
  ++stats_.rebalances;
  if (allocator_ == Allocator::kReference) rebuild_classes_by_scan();
  if (live_count_ > 0) allocate();
  schedule_next_completion();
}

void FairShareChannel::on_next_completion() {
  event_scheduled_ = false;
  advance_to_now();
  // Collect all flows that are done (several can finish at the same
  // instant), in start order — identical in both allocator modes.
  std::vector<std::uint32_t> done;
  if (allocator_ == Allocator::kIncremental) {
    for (auto& [cap, cls] : classes_) {
      while (!cls.heap.empty()) {
        const TargetEntry top = cls.heap.front();
        const FlowSlot& flow = slots_[top.slot];
        const bool dead = !flow.live || flow.seq != top.seq;
        if (!dead && top.target > cls.service + kEpsilonBytes) break;
        std::pop_heap(cls.heap.begin(), cls.heap.end(), target_later);
        cls.heap.pop_back();
        if (dead) {
          if (cls.heap_dead > 0) --cls.heap_dead;
        } else {
          done.push_back(top.slot);
        }
      }
    }
  } else {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      const FlowSlot& flow = slots_[slot];
      if (!flow.live) continue;
      if (flow.target <= classes_.at(flow.cap_key).service + kEpsilonBytes)
        done.push_back(slot);
    }
  }
  std::sort(done.begin(), done.end(), [this](std::uint32_t a, std::uint32_t b) {
    return slots_[a].seq < slots_[b].seq;
  });
  std::vector<std::function<void()>> callbacks;
  callbacks.reserve(done.size());
  for (const std::uint32_t slot : done) {
    callbacks.push_back(std::move(slots_[slot].on_complete));
    // Credit the full payload: the sub-epsilon shortfall at the completion
    // event is delivered by definition (matches the old accounting).
    closed_delivered_ += slots_[slot].total;
    const auto it = classes_.find(slots_[slot].cap_key);
    require_state(it != classes_.end(), "FairShareChannel: flow without a class");
    CapClass& cls = it->second;
    FlowSlot& flow = slots_[slot];
    if (allocator_ == Allocator::kIncremental) {
      --cls.count;
      cls.start_sum -= flow.start_service;
      if (cls.count == 0) classes_.erase(it);
    }
    flow.live = false;
    flow.on_complete = nullptr;
    flow.on_abort = nullptr;
    free_slots_.push_back(slot);
    --live_count_;
  }
  rebalance();
  for (auto& callback : callbacks) {
    if (callback) callback();
  }
}

}  // namespace rocks::netsim
