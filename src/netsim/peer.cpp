#include "netsim/peer.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "support/error.hpp"

namespace rocks::netsim {

PeerDistribution::PeerDistribution(Simulator& sim, RackTopology& topology,
                                   HttpServerGroup& seed, PeerConfig config)
    : sim_(sim), topology_(topology), seed_(seed), config_(config),
      rescue_rng_(config.rescue_seed) {
  require_state(config_.max_upload_streams >= 1,
                "PeerDistribution: max_upload_streams must be >= 1");
  require_state(config_.rescue.base > 0.0,
                "PeerDistribution: rescue backoff base must be positive");
}

std::size_t PeerDistribution::chunks_for_mode() const {
  if (config_.mode != DistMode::kSwarm) return 1;
  return std::max<std::size_t>(1, config_.chunk_count);
}

void PeerDistribution::register_endpoints(std::uint32_t count) {
  topology_.ensure_endpoints(count);
  if (endpoints_.size() < count) endpoints_.resize(count);
  if (rack_waiters_.size() < topology_.rack_count())
    rack_waiters_.resize(topology_.rack_count());
}

void PeerDistribution::begin_install(std::uint32_t endpoint) {
  require_state(endpoint < endpoints_.size(), "PeerDistribution: unknown endpoint");
  Endpoint& ep = endpoints_[endpoint];
  if (ep.state != State::kOffline &&
      (ep.fetching || ep.uploads > 0 || ep.state == State::kSeeded))
    node_offline(endpoint);
  ep.state = State::kInstalling;
  ep.chunks_done = 0;
}

void PeerDistribution::mark_seeded(std::uint32_t endpoint) {
  require_state(endpoint < endpoints_.size(), "PeerDistribution: unknown endpoint");
  Endpoint& ep = endpoints_[endpoint];
  if (ep.state == State::kSeeded) return;
  if (ep.transfer_active) detach_transfer(endpoint);
  ep.fetching = false;
  ep.on_complete = nullptr;
  ep.on_abort = nullptr;
  ep.state = State::kSeeded;
  ++seeded_count_;
  if (ep.uploads < config_.max_upload_streams) {
    seeded_stack_.push_back(endpoint);
    wake_global();
  }
}

bool PeerDistribution::is_seeded(std::uint32_t endpoint) const {
  return endpoint < endpoints_.size() && endpoints_[endpoint].state == State::kSeeded;
}

double PeerDistribution::cached_bytes(std::uint32_t endpoint) const {
  if (endpoint >= endpoints_.size()) return 0.0;
  const Endpoint& ep = endpoints_[endpoint];
  return static_cast<double>(ep.chunks_done) * ep.chunk_bytes;
}

void PeerDistribution::fetch(std::uint32_t endpoint, double bytes, double demand_cap,
                             std::function<void()> on_complete,
                             FairShareChannel::AbortCallback on_abort) {
  require_state(endpoint < endpoints_.size(), "PeerDistribution: unknown endpoint");
  Endpoint& ep = endpoints_[endpoint];
  require_state(ep.state == State::kInstalling,
                "PeerDistribution::fetch: endpoint is not installing");
  require_state(!ep.fetching, "PeerDistribution::fetch: fetch already in flight");
  require_state(bytes > 0.0, "PeerDistribution::fetch: empty payload");
  const auto chunks = static_cast<std::uint32_t>(chunks_for_mode());
  ep.fetching = true;
  ep.chunk_count = chunks;
  ep.chunk_bytes = bytes / static_cast<double>(chunks);
  ep.demand_cap = demand_cap;
  ep.on_complete = std::move(on_complete);
  ep.on_abort = std::move(on_abort);
  if (ep.chunks_done >= chunks) {
    // The whole payload was already cached by a previous attempt; the
    // completion still fires asynchronously, like a real (instant) transfer.
    sim_.schedule(0.0, [this, endpoint] {
      Endpoint& done = endpoints_[endpoint];
      if (!done.fetching || done.state != State::kInstalling) return;
      done.fetching = false;
      done.state = State::kSeeded;
      ++seeded_count_;
      seeded_stack_.push_back(endpoint);
      auto callback = std::move(done.on_complete);
      done.on_abort = nullptr;
      wake_global();
      if (callback) callback();
    });
    return;
  }
  start_chunk(endpoint);
}

std::int64_t PeerDistribution::pick_rack_source(std::uint32_t endpoint,
                                                std::uint32_t chunk) const {
  const std::uint32_t rack = topology_.rack_of(endpoint);
  const auto per_rack = static_cast<std::uint32_t>(topology_.config().nodes_per_rack);
  const std::uint32_t base = rack * per_rack;
  const auto end =
      std::min<std::uint64_t>(std::uint64_t{base} + per_rack, endpoints_.size());
  std::int64_t best = -1;
  std::uint64_t best_progress = 0;
  std::uint32_t best_uploads = 0;
  for (std::uint32_t i = base; i < end; ++i) {
    if (i == endpoint) continue;
    const Endpoint& peer = endpoints_[i];
    if (peer.uploads >= config_.max_upload_streams) continue;
    std::uint64_t progress = 0;
    if (peer.state == State::kSeeded) {
      progress = std::numeric_limits<std::uint64_t>::max();
    } else if (peer.state == State::kInstalling && peer.chunks_done > chunk) {
      progress = peer.chunks_done;
    } else {
      continue;
    }
    // Furthest-ahead source first (it will stay eligible longest), least
    // loaded on ties; index order makes the scan deterministic.
    if (best < 0 || progress > best_progress ||
        (progress == best_progress && peer.uploads < best_uploads)) {
      best = i;
      best_progress = progress;
      best_uploads = peer.uploads;
    }
  }
  return best;
}

std::int64_t PeerDistribution::pop_seeded_source() {
  while (!seeded_stack_.empty()) {
    const std::uint32_t candidate = seeded_stack_.back();
    seeded_stack_.pop_back();
    const Endpoint& ep = endpoints_[candidate];
    if (ep.state == State::kSeeded && ep.uploads < config_.max_upload_streams)
      return candidate;
    // Stale entry (went offline or saturated since pushed): drop it.
  }
  return -1;
}

void PeerDistribution::start_chunk(std::uint32_t endpoint) {
  Endpoint& ep = endpoints_[endpoint];
  if (!ep.fetching || ep.transfer_active || ep.state != State::kInstalling) return;
  const std::uint32_t chunk = ep.chunks_done;
  double cap = ep.demand_cap;
  if (config_.peer_stream_cap > 0.0)
    cap = cap > 0.0 ? std::min(cap, config_.peer_stream_cap) : config_.peer_stream_cap;

  std::int64_t source = -1;
  if (config_.mode != DistMode::kSingleServer) {
    if (config_.prefer_same_rack) source = pick_rack_source(endpoint, chunk);
    if (source < 0) source = pop_seeded_source();
  }
  const std::uint64_t seq = next_transfer_seq_++;
  if (source >= 0) {
    const auto src = static_cast<std::uint32_t>(source);
    Endpoint& server = endpoints_[src];
    ++server.uploads;
    server.serving.push_back(endpoint);
    // A seeded source with slots to spare goes back on the stack.
    if (server.state == State::kSeeded && server.uploads < config_.max_upload_streams)
      seeded_stack_.push_back(src);
    FairShareChannel& channel = topology_.path_channel(src, endpoint);
    ep.transfer_active = true;
    ep.transfer_seq = seq;
    ep.source = Source::kPeer;
    ep.source_endpoint = src;
    ep.channel = &channel;
    ep.seed_server = nullptr;
    ++active_transfers_;
    ep.flow = channel.start(
        ep.chunk_bytes, cap, [this, endpoint, seq] { on_chunk_complete(endpoint, seq); },
        [this, endpoint, seq](double delivered) {
          on_transfer_killed(endpoint, seq, delivered);
        });
    return;
  }

  if (config_.seed_fanout == 0 || seed_active_ < config_.seed_fanout) {
    // ep.flow must be valid before the serve() returns only if callbacks
    // cannot fire synchronously — they cannot (completions are events).
    auto ticket = seed_.serve(
        ep.chunk_bytes, cap, [this, endpoint, seq] { on_chunk_complete(endpoint, seq); },
        [this, endpoint, seq](double delivered) {
          on_transfer_killed(endpoint, seq, delivered);
        });
    if (ticket.server != nullptr) {
      ep.transfer_active = true;
      ep.transfer_seq = seq;
      ep.source = Source::kSeed;
      ep.seed_server = ticket.server;
      ep.channel = nullptr;
      ep.flow = ticket.flow;
      ++seed_active_;
      ++active_transfers_;
      return;
    }
    // Every seed replica is down; park and let the rescue poll retry.
  }
  enqueue_waiter(endpoint);
}

void PeerDistribution::release_upload(std::uint32_t source, std::uint32_t receiver) {
  Endpoint& server = endpoints_[source];
  if (server.uploads > 0) --server.uploads;
  const auto it = std::find(server.serving.begin(), server.serving.end(), receiver);
  if (it != server.serving.end()) server.serving.erase(it);
  if (server.state == State::kSeeded) {
    if (server.uploads < config_.max_upload_streams) {
      seeded_stack_.push_back(source);
      wake_global();
    }
  } else if (server.state == State::kInstalling) {
    // An installing node serves same-rack requesters only.
    wake_rack(topology_.rack_of(source));
  }
}

void PeerDistribution::on_chunk_complete(std::uint32_t endpoint, std::uint64_t seq) {
  Endpoint& ep = endpoints_[endpoint];
  if (!ep.transfer_active || ep.transfer_seq != seq) return;  // superseded
  const Source source = ep.source;
  const std::uint32_t src_endpoint = ep.source_endpoint;
  ep.transfer_active = false;
  ep.source = Source::kNone;
  --active_transfers_;
  ++ep.chunks_done;
  ++stats_.chunk_fetches;
  // Release the source slot but do NOT wake waiters yet: the progressing
  // installer continues its stream first and usually re-takes the very slot
  // it just freed (a persistent connection, in effect). Waking first would
  // hand the slot to a parked node wanting its own first chunk — at scale
  // that round-robins the seed across the whole cluster, every node ends up
  // with identical progress, and nobody can ever serve anybody (lockstep).
  if (source == Source::kPeer) {
    ++stats_.peer_serves;
    stats_.peer_bytes += ep.chunk_bytes;
    if (topology_.same_rack(src_endpoint, endpoint))
      ++stats_.rack_local_serves;
    else
      ++stats_.cross_rack_serves;
    Endpoint& server = endpoints_[src_endpoint];
    if (server.uploads > 0) --server.uploads;
    const auto it = std::find(server.serving.begin(), server.serving.end(), endpoint);
    if (it != server.serving.end()) server.serving.erase(it);
  } else {
    ++stats_.seed_serves;
    stats_.seed_bytes += ep.chunk_bytes;
    if (seed_active_ > 0) --seed_active_;
  }

  const bool finished = ep.chunks_done >= ep.chunk_count;
  std::function<void()> callback;
  if (finished) {
    ep.fetching = false;
    ep.state = State::kSeeded;
    ++seeded_count_;
    if (ep.uploads < config_.max_upload_streams) seeded_stack_.push_back(endpoint);
    callback = std::move(ep.on_complete);
    ep.on_abort = nullptr;
  } else {
    start_chunk(endpoint);
  }

  // Now surface whatever capacity is left over to the parked installers.
  if (source == Source::kPeer) {
    Endpoint& server = endpoints_[src_endpoint];
    if (server.state == State::kSeeded) {
      if (server.uploads < config_.max_upload_streams) {
        seeded_stack_.push_back(src_endpoint);
        wake_global();
      }
    } else if (server.state == State::kInstalling) {
      wake_rack(topology_.rack_of(src_endpoint));
    }
  } else {
    wake_global();  // the seed slot, when the installer did not re-take it
  }
  // This endpoint's new chunk may unblock rack-mates parked on availability.
  wake_rack(topology_.rack_of(endpoint));
  if (finished) {
    // A fresh seeded server: one wake per upload slot it can offer.
    for (std::size_t i = 0; i < config_.max_upload_streams; ++i) wake_global();
    if (callback) callback();
  }
  // If every wake failed and nothing is in flight any more, keep the clock
  // alive for the parked installers.
  if (waiter_count_ > 0 && active_transfers_ == 0) arm_rescue_poll();
}

void PeerDistribution::on_transfer_killed(std::uint32_t endpoint, std::uint64_t seq,
                                          double delivered) {
  Endpoint& ep = endpoints_[endpoint];
  if (!ep.transfer_active || ep.transfer_seq != seq) return;  // superseded
  const Source source = ep.source;
  const std::uint32_t src_endpoint = ep.source_endpoint;
  ep.transfer_active = false;
  ep.source = Source::kNone;
  --active_transfers_;
  ++stats_.churn_aborts;
  if (source == Source::kPeer) {
    release_upload(src_endpoint, endpoint);
  } else if (seed_active_ > 0) {
    --seed_active_;
  }
  const double total = cached_bytes(endpoint) + delivered;
  ep.fetching = false;
  auto callback = std::move(ep.on_abort);
  ep.on_complete = nullptr;
  if (waiter_count_ > 0 && active_transfers_ == 0) arm_rescue_poll();
  if (callback) callback(total);
}

double PeerDistribution::detach_transfer(std::uint32_t endpoint) {
  Endpoint& ep = endpoints_[endpoint];
  if (!ep.transfer_active) return 0.0;
  double delivered = 0.0;
  if (ep.source == Source::kPeer) {
    delivered = ep.channel->abort(ep.flow);
    release_upload(ep.source_endpoint, endpoint);
  } else if (ep.source == Source::kSeed) {
    delivered = ep.seed_server->abort(ep.flow);
    if (seed_active_ > 0) --seed_active_;
    wake_global();
  }
  ep.transfer_active = false;
  ep.source = Source::kNone;
  --active_transfers_;
  return delivered;
}

double PeerDistribution::node_offline(std::uint32_t endpoint) {
  require_state(endpoint < endpoints_.size(), "PeerDistribution: unknown endpoint");
  Endpoint& ep = endpoints_[endpoint];
  double own = cached_bytes(endpoint);
  if (ep.transfer_active) own += detach_transfer(endpoint);
  if (ep.waiting) {
    ep.waiting = false;  // lazily discarded from its rack queue
    if (waiter_count_ > 0) --waiter_count_;
  }
  ep.fetching = false;
  ep.on_complete = nullptr;
  ep.on_abort = nullptr;
  if (ep.state == State::kSeeded && seeded_count_ > 0) --seeded_count_;
  ep.state = State::kOffline;  // before failing uploads: retries must not pick us
  ep.chunks_done = 0;

  if (!ep.serving.empty()) {
    // Fail every download this node was sourcing. Collect the notifications
    // first: an installer's AbortCallback typically re-enters fetch().
    const std::vector<std::uint32_t> receivers = std::move(ep.serving);
    ep.serving.clear();
    ep.uploads = 0;
    std::vector<std::pair<FairShareChannel::AbortCallback, double>> callbacks;
    callbacks.reserve(receivers.size());
    for (const std::uint32_t r : receivers) {
      Endpoint& rx = endpoints_[r];
      if (!rx.transfer_active || rx.source != Source::kPeer ||
          rx.source_endpoint != endpoint)
        continue;  // the transfer already ended from the receiver's side
      const double partial = rx.channel->abort(rx.flow);
      rx.transfer_active = false;
      rx.source = Source::kNone;
      --active_transfers_;
      ++stats_.churn_aborts;
      rx.fetching = false;
      auto callback = std::move(rx.on_abort);
      rx.on_complete = nullptr;
      callbacks.emplace_back(std::move(callback), cached_bytes(r) + partial);
    }
    for (auto& [callback, total] : callbacks)
      if (callback) callback(total);
  }
  if (waiter_count_ > 0 && active_transfers_ == 0) arm_rescue_poll();
  return own;
}

void PeerDistribution::enqueue_waiter(std::uint32_t endpoint) {
  Endpoint& ep = endpoints_[endpoint];
  if (ep.waiting) return;
  ep.waiting = true;
  ++waiter_count_;
  ++stats_.waits;
  const std::uint32_t rack = topology_.rack_of(endpoint);
  if (rack_waiters_[rack].empty()) racks_with_waiters_.push_back(rack);
  rack_waiters_[rack].push_back(endpoint);
  if (active_transfers_ == 0) arm_rescue_poll();
}

void PeerDistribution::wake_rack(std::uint32_t rack) {
  if (rack >= rack_waiters_.size()) return;
  auto& queue = rack_waiters_[rack];
  // One bounded pass: a waiter that still cannot start goes back to the
  // tail (start_chunk re-enqueues it), so iterate at most the initial size.
  for (std::size_t n = queue.size(); n > 0 && !queue.empty(); --n) {
    const std::uint32_t candidate = queue.front();
    queue.pop_front();
    Endpoint& ep = endpoints_[candidate];
    if (!ep.waiting) continue;  // stale (went offline or was woken already)
    ep.waiting = false;
    if (waiter_count_ > 0) --waiter_count_;
    start_chunk(candidate);
  }
}

void PeerDistribution::wake_global() {
  // Wakes at most one waiter, round-robin over racks; lazy index entries
  // are discarded as encountered.
  std::size_t attempts = racks_with_waiters_.size();
  while (waiter_count_ > 0 && attempts-- > 0 && !racks_with_waiters_.empty()) {
    const std::uint32_t rack = racks_with_waiters_.front();
    racks_with_waiters_.pop_front();
    auto& queue = rack_waiters_[rack];
    std::int64_t woken = -1;
    while (!queue.empty()) {
      const std::uint32_t candidate = queue.front();
      queue.pop_front();
      if (!endpoints_[candidate].waiting) continue;  // stale
      woken = candidate;
      break;
    }
    if (!queue.empty()) racks_with_waiters_.push_back(rack);
    if (woken >= 0) {
      Endpoint& ep = endpoints_[static_cast<std::uint32_t>(woken)];
      ep.waiting = false;
      if (waiter_count_ > 0) --waiter_count_;
      start_chunk(static_cast<std::uint32_t>(woken));
      return;
    }
  }
}

void PeerDistribution::arm_rescue_poll() {
  if (rescue_armed_) return;
  rescue_armed_ = true;
  // Shared capped-exponential schedule (support::BackoffPolicy): the first
  // poll fires after exactly `base` seconds — the healthy-path timing the
  // old fixed cadence gave — and consecutive no-progress polls back off
  // with jitter instead of hammering a dead seed every 5 s forever.
  const double delay = config_.rescue.delay(rescue_attempts_ + 1, rescue_rng_);
  sim_.schedule(delay, [this] {
    rescue_armed_ = false;
    if (waiter_count_ == 0) {
      rescue_attempts_ = 0;
      return;
    }
    // Wake until a round makes no progress (each wake can start a transfer
    // or re-park the waiter).
    const std::size_t parked = waiter_count_;
    std::size_t before = waiter_count_ + 1;
    while (waiter_count_ < before && waiter_count_ > 0) {
      before = waiter_count_;
      wake_global();
    }
    if (waiter_count_ < parked || active_transfers_ > 0)
      rescue_attempts_ = 0;  // progress: the next park starts at base again
    else
      ++rescue_attempts_;
    if (waiter_count_ > 0 && active_transfers_ == 0) arm_rescue_poll();
  });
}

InstallWaveResult run_install_wave(const InstallWaveParams& params) {
  require_state(params.nodes >= 1, "run_install_wave: need at least one node");
  require_state(params.payload_bytes > 0.0, "run_install_wave: payload required");
  require_state(params.seed_capacity > 0.0, "run_install_wave: seed capacity required");
  const auto wall_start = std::chrono::steady_clock::now();

  Simulator sim;
  HttpServerGroup seed(sim, params.seed_capacity, params.seed_replicas, params.allocator);
  TopologyConfig topology_config = params.topology;
  topology_config.allocator = params.allocator;
  RackTopology topology(sim, topology_config);
  PeerDistribution peers(sim, topology, seed, params.peer);
  peers.register_endpoints(static_cast<std::uint32_t>(params.nodes));

  InstallWaveResult result;
  // Retry schedule mirrors the cluster nodes' download backoff: the shared
  // policy, per-node attempt counters, reset once the fetch lands (the
  // chunk cache makes each retry a resume, so landing is the progress).
  auto retry_attempts = std::make_shared<std::vector<int>>(params.nodes, 0);
  auto retry_rng = std::make_shared<Rng>(params.peer.rescue_seed);
  auto start_fetch = std::make_shared<std::function<void(std::uint32_t)>>();
  *start_fetch = [&, start_fetch, retry_attempts, retry_rng](std::uint32_t node) {
    peers.fetch(
        node, params.payload_bytes, params.demand_cap,
        [&, retry_attempts, node] {
          (*retry_attempts)[node] = 0;
          sim.schedule(params.post_seconds, [&] {
            ++result.completed;
            result.makespan = sim.now();
          });
        },
        [&, start_fetch, retry_attempts, retry_rng, node](double) {
          const double delay =
              params.peer.rescue.delay(++(*retry_attempts)[node], *retry_rng);
          sim.schedule(delay, [&, start_fetch, node] {
            if (!peers.is_seeded(node)) (*start_fetch)(node);
          });
        });
  };
  for (std::size_t i = 0; i < params.nodes; ++i) {
    const auto node = static_cast<std::uint32_t>(i);
    sim.schedule(params.stagger_seconds * static_cast<double>(i), [&, node, start_fetch] {
      peers.begin_install(node);
      sim.schedule(params.pre_seconds, [&, node, start_fetch] { (*start_fetch)(node); });
    });
  }
  sim.run();

  result.events_fired = sim.events_fired();
  result.peer_stats = peers.stats();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

}  // namespace rocks::netsim
