// Fluid max-min fair bandwidth sharing.
//
// The Table I experiment is a bandwidth-contention phenomenon: N installing
// nodes pull RPMs from one HTTP server whose NIC can source ~7 MB/s, while
// each node's install pipeline only consumes ~1 MB/s. This models such a
// shared resource as a fluid: each flow has a demand cap (the client-side
// rate limit), the server has a total capacity, and instantaneous rates are
// the max-min fair allocation (progressive filling). Completions are exact:
// on every membership change rates are recomputed and the next completion
// event is rescheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "netsim/engine.hpp"

namespace rocks::netsim {

using FlowId = std::uint64_t;

class FairShareChannel {
 public:
  /// Receives the bytes that had been delivered when the server side killed
  /// the flow (crash, injected kill) — the client's cue to re-request the
  /// remainder.
  using AbortCallback = std::function<void(double delivered)>;

  /// `capacity` in bytes/second; must be > 0.
  FairShareChannel(Simulator& sim, double capacity);

  /// Starts a flow of `bytes` capped at `demand_cap` bytes/s (<=0 means
  /// uncapped). `on_complete` fires exactly when the last byte arrives;
  /// `on_abort` fires if the server side kills the flow first.
  FlowId start(double bytes, double demand_cap, std::function<void()> on_complete,
               AbortCallback on_abort = {});

  /// Aborts a flow from the client side (e.g. a node is power cycled
  /// mid-download). Returns the bytes that had been delivered; neither the
  /// completion nor the abort callback fires.
  double abort(FlowId id);

  /// Server-side kill of one flow: like abort, but notifies the client via
  /// its AbortCallback so it can retry.
  void kill(FlowId id);
  /// Server crash: kills every active flow (clients are notified after the
  /// channel is emptied). Returns how many flows died.
  std::size_t kill_all();
  /// Active flow ids in start order (deterministic).
  [[nodiscard]] std::vector<FlowId> active_ids() const;

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }
  /// Instantaneous max-min rate of one flow (bytes/s).
  [[nodiscard]] double rate_of(FlowId id) const;
  /// Bytes delivered so far on one flow.
  [[nodiscard]] double delivered(FlowId id);
  /// Bytes still to deliver on one flow (0 for unknown/finished flows).
  [[nodiscard]] double remaining(FlowId id);
  /// Total bytes delivered over all flows, completed ones included.
  [[nodiscard]] double total_delivered() const;
  [[nodiscard]] double capacity() const { return capacity_; }
  void set_capacity(double capacity);

 private:
  struct Flow {
    double total;
    double remaining;
    double cap;
    double rate = 0.0;
    std::function<void()> on_complete;
    AbortCallback on_abort;
  };

  /// Advances all flows to now(), recomputes max-min rates, and schedules
  /// the next completion.
  void rebalance();
  void advance_to_now();
  void on_next_completion();

  Simulator& sim_;
  double capacity_;
  std::map<FlowId, Flow> flows_;
  FlowId next_id_ = 1;
  double last_update_ = 0.0;
  double total_delivered_ = 0.0;
  EventId pending_event_ = 0;
  bool event_scheduled_ = false;
};

}  // namespace rocks::netsim
