// Fluid max-min fair bandwidth sharing.
//
// The Table I experiment is a bandwidth-contention phenomenon: N installing
// nodes pull RPMs from one HTTP server whose NIC can source ~7 MB/s, while
// each node's install pipeline only consumes ~1 MB/s. This models such a
// shared resource as a fluid: each flow has a demand cap (the client-side
// rate limit), the server has a total capacity, and instantaneous rates are
// the max-min fair allocation. Completions are exact: on every membership
// change rates are recomputed and the next completion event is rescheduled.
//
// The allocator is incremental (DESIGN.md §14.3). Flows are grouped into
// *cap classes* — one per distinct demand cap, kept sorted by cap — and the
// water level is found by a single ascending pass over the classes. Each
// class carries a cumulative service integral S_c(t) = ∫ rate_c dt; a flow
// joining at service S0 with B bytes completes exactly when S_c reaches
// S0 + B, which a per-class min-heap of completion targets answers in
// O(log n). A membership change therefore costs O(classes + log n) instead
// of the former O(n) full recompute — and installs share one demand cap, so
// classes ≈ 1 and the hot path is O(log n). The former full-recompute
// behaviour is retained as Allocator::kReference: same arithmetic, but the
// class table is rebuilt from a scan of every live flow on every membership
// change, and completions are found by scanning. Both modes produce
// bit-identical rates and completion times (the property suite and the
// bench tripwire enforce this), so the reference is both the correctness
// oracle and the perf baseline.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "netsim/engine.hpp"

namespace rocks::netsim {

using FlowId = std::uint64_t;

/// Which rate allocator a channel runs (see file comment).
enum class Allocator {
  kIncremental,  // persistent cap-class table, O(classes + log n) per change
  kReference,    // full O(n) rebuild + scan per change; correctness oracle
};

/// Counter block for bench phase accounting (reset_stats mirrors sqldb's).
struct ChannelStats {
  std::uint64_t rebalances = 0;   // rate recomputations (membership changes)
  std::uint64_t flow_joins = 0;   // start() calls
  std::size_t peak_active = 0;    // high-water concurrent flows
};

class FairShareChannel {
 public:
  /// Receives the bytes that had been delivered when the server side killed
  /// the flow (crash, injected kill) — the client's cue to re-request the
  /// remainder.
  using AbortCallback = std::function<void(double delivered)>;

  /// `capacity` in bytes/second; must be > 0.
  FairShareChannel(Simulator& sim, double capacity,
                   Allocator allocator = Allocator::kIncremental);

  /// Starts a flow of `bytes` capped at `demand_cap` bytes/s (<=0 means
  /// uncapped). `on_complete` fires exactly when the last byte arrives;
  /// `on_abort` fires if the server side kills the flow first.
  FlowId start(double bytes, double demand_cap, std::function<void()> on_complete,
               AbortCallback on_abort = {});

  /// Aborts a flow from the client side (e.g. a node is power cycled
  /// mid-download). Returns the bytes that had been delivered; neither the
  /// completion nor the abort callback fires.
  double abort(FlowId id);

  /// Server-side kill of one flow: like abort, but notifies the client via
  /// its AbortCallback so it can retry.
  void kill(FlowId id);
  /// Server crash: kills every active flow (clients are notified after the
  /// channel is emptied). Returns how many flows died.
  std::size_t kill_all();
  /// Active flow ids in start order (deterministic).
  [[nodiscard]] std::vector<FlowId> active_ids() const;

  [[nodiscard]] std::size_t active_flows() const { return live_count_; }
  /// Instantaneous max-min rate of one flow (bytes/s).
  [[nodiscard]] double rate_of(FlowId id) const;
  /// Bytes delivered so far on one flow. Pure read: the flow's progress is
  /// evaluated at now() without mutating the channel.
  [[nodiscard]] double delivered(FlowId id) const;
  /// Bytes still to deliver on one flow (0 for unknown/finished flows).
  [[nodiscard]] double remaining(FlowId id) const;
  /// Total bytes delivered over all flows, completed ones included.
  [[nodiscard]] double total_delivered() const;
  [[nodiscard]] double capacity() const { return capacity_; }
  void set_capacity(double capacity);

  [[nodiscard]] Allocator allocator() const { return allocator_; }
  [[nodiscard]] const ChannelStats& stats() const { return stats_; }
  /// Zeroes the counter block (peak_active restarts from the current
  /// membership) so benches can account per phase.
  void reset_stats();

 private:
  /// Completion-target heap entry: the flow at `slot` completes when its
  /// class's service integral reaches `target`.
  struct TargetEntry {
    double target;
    std::uint64_t seq;  // start order, deterministic tie-break
    std::uint32_t slot;
  };

  /// One distinct demand cap. `service` integrates the per-flow rate of
  /// this class; flow progress is measured as service deltas, so advancing
  /// the clock costs O(classes), not O(flows).
  struct CapClass {
    double rate = 0.0;     // current per-flow rate (bytes/s)
    double service = 0.0;  // ∫ rate dt since the class was created
    std::size_t count = 0;
    double start_sum = 0.0;  // Σ start_service of member flows (accounting)
    std::vector<TargetEntry> heap;  // min-heap by (target, seq); lazy-dead
    std::size_t heap_dead = 0;
  };

  struct FlowSlot {
    double total = 0.0;
    double start_service = 0.0;  // class service at join
    double target = 0.0;         // start_service + total
    double cap_key = 0.0;        // owning class key (cap; +inf = uncapped)
    std::uint64_t seq = 0;       // start order
    FlowId id = 0;               // staleness check
    bool live = false;
    std::function<void()> on_complete;
    AbortCallback on_abort;
  };

  [[nodiscard]] static bool target_later(const TargetEntry& a, const TargetEntry& b) {
    if (a.target != b.target) return a.target > b.target;
    return a.seq > b.seq;
  }

  /// Advances every class's service integral to now() (O(classes)).
  void advance_to_now();
  /// Recomputes per-class rates and reschedules the next completion.
  void rebalance();
  /// Ascending water-filling pass over the (already correct) class table.
  void allocate();
  /// kReference: rebuild the class table by scanning every live flow.
  void rebuild_classes_by_scan();
  void schedule_next_completion();
  void on_next_completion();
  /// Class service evaluated at now() without mutating (read path).
  [[nodiscard]] double service_now(const CapClass& cls) const;
  [[nodiscard]] const FlowSlot* find(FlowId id) const;
  /// Detaches a live flow from its class (count, sums, heap bookkeeping)
  /// and frees its slot. Returns bytes delivered. Caller rebalances.
  double remove_flow(std::uint32_t slot);
  std::uint32_t acquire_slot();

  Simulator& sim_;
  double capacity_;
  Allocator allocator_;
  std::map<double, CapClass> classes_;  // sorted by cap ascending
  std::vector<FlowSlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
  double last_update_ = 0.0;
  double closed_delivered_ = 0.0;  // bytes of completed/aborted/killed flows
  EventId pending_event_ = 0;
  bool event_scheduled_ = false;
  ChannelStats stats_;
};

}  // namespace rocks::netsim
