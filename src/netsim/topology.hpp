// Rack-aware network topology for peer-assisted installs.
//
// The paper's clusters are built from racks of nodes on Fast Ethernet
// switches whose uplinks into the core are oversubscribed (Section 3:
// 24-32 nodes per switch, one or two 100 Mbit uplinks). Peer-to-peer
// package distribution lives or dies on that distinction: a same-rack
// transfer rides the cheap leaf switch, a cross-rack transfer squeezes
// through the shared uplink.
//
// The model is deliberately a single-bottleneck approximation: each rack
// owns two FairShareChannels — the leaf switch fabric and the uplink — and
// every transfer is charged to exactly one channel:
//
//   same rack            -> the rack's leaf channel
//   cross rack / to seed -> the *source* rack's uplink (sender-side
//                           oversubscription is what limits a peer serving
//                           a distant installer)
//
// That keeps every transfer a single flow (no multi-channel min-rate
// coupling) while still producing the behaviour that matters: swarm modes
// that prefer same-rack sources scale with rack count, naive cross-rack
// swarms collapse onto the uplinks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "netsim/flow.hpp"

namespace rocks::netsim {

struct TopologyConfig {
  std::size_t nodes_per_rack = 32;       // paper: 24-32 node racks
  double rack_capacity = 0.0;            // leaf switch fabric, bytes/s
  double uplink_capacity = 0.0;          // rack-to-core uplink, bytes/s
  Allocator allocator = Allocator::kIncremental;
};

/// Endpoint ids are dense indices assigned by the owner (cluster or bench)
/// in node order; rack = endpoint / nodes_per_rack.
class RackTopology {
 public:
  RackTopology(Simulator& sim, TopologyConfig config);

  /// Ensures channels exist for every rack housing endpoints [0, count).
  void ensure_endpoints(std::uint32_t count);

  [[nodiscard]] std::uint32_t rack_of(std::uint32_t endpoint) const {
    return endpoint / static_cast<std::uint32_t>(config_.nodes_per_rack);
  }
  [[nodiscard]] bool same_rack(std::uint32_t a, std::uint32_t b) const {
    return rack_of(a) == rack_of(b);
  }

  /// The single bottleneck channel a src->dst peer transfer is charged to
  /// (see file comment). Both endpoints must be below ensure_endpoints().
  [[nodiscard]] FairShareChannel& path_channel(std::uint32_t src, std::uint32_t dst);
  /// Channel for a seed (frontend) -> dst transfer's last hop. The seed NIC
  /// itself is modelled by HttpServer; this adds the installer rack's uplink
  /// only when it is tighter than unconstrained (uplink_capacity > 0).
  [[nodiscard]] FairShareChannel* seed_path_channel(std::uint32_t dst);

  [[nodiscard]] std::size_t rack_count() const { return racks_.size(); }
  [[nodiscard]] FairShareChannel& rack_channel(std::uint32_t rack) {
    return *racks_[rack]->leaf;
  }
  [[nodiscard]] FairShareChannel& uplink_channel(std::uint32_t rack) {
    return *racks_[rack]->uplink;
  }
  [[nodiscard]] const TopologyConfig& config() const { return config_; }

 private:
  struct Rack {
    std::unique_ptr<FairShareChannel> leaf;
    std::unique_ptr<FairShareChannel> uplink;
  };

  Simulator& sim_;
  TopologyConfig config_;
  std::vector<std::unique_ptr<Rack>> racks_;
};

}  // namespace rocks::netsim
