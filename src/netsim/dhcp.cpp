#include "netsim/dhcp.hpp"

#include "netsim/fault.hpp"
#include "support/strings.hpp"

namespace rocks::netsim {

DhcpServer::DhcpServer(Simulator& sim, SyslogBus& syslog, std::string host_name, Ipv4 server_ip)
    : sim_(sim), syslog_(syslog), host_name_(std::move(host_name)), server_ip_(server_ip) {}

void DhcpServer::configure(std::map<Mac, DhcpLease> bindings) {
  bindings_ = std::move(bindings);
}

void DhcpServer::add_binding(Mac mac, DhcpLease lease) {
  bindings_.insert_or_assign(mac, std::move(lease));
}

std::optional<DhcpLease> DhcpServer::discover(Mac mac) {
  // A dropped broadcast never reaches the daemon: no accounting, no syslog
  // (so insert-ethers cannot learn about the node from a lost packet), and
  // no OFFER — the client's retry loop is its only recourse.
  if (faults_ != nullptr && faults_->drop_discover()) return std::nullopt;
  ++discovers_;
  const auto it = bindings_.find(mac);
  if (it == bindings_.end()) {
    ++unanswered_;
    syslog_.publish({sim_.now(), "dhcpd", host_name_,
                     strings::cat("DHCPDISCOVER from ", mac.to_string(),
                                  " via eth0: network 10.0.0.0/8: no free leases")});
    return std::nullopt;
  }
  syslog_.publish({sim_.now(), "dhcpd", host_name_,
                   strings::cat("DHCPOFFER on ", it->second.ip.to_string(), " to ",
                                mac.to_string(), " via eth0")});
  return it->second;
}

}  // namespace rocks::netsim
