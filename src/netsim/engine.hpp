// Discrete-event simulation engine.
//
// Everything time-dependent in the reproduction — reboots, kickstart
// requests, RPM downloads sharing the frontend's Ethernet, driver rebuilds,
// DHCP exchanges — runs as events on one of these simulators. Determinism:
// events at equal times fire in scheduling order.
//
// Layout is tuned for the 100k-node reinstall simulations (DESIGN.md §14.4):
// callbacks live in a recycled slot pool, so the binary heap orders bare
// 24-byte {time, seq, slot} entries instead of moving std::function objects
// through every sift; cancellation clears the slot in O(1) and leaves a dead
// heap entry behind, reclaimed lazily on pop or eagerly by a batched
// compaction pass once dead entries outnumber live ones.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace rocks::netsim {

using EventId = std::uint64_t;

class Simulator {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(double delay, std::function<void()> fn);
  /// Schedules at an absolute time (>= now()).
  EventId schedule_at(double time, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown id is
  /// a harmless no-op. O(1): the callback is released immediately and the
  /// heap entry dies in place.
  void cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final time.
  double run();
  /// Runs events with time <= `deadline`, then sets now() to `deadline`.
  void run_until(double deadline);
  /// Fires exactly one event if any is pending; returns false when idle.
  bool step();

  /// Live (not cancelled) events still queued.
  [[nodiscard]] std::size_t pending_events() const { return heap_.size() - dead_; }
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  /// Cancelled events whose heap entries have not been reclaimed yet. Each
  /// entry is dropped when popped (lazy deletion); the whole backlog is
  /// compacted away eagerly when dead entries exceed half the queue (past a
  /// small floor, so micro-queues are not rebuilt on every cancel), and
  /// trivially when the queue drains — cancel-heavy workloads (swarm churn,
  /// superseded retry timers) never retain entries forever.
  [[nodiscard]] std::size_t cancelled_backlog() const { return dead_; }
  /// Times the batched compaction pass ran (observability for the benches).
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

 private:
  /// Heap entries carry no callback: sift-up/down moves 24 bytes.
  struct HeapEntry {
    double time;
    std::uint64_t seq;  // FIFO among simultaneous events
    std::uint32_t slot;
  };
  struct Slot {
    std::function<void()> fn;
    EventId id = 0;     // full id last issued for this slot (staleness check)
    bool live = false;  // scheduled and neither fired nor cancelled
  };

  /// Dead entries allowed before an eager compaction is considered.
  static constexpr std::size_t kCompactFloor = 64;

  [[nodiscard]] static bool later(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Rebuilds the heap without its dead entries (O(live)).
  void compact();

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t dead_ = 0;  // cancelled entries still in heap_
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace rocks::netsim
