// Discrete-event simulation engine.
//
// Everything time-dependent in the reproduction — reboots, kickstart
// requests, RPM downloads sharing the frontend's Ethernet, driver rebuilds,
// DHCP exchanges — runs as events on one of these simulators. Determinism:
// events at equal times fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace rocks::netsim {

using EventId = std::uint64_t;

class Simulator {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(double delay, std::function<void()> fn);
  /// Schedules at an absolute time (>= now()).
  EventId schedule_at(double time, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown id is
  /// a harmless no-op (events are removed lazily).
  void cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final time.
  double run();
  /// Runs events with time <= `deadline`, then sets now() to `deadline`.
  void run_until(double deadline);
  /// Fires exactly one event if any is pending; returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }
  /// Cancelled ids not yet reclaimed. Each id is dropped from the set when
  /// its queue entry is popped (lazy deletion with compaction), and the set
  /// is cleared outright whenever the queue drains, so cancel-heavy
  /// workloads do not retain ids forever.
  [[nodiscard]] std::size_t cancelled_backlog() const { return cancelled_.size(); }

 private:
  struct Event {
    double time;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  void fire(Event& event);
  /// True (and reclaims the entry) when `id` was cancelled.
  bool consume_cancelled(EventId id);

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<EventId> cancelled_;  // lazy-deletion set
};

}  // namespace rocks::netsim
