// Discrete-event simulation engine.
//
// Everything time-dependent in the reproduction — reboots, kickstart
// requests, RPM downloads sharing the frontend's Ethernet, driver rebuilds,
// DHCP exchanges — runs as events on one of these simulators. Determinism:
// events at equal times fire in scheduling order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rocks::netsim {

using EventId = std::uint64_t;

class Simulator {
 public:
  /// Current simulation time in seconds.
  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventId schedule(double delay, std::function<void()> fn);
  /// Schedules at an absolute time (>= now()).
  EventId schedule_at(double time, std::function<void()> fn);

  /// Cancels a pending event; cancelling an already-fired or unknown id is
  /// a harmless no-op (events are removed lazily).
  void cancel(EventId id);

  /// Runs until the event queue is empty. Returns the final time.
  double run();
  /// Runs events with time <= `deadline`, then sets now() to `deadline`.
  void run_until(double deadline);
  /// Fires exactly one event if any is pending; returns false when idle.
  bool step();

  [[nodiscard]] std::size_t pending_events() const;
  [[nodiscard]] std::uint64_t events_fired() const { return fired_; }

 private:
  struct Event {
    double time;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  void fire(Event& event);

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<EventId> cancelled_;  // lazy-deletion set (sorted on demand)
  bool cancelled_dirty_ = false;
  [[nodiscard]] bool is_cancelled(EventId id);
};

}  // namespace rocks::netsim
