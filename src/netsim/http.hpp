// HTTP distribution service.
//
// Rocks installs pull everything over HTTP because it is trivially scalable:
// "Replicating an installation web server is straightforward - downloading
// RPMs is strictly read only" (paper Section 6.3). HttpServer models one
// server NIC as a fair-shared channel; HttpServerGroup adds the paper's
// load-balancing replication strategy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "netsim/flow.hpp"

namespace rocks::netsim {

struct HttpStats {
  std::uint64_t requests = 0;
  double bytes_served = 0.0;
  std::uint64_t crashes = 0;       // times this replica went down
  std::uint64_t flows_killed = 0;  // downloads aborted by crash/kill
};

class HttpServer {
 public:
  /// `capacity` = sustained source rate of the server NIC in bytes/s (the
  /// paper measured 7-8 MB/s for the dual-PIII on Fast Ethernet).
  HttpServer(Simulator& sim, std::string name, double capacity,
             Allocator allocator = Allocator::kIncremental);

  /// Serves a download of `bytes`; `client_cap` is the client-side consume
  /// rate (<= 0 for uncapped). Fires `on_complete` when done, or `on_abort`
  /// (with the bytes delivered so far) if the server dies first. Throws
  /// UnavailableError while the server is down.
  FlowId serve(double bytes, double client_cap, std::function<void()> on_complete,
               FairShareChannel::AbortCallback on_abort = {});
  /// Aborts an in-flight download from the client side (no notification);
  /// returns delivered bytes.
  double abort(FlowId id);

  // --- fault injection surface ---------------------------------------------
  /// The replica process dies: every in-flight download is killed (clients
  /// get their on_abort) and new requests are refused until restart().
  void crash();
  /// The replica comes back up, with no memory of old flows.
  void restart();
  [[nodiscard]] bool is_up() const { return up_; }
  /// Kills the oldest in-flight download (a mid-transfer connection reset),
  /// notifying the client. Returns false when idle.
  bool kill_one_flow();

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t active_downloads() const { return channel_.active_flows(); }
  [[nodiscard]] double rate_of(FlowId id) const { return channel_.rate_of(id); }
  [[nodiscard]] const HttpStats& stats() const { return stats_; }
  [[nodiscard]] double capacity() const { return channel_.capacity(); }
  void set_capacity(double capacity) { channel_.set_capacity(capacity); }

  /// Caps every individual download at `cap` bytes/s regardless of the
  /// client's own demand (a single TCP stream on Fast Ethernet tops out
  /// near 7.5 MB/s even when the NIC can source more in aggregate).
  /// 0 disables the cap. Applies to subsequently started downloads.
  void set_per_stream_cap(double cap) { per_stream_cap_ = cap; }
  [[nodiscard]] double per_stream_cap() const { return per_stream_cap_; }

 private:
  std::string name_;
  FairShareChannel channel_;
  HttpStats stats_;
  double per_stream_cap_ = 0.0;
  bool up_ = true;
};

/// N replicated servers behind a least-connections load balancer; with N=1
/// this degrades to a single server, so the cluster module always talks to a
/// group. Routing skips down replicas, so a crash transparently fails new
/// requests (and client retries of killed flows) over to the survivors.
class HttpServerGroup {
 public:
  HttpServerGroup(Simulator& sim, double capacity_each, std::size_t count = 1,
                  Allocator allocator = Allocator::kIncremental);

  struct Ticket {
    HttpServer* server = nullptr;
    FlowId flow = 0;
  };
  /// Routes to the up replica with the fewest active downloads. When every
  /// replica is down the Ticket's server is nullptr and no flow starts —
  /// the caller must retry later.
  Ticket serve(double bytes, double client_cap, std::function<void()> on_complete,
               FairShareChannel::AbortCallback on_abort = {});

  [[nodiscard]] std::size_t server_count() const { return servers_.size(); }
  [[nodiscard]] HttpServer& server(std::size_t i) { return *servers_[i]; }
  /// Applies a per-stream cap to every replica (see HttpServer).
  void set_per_stream_cap(double cap);
  [[nodiscard]] std::size_t active_downloads() const;
  [[nodiscard]] double total_bytes_served() const;

  // --- fault injection surface ---------------------------------------------
  void crash_replica(std::size_t i);
  void restart_replica(std::size_t i);
  [[nodiscard]] bool replica_up(std::size_t i) const;
  [[nodiscard]] std::size_t up_count() const;
  /// Kills one in-flight download on replica `i`; false when it has none.
  bool kill_flow_on(std::size_t i);

 private:
  std::vector<std::unique_ptr<HttpServer>> servers_;
};

}  // namespace rocks::netsim
