#include "netsim/engine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rocks::netsim {

EventId Simulator::schedule(double delay, std::function<void()> fn) {
  require_state(delay >= 0.0, "Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(double time, std::function<void()> fn) {
  require_state(time >= now_, "Simulator::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(Event{time, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  cancelled_.push_back(id);
  cancelled_dirty_ = true;
}

bool Simulator::is_cancelled(EventId id) {
  if (cancelled_dirty_) {
    std::sort(cancelled_.begin(), cancelled_.end());
    cancelled_dirty_ = false;
  }
  return std::binary_search(cancelled_.begin(), cancelled_.end(), id);
}

void Simulator::fire(Event& event) {
  now_ = event.time;
  ++fired_;
  // Move out so the callback may schedule/cancel freely.
  auto fn = std::move(event.fn);
  fn();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (is_cancelled(event.id)) continue;
    fire(event);
    return true;
  }
  return false;
}

double Simulator::run() {
  while (step()) {
  }
  return now_;
}

void Simulator::run_until(double deadline) {
  require_state(deadline >= now_, "Simulator::run_until: deadline in the past");
  while (!queue_.empty()) {
    Event event = queue_.top();
    if (event.time > deadline) break;
    queue_.pop();
    if (is_cancelled(event.id)) continue;
    fire(event);
  }
  now_ = deadline;
}

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace rocks::netsim
