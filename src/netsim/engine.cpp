#include "netsim/engine.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rocks::netsim {
namespace {

// EventId = (seq << kSlotBits) | slot. 24 slot bits allow 16.7M events
// pending at once; 40 seq bits allow ~10^12 events per simulator lifetime.
constexpr std::uint32_t kSlotBits = 24;
constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;

}  // namespace

std::uint32_t Simulator::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  require_state(slots_.size() < kSlotMask, "Simulator: too many pending events");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::release_slot(std::uint32_t slot) {
  slots_[slot].fn = nullptr;
  slots_[slot].live = false;
  free_slots_.push_back(slot);
}

EventId Simulator::schedule(double delay, std::function<void()> fn) {
  require_state(delay >= 0.0, "Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(double time, std::function<void()> fn) {
  require_state(time >= now_, "Simulator::schedule_at: time in the past");
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot();
  const EventId id = (seq << kSlotBits) | slot;
  slots_[slot].fn = std::move(fn);
  slots_[slot].id = id;
  slots_[slot].live = true;
  heap_.push_back(HeapEntry{time, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), later);
  return id;
}

void Simulator::cancel(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & kSlotMask);
  if (slot >= slots_.size()) return;
  Slot& entry = slots_[slot];
  if (!entry.live || entry.id != id) return;  // already fired, or a stale id
  entry.live = false;
  entry.fn = nullptr;  // release the closure now; the heap entry is inert
  ++dead_;
  // Batched compaction: once dead entries outnumber the live ones (past a
  // floor that spares micro-queues), one O(live) rebuild reclaims them all.
  // Amortized O(1) per cancel: reaching the trigger again takes at least
  // `live` further cancels.
  if (dead_ > kCompactFloor && dead_ * 2 > heap_.size()) compact();
}

void Simulator::compact() {
  // A slot is released exactly when its (single) heap entry leaves the heap,
  // so an entry's slot cannot have been recycled under it: liveness alone
  // decides.
  std::size_t kept = 0;
  for (const HeapEntry& entry : heap_) {
    if (slots_[entry.slot].live) {
      heap_[kept++] = entry;
    } else {
      release_slot(entry.slot);
    }
  }
  heap_.resize(kept);
  std::make_heap(heap_.begin(), heap_.end(), later);
  dead_ = 0;
  ++compactions_;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    Slot& entry = slots_[top.slot];
    if (!entry.live) {
      // Cancelled: reclaim the slot now that its heap entry is gone.
      release_slot(top.slot);
      if (dead_ > 0) --dead_;
      continue;
    }
    now_ = top.time;
    ++fired_;
    // Move the callback out and free the slot first: the callback may
    // schedule new events (reusing this slot) or cancel others.
    auto fn = std::move(entry.fn);
    release_slot(top.slot);
    fn();
    return true;
  }
  dead_ = 0;
  return false;
}

double Simulator::run() {
  while (step()) {
  }
  return now_;
}

void Simulator::run_until(double deadline) {
  require_state(deadline >= now_, "Simulator::run_until: deadline in the past");
  while (!heap_.empty() && heap_.front().time <= deadline) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), later);
    heap_.pop_back();
    Slot& entry = slots_[top.slot];
    if (!entry.live) {
      release_slot(top.slot);
      if (dead_ > 0) --dead_;
      continue;
    }
    now_ = top.time;
    ++fired_;
    auto fn = std::move(entry.fn);
    release_slot(top.slot);
    fn();
  }
  if (heap_.empty()) dead_ = 0;
  now_ = deadline;
}

}  // namespace rocks::netsim
