#include "netsim/engine.hpp"

#include "support/error.hpp"

namespace rocks::netsim {

EventId Simulator::schedule(double delay, std::function<void()> fn) {
  require_state(delay >= 0.0, "Simulator::schedule: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(double time, std::function<void()> fn) {
  require_state(time >= now_, "Simulator::schedule_at: time in the past");
  const EventId id = next_id_++;
  queue_.push(Event{time, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) { cancelled_.insert(id); }

bool Simulator::consume_cancelled(EventId id) { return cancelled_.erase(id) > 0; }

void Simulator::fire(Event& event) {
  now_ = event.time;
  ++fired_;
  // Move out so the callback may schedule/cancel freely.
  auto fn = std::move(event.fn);
  fn();
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event event = queue_.top();
    queue_.pop();
    if (consume_cancelled(event.id)) continue;
    fire(event);
    return true;
  }
  // Queue drained: any still-recorded cancellations reference ids that will
  // never be popped (already fired, or never existed) — reclaim them all.
  cancelled_.clear();
  return false;
}

double Simulator::run() {
  while (step()) {
  }
  return now_;
}

void Simulator::run_until(double deadline) {
  require_state(deadline >= now_, "Simulator::run_until: deadline in the past");
  while (!queue_.empty()) {
    Event event = queue_.top();
    if (event.time > deadline) break;
    queue_.pop();
    if (consume_cancelled(event.id)) continue;
    fire(event);
  }
  if (queue_.empty()) cancelled_.clear();
  now_ = deadline;
}

std::size_t Simulator::pending_events() const { return queue_.size(); }

}  // namespace rocks::netsim
