// Point-to-point replication transport between frontends.
//
// WAL shipping (DESIGN.md §12) rides a dedicated leader→follower link, not
// the install HTTP fabric: in the paper's deployment the frontends share a
// management VLAN whose capacity is independent of the compute nodes'
// install pulse. A ReplicationLink models that pipe as latency + bandwidth:
// each deliver() charges `latency + bytes / bandwidth` seconds of simulated
// transfer time and returns the cost, so the control plane can account
// follower lag in the same clock the installs run on. Severing the link
// (cable pull, switch death — scheduled through FaultInjector::wire_links)
// makes deliver() throw UnavailableError; the shipper treats that exactly
// like a crashed peer and falls into its reconnect backoff.
#pragma once

#include <cstdint>
#include <string>

#include "netsim/engine.hpp"

namespace rocks::netsim {

struct LinkStats {
  std::uint64_t deliveries = 0;
  std::uint64_t bytes = 0;
  std::uint64_t refusals = 0;  // deliver() attempts while severed
  std::uint64_t severs = 0;
  std::uint64_t restores = 0;
};

class ReplicationLink {
 public:
  /// `bandwidth` in bytes/s; the default models the paper-era 100 Mbit
  /// management VLAN (~11.9 MB/s), `latency` one switch hop.
  explicit ReplicationLink(Simulator& sim, std::string name = "repl-link",
                           double bandwidth = 11.9 * 1024 * 1024, double latency = 200e-6);

  /// Charges the transfer cost for `bytes` and returns it in seconds.
  /// Throws UnavailableError when the link is severed.
  double deliver(std::uint64_t bytes);

  /// Cable pull: subsequent deliveries throw until restore().
  void sever();
  void restore();
  [[nodiscard]] bool severed() const { return severed_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const LinkStats& stats() const { return stats_; }

 private:
  Simulator& sim_;
  std::string name_;
  double bandwidth_;
  double latency_;
  bool severed_ = false;
  LinkStats stats_;
};

}  // namespace rocks::netsim
