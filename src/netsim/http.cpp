#include "netsim/http.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::netsim {

HttpServer::HttpServer(Simulator& sim, std::string name, double capacity)
    : name_(std::move(name)), channel_(sim, capacity) {}

FlowId HttpServer::serve(double bytes, double client_cap, std::function<void()> on_complete) {
  ++stats_.requests;
  stats_.bytes_served += bytes;  // accounted at request time; aborts subtract
  double cap = client_cap;
  if (per_stream_cap_ > 0.0) cap = cap > 0.0 ? std::min(cap, per_stream_cap_) : per_stream_cap_;
  return channel_.start(bytes, cap, std::move(on_complete));
}

double HttpServer::abort(FlowId id) {
  // bytes_served counted the full request up front; give back what was
  // never delivered.
  stats_.bytes_served -= channel_.remaining(id);
  return channel_.abort(id);
}

HttpServerGroup::HttpServerGroup(Simulator& sim, double capacity_each, std::size_t count) {
  require_state(count >= 1, "HttpServerGroup needs at least one server");
  for (std::size_t i = 0; i < count; ++i)
    servers_.push_back(
        std::make_unique<HttpServer>(sim, strings::cat("web-", i), capacity_each));
}

HttpServerGroup::Ticket HttpServerGroup::serve(double bytes, double client_cap,
                                               std::function<void()> on_complete) {
  // Least connections (what an L4 load balancer of the era would do).
  HttpServer* best = servers_[0].get();
  for (const auto& server : servers_)
    if (server->active_downloads() < best->active_downloads()) best = server.get();
  Ticket ticket;
  ticket.server = best;
  ticket.flow = best->serve(bytes, client_cap, std::move(on_complete));
  return ticket;
}

void HttpServerGroup::set_per_stream_cap(double cap) {
  for (const auto& server : servers_) server->set_per_stream_cap(cap);
}

std::size_t HttpServerGroup::active_downloads() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->active_downloads();
  return total;
}

double HttpServerGroup::total_bytes_served() const {
  double total = 0.0;
  for (const auto& server : servers_) total += server->stats().bytes_served;
  return total;
}

}  // namespace rocks::netsim
