#include "netsim/http.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::netsim {

HttpServer::HttpServer(Simulator& sim, std::string name, double capacity, Allocator allocator)
    : name_(std::move(name)), channel_(sim, capacity, allocator) {}

FlowId HttpServer::serve(double bytes, double client_cap, std::function<void()> on_complete,
                         FairShareChannel::AbortCallback on_abort) {
  if (!up_)
    throw UnavailableError(strings::cat("http: ", name_, " is down (connection refused)"));
  ++stats_.requests;
  stats_.bytes_served += bytes;  // accounted at request time; aborts subtract
  double cap = client_cap;
  if (per_stream_cap_ > 0.0) cap = cap > 0.0 ? std::min(cap, per_stream_cap_) : per_stream_cap_;
  return channel_.start(bytes, cap, std::move(on_complete), std::move(on_abort));
}

double HttpServer::abort(FlowId id) {
  // bytes_served counted the full request up front; give back what was
  // never delivered.
  stats_.bytes_served -= channel_.remaining(id);
  return channel_.abort(id);
}

void HttpServer::crash() {
  if (!up_) return;
  up_ = false;
  ++stats_.crashes;
  // Undelivered bytes were accounted at request time; refund them before the
  // flows disappear (their clients will re-request the remainder elsewhere).
  for (const FlowId id : channel_.active_ids()) stats_.bytes_served -= channel_.remaining(id);
  stats_.flows_killed += channel_.kill_all();
}

void HttpServer::restart() { up_ = true; }

bool HttpServer::kill_one_flow() {
  const auto ids = channel_.active_ids();
  if (ids.empty()) return false;
  stats_.bytes_served -= channel_.remaining(ids.front());
  ++stats_.flows_killed;
  channel_.kill(ids.front());
  return true;
}

HttpServerGroup::HttpServerGroup(Simulator& sim, double capacity_each, std::size_t count,
                                 Allocator allocator) {
  require_state(count >= 1, "HttpServerGroup needs at least one server");
  for (std::size_t i = 0; i < count; ++i)
    servers_.push_back(
        std::make_unique<HttpServer>(sim, strings::cat("web-", i), capacity_each, allocator));
}

HttpServerGroup::Ticket HttpServerGroup::serve(double bytes, double client_cap,
                                               std::function<void()> on_complete,
                                               FairShareChannel::AbortCallback on_abort) {
  // Least connections among the replicas that answer their health check
  // (what an L4 load balancer of the era would do).
  HttpServer* best = nullptr;
  for (const auto& server : servers_) {
    if (!server->is_up()) continue;
    if (best == nullptr || server->active_downloads() < best->active_downloads())
      best = server.get();
  }
  Ticket ticket;
  if (best == nullptr) return ticket;  // every replica down: caller retries
  ticket.server = best;
  ticket.flow = best->serve(bytes, client_cap, std::move(on_complete), std::move(on_abort));
  return ticket;
}

void HttpServerGroup::crash_replica(std::size_t i) {
  require_state(i < servers_.size(), "crash_replica: no such replica");
  servers_[i]->crash();
}

void HttpServerGroup::restart_replica(std::size_t i) {
  require_state(i < servers_.size(), "restart_replica: no such replica");
  servers_[i]->restart();
}

bool HttpServerGroup::replica_up(std::size_t i) const {
  require_state(i < servers_.size(), "replica_up: no such replica");
  return servers_[i]->is_up();
}

std::size_t HttpServerGroup::up_count() const {
  std::size_t up = 0;
  for (const auto& server : servers_)
    if (server->is_up()) ++up;
  return up;
}

bool HttpServerGroup::kill_flow_on(std::size_t i) {
  require_state(i < servers_.size(), "kill_flow_on: no such replica");
  return servers_[i]->kill_one_flow();
}

void HttpServerGroup::set_per_stream_cap(double cap) {
  for (const auto& server : servers_) server->set_per_stream_cap(cap);
}

std::size_t HttpServerGroup::active_downloads() const {
  std::size_t total = 0;
  for (const auto& server : servers_) total += server->active_downloads();
  return total;
}

double HttpServerGroup::total_bytes_served() const {
  double total = 0.0;
  for (const auto& server : servers_) total += server->stats().bytes_served;
  return total;
}

}  // namespace rocks::netsim
