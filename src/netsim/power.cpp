#include "netsim/power.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::netsim {

void PowerDistributionUnit::attach(std::string outlet, OutletAction on_power_cycle) {
  outlets_.insert_or_assign(std::move(outlet), std::move(on_power_cycle));
}

void PowerDistributionUnit::detach(std::string_view outlet) {
  const auto it = outlets_.find(outlet);
  if (it != outlets_.end()) outlets_.erase(it);
}

void PowerDistributionUnit::power_cycle(std::string_view outlet) {
  const auto it = outlets_.find(outlet);
  require_found(it != outlets_.end(),
                strings::cat("PDU has no outlet named '", std::string(outlet), "'"));
  ++cycles_;
  it->second();
}

}  // namespace rocks::netsim
