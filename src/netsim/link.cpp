#include "netsim/link.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::netsim {

ReplicationLink::ReplicationLink(Simulator& sim, std::string name, double bandwidth,
                                 double latency)
    : sim_(sim), name_(std::move(name)), bandwidth_(bandwidth), latency_(latency) {}

double ReplicationLink::deliver(std::uint64_t bytes) {
  if (severed_) {
    ++stats_.refusals;
    throw UnavailableError(strings::cat(name_, ": link severed"));
  }
  ++stats_.deliveries;
  stats_.bytes += bytes;
  return latency_ + static_cast<double>(bytes) / bandwidth_;
}

void ReplicationLink::sever() {
  if (severed_) return;
  severed_ = true;
  ++stats_.severs;
}

void ReplicationLink::restore() {
  if (!severed_) return;
  severed_ = false;
  ++stats_.restores;
}

}  // namespace rocks::netsim
