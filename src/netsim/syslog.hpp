// A cluster-wide syslog bus.
//
// insert-ethers works by "monitoring syslog messages for DHCP requests from
// new hosts" (paper Section 6.4); this bus is what it subscribes to. All
// simulated services publish here.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace rocks::netsim {

struct SyslogMessage {
  double time = 0.0;
  std::string facility;  // "dhcpd", "kickstart", "ekv", ...
  std::string host;      // reporting host
  std::string text;
};

class SyslogBus {
 public:
  using Listener = std::function<void(const SyslogMessage&)>;

  /// Subscribes a listener; returns an id usable with unsubscribe.
  std::size_t subscribe(Listener listener);
  void unsubscribe(std::size_t id);

  void publish(SyslogMessage message);

  /// The retained log (bounded; oldest entries dropped beyond the cap).
  [[nodiscard]] const std::deque<SyslogMessage>& log() const { return log_; }
  [[nodiscard]] std::size_t total_published() const { return published_; }

 private:
  struct Slot {
    std::size_t id;
    Listener listener;
  };
  std::vector<Slot> listeners_;
  std::deque<SyslogMessage> log_;
  std::size_t next_id_ = 1;
  std::size_t published_ = 0;
  static constexpr std::size_t kLogCap = 100000;
};

}  // namespace rocks::netsim
