#include "netsim/syslog.hpp"

#include <algorithm>

namespace rocks::netsim {

std::size_t SyslogBus::subscribe(Listener listener) {
  const std::size_t id = next_id_++;
  listeners_.push_back({id, std::move(listener)});
  return id;
}

void SyslogBus::unsubscribe(std::size_t id) {
  listeners_.erase(std::remove_if(listeners_.begin(), listeners_.end(),
                                  [id](const Slot& slot) { return slot.id == id; }),
                   listeners_.end());
}

void SyslogBus::publish(SyslogMessage message) {
  ++published_;
  log_.push_back(message);
  if (log_.size() > kLogCap) log_.pop_front();
  // Copy the listener list: a listener may subscribe/unsubscribe reentrantly
  // (insert-ethers installs a node, which emits more syslog traffic).
  const auto snapshot = listeners_;
  for (const auto& slot : snapshot) slot.listener(message);
}

}  // namespace rocks::netsim
