// Peer-assisted package distribution.
//
// The paper scales installs by replicating the HTTP server ("downloading
// RPMs is strictly read only", Section 6.3) — a linear remedy for Table I's
// linear install-time growth. This module models the structural fix:
// already-installed nodes serve the distribution to installing peers, so
// serving capacity grows with the cluster itself.
//
// Two peer modes over the rack topology (netsim/topology.hpp):
//
//   kCascade  The payload moves as one piece; a node can serve only after
//             it holds everything. Install waves form a cascade tree with
//             fanout = max_upload_streams.
//   kSwarm    The payload is split into chunk_count chunks fetched strictly
//             in order, so "has chunk k" == "progress > k". A node serves
//             its prefix while still downloading, which pipelines the
//             cascade: rack-mates trail each other by one chunk instead of
//             one full payload.
//
// Source selection per chunk: same-rack peer with the chunk and a free
// upload slot (cheap leaf-switch path), else any fully-seeded peer (its
// rack uplink), else the frontend seed — bounded by seed_fanout so the
// frontend NIC is a bootstrap, not the bottleneck. When every path is
// saturated the installer parks in a wait queue and is woken as slots free.
//
// Churn: a serving node that dies mid-transfer fails its downloads through
// the installer's AbortCallback — the same path an HTTP server crash takes —
// so the existing client-side retry/backoff machinery handles swarm churn
// unchanged. Chunks already fetched persist across such retries within one
// install (the cooperative cache), so a retry resumes, not restarts.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "netsim/http.hpp"
#include "netsim/topology.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace rocks::netsim {

enum class DistMode {
  kSingleServer,  // every byte from the frontend seed (paper baseline)
  kCascade,       // whole-payload peer relay
  kSwarm,         // chunked pipelined peer relay
};

struct PeerConfig {
  DistMode mode = DistMode::kSwarm;
  /// Chunks per payload in kSwarm (kCascade and kSingleServer force 1).
  std::size_t chunk_count = 16;
  /// Concurrent uploads one node will source (installer NICs are also
  /// receiving; a small number keeps the model honest).
  std::size_t max_upload_streams = 4;
  /// Per peer-transfer rate cap in bytes/s; 0 = installer demand only.
  double peer_stream_cap = 0.0;
  /// Concurrent installers allowed on the seed; 0 = unlimited (degrades to
  /// the single-server behaviour when peers never become available).
  std::size_t seed_fanout = 8;
  bool prefer_same_rack = true;
  /// Rescue retry schedule for the no-transfers-in-flight corner (seed down
  /// with waiters parked); never fires in healthy runs. The shared policy
  /// (DESIGN.md §12.6): attempt 1 waits exactly `base`, then capped
  /// doubling with jitter so parked installers stop hammering a dead seed
  /// in lockstep. Resets to `base` whenever a poll makes progress.
  support::BackoffPolicy rescue{5.0, 60.0, 0.25};
  /// Seed for the rescue/retry jitter draws; fixed seed => identical runs.
  std::uint64_t rescue_seed = 0xBACC0FF;
};

struct PeerStats {
  std::uint64_t chunk_fetches = 0;      // completed chunk transfers
  std::uint64_t peer_serves = 0;        //   ... sourced from a peer
  std::uint64_t seed_serves = 0;        //   ... sourced from the frontend
  std::uint64_t rack_local_serves = 0;  //   ... peer in the same rack
  std::uint64_t cross_rack_serves = 0;  //   ... peer across the uplink
  std::uint64_t waits = 0;              // times an installer had to park
  std::uint64_t churn_aborts = 0;       // transfers killed by source death
  double peer_bytes = 0.0;              // bytes delivered by peers
  double seed_bytes = 0.0;              // bytes delivered by the seed
};

class PeerDistribution {
 public:
  PeerDistribution(Simulator& sim, RackTopology& topology, HttpServerGroup& seed,
                   PeerConfig config);

  /// Sizes the endpoint table (and the underlying rack channels) for dense
  /// endpoint ids [0, count). Callable repeatedly with growing counts.
  void register_endpoints(std::uint32_t count);

  /// The node enters (re)install: any cached chunks are gone (the disk is
  /// being reformatted), any uploads it was sourcing are failed over.
  void begin_install(std::uint32_t endpoint);

  /// Fetches the full payload for an installing endpoint. Chunks already
  /// held (a resumed install after an abort) are not re-fetched.
  /// `on_complete` fires when the last chunk lands — the endpoint is then a
  /// seeded server. `on_abort(bytes_delivered)` fires if the transfer dies
  /// (source churn, seed crash); the chunk cache survives for the retry.
  void fetch(std::uint32_t endpoint, double bytes, double demand_cap,
             std::function<void()> on_complete,
             FairShareChannel::AbortCallback on_abort = {});

  /// The node died / was shot for reinstall: aborts its own fetch silently
  /// (no on_abort), fails every download it was serving (their installers
  /// get on_abort), forgets its chunks. Returns bytes its own fetch had
  /// delivered, matching FairShareChannel::abort's contract.
  double node_offline(std::uint32_t endpoint);

  /// Declares an endpoint fully seeded without an install (nodes that were
  /// already running when peer distribution switched on).
  void mark_seeded(std::uint32_t endpoint);

  [[nodiscard]] bool is_seeded(std::uint32_t endpoint) const;
  /// Bytes of payload currently held by an installing endpoint's cache.
  [[nodiscard]] double cached_bytes(std::uint32_t endpoint) const;
  [[nodiscard]] std::size_t active_transfers() const { return active_transfers_; }
  [[nodiscard]] std::size_t waiting() const { return waiter_count_; }
  [[nodiscard]] std::size_t seeded_count() const { return seeded_count_; }
  [[nodiscard]] const PeerConfig& config() const { return config_; }
  [[nodiscard]] const PeerStats& stats() const { return stats_; }
  void reset_stats() { stats_ = PeerStats{}; }

 private:
  enum class State : std::uint8_t { kIdle, kInstalling, kSeeded, kOffline };
  enum class Source : std::uint8_t { kNone, kPeer, kSeed };

  struct Endpoint {
    State state = State::kIdle;
    bool waiting = false;
    std::uint32_t chunks_done = 0;
    std::uint32_t uploads = 0;
    std::vector<std::uint32_t> serving;  // receivers of our active uploads
    // Active fetch (valid while fetching):
    bool fetching = false;
    std::uint32_t chunk_count = 0;
    double chunk_bytes = 0.0;
    double demand_cap = 0.0;
    std::function<void()> on_complete;
    FairShareChannel::AbortCallback on_abort;
    // Current chunk transfer (valid while transfer_active):
    bool transfer_active = false;
    std::uint64_t transfer_seq = 0;  // staleness check for channel callbacks
    Source source = Source::kNone;
    std::uint32_t source_endpoint = 0;   // when kPeer
    FairShareChannel* channel = nullptr;  // when kPeer
    HttpServer* seed_server = nullptr;    // when kSeed
    FlowId flow = 0;
  };

  [[nodiscard]] std::size_t chunks_for_mode() const;
  /// Tries to start the next chunk; parks the endpoint on failure.
  void start_chunk(std::uint32_t endpoint);
  /// Deterministic same-rack source scan (<= nodes_per_rack candidates).
  [[nodiscard]] std::int64_t pick_rack_source(std::uint32_t endpoint,
                                              std::uint32_t chunk) const;
  [[nodiscard]] std::int64_t pop_seeded_source();
  void on_chunk_complete(std::uint32_t endpoint, std::uint64_t seq);
  void on_transfer_killed(std::uint32_t endpoint, std::uint64_t seq, double delivered);
  /// Detaches the current transfer (abort on the channel, slot bookkeeping);
  /// returns bytes the chunk had delivered. Does not notify the installer.
  double detach_transfer(std::uint32_t endpoint);
  void release_upload(std::uint32_t source, std::uint32_t receiver);
  void enqueue_waiter(std::uint32_t endpoint);
  void wake_rack(std::uint32_t rack);
  void wake_global();
  void arm_rescue_poll();

  Simulator& sim_;
  RackTopology& topology_;
  HttpServerGroup& seed_;
  PeerConfig config_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::deque<std::uint32_t>> rack_waiters_;
  std::deque<std::uint32_t> racks_with_waiters_;  // lazy index into the above
  std::vector<std::uint32_t> seeded_stack_;       // seeded ids w/ free slots (lazy)
  std::size_t waiter_count_ = 0;
  std::size_t active_transfers_ = 0;
  std::size_t seed_active_ = 0;
  std::size_t seeded_count_ = 0;
  std::uint64_t next_transfer_seq_ = 1;
  bool rescue_armed_ = false;
  int rescue_attempts_ = 0;  // consecutive polls without progress
  Rng rescue_rng_{0};
  PeerStats stats_;
};

/// Lean install-wave driver for benches and scale tests. Runs `nodes`
/// installers through boot -> fetch -> post-install against a fresh
/// simulator, without the full cluster node machinery (at 100k nodes the
/// per-node OS model would dwarf the distribution being measured).
struct InstallWaveParams {
  std::size_t nodes = 1000;
  double payload_bytes = 0.0;        // required
  double demand_cap = 0.0;           // installer consume rate, bytes/s
  double seed_capacity = 0.0;        // frontend NIC, bytes/s (required)
  std::size_t seed_replicas = 1;
  double pre_seconds = 110.0;        // boot + dhcp + kickstart + format
  double post_seconds = 165.0;       // post-config + final boot
  double stagger_seconds = 0.0;      // power-on stagger between nodes
  PeerConfig peer;
  TopologyConfig topology;
  Allocator allocator = Allocator::kIncremental;
};

struct InstallWaveResult {
  double makespan = 0.0;  // sim seconds until the last node is running
  std::size_t completed = 0;
  std::uint64_t events_fired = 0;
  double wall_seconds = 0.0;
  PeerStats peer_stats;
};

InstallWaveResult run_install_wave(const InstallWaveParams& params);

}  // namespace rocks::netsim
