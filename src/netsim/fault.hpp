// Deterministic fault injection for the install pipeline.
//
// The paper's management thesis only holds if a node can be driven back to a
// known state under real-world conditions: lost DHCP broadcasts, a crashed
// install web server, connections reset mid-download, flapping power. Large
// deployments of exactly this methodology report that such transient install
// failures dominate operations at scale (CERN, arXiv:cs/0306058; Brookhaven,
// arXiv:physics/0305005). FaultInjector turns those conditions on at will —
// driven by the simulation clock and a seeded RNG so every chaos scenario is
// exactly reproducible — while the consumers (DhcpServer, KickstartServer,
// HttpServerGroup, Node) carry the timeouts/retries/watchdogs that make the
// install converge anyway.
//
// All times in a FaultPlan are seconds relative to arm(): scenarios are
// authored against "the pulse starts now", not absolute simulation time.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "netsim/engine.hpp"
#include "support/rng.hpp"

namespace rocks::netsim {

class HttpServerGroup;

/// Half-open interval [start, end), relative to arm().
struct TimeWindow {
  double start = 0.0;
  double end = 0.0;
};

/// One install web server replica dies at `at`; comes back `restart_after`
/// seconds later (0 = never restarts).
struct HttpCrashEvent {
  double at = 0.0;
  std::size_t replica = 0;
  double restart_after = 0.0;
};

/// The oldest in-flight download on `replica` is reset at `at`.
struct FlowKillEvent {
  double at = 0.0;
  std::size_t replica = 0;
};

/// Node `target` (index into the wired power targets) loses power at `at`
/// and gets it back `restore_after` seconds later.
struct PowerFlapEvent {
  double at = 0.0;
  std::size_t target = 0;
  double restore_after = 30.0;
};

/// Replication link `link` (index into the wired links) is severed at `at`
/// and restored `restore_after` seconds later (0 = stays down). While cut,
/// WAL shipping to that follower fails and the control plane falls into its
/// reconnect backoff (DESIGN.md §12.6).
struct LinkCutEvent {
  double at = 0.0;
  std::size_t link = 0;
  double restore_after = 0.0;
};

struct FaultPlan {
  /// Per-DISCOVER probability that the broadcast is lost on the wire.
  double dhcp_loss = 0.0;
  /// Windows in which every DISCOVER is lost (switch outage).
  std::vector<TimeWindow> dhcp_blackouts;
  /// Windows in which the kickstart CGI refuses requests (httpd down).
  std::vector<TimeWindow> kickstart_outages;
  std::vector<HttpCrashEvent> http_crashes;
  std::vector<FlowKillEvent> flow_kills;
  std::vector<PowerFlapEvent> power_flaps;
  std::vector<LinkCutEvent> link_cuts;
  /// Seed for the probabilistic faults; fixed seed => identical runs.
  std::uint64_t seed = 0xC1A05;
};

struct FaultStats {
  std::uint64_t discovers_dropped = 0;
  std::uint64_t kickstart_refusals = 0;
  std::uint64_t http_crashes = 0;
  std::uint64_t http_restarts = 0;
  std::uint64_t flows_killed = 0;
  std::uint64_t power_flaps = 0;
  std::uint64_t link_cuts = 0;
  std::uint64_t link_restores = 0;
};

class ReplicationLink;

class FaultInjector {
 public:
  using PowerFlapAction = std::function<void(std::size_t target, double restore_after)>;
  /// Fault-landing hook: (kind, detail) per injected fault — "http-crash",
  /// "flow-kill", "power-flap", "link-cut", "link-restore", "http-restart",
  /// "discover-drop", "kickstart-refusal". netsim stays below the event
  /// spine in the dependency order, so this is a plain callback; the cluster
  /// layer converts it to kFault bus events.
  using Observer = std::function<void(std::string_view kind, std::string_view detail)>;

  FaultInjector(Simulator& sim, FaultPlan plan);

  /// Installs (or clears) the fault-landing observer.
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  // --- wiring (before arm) --------------------------------------------------
  /// The server group crash/kill events act on.
  void wire_http(HttpServerGroup* group) { http_ = group; }
  /// What a power flap does to a target (the cluster layer maps targets to
  /// nodes; netsim stays below the cluster in the dependency order).
  void wire_power(PowerFlapAction flap) { power_flap_ = std::move(flap); }
  /// The replication links the plan's link_cuts sever/restore by index.
  void wire_links(std::vector<ReplicationLink*> links) { links_ = std::move(links); }

  /// Starts the plan: records "now" as the plan origin, schedules the
  /// crash/kill/flap events, and enables the probabilistic probes.
  void arm();
  /// Cancels pending scheduled events and disables all probes.
  void disarm();
  [[nodiscard]] bool armed() const { return armed_; }

  // --- probes (consulted by the services at request time) -------------------
  /// True when this DISCOVER broadcast is lost (window or random loss).
  bool drop_discover();
  /// False while the kickstart CGI is inside an outage window.
  bool kickstart_available();

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] bool in_window(const std::vector<TimeWindow>& windows) const;
  void observe(std::string_view kind, std::string_view detail);

  Simulator& sim_;
  FaultPlan plan_;
  Rng rng_;
  HttpServerGroup* http_ = nullptr;
  PowerFlapAction power_flap_;
  Observer observer_;
  std::vector<ReplicationLink*> links_;
  bool armed_ = false;
  double armed_at_ = 0.0;
  std::vector<EventId> scheduled_;
  FaultStats stats_;
};

}  // namespace rocks::netsim
