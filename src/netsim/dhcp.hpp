// DHCP: "For configuring Ethernet devices on compute nodes, the Dynamic
// Host Configuration Protocol (DHCP) is essential" (paper Section 5).
//
// The server answers DISCOVERs from MACs that appear in its configuration
// (generated from the SQL nodes table); unknown MACs are logged to syslog —
// that log line is exactly what insert-ethers listens for.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "netsim/engine.hpp"
#include "netsim/syslog.hpp"
#include "support/ip.hpp"

namespace rocks::netsim {

class FaultInjector;

struct DhcpLease {
  Ipv4 ip;
  std::string hostname;
  Ipv4 server;  // next-server: where kickstart files are fetched from
};

class DhcpServer {
 public:
  DhcpServer(Simulator& sim, SyslogBus& syslog, std::string host_name, Ipv4 server_ip);

  /// Replaces the static binding table (a dhcpd.conf reload).
  void configure(std::map<Mac, DhcpLease> bindings);
  void add_binding(Mac mac, DhcpLease lease);
  [[nodiscard]] std::size_t binding_count() const { return bindings_.size(); }
  [[nodiscard]] bool knows(Mac mac) const { return bindings_.contains(mac); }

  /// A client broadcasts DISCOVER. Known MAC: returns its lease (an OFFER)
  /// and logs "DHCPDISCOVER/DHCPOFFER". Unknown MAC: logs the request and
  /// returns nullopt (no free-pool in a Rocks cluster; insert-ethers must
  /// add the node first).
  std::optional<DhcpLease> discover(Mac mac);

  [[nodiscard]] std::size_t discover_count() const { return discovers_; }
  [[nodiscard]] std::size_t unanswered_count() const { return unanswered_; }

  /// Wires a fault injector that may drop DISCOVER broadcasts on the wire
  /// (the server never sees them: no syslog line, no OFFER). nullptr
  /// detaches.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

 private:
  Simulator& sim_;
  SyslogBus& syslog_;
  std::string host_name_;
  Ipv4 server_ip_;
  std::map<Mac, DhcpLease> bindings_;
  FaultInjector* faults_ = nullptr;
  std::size_t discovers_ = 0;
  std::size_t unanswered_ = 0;
};

}  // namespace rocks::netsim
