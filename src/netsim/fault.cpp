#include "netsim/fault.hpp"

#include "netsim/http.hpp"
#include "netsim/link.hpp"

namespace rocks::netsim {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  armed_at_ = sim_.now();

  for (const HttpCrashEvent event : plan_.http_crashes) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || http_ == nullptr) return;
      const std::uint64_t killed_before = http_->server(event.replica).stats().flows_killed;
      http_->crash_replica(event.replica);
      stats_.flows_killed += http_->server(event.replica).stats().flows_killed - killed_before;
      ++stats_.http_crashes;
      if (event.restart_after > 0.0) {
        scheduled_.push_back(sim_.schedule(event.restart_after, [this, event] {
          if (!armed_ || http_ == nullptr) return;
          http_->restart_replica(event.replica);
          ++stats_.http_restarts;
        }));
      }
    }));
  }
  for (const FlowKillEvent event : plan_.flow_kills) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || http_ == nullptr) return;
      if (http_->kill_flow_on(event.replica)) ++stats_.flows_killed;
    }));
  }
  for (const PowerFlapEvent event : plan_.power_flaps) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || !power_flap_) return;
      ++stats_.power_flaps;
      power_flap_(event.target, event.restore_after);
    }));
  }
  for (const LinkCutEvent event : plan_.link_cuts) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || event.link >= links_.size()) return;
      links_[event.link]->sever();
      ++stats_.link_cuts;
      if (event.restore_after > 0.0) {
        scheduled_.push_back(sim_.schedule(event.restore_after, [this, event] {
          if (!armed_ || event.link >= links_.size()) return;
          links_[event.link]->restore();
          ++stats_.link_restores;
        }));
      }
    }));
  }
}

void FaultInjector::disarm() {
  armed_ = false;
  for (const EventId id : scheduled_) sim_.cancel(id);
  scheduled_.clear();
}

bool FaultInjector::in_window(const std::vector<TimeWindow>& windows) const {
  const double t = sim_.now() - armed_at_;
  for (const TimeWindow& window : windows)
    if (t >= window.start && t < window.end) return true;
  return false;
}

bool FaultInjector::drop_discover() {
  if (!armed_) return false;
  if (in_window(plan_.dhcp_blackouts)) {
    ++stats_.discovers_dropped;
    return true;
  }
  if (plan_.dhcp_loss > 0.0 && rng_.chance(plan_.dhcp_loss)) {
    ++stats_.discovers_dropped;
    return true;
  }
  return false;
}

bool FaultInjector::kickstart_available() {
  if (!armed_) return true;
  if (!in_window(plan_.kickstart_outages)) return true;
  ++stats_.kickstart_refusals;
  return false;
}

}  // namespace rocks::netsim
