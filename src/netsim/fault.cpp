#include "netsim/fault.hpp"

#include <string>

#include "netsim/http.hpp"
#include "netsim/link.hpp"

namespace rocks::netsim {

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan)
    : sim_(sim), plan_(std::move(plan)), rng_(plan_.seed) {}

void FaultInjector::observe(std::string_view kind, std::string_view detail) {
  if (auto observer = observer_) observer(kind, detail);  // copy: may reset itself
}

void FaultInjector::arm() {
  if (armed_) return;
  armed_ = true;
  armed_at_ = sim_.now();

  for (const HttpCrashEvent event : plan_.http_crashes) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || http_ == nullptr) return;
      const std::uint64_t killed_before = http_->server(event.replica).stats().flows_killed;
      http_->crash_replica(event.replica);
      stats_.flows_killed += http_->server(event.replica).stats().flows_killed - killed_before;
      ++stats_.http_crashes;
      observe("http-crash", std::to_string(event.replica));
      if (event.restart_after > 0.0) {
        scheduled_.push_back(sim_.schedule(event.restart_after, [this, event] {
          if (!armed_ || http_ == nullptr) return;
          http_->restart_replica(event.replica);
          ++stats_.http_restarts;
          observe("http-restart", std::to_string(event.replica));
        }));
      }
    }));
  }
  for (const FlowKillEvent event : plan_.flow_kills) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || http_ == nullptr) return;
      if (http_->kill_flow_on(event.replica)) {
        ++stats_.flows_killed;
        observe("flow-kill", std::to_string(event.replica));
      }
    }));
  }
  for (const PowerFlapEvent event : plan_.power_flaps) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || !power_flap_) return;
      ++stats_.power_flaps;
      observe("power-flap", std::to_string(event.target));
      power_flap_(event.target, event.restore_after);
    }));
  }
  for (const LinkCutEvent event : plan_.link_cuts) {
    scheduled_.push_back(sim_.schedule(event.at, [this, event] {
      if (!armed_ || event.link >= links_.size()) return;
      links_[event.link]->sever();
      ++stats_.link_cuts;
      observe("link-cut", std::to_string(event.link));
      if (event.restore_after > 0.0) {
        scheduled_.push_back(sim_.schedule(event.restore_after, [this, event] {
          if (!armed_ || event.link >= links_.size()) return;
          links_[event.link]->restore();
          ++stats_.link_restores;
          observe("link-restore", std::to_string(event.link));
        }));
      }
    }));
  }
}

void FaultInjector::disarm() {
  armed_ = false;
  for (const EventId id : scheduled_) sim_.cancel(id);
  scheduled_.clear();
}

bool FaultInjector::in_window(const std::vector<TimeWindow>& windows) const {
  const double t = sim_.now() - armed_at_;
  for (const TimeWindow& window : windows)
    if (t >= window.start && t < window.end) return true;
  return false;
}

bool FaultInjector::drop_discover() {
  if (!armed_) return false;
  if (in_window(plan_.dhcp_blackouts)) {
    ++stats_.discovers_dropped;
    observe("discover-drop", "blackout");
    return true;
  }
  if (plan_.dhcp_loss > 0.0 && rng_.chance(plan_.dhcp_loss)) {
    ++stats_.discovers_dropped;
    observe("discover-drop", "wire-loss");
    return true;
  }
  return false;
}

bool FaultInjector::kickstart_available() {
  if (!armed_) return true;
  if (!in_window(plan_.kickstart_outages)) return true;
  ++stats_.kickstart_refusals;
  observe("kickstart-refusal", "outage-window");
  return false;
}

}  // namespace rocks::netsim
