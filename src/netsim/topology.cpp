#include "netsim/topology.hpp"

#include "support/error.hpp"

namespace rocks::netsim {

RackTopology::RackTopology(Simulator& sim, TopologyConfig config)
    : sim_(sim), config_(config) {
  require_state(config_.nodes_per_rack >= 1, "RackTopology: nodes_per_rack must be >= 1");
  require_state(config_.rack_capacity > 0.0, "RackTopology: rack_capacity must be positive");
  require_state(config_.uplink_capacity >= 0.0, "RackTopology: negative uplink_capacity");
}

void RackTopology::ensure_endpoints(std::uint32_t count) {
  if (count == 0) return;
  const std::size_t racks_needed = rack_of(count - 1) + 1;
  while (racks_.size() < racks_needed) {
    auto rack = std::make_unique<Rack>();
    rack->leaf = std::make_unique<FairShareChannel>(sim_, config_.rack_capacity,
                                                    config_.allocator);
    // uplink_capacity == 0 means "core is not a bottleneck": model it as a
    // channel so wide it never binds (keeps the call sites uniform).
    const double uplink = config_.uplink_capacity > 0.0
                              ? config_.uplink_capacity
                              : config_.rack_capacity * 1e6;
    rack->uplink = std::make_unique<FairShareChannel>(sim_, uplink, config_.allocator);
    racks_.push_back(std::move(rack));
  }
}

FairShareChannel& RackTopology::path_channel(std::uint32_t src, std::uint32_t dst) {
  const std::uint32_t src_rack = rack_of(src);
  require_state(src_rack < racks_.size() && rack_of(dst) < racks_.size(),
                "RackTopology: endpoint outside ensure_endpoints()");
  if (src_rack == rack_of(dst)) return *racks_[src_rack]->leaf;
  return *racks_[src_rack]->uplink;
}

FairShareChannel* RackTopology::seed_path_channel(std::uint32_t dst) {
  const std::uint32_t rack = rack_of(dst);
  require_state(rack < racks_.size(), "RackTopology: endpoint outside ensure_endpoints()");
  if (config_.uplink_capacity <= 0.0) return nullptr;
  return racks_[rack]->uplink.get();
}

}  // namespace rocks::netsim
