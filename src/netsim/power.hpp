// Network-enabled power distribution unit.
//
// "If a compute node doesn't respond over the network, it can be remotely
// power cycled by executing a hard power cycle command for its outlet"
// (paper Section 4) — and a hard power cycle on a Rocks node forces a
// reinstall. The PDU knows outlets; what a power cycle *does* is supplied by
// the attached callback (the cluster module wires it to the node's
// boot-into-install path).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace rocks::netsim {

class PowerDistributionUnit {
 public:
  using OutletAction = std::function<void()>;

  /// Wires `on_power_cycle` to the named outlet.
  void attach(std::string outlet, OutletAction on_power_cycle);
  void detach(std::string_view outlet);

  /// Executes a hard power cycle; throws LookupError for unknown outlets.
  void power_cycle(std::string_view outlet);

  [[nodiscard]] std::size_t outlet_count() const { return outlets_.size(); }
  [[nodiscard]] bool has_outlet(std::string_view outlet) const {
    return outlets_.contains(outlet);
  }
  [[nodiscard]] std::size_t cycles_executed() const { return cycles_; }

 private:
  std::map<std::string, OutletAction, std::less<>> outlets_;
  std::size_t cycles_ = 0;
};

}  // namespace rocks::netsim
