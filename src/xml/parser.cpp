#include "xml/parser.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::xml {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Document parse_document() {
    Document doc;
    skip_whitespace_and_comments();
    if (peek_is("<?")) {
      pos_ += 2;
      const std::size_t end = input_.find("?>", pos_);
      if (end == std::string_view::npos) fail("unterminated XML declaration");
      doc.declaration = std::string(input_.substr(pos_, end - pos_));
      advance_to(end + 2);
    }
    skip_whitespace_and_comments();
    if (pos_ >= input_.size() || input_[pos_] != '<') fail("expected root element");
    doc.root = parse_element();
    skip_whitespace_and_comments();
    if (pos_ != input_.size()) fail("trailing content after root element");
    return doc;
  }

 private:
  [[nodiscard]] bool peek_is(std::string_view token) const {
    return input_.substr(pos_, token.size()) == token;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(strings::cat("XML parse error at line ", line_, ", column ", column_, ": ",
                                  what));
  }

  void advance(std::size_t n = 1) {
    for (std::size_t i = 0; i < n && pos_ < input_.size(); ++i) {
      if (input_[pos_] == '\n') {
        ++line_;
        column_ = 1;
      } else {
        ++column_;
      }
      ++pos_;
    }
  }

  void advance_to(std::size_t target) {
    while (pos_ < target && pos_ < input_.size()) advance();
  }

  void skip_whitespace() {
    while (pos_ < input_.size() && std::isspace(static_cast<unsigned char>(input_[pos_])))
      advance();
  }

  void skip_whitespace_and_comments() {
    while (true) {
      skip_whitespace();
      if (!peek_is("<!--")) return;
      const std::size_t end = input_.find("-->", pos_ + 4);
      if (end == std::string_view::npos) fail("unterminated comment");
      advance_to(end + 3);
    }
  }

  [[nodiscard]] static bool is_name_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_' || c == '.' ||
           c == ':';
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < input_.size() && is_name_char(input_[pos_])) advance();
    if (pos_ == start) fail("expected a name");
    return std::string(input_.substr(start, pos_ - start));
  }

  std::string parse_quoted_value() {
    if (pos_ >= input_.size() || (input_[pos_] != '"' && input_[pos_] != '\''))
      fail("expected quoted attribute value");
    const char quote = input_[pos_];
    advance();
    const std::size_t start = pos_;
    while (pos_ < input_.size() && input_[pos_] != quote) advance();
    if (pos_ >= input_.size()) fail("unterminated attribute value");
    std::string value = decode_entities(input_.substr(start, pos_ - start));
    advance();  // closing quote
    return value;
  }

  Element parse_element() {
    // Caller guarantees input_[pos_] == '<'.
    advance();
    Element element(parse_name());
    while (true) {
      skip_whitespace();
      if (pos_ >= input_.size()) fail("unterminated start tag");
      if (input_[pos_] == '/') {
        advance();
        if (pos_ >= input_.size() || input_[pos_] != '>') fail("malformed self-closing tag");
        advance();
        return element;
      }
      if (input_[pos_] == '>') {
        advance();
        break;
      }
      std::string attr_name = parse_name();
      skip_whitespace();
      if (pos_ >= input_.size() || input_[pos_] != '=') fail("expected '=' after attribute name");
      advance();
      skip_whitespace();
      element.set_attribute(std::move(attr_name), parse_quoted_value());
    }

    // Content until the matching end tag.
    std::string pending_text;
    auto flush_text = [&] {
      if (!pending_text.empty()) {
        element.add_text(decode_entities(pending_text));
        pending_text.clear();
      }
    };
    while (true) {
      if (pos_ >= input_.size())
        fail(strings::cat("unterminated element <", element.name(), ">"));
      if (input_[pos_] != '<') {
        pending_text += input_[pos_];
        advance();
        continue;
      }
      if (peek_is("<!--")) {
        const std::size_t end = input_.find("-->", pos_ + 4);
        if (end == std::string_view::npos) fail("unterminated comment");
        advance_to(end + 3);
        continue;
      }
      if (peek_is("<![CDATA[")) {
        const std::size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) fail("unterminated CDATA section");
        pending_text += input_.substr(pos_ + 9, end - (pos_ + 9));
        advance_to(end + 3);
        continue;
      }
      if (peek_is("</")) {
        flush_text();
        advance(2);
        const std::string closing = parse_name();
        if (closing != element.name())
          fail(strings::cat("mismatched end tag </", closing, "> for <", element.name(), ">"));
        skip_whitespace();
        if (pos_ >= input_.size() || input_[pos_] != '>') fail("malformed end tag");
        advance();
        return element;
      }
      flush_text();
      element.add_child(parse_element());
    }
  }

  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Document parse(std::string_view input) { return Parser(input).parse_document(); }

Element parse_root(std::string_view input) { return parse(input).root; }

std::string decode_entities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] != '&') {
      out += text[i++];
      continue;
    }
    const std::size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos) {
      out += text[i++];  // bare '&': keep it (lenient, matches real rocks files)
      continue;
    }
    const std::string_view name = text.substr(i + 1, semi - i - 1);
    if (name == "lt") {
      out += '<';
    } else if (name == "gt") {
      out += '>';
    } else if (name == "amp") {
      out += '&';
    } else if (name == "quot") {
      out += '"';
    } else if (name == "apos") {
      out += '\'';
    } else if (!name.empty() && name[0] == '#') {
      unsigned code = 0;
      bool valid = name.size() > 1;
      if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
        for (std::size_t k = 2; k < name.size() && valid; ++k) {
          const char c = name[k];
          if (std::isdigit(static_cast<unsigned char>(c)))
            code = code * 16 + static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f')
            code = code * 16 + static_cast<unsigned>(c - 'a' + 10);
          else if (c >= 'A' && c <= 'F')
            code = code * 16 + static_cast<unsigned>(c - 'A' + 10);
          else
            valid = false;
        }
      } else {
        for (std::size_t k = 1; k < name.size() && valid; ++k) {
          if (std::isdigit(static_cast<unsigned char>(name[k])))
            code = code * 10 + static_cast<unsigned>(name[k] - '0');
          else
            valid = false;
        }
      }
      if (valid && code > 0 && code < 128) {
        out += static_cast<char>(code);
      } else {
        out.append(text.substr(i, semi - i + 1));
      }
    } else {
      out.append(text.substr(i, semi - i + 1));  // unknown entity: keep verbatim
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace rocks::xml
