#include "xml/writer.hpp"

#include "support/strings.hpp"

namespace rocks::xml {
namespace {

bool has_element_children(const Element& element) {
  for (const auto& child : element.children())
    if (child.is_element()) return true;
  return false;
}

bool all_text_is_whitespace(const Element& element) {
  for (const auto& child : element.children())
    if (child.is_text() && !strings::trim(child.text_value()).empty()) return false;
  return true;
}

void write_element(const Element& element, const WriteOptions& options, int depth,
                   std::string& out) {
  const std::string pad(static_cast<std::size_t>(depth * options.indent), ' ');
  out += pad;
  out += '<';
  out += element.name();
  for (const auto& attr : element.attributes()) {
    out += ' ';
    out += attr.name;
    out += "=\"";
    out += escape_attribute(attr.value);
    out += '"';
  }
  if (element.children().empty()) {
    out += "/>\n";
    return;
  }
  out += '>';

  // Pretty-print only element-only content; mixed content is emitted verbatim
  // so post-install scripts survive byte-for-byte.
  if (has_element_children(element) && all_text_is_whitespace(element)) {
    out += '\n';
    for (const auto& child : element.children()) {
      if (child.is_element()) write_element(child.element_value(), options, depth + 1, out);
    }
    out += pad;
  } else {
    for (const auto& child : element.children()) {
      if (child.is_text()) {
        out += escape_text(child.text_value());
      } else {
        std::string nested;
        write_element(child.element_value(), options, 0, nested);
        if (!nested.empty() && nested.back() == '\n') nested.pop_back();
        out += nested;
      }
    }
  }
  out += "</";
  out += element.name();
  out += ">\n";
}

}  // namespace

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string escape_attribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

std::string write(const Element& element, const WriteOptions& options) {
  std::string out;
  write_element(element, options, 0, out);
  return out;
}

std::string write(const Document& document, const WriteOptions& options) {
  std::string out;
  if (options.include_declaration && !document.declaration.empty()) {
    out += "<?";
    out += document.declaration;
    out += "?>\n";
  }
  out += write(document.root, options);
  return out;
}

}  // namespace rocks::xml
