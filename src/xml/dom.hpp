// Document object model for the from-scratch XML engine.
//
// Rocks describes every node behaviour with XML "node files" and one XML
// "graph file" (paper Section 6.1, Figures 2-4). This DOM supports exactly
// the constructs those documents need: elements with attributes, mixed
// text/element content, comments, the five predefined entities, and an
// optional declaration. Namespaces and DTDs are out of scope.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rocks::xml {

class Element;

/// One child of an element: either a nested element or a run of text.
/// Comments are discarded at parse time (they never affect rocks semantics).
class Node {
 public:
  enum class Kind { kElement, kText };

  static Node text(std::string value);
  static Node element(Element value);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_element() const { return kind_ == Kind::kElement; }
  [[nodiscard]] bool is_text() const { return kind_ == Kind::kText; }

  /// Valid only when is_text().
  [[nodiscard]] const std::string& text_value() const;
  /// Valid only when is_element().
  [[nodiscard]] const Element& element_value() const;
  [[nodiscard]] Element& element_value();

 private:
  Node() = default;
  Kind kind_ = Kind::kText;
  std::string text_;
  std::unique_ptr<Element> element_;

 public:
  Node(const Node& other);
  Node& operator=(const Node& other);
  Node(Node&&) noexcept = default;
  Node& operator=(Node&&) noexcept = default;
  ~Node() = default;
};

/// An attribute; order of appearance is preserved.
struct Attribute {
  std::string name;
  std::string value;
};

class Element {
 public:
  Element() = default;
  explicit Element(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const std::vector<Attribute>& attributes() const { return attributes_; }
  /// Value of the named attribute, or nullopt. Names are case sensitive.
  [[nodiscard]] std::optional<std::string> attribute(std::string_view name) const;
  /// Value of the named attribute, or `fallback` when absent.
  [[nodiscard]] std::string attribute_or(std::string_view name, std::string_view fallback) const;
  void set_attribute(std::string name, std::string value);

  [[nodiscard]] const std::vector<Node>& children() const { return children_; }
  [[nodiscard]] std::vector<Node>& children() { return children_; }
  void add_text(std::string text);
  Element& add_child(Element child);

  /// All direct child elements with the given tag name.
  [[nodiscard]] std::vector<const Element*> children_named(std::string_view name) const;
  /// First direct child element with the given tag name, or nullptr.
  [[nodiscard]] const Element* first_child(std::string_view name) const;

  /// Concatenation of all directly contained text runs (element children are
  /// skipped, not recursed into).
  [[nodiscard]] std::string text() const;

 private:
  std::string name_;
  std::vector<Attribute> attributes_;
  std::vector<Node> children_;
};

/// A parsed document: an optional XML declaration plus one root element.
struct Document {
  std::string declaration;  // raw contents between "<?" and "?>", may be empty
  Element root;
};

}  // namespace rocks::xml
