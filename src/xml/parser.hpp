// Recursive-descent XML parser.
//
// Accepts the dialect used by the Rocks configuration infrastructure:
//   - an optional declaration:  <?XML VERSION="1.0" STANDALONE="no"?>
//   - elements with single- or double-quoted attributes
//   - self-closing tags
//   - comments (discarded)
//   - CDATA sections (kept verbatim as text)
//   - the five predefined entities in text and attribute values
//
// Errors carry 1-based line/column positions. Tag names are matched case
// sensitively, as the paper's files consistently use upper-case tags.
#pragma once

#include <string_view>

#include "xml/dom.hpp"

namespace rocks::xml {

/// Parses a complete document; throws rocks::ParseError on malformed input.
[[nodiscard]] Document parse(std::string_view input);

/// Convenience wrapper returning just the root element.
[[nodiscard]] Element parse_root(std::string_view input);

/// Expands the five predefined entities (&lt; &gt; &amp; &quot; &apos;) and
/// numeric character references (&#NN; / &#xNN;) in `text`.
[[nodiscard]] std::string decode_entities(std::string_view text);

}  // namespace rocks::xml
