#include "xml/dom.hpp"

#include "support/error.hpp"

namespace rocks::xml {

Node Node::text(std::string value) {
  Node node;
  node.kind_ = Kind::kText;
  node.text_ = std::move(value);
  return node;
}

Node Node::element(Element value) {
  Node node;
  node.kind_ = Kind::kElement;
  node.element_ = std::make_unique<Element>(std::move(value));
  return node;
}

const std::string& Node::text_value() const {
  require_state(is_text(), "Node::text_value called on an element node");
  return text_;
}

const Element& Node::element_value() const {
  require_state(is_element(), "Node::element_value called on a text node");
  return *element_;
}

Element& Node::element_value() {
  require_state(is_element(), "Node::element_value called on a text node");
  return *element_;
}

Node::Node(const Node& other) : kind_(other.kind_), text_(other.text_) {
  if (other.element_) element_ = std::make_unique<Element>(*other.element_);
}

Node& Node::operator=(const Node& other) {
  if (this == &other) return *this;
  kind_ = other.kind_;
  text_ = other.text_;
  element_ = other.element_ ? std::make_unique<Element>(*other.element_) : nullptr;
  return *this;
}

std::optional<std::string> Element::attribute(std::string_view name) const {
  for (const auto& attr : attributes_)
    if (attr.name == name) return attr.value;
  return std::nullopt;
}

std::string Element::attribute_or(std::string_view name, std::string_view fallback) const {
  auto value = attribute(name);
  return value ? *value : std::string(fallback);
}

void Element::set_attribute(std::string name, std::string value) {
  for (auto& attr : attributes_) {
    if (attr.name == name) {
      attr.value = std::move(value);
      return;
    }
  }
  attributes_.push_back({std::move(name), std::move(value)});
}

void Element::add_text(std::string text) { children_.push_back(Node::text(std::move(text))); }

Element& Element::add_child(Element child) {
  children_.push_back(Node::element(std::move(child)));
  return children_.back().element_value();
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& child : children_)
    if (child.is_element() && child.element_value().name() == name)
      out.push_back(&child.element_value());
  return out;
}

const Element* Element::first_child(std::string_view name) const {
  for (const auto& child : children_)
    if (child.is_element() && child.element_value().name() == name)
      return &child.element_value();
  return nullptr;
}

std::string Element::text() const {
  std::string out;
  for (const auto& child : children_)
    if (child.is_text()) out += child.text_value();
  return out;
}

}  // namespace rocks::xml
