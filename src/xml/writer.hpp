// XML serialization: round-trips documents produced by the parser and is
// used by rocks-dist when it copies the XML configuration infrastructure
// into a derived distribution's build directory (paper Section 6.2.3).
#pragma once

#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace rocks::xml {

struct WriteOptions {
  /// Spaces per nesting level for element-only content.
  int indent = 2;
  /// Emit "<?XML ...?>" when the document has a declaration.
  bool include_declaration = true;
};

/// Escapes &, <, > (and in attribute context, quotes) for safe embedding.
[[nodiscard]] std::string escape_text(std::string_view text);
[[nodiscard]] std::string escape_attribute(std::string_view text);

[[nodiscard]] std::string write(const Element& element, const WriteOptions& options = {});
[[nodiscard]] std::string write(const Document& document, const WriteOptions& options = {});

}  // namespace rocks::xml
