#include "sqldb/value.hpp"

#include <cmath>
#include <functional>
#include <string_view>

#include "support/error.hpp"
#include "support/table.hpp"

namespace rocks::sqldb {

Type Value::type() const {
  switch (data_.index()) {
    case 0: return Type::kNull;
    case 1: return Type::kInt;
    case 2: return Type::kReal;
    default: return Type::kText;
  }
}

std::int64_t Value::as_int() const {
  if (auto* i = std::get_if<std::int64_t>(&data_)) return *i;
  if (auto* d = std::get_if<double>(&data_)) return static_cast<std::int64_t>(*d);
  throw StateError("Value::as_int on non-numeric value");
}

double Value::as_real() const {
  if (auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
  if (auto* d = std::get_if<double>(&data_)) return *d;
  throw StateError("Value::as_real on non-numeric value");
}

const std::string& Value::as_text() const {
  if (auto* s = std::get_if<std::string>(&data_)) return *s;
  throw StateError("Value::as_text on non-text value");
}

std::string Value::to_string() const {
  switch (type()) {
    case Type::kNull: return "NULL";
    case Type::kInt: return std::to_string(std::get<std::int64_t>(data_));
    case Type::kReal: {
      // Trim trailing zeros for stable display.
      std::string s = fixed(std::get<double>(data_), 6);
      while (!s.empty() && s.back() == '0') s.pop_back();
      if (!s.empty() && s.back() == '.') s.pop_back();
      return s;
    }
    case Type::kText: return std::get<std::string>(data_);
  }
  return "NULL";
}

bool Value::truthy() const {
  switch (type()) {
    case Type::kNull: return false;
    case Type::kInt: return std::get<std::int64_t>(data_) != 0;
    case Type::kReal: return std::get<double>(data_) != 0.0;
    case Type::kText: return !std::get<std::string>(data_).empty();
  }
  return false;
}

std::size_t Value::hash() const {
  switch (type()) {
    case Type::kNull: return 0;
    // INT hashes through double so that compare()-equal INT/REAL pairs
    // collide on the same bucket (1 == 1.0 must hash identically).
    case Type::kInt:
    case Type::kReal: return std::hash<double>{}(as_real());
    case Type::kText: return std::hash<std::string_view>{}(std::get<std::string>(data_));
  }
  return 0;
}

int Value::compare(const Value& other) const {
  const Type a = type();
  const Type b = other.type();
  const bool a_num = a == Type::kInt || a == Type::kReal;
  const bool b_num = b == Type::kInt || b == Type::kReal;
  if (a == Type::kNull || b == Type::kNull) {
    if (a == b) return 0;
    return a == Type::kNull ? -1 : 1;
  }
  if (a_num && b_num) {
    const double x = as_real();
    const double y = other.as_real();
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a_num != b_num) return a_num ? -1 : 1;  // numbers before text
  return as_text().compare(other.as_text()) < 0   ? -1
         : as_text().compare(other.as_text()) > 0 ? 1
                                                  : 0;
}

}  // namespace rocks::sqldb
