// Typed values for the mini SQL engine.
//
// Rocks stores its global cluster configuration in MySQL (paper Section 6.4,
// Tables II-III). The engine here supports the three types those tables
// need: integers, text, and NULL (plus doubles for completeness, since some
// site tables hold measurements).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace rocks::sqldb {

enum class Type { kNull, kInt, kReal, kText };

class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(std::int64_t v) : data_(v) {}            // NOLINT(google-explicit-constructor)
  Value(int v) : data_(std::int64_t{v}) {}       // NOLINT(google-explicit-constructor)
  Value(double v) : data_(v) {}                  // NOLINT(google-explicit-constructor)
  Value(std::string v) : data_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] static Value null() { return Value(); }

  [[nodiscard]] Type type() const;
  [[nodiscard]] bool is_null() const { return type() == Type::kNull; }

  /// Numeric access; INT and REAL interconvert, anything else throws.
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] double as_real() const;
  /// TEXT access; throws on other types.
  [[nodiscard]] const std::string& as_text() const;

  /// SQL display form: NULL, 42, 3.5, or the raw text.
  [[nodiscard]] std::string to_string() const;

  /// SQL truthiness: NULL and 0 are false.
  [[nodiscard]] bool truthy() const;

  /// Three-valued SQL comparison is handled in expr.cpp; this is a total
  /// order used for ORDER BY and testing: NULL < numbers < text.
  [[nodiscard]] int compare(const Value& other) const;

  bool operator==(const Value& other) const { return compare(other) == 0; }

  /// Hash consistent with compare() == 0 (INT and REAL that are numerically
  /// equal hash identically), so Value can key the hash indexes and join
  /// tables in table.cpp / engine.cpp.
  [[nodiscard]] std::size_t hash() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> data_;
};

/// Hasher/equality pair for unordered containers keyed by Value. Equality is
/// compare() == 0, matching the semantics of a satisfied SQL '=' predicate
/// on non-NULL operands.
struct ValueHash {
  std::size_t operator()(const Value& v) const { return v.hash(); }
};
struct ValueEqual {
  bool operator()(const Value& a, const Value& b) const { return a.compare(b) == 0; }
};

}  // namespace rocks::sqldb
