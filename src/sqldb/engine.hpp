// The mini SQL database engine (the toolkit's MySQL stand-in).
//
// Rocks keeps all "global knowledge" of the cluster — the nodes and
// memberships tables, site configuration — in a SQL database and derives
// every service-specific configuration file from query reports (paper
// Sections 1 and 6.4). This engine executes the SQL those components issue.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/parser.hpp"
#include "sqldb/table.hpp"

namespace rocks::sqldb {

/// The outcome of a statement: SELECTs fill columns/rows; writes fill
/// affected_rows.
class ResultSet {
 public:
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affected_rows = 0;

  [[nodiscard]] std::size_t row_count() const { return rows.size(); }
  /// Index of the named output column; throws LookupError when absent.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;
  /// Value at (row, named column).
  [[nodiscard]] const Value& at(std::size_t row, std::string_view column) const;
  /// Renders as an ASCII table (used by benches to print Tables II/III).
  [[nodiscard]] std::string render() const;
};

class Database {
 public:
  /// Parses and executes one SQL statement. Throws ParseError / LookupError.
  ResultSet execute(std::string_view sql);
  /// Executes a pre-parsed statement.
  ResultSet execute(const Statement& statement);

  /// Convenience: run a SELECT and return the single-column results as text.
  [[nodiscard]] std::vector<std::string> query_column(std::string_view sql);

  [[nodiscard]] bool has_table(std::string_view name) const;
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

 private:
  ResultSet run_select(const SelectStmt& stmt);
  ResultSet run_insert(const InsertStmt& stmt);
  ResultSet run_update(const UpdateStmt& stmt);
  ResultSet run_delete(const DeleteStmt& stmt);
  ResultSet run_create(const CreateTableStmt& stmt);
  ResultSet run_drop(const DropTableStmt& stmt);

  [[nodiscard]] Table& table_mutable(std::string_view name);

  std::map<std::string, Table> tables_;  // keyed by lower-cased name
};

}  // namespace rocks::sqldb
