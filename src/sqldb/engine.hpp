// The mini SQL database engine (the toolkit's MySQL stand-in).
//
// Rocks keeps all "global knowledge" of the cluster — the nodes and
// memberships tables, site configuration — in a SQL database and derives
// every service-specific configuration file from query reports (paper
// Sections 1 and 6.4). This engine executes the SQL those components issue.
//
// Hot-path machinery (see DESIGN.md §8): execute(string_view) consults an
// LRU cache of parsed statements so repeat callers (the kickstart CGI, the
// service generators, cluster-kill --query=) pay the parser once; SELECT
// runs through a small planner that probes per-column hash indexes for
// equality predicates and hash-joins two-table equi-joins, falling back to
// the nested-loop scan whenever a query doesn't fit those shapes.
//
// Concurrency (see DESIGN.md §9): the engine is safe for concurrent use.
// SELECTs run under a shared lock so a mass reinstall's kickstart reads
// proceed in parallel; DML/DDL take the lock exclusively. The prepared-
// statement LRU has its own internal mutex, so cache hits never serialize
// behind the table lock. table() references remain valid under concurrent
// DML, but only external quiescence protects them across a DROP TABLE.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sqldb/journal.hpp"
#include "sqldb/parser.hpp"
#include "sqldb/table.hpp"

namespace rocks::vfs {
class FileSystem;
}

namespace rocks::sqldb {

struct WalRecord;

/// What open_durable() found and did while bringing the store back up.
struct RecoveryReport {
  bool snapshot_loaded = false;         // a valid snapshot was restored
  std::uint64_t snapshot_seq = 0;       // its sequence number
  std::uint64_t snapshot_lsn = 0;       // its last absorbed LSN
  std::size_t snapshots_skipped = 0;    // corrupt snapshots passed over
  std::size_t wal_records_replayed = 0; // applied on top of the snapshot
  std::size_t wal_records_skipped = 0;  // at or below the snapshot LSN
  std::size_t wal_records_dropped = 0;  // unusable after an LSN gap
  bool wal_torn = false;                // a torn/corrupt tail was truncated
  std::uint64_t last_lsn = 0;           // store position after recovery
};

/// The outcome of a statement: SELECTs fill columns/rows; writes fill
/// affected_rows.
class ResultSet {
 public:
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affected_rows = 0;

  [[nodiscard]] std::size_t row_count() const { return rows.size(); }
  /// Index of the named output column; throws LookupError when absent.
  /// The name -> index map is built once on first use and cached, so looping
  /// callers don't pay a linear scan per cell; don't mutate `columns` after
  /// the first lookup.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;
  /// Value at (row, named column).
  [[nodiscard]] const Value& at(std::size_t row, std::string_view column) const;
  /// Value at (row, positional column) — pair with column_index() hoisted
  /// out of the loop.
  [[nodiscard]] const Value& at(std::size_t row, std::size_t column) const;
  /// Renders as an ASCII table (used by benches to print Tables II/III).
  [[nodiscard]] std::string render() const;

 private:
  mutable std::unordered_map<std::string, std::size_t> column_cache_;  // lowered name
};

class Database {
 public:
  Database();
  ~Database();  // out-of-line: Durability is incomplete here

  /// A parsed, shareable statement. Holders keep it valid even after the
  /// cache evicts the entry.
  using PreparedStatement = std::shared_ptr<const Statement>;

  /// Parses one statement, consulting/filling the LRU statement cache keyed
  /// on the exact SQL text. Throws ParseError.
  [[nodiscard]] PreparedStatement prepare(std::string_view sql);

  /// Parses (through the statement cache) and executes one SQL statement.
  /// Throws ParseError / LookupError.
  ResultSet execute(std::string_view sql);
  /// Executes a pre-parsed statement.
  ResultSet execute(const Statement& statement);

  /// Convenience: run a SELECT and return the single-column results as text.
  [[nodiscard]] std::vector<std::string> query_column(std::string_view sql);

  // --- change-propagation bus (DESIGN.md §10) ------------------------------
  // Every INSERT/UPDATE/DELETE records (op, PK, revision) into the journal
  // under the exclusive table lock; subscribers are notified once per
  // committed statement, after the lock is released, so callbacks may
  // re-enter the Database. CREATE/DROP TABLE truncate the table's channel
  // (full rescan). Channel names are the (case-insensitive) table names.
  [[nodiscard]] ChangeJournal& journal() { return journal_; }
  [[nodiscard]] const ChangeJournal& journal() const { return journal_; }
  /// Current change revision of a table's channel (0 = never written).
  [[nodiscard]] std::uint64_t revision(std::string_view table) const {
    return journal_.revision(table);
  }
  /// Row-level changes after `revision`, or "truncated, rescan required".
  [[nodiscard]] ChangeDelta since(std::string_view table, std::uint64_t revision) const {
    return journal_.since(table, revision);
  }
  /// Registers a per-table (or ChangeJournal::kAllChannels) change callback.
  std::size_t subscribe(std::string_view table, ChangeJournal::Callback callback) {
    return journal_.subscribe(table, std::move(callback));
  }
  void unsubscribe(std::size_t subscription) { journal_.unsubscribe(subscription); }

  // --- durable store (DESIGN.md §11) ---------------------------------------
  // Without a store the Database is the in-RAM engine it always was. With
  // one, every committed mutation appends physical WAL records under the
  // exclusive lock (commit order == WAL order), snapshot() checkpoints, and
  // open_durable() on a fresh Database brings back the exact committed
  // state — tables, AUTO_INCREMENT cursors, index definitions, and journal
  // channel revisions alike.

  /// Attaches the store rooted at `dir` (created if absent) and recovers:
  /// loads the newest valid snapshot (skipping corrupt ones), truncates a
  /// torn WAL tail, and replays the remaining records. Must be called on a
  /// Database with no tables; throws StateError otherwise. The store stays
  /// attached — subsequent mutations are logged.
  RecoveryReport open_durable(vfs::FileSystem& fs, std::string_view dir);
  [[nodiscard]] bool durable() const { return durability_ != nullptr; }

  /// Checkpoints: flushes the WAL, serializes everything to a new snapshot
  /// (temp file + atomic rename), truncates the WAL, and retires snapshots
  /// older than the newest two. Returns the new snapshot's sequence number.
  /// Crash points: "snapshot.write.before", "snapshot.write.after",
  /// "snapshot.rename.after", "snapshot.retire.before".
  std::uint64_t snapshot();

  /// Forces buffered WAL records to disk — the group-commit barrier callers
  /// use before acknowledging work to the outside (e.g. insert-ethers
  /// completing a registration batch).
  void wal_flush();

  /// Statements per WAL flush; 1 (default) = synchronous durability on
  /// every commit, larger batches amortize the append at the cost of a
  /// bounded loss window (never an inconsistency).
  void set_wal_group_commit(std::size_t batch);

  // --- replication surface (DESIGN.md §12) ---------------------------------
  // A durable Database can act as either end of WAL shipping: the leader
  // side exposes its commit stream (set_wal_sink, wal_image) and a
  // bootstrap image (snapshot_image); the follower side applies shipped
  // statement groups (replicate_apply), installs bootstrap images
  // (install_replica_snapshot), and fences local writes (set_read_only).

  /// Commit hook for WAL shipping: invoked under the exclusive table lock
  /// with each statement's LSN-stamped records, in commit order (WAL order
  /// == commit order == sink order), right before the local group-commit
  /// flush. The sink must not call back into this Database. Requires a
  /// durable store (records are only built when one is attached); pass
  /// nullptr to detach (a killed leader stops shipping).
  using WalSink = std::function<void(const std::vector<WalRecord>&)>;
  void set_wal_sink(WalSink sink);

  /// Applies one shipped statement group to this durable replica.
  /// Records at or below the current LSN are skipped (duplicate delivery is
  /// idempotent); the first genuinely new record must be exactly next in
  /// sequence or the whole group is rejected with StateError — an LSN gap
  /// means shipping skipped something and the follower must be caught up
  /// from the leader's WAL cursor or re-bootstrapped. Applied records are
  /// appended verbatim to the replica's own WAL (leader LSNs preserved), so
  /// the replica's independent crash recovery replays the same history.
  /// Touched journal channels are notified after the lock drops, exactly
  /// like local commits. Returns the replica's LSN after the group.
  std::uint64_t replicate_apply(const std::vector<WalRecord>& group);

  /// Write fencing for the follower role: while read-only, every non-SELECT
  /// statement throws StateError mentioning `leader_hint` (redirect-on-
  /// write). replicate_apply and install_replica_snapshot are exempt —
  /// replication IS the write path on a follower.
  void set_read_only(bool read_only, std::string leader_hint = "");
  [[nodiscard]] bool read_only() const {
    return read_only_.load(std::memory_order_relaxed);
  }

  /// Serializes current committed state as a snapshot image — the leader
  /// side of follower bootstrap. Pure serialization under the shared lock:
  /// no file I/O, no sequence-number bump. Requires a durable store (the
  /// image carries the LSN position).
  [[nodiscard]] std::string snapshot_image() const;

  /// Follower bootstrap: replaces this durable replica's state with
  /// `image` — tables, journal channel revisions, and LSN cursor — and
  /// persists the image as the replica's own snapshot (plus a WAL reset) so
  /// its independent crash recovery starts from it. Accepts a non-empty
  /// database: re-bootstrap is the catch-up path for a follower that fell
  /// behind the leader's retained WAL. Throws StateError on a corrupt
  /// image. Returns the image's last LSN.
  std::uint64_t install_replica_snapshot(std::string_view image);

  /// The durable WAL image: the on-disk bytes (unflushed tail excluded).
  /// Source for the wal_groups_after() streaming cursor — follower
  /// catch-up after a reconnect, and the promotion path's re-ship.
  [[nodiscard]] std::string wal_image() const;

  /// Deterministic dump of committed state: every table's schema, index
  /// definitions, AUTO_INCREMENT cursor and rows, plus journal channel
  /// revisions. Two Databases with equal dumps are observably identical —
  /// the crash-recovery tests compare these byte-for-byte.
  [[nodiscard]] std::string dump_state() const;

  // Durability observability (tests, bench_durability). Zero when no store
  // is attached.
  [[nodiscard]] std::uint64_t last_lsn() const;
  [[nodiscard]] std::uint64_t wal_records_appended() const;
  [[nodiscard]] std::uint64_t wal_flushes() const;
  [[nodiscard]] std::uint64_t wal_bytes_written() const;

  [[nodiscard]] bool has_table(std::string_view name) const;
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  // Statement-cache observability (tests, tuning).
  [[nodiscard]] std::size_t statement_cache_size() const;
  [[nodiscard]] std::uint64_t statement_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t statement_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  // Planner observability: how many SELECTs ran with each strategy.
  [[nodiscard]] std::uint64_t plans_index_probe() const {
    return plans_index_probe_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plans_index_join() const {
    return plans_index_join_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plans_hash_join() const {
    return plans_hash_join_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plans_scan() const {
    return plans_scan_.load(std::memory_order_relaxed);
  }

  // Lock-contention observability (DESIGN.md §9): how many statements ran
  // under each lock mode, and the cumulative time spent waiting to acquire
  // the table lock (nanoseconds). Sits alongside the plan counters so a
  // bench can tell "slow because scanning" from "slow because serialized".
  [[nodiscard]] std::uint64_t shared_lock_acquisitions() const {
    return shared_acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exclusive_lock_acquisitions() const {
    return exclusive_acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shared_lock_wait_ns() const {
    return shared_wait_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exclusive_lock_wait_ns() const {
    return exclusive_wait_ns_.load(std::memory_order_relaxed);
  }

  /// Testing/debug knob: with the planner off every SELECT takes the
  /// nested-loop scan. Index and hash-join plans must produce identical
  /// ResultSets, so A/B tests flip this and compare.
  void set_planner_enabled(bool enabled) {
    planner_enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  struct Durability;  // WAL writer + LSN/seq cursors; engine.cpp only

  // Mutating statements append the channels they changed to `touched` and,
  // when a durable store is attached (`wal` non-null), one physical WAL
  // record per row-level change — the same granularity the journal records,
  // so replay reproduces both; execute() dispatches one journal
  // notification per channel after the exclusive lock is released
  // (callbacks may re-enter the Database).
  ResultSet run_select(const SelectStmt& stmt);
  ResultSet run_insert(const InsertStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_update(const UpdateStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_delete(const DeleteStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_create(const CreateTableStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_create_index(const CreateIndexStmt& stmt, std::vector<WalRecord>* wal);
  ResultSet run_drop(const DropTableStmt& stmt, std::vector<std::string>& touched,
                     std::vector<WalRecord>* wal);

  /// Applies one replayed WAL record to table storage, re-recording into the
  /// journal exactly as the original run_* did (revisions line back up) but
  /// never notifying — recovery runs before any subscriber exists.
  void apply_wal_record(const WalRecord& record);

  /// Stamps LSNs onto `records`, appends them, and marks one statement
  /// committed (group-commit accounting). Caller holds the exclusive lock;
  /// no-op without a durable store.
  void wal_append_locked(std::vector<WalRecord>& records);

  // Table lookups used while the caller already holds table_lock_
  // (std::shared_mutex is not recursive, so run_* must never re-lock).
  [[nodiscard]] const Table& table_locked(std::string_view name) const;
  [[nodiscard]] Table& table_mutable(std::string_view name);

  /// Case-insensitive, allocation-free table-name ordering (heterogeneous
  /// lookup: find(string_view) never builds a lowered temporary).
  struct NameLess {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const;
  };

  std::map<std::string, Table, NameLess> tables_;  // keyed by name, case-insensitive

  // Commit-time change journal. Internally synchronized with its own leaf
  // mutexes, so run_* may record into it while holding table_lock_ without
  // adding lock acquisitions the contention counters would see.
  ChangeJournal journal_;

  // Durable store; null until open_durable(). Guarded by table_lock_ (the
  // WAL is written under the exclusive lock, so WAL order is commit order).
  std::unique_ptr<Durability> durability_;

  // Replication state (DESIGN.md §12). The sink and the fencing message are
  // written under the exclusive lock and read there too; read_only_ is
  // additionally readable without the lock (generators probe it).
  WalSink wal_sink_;
  std::atomic<bool> read_only_{false};
  std::string read_only_error_;

  // --- table reader-writer lock (DESIGN.md §9) -----------------------------
  // Guards tables_ and every Table inside it. SELECT paths lock shared,
  // DML/DDL exclusive. Never held while calling prepare() — the statement
  // cache has its own mutex and the two never nest in that order.
  mutable std::shared_mutex table_lock_;
  mutable std::atomic<std::uint64_t> shared_acquisitions_{0};
  mutable std::atomic<std::uint64_t> exclusive_acquisitions_{0};
  mutable std::atomic<std::uint64_t> shared_wait_ns_{0};
  mutable std::atomic<std::uint64_t> exclusive_wait_ns_{0};

  // --- prepared-statement LRU cache ---------------------------------------
  static constexpr std::size_t kStatementCacheCapacity = 256;
  // Guards lru_ + statement_cache_ (a cache *hit* still splices the LRU
  // list, so reads need the mutex too). Leaf lock: nothing else is
  // acquired while it is held.
  mutable std::mutex statement_mutex_;
  // Most-recently-used at the front. The unordered_map's string_view keys
  // point into the list nodes' stable strings.
  std::list<std::pair<std::string, PreparedStatement>> lru_;
  std::unordered_map<std::string_view,
                     std::list<std::pair<std::string, PreparedStatement>>::iterator>
      statement_cache_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> plans_index_probe_{0};
  std::atomic<std::uint64_t> plans_index_join_{0};
  std::atomic<std::uint64_t> plans_hash_join_{0};
  std::atomic<std::uint64_t> plans_scan_{0};
  std::atomic<bool> planner_enabled_{true};
};

}  // namespace rocks::sqldb
