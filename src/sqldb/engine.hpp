// The mini SQL database engine (the toolkit's MySQL stand-in).
//
// Rocks keeps all "global knowledge" of the cluster — the nodes and
// memberships tables, site configuration — in a SQL database and derives
// every service-specific configuration file from query reports (paper
// Sections 1 and 6.4). This engine executes the SQL those components issue.
//
// Hot-path machinery (see DESIGN.md §8): execute(string_view) consults an
// LRU cache of parsed statements so repeat callers (the kickstart CGI, the
// service generators, cluster-kill --query=) pay the parser once; SELECT
// runs through a small planner that probes per-column hash indexes for
// equality predicates and hash-joins two-table equi-joins, falling back to
// the nested-loop scan whenever a query doesn't fit those shapes.
//
// Concurrency (DESIGN.md §13): multi-version concurrency control. Writers
// (DML/DDL) serialize on one mutex — WAL order is commit order — but
// readers never touch it: every SELECT pins the current commit timestamp
// in a ReaderRegistry and evaluates against the version chains visible at
// that timestamp, so an insert-ethers burst can no longer stall kickstart
// generation. Commit timestamps are WAL LSNs (the commit-marked record's),
// making "the state at ts" and "the state after replaying LSNs <= ts"
// identical by construction; recovery, replication apply, and snapshot
// restore all reconstruct the same timestamps. ReadView exposes a pinned
// multi-statement view (consistent kickstart resolution); snapshot() and
// snapshot_image() serialize from a pinned view while DML proceeds —
// checkpoints are zero-pause. Superseded row versions are reclaimed once
// no live view can reach them (Table::reclaim, every 64 commits).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sqldb/journal.hpp"
#include "sqldb/mvcc.hpp"
#include "sqldb/parser.hpp"
#include "sqldb/table.hpp"

namespace rocks::vfs {
class FileSystem;
}

namespace rocks::sqldb {

struct WalRecord;
class ReadView;

/// What open_durable() found and did while bringing the store back up.
struct RecoveryReport {
  bool snapshot_loaded = false;         // a valid snapshot was restored
  std::uint64_t snapshot_seq = 0;       // its sequence number
  std::uint64_t snapshot_lsn = 0;       // its last absorbed LSN
  std::size_t snapshots_skipped = 0;    // corrupt snapshots passed over
  std::size_t wal_records_replayed = 0; // applied on top of the snapshot
  std::size_t wal_records_skipped = 0;  // at or below the snapshot LSN
  std::size_t wal_records_dropped = 0;  // unusable after an LSN gap
  bool wal_torn = false;                // a torn/corrupt tail was truncated
  std::uint64_t last_lsn = 0;           // store position after recovery
};

/// The outcome of a statement: SELECTs fill columns/rows; writes fill
/// affected_rows.
class ResultSet {
 public:
  std::vector<std::string> columns;
  std::vector<Row> rows;
  std::size_t affected_rows = 0;

  [[nodiscard]] std::size_t row_count() const { return rows.size(); }
  /// Index of the named output column; throws LookupError when absent.
  /// The name -> index map is built once on first use and cached, so looping
  /// callers don't pay a linear scan per cell; don't mutate `columns` after
  /// the first lookup.
  [[nodiscard]] std::size_t column_index(std::string_view name) const;
  /// Value at (row, named column).
  [[nodiscard]] const Value& at(std::size_t row, std::string_view column) const;
  /// Value at (row, positional column) — pair with column_index() hoisted
  /// out of the loop.
  [[nodiscard]] const Value& at(std::size_t row, std::size_t column) const;
  /// Renders as an ASCII table (used by benches to print Tables II/III).
  [[nodiscard]] std::string render() const;

 private:
  mutable std::unordered_map<std::string, std::size_t> column_cache_;  // lowered name
};

/// One table the catalog has ever known. Entries are append-only: DROP
/// TABLE stamps the table's dropped_ts instead of removing the entry, so a
/// reader whose pin predates the drop still resolves it. `seq` orders
/// entries sharing a (recreated) name — the latest visible entry wins.
struct CatalogEntry {
  std::shared_ptr<Table> table;
  std::uint64_t seq = 0;
};

/// An immutable published table set, sorted by (lowered name, seq).
/// Readers load the current catalog once per view; superseded catalogs are
/// retained for the Database's lifetime (bounded by DDL count), which is
/// why a raw atomic pointer suffices.
struct Catalog {
  std::vector<CatalogEntry> entries;
};

/// MVCC observability (cluster-status --engine, bench_mvcc): the commit
/// cursor, the active read-view horizon, and version-chain shape.
struct MvccStatus {
  std::uint64_t commit_ts = 0;        // newest committed timestamp (== last LSN when durable)
  std::uint64_t min_active_ts = 0;    // oldest pinned read ts (commit_ts when idle)
  std::size_t active_read_views = 0;  // pins live right now
  std::uint64_t read_views_opened = 0;
  std::uint64_t versions_reclaimed = 0;  // freed over the engine's life
  std::size_t versions_live = 0;         // version nodes currently linked
  std::size_t retired_pending = 0;       // superseded, awaiting the ts horizon
  std::size_t limbo_versions = 0;        // unlinked, awaiting walker drain
  std::size_t max_chain = 0;
  std::array<std::size_t, 9> chain_histogram{};  // [i] = chains of length i+1; [8] = >8
  struct TableStatus {
    std::string table;
    Table::Stats stats;
  };
  std::vector<TableStatus> tables;
};

class Database {
 public:
  Database();
  ~Database();  // out-of-line: Durability is incomplete here

  /// A parsed, shareable statement. Holders keep it valid even after the
  /// cache evicts the entry.
  using PreparedStatement = std::shared_ptr<const Statement>;

  /// Parses one statement, consulting/filling the LRU statement cache keyed
  /// on the exact SQL text. Throws ParseError.
  [[nodiscard]] PreparedStatement prepare(std::string_view sql);

  /// Parses (through the statement cache) and executes one SQL statement.
  /// Throws ParseError / LookupError. SELECTs run lock-free against a
  /// snapshot-isolation view pinned at the current commit timestamp.
  ResultSet execute(std::string_view sql);
  /// Executes a pre-parsed statement.
  ResultSet execute(const Statement& statement);

  /// Convenience: run a SELECT and return the single-column results as text.
  [[nodiscard]] std::vector<std::string> query_column(std::string_view sql);

  /// Opens a pinned read view at the current commit timestamp: every SELECT
  /// executed through it sees the same committed state, however many
  /// writers commit in between — the kickstart resolve path uses one view
  /// for its node + membership lookups so they can never disagree. Holding
  /// a view defers version reclamation past its timestamp; release (destroy)
  /// views promptly.
  [[nodiscard]] ReadView read_view();

  // --- change-propagation bus (DESIGN.md §10) ------------------------------
  // Every INSERT/UPDATE/DELETE records (op, PK, revision) into the journal
  // under the exclusive writer lock; subscribers are notified once per
  // committed statement, after the lock is released, so callbacks may
  // re-enter the Database. CREATE/DROP TABLE truncate the table's channel
  // (full rescan). Channel names are the (case-insensitive) table names.
  [[nodiscard]] ChangeJournal& journal() { return journal_; }
  [[nodiscard]] const ChangeJournal& journal() const { return journal_; }
  /// Current change revision of a table's channel (0 = never written).
  [[nodiscard]] std::uint64_t revision(std::string_view table) const {
    return journal_.revision(table);
  }
  /// Row-level changes after `revision`, or "truncated, rescan required".
  [[nodiscard]] ChangeDelta since(std::string_view table, std::uint64_t revision) const {
    return journal_.since(table, revision);
  }
  /// Registers a per-table (or ChangeJournal::kAllChannels) change callback.
  std::size_t subscribe(std::string_view table, ChangeJournal::Callback callback) {
    return journal_.subscribe(table, std::move(callback));
  }
  void unsubscribe(std::size_t subscription) { journal_.unsubscribe(subscription); }

  // --- durable store (DESIGN.md §11) ---------------------------------------
  // Without a store the Database is the in-RAM engine it always was. With
  // one, every committed mutation appends physical WAL records under the
  // exclusive lock (commit order == WAL order), snapshot() checkpoints, and
  // open_durable() on a fresh Database brings back the exact committed
  // state — tables, AUTO_INCREMENT cursors, index definitions, and journal
  // channel revisions alike.

  /// Attaches the store rooted at `dir` (created if absent) and recovers:
  /// loads the newest valid snapshot (skipping corrupt ones), truncates a
  /// torn WAL tail, and replays the remaining records — reconstructing each
  /// statement's commit timestamp from its commit-marked record's LSN. Must
  /// be called on a Database with no tables; throws StateError otherwise.
  /// The store stays attached — subsequent mutations are logged.
  RecoveryReport open_durable(vfs::FileSystem& fs, std::string_view dir);
  [[nodiscard]] bool durable() const { return durability_ != nullptr; }

  /// Checkpoints with zero reader/writer pause: flushes the WAL and pins a
  /// read view under a brief exclusive hold, serializes the pinned state
  /// with the lock released (DML proceeds), then republishes under another
  /// brief hold — temp file + atomic rename, WAL truncated up to the
  /// absorbed LSN (records committed during serialization survive), and
  /// snapshots older than the newest two retired. Returns the new
  /// snapshot's sequence number.
  /// Crash points: "snapshot.write.before", "snapshot.write.after",
  /// "snapshot.rename.after", "snapshot.retire.before".
  std::uint64_t snapshot();

  /// Forces buffered WAL records to disk — the group-commit barrier callers
  /// use before acknowledging work to the outside (e.g. insert-ethers
  /// completing a registration batch).
  void wal_flush();

  /// Statements per WAL flush; 1 (default) = synchronous durability on
  /// every commit, larger batches amortize the append at the cost of a
  /// bounded loss window (never an inconsistency).
  void set_wal_group_commit(std::size_t batch);

  // --- replication surface (DESIGN.md §12) ---------------------------------
  // A durable Database can act as either end of WAL shipping: the leader
  // side exposes its commit stream (set_wal_sink, wal_image) and a
  // bootstrap image (snapshot_image); the follower side applies shipped
  // statement groups (replicate_apply), installs bootstrap images
  // (install_replica_snapshot), and fences local writes (set_read_only).

  /// Commit hook for WAL shipping: invoked under the exclusive writer lock
  /// with each statement's LSN-stamped records, in commit order (WAL order
  /// == commit order == sink order), right before the local group-commit
  /// flush. The sink must not call back into this Database. Requires a
  /// durable store (records are only built when one is attached); pass
  /// nullptr to detach (a killed leader stops shipping).
  using WalSink = std::function<void(const std::vector<WalRecord>&)>;
  void set_wal_sink(WalSink sink);

  /// Applies one shipped statement group to this durable replica.
  /// Records at or below the current LSN are skipped (duplicate delivery is
  /// idempotent); the first genuinely new record must be exactly next in
  /// sequence or the whole group is rejected with StateError — an LSN gap
  /// means shipping skipped something and the follower must be caught up
  /// from the leader's WAL cursor or re-bootstrapped. Applied records are
  /// appended verbatim to the replica's own WAL (leader LSNs preserved), so
  /// the replica's independent crash recovery replays the same history —
  /// and the leader's commit timestamps are reproduced exactly (ts == the
  /// commit record's LSN). Touched journal channels are notified after the
  /// lock drops, exactly like local commits. Returns the replica's LSN
  /// after the group.
  std::uint64_t replicate_apply(const std::vector<WalRecord>& group);

  /// Write fencing for the follower role: while read-only, every non-SELECT
  /// statement throws StateError mentioning `leader_hint` (redirect-on-
  /// write). replicate_apply and install_replica_snapshot are exempt —
  /// replication IS the write path on a follower.
  void set_read_only(bool read_only, std::string leader_hint = "");
  [[nodiscard]] bool read_only() const {
    return read_only_.load(std::memory_order_relaxed);
  }

  /// Serializes current committed state as a snapshot image — the leader
  /// side of follower bootstrap. Zero-pause like snapshot(): the LSN
  /// position and a read view are captured under a brief lock hold, the
  /// serialization itself runs against the pinned view while DML proceeds.
  [[nodiscard]] std::string snapshot_image() const;

  /// Follower bootstrap: replaces this durable replica's state with
  /// `image` — tables, journal channel revisions, and LSN cursor — and
  /// persists the image as the replica's own snapshot (plus a WAL reset) so
  /// its independent crash recovery starts from it. Accepts a non-empty
  /// database: re-bootstrap is the catch-up path for a follower that fell
  /// behind the leader's retained WAL. Readers pinned before the install
  /// keep the pre-install tables (stamped dropped at the image's LSN);
  /// views opened after see the image. Throws StateError on a corrupt
  /// image. Returns the image's last LSN.
  std::uint64_t install_replica_snapshot(std::string_view image);

  /// The durable WAL image: the on-disk bytes (unflushed tail excluded).
  /// Source for the wal_groups_after() streaming cursor — follower
  /// catch-up after a reconnect, and the promotion path's re-ship.
  [[nodiscard]] std::string wal_image() const;

  /// Deterministic dump of committed state: every table's schema, index
  /// definitions, AUTO_INCREMENT cursor and rows, plus journal channel
  /// revisions. Two Databases with equal dumps are observably identical —
  /// the crash-recovery tests compare these byte-for-byte. Reads from a
  /// pinned view, so it never blocks (or is blocked by) writers.
  [[nodiscard]] std::string dump_state() const;

  // Durability observability (tests, bench_durability). Zero when no store
  // is attached.
  [[nodiscard]] std::uint64_t last_lsn() const;
  [[nodiscard]] std::uint64_t wal_records_appended() const;
  [[nodiscard]] std::uint64_t wal_flushes() const;
  [[nodiscard]] std::uint64_t wal_bytes_written() const;

  [[nodiscard]] bool has_table(std::string_view name) const;
  [[nodiscard]] const Table& table(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> table_names() const;

  // --- MVCC observability & maintenance (DESIGN.md §13) --------------------
  /// Point-in-time engine status: commit cursor, read-view horizon,
  /// version-chain histogram, reclamation counters.
  [[nodiscard]] MvccStatus mvcc_status() const;
  /// Forces a reclamation pass (normally one runs every 64 commits).
  /// Returns the number of versions freed; 0 when a pinned view (or a pin
  /// mid-registration) blocks the horizon.
  std::size_t reclaim();

  // Statement-cache observability (tests, tuning).
  [[nodiscard]] std::size_t statement_cache_size() const;
  [[nodiscard]] std::uint64_t statement_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t statement_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  // Planner observability: how many SELECTs ran with each strategy.
  [[nodiscard]] std::uint64_t plans_index_probe() const {
    return plans_index_probe_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plans_index_join() const {
    return plans_index_join_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plans_hash_join() const {
    return plans_hash_join_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t plans_scan() const {
    return plans_scan_.load(std::memory_order_relaxed);
  }

  // Lock-contention observability (DESIGN.md §9/§13): writer-lock
  // acquisitions and cumulative wait (nanoseconds). Under MVCC the read
  // path takes no lock at all — shared_lock_acquisitions() stays 0 and is
  // kept for API continuity; read_views_opened() counts the pinned views
  // that replaced it.
  [[nodiscard]] std::uint64_t shared_lock_acquisitions() const {
    return shared_acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exclusive_lock_acquisitions() const {
    return exclusive_acquisitions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shared_lock_wait_ns() const {
    return shared_wait_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t exclusive_lock_wait_ns() const {
    return exclusive_wait_ns_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t read_views_opened() const {
    return read_views_opened_.load(std::memory_order_relaxed);
  }

  /// Zeroes the statement-cache, planner, lock, and read-view counters so
  /// bench harnesses get per-phase numbers instead of cumulative ones.
  /// Engine state (commit timestamps, reclamation totals) is untouched.
  void reset_stats();

  /// Testing/debug knob: with the planner off every SELECT takes the
  /// nested-loop scan. Index and hash-join plans must produce identical
  /// ResultSets, so A/B tests flip this and compare.
  void set_planner_enabled(bool enabled) {
    planner_enabled_.store(enabled, std::memory_order_relaxed);
  }

 private:
  friend class ReadView;
  struct Durability;  // WAL writer + LSN/seq cursors; engine.cpp only

  // Mutating statements append the channels they changed to `touched` and,
  // when a durable store is attached (`wal` non-null), one physical WAL
  // record per row-level change — the same granularity the journal records,
  // so replay reproduces both; execute() dispatches one journal
  // notification per channel after the exclusive lock is released
  // (callbacks may re-enter the Database).
  ResultSet run_select(const SelectStmt& stmt, const Catalog& catalog, std::uint64_t ts);
  ResultSet run_insert(const InsertStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_update(const UpdateStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_delete(const DeleteStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_create(const CreateTableStmt& stmt, std::vector<std::string>& touched,
                       std::vector<WalRecord>* wal);
  ResultSet run_create_index(const CreateIndexStmt& stmt, std::vector<WalRecord>* wal);
  ResultSet run_drop(const DropTableStmt& stmt, std::vector<std::string>& touched,
                     std::vector<WalRecord>* wal);

  /// Applies one replayed WAL record to table storage, re-recording into the
  /// journal exactly as the original run_* did (revisions line back up) but
  /// never notifying — recovery runs before any subscriber exists.
  void apply_wal_record(const WalRecord& record);

  /// Commits one statement under the writer lock: stages `records` into the
  /// WAL (LSN stamping, ship to the sink), stamps every version the
  /// statement created or superseded with the commit timestamp (the commit
  /// record's LSN when durable, commit_ts + 1 otherwise), publishes the
  /// catalog if DDL changed it, advances commit_ts_, and only then issues
  /// the (possibly throwing) WAL group-commit flush — an IO failure never
  /// hides the in-RAM commit. Also runs on the partial-failure path, since
  /// this engine has no rollback.
  void commit_locked(std::vector<WalRecord>& records);
  /// The stamping half of commit_locked (shared with replay/replicate):
  /// commit_pending on every table, created/dropped stamps for DDL,
  /// commit_ts_ advance, periodic reclamation.
  void stamp_commit_locked(std::uint64_t ts);
  void maybe_reclaim_locked();
  std::size_t reclaim_locked();

  /// Creates a table in both the writer map and the reader catalog; the
  /// created_ts stamp waits for commit (readers can't see it earlier).
  Table& create_table_locked(const std::string& name, const std::vector<ColumnDef>& columns);
  /// Removes a table from the writer map; the catalog entry stays and is
  /// stamped dropped at commit.
  void drop_table_locked(std::string_view name);
  /// Publishes a new catalog with `table` appended (keep-forever storage).
  void catalog_append_locked(std::shared_ptr<Table> table);

  // Table lookups used while the caller already holds table_lock_ (the
  // writer mutex is not recursive, so run_* must never re-lock).
  [[nodiscard]] const Table& table_locked(std::string_view name) const;
  [[nodiscard]] Table& table_mutable(std::string_view name);
  /// Reader-side lookup: the table named `name` visible at `ts` in a loaded
  /// catalog (latest visible entry wins across recreations), or null.
  [[nodiscard]] static const Table* catalog_lookup(const Catalog& catalog,
                                                   std::string_view name, std::uint64_t ts);

  /// Case-insensitive, allocation-free table-name ordering (heterogeneous
  /// lookup: find(string_view) never builds a lowered temporary).
  struct NameLess {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const;
  };

  // The writer's current tables, keyed by name (case-insensitive) — the
  // same shape the run_* statement handlers always worked against. The
  // shared_ptrs are co-owned by catalog entries, so a DROP removes the
  // table here while pinned readers keep resolving it through the catalog.
  std::map<std::string, std::shared_ptr<Table>, NameLess> tables_;

  // The reader-facing catalog, published via an atomic pointer; superseded
  // catalogs are kept until destruction (count bounded by DDL statements).
  std::vector<std::unique_ptr<const Catalog>> catalog_storage_;
  std::atomic<const Catalog*> catalog_{nullptr};
  std::uint64_t catalog_seq_ = 0;

  // MVCC commit cursor: the newest committed timestamp (== last LSN when
  // durable). Readers pin it; writers advance it after stamping, so a pin
  // taken at ts T always observes every version of every statement <= T.
  std::atomic<std::uint64_t> commit_ts_{0};
  mutable ReaderRegistry registry_;
  std::vector<std::shared_ptr<Table>> pending_creates_;  // stamped at commit
  std::vector<std::shared_ptr<Table>> pending_drops_;
  std::uint64_t commits_since_reclaim_ = 0;
  static constexpr std::uint64_t kReclaimInterval = 64;

  // Commit-time change journal. Internally synchronized with its own leaf
  // mutexes, so run_* may record into it while holding table_lock_ without
  // adding lock acquisitions the contention counters would see.
  ChangeJournal journal_;

  // Durable store; null until open_durable(). Guarded by table_lock_ (the
  // WAL is written under the writer lock, so WAL order is commit order).
  std::unique_ptr<Durability> durability_;

  // Replication state (DESIGN.md §12). The sink and the fencing message are
  // written under the writer lock and read there too; read_only_ is
  // additionally readable without the lock (generators probe it).
  WalSink wal_sink_;
  std::atomic<bool> read_only_{false};
  std::string read_only_error_;

  // --- writer lock (DESIGN.md §13) -----------------------------------------
  // Serializes DML/DDL, WAL appends, and durability file IO. SELECTs never
  // take it — they pin a read timestamp instead. snapshot() releases it
  // during serialization (zero-pause checkpoint); snapshot_mutex_ keeps
  // two checkpoints from interleaving across that window.
  mutable std::mutex table_lock_;
  mutable std::mutex snapshot_mutex_;
  mutable std::atomic<std::uint64_t> shared_acquisitions_{0};  // always 0 under MVCC
  mutable std::atomic<std::uint64_t> exclusive_acquisitions_{0};
  mutable std::atomic<std::uint64_t> shared_wait_ns_{0};
  mutable std::atomic<std::uint64_t> exclusive_wait_ns_{0};
  mutable std::atomic<std::uint64_t> read_views_opened_{0};

  // --- prepared-statement LRU cache ---------------------------------------
  static constexpr std::size_t kStatementCacheCapacity = 256;
  // Guards lru_ + statement_cache_ (a cache *hit* still splices the LRU
  // list, so reads need the mutex too). Leaf lock: nothing else is
  // acquired while it is held.
  mutable std::mutex statement_mutex_;
  // Most-recently-used at the front. The unordered_map's string_view keys
  // point into the list nodes' stable strings.
  std::list<std::pair<std::string, PreparedStatement>> lru_;
  std::unordered_map<std::string_view,
                     std::list<std::pair<std::string, PreparedStatement>>::iterator>
      statement_cache_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> plans_index_probe_{0};
  std::atomic<std::uint64_t> plans_index_join_{0};
  std::atomic<std::uint64_t> plans_hash_join_{0};
  std::atomic<std::uint64_t> plans_scan_{0};
  std::atomic<bool> planner_enabled_{true};
};

/// A pinned snapshot-isolation read view over a Database: every SELECT
/// executed through it evaluates against the same commit timestamp, no
/// matter how many writers commit in between. Move-only; the pin releases
/// (and reclamation may proceed past its timestamp) on destruction.
/// SELECT-only by construction — mutations go through Database::execute.
class ReadView {
 public:
  ReadView() = default;
  ReadView(ReadView&&) noexcept = default;
  ReadView& operator=(ReadView&&) noexcept = default;

  /// The view's commit timestamp (== the last LSN it observes when durable).
  [[nodiscard]] std::uint64_t ts() const { return pin_.ts(); }
  [[nodiscard]] explicit operator bool() const { return db_ != nullptr; }

  /// Executes a SELECT (through the Database's statement cache) against the
  /// pinned view. Throws StateError for non-SELECT statements.
  ResultSet execute(std::string_view sql);
  ResultSet execute(const Statement& statement);
  /// Convenience mirror of Database::query_column against the pinned view.
  [[nodiscard]] std::vector<std::string> query_column(std::string_view sql);

 private:
  friend class Database;
  Database* db_ = nullptr;
  ReaderRegistry::Pin pin_;
  const Catalog* catalog_ = nullptr;
};

}  // namespace rocks::sqldb
