#include "sqldb/wal.hpp"

#include "support/binary.hpp"
#include "support/crashpoint.hpp"
#include "support/crc.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {

using support::BinaryReader;
using support::BinaryWriter;

void encode_value(BinaryWriter& out, const Value& value) {
  switch (value.type()) {
    case Type::kNull: out.u8(0); return;
    case Type::kInt: out.u8(1); out.i64(value.as_int()); return;
    case Type::kReal: out.u8(2); out.f64(value.as_real()); return;
    case Type::kText: out.u8(3); out.str(value.as_text()); return;
  }
}

Value decode_value(BinaryReader& in) {
  switch (in.u8()) {
    case 0: return Value::null();
    case 1: return Value(in.i64());
    case 2: return Value(in.f64());
    case 3: return Value(std::string(in.str()));
    default: throw ParseError("wal: unknown value tag");
  }
}

void encode_column(BinaryWriter& out, const ColumnDef& column) {
  out.str(column.name);
  out.u8(static_cast<std::uint8_t>(column.type));
  out.u8(column.primary_key ? 1 : 0);
  out.u8(column.auto_increment ? 1 : 0);
}

ColumnDef decode_column(BinaryReader& in) {
  ColumnDef column;
  column.name = std::string(in.str());
  column.type = static_cast<Type>(in.u8());
  column.primary_key = in.u8() != 0;
  column.auto_increment = in.u8() != 0;
  return column;
}

namespace {

std::string encode_payload(const WalRecord& record) {
  BinaryWriter out;
  out.u64(record.lsn);
  out.u8(static_cast<std::uint8_t>(record.op));
  out.u8(record.commit ? 1 : 0);
  out.str(record.table);
  switch (record.op) {
    case WalOp::kInsert:
      out.u32(static_cast<std::uint32_t>(record.row.size()));
      for (const Value& value : record.row) encode_value(out, value);
      break;
    case WalOp::kUpdate:
      out.u64(record.row_index);
      out.u32(static_cast<std::uint32_t>(record.cells.size()));
      for (const auto& [column, value] : record.cells) {
        out.u32(static_cast<std::uint32_t>(column));
        encode_value(out, value);
      }
      break;
    case WalOp::kDelete:
      out.u32(static_cast<std::uint32_t>(record.row_indexes.size()));
      for (const std::size_t index : record.row_indexes) out.u64(index);
      break;
    case WalOp::kCreateTable:
      out.u32(static_cast<std::uint32_t>(record.schema.size()));
      for (const ColumnDef& column : record.schema) encode_column(out, column);
      break;
    case WalOp::kDropTable:
      break;
    case WalOp::kCreateIndex:
      out.str(record.column);
      break;
  }
  return out.take();
}

WalRecord decode_payload(std::string_view payload) {
  BinaryReader in(payload);
  WalRecord record;
  record.lsn = in.u64();
  const std::uint8_t op = in.u8();
  if (op < 1 || op > 6) throw ParseError("wal: unknown op");
  record.op = static_cast<WalOp>(op);
  record.commit = in.u8() != 0;
  record.table = std::string(in.str());
  switch (record.op) {
    case WalOp::kInsert: {
      const std::uint32_t n = in.u32();
      record.row.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) record.row.push_back(decode_value(in));
      break;
    }
    case WalOp::kUpdate: {
      record.row_index = static_cast<std::size_t>(in.u64());
      const std::uint32_t n = in.u32();
      record.cells.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::size_t column = in.u32();
        record.cells.emplace_back(column, decode_value(in));
      }
      break;
    }
    case WalOp::kDelete: {
      const std::uint32_t n = in.u32();
      record.row_indexes.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i)
        record.row_indexes.push_back(static_cast<std::size_t>(in.u64()));
      break;
    }
    case WalOp::kCreateTable: {
      const std::uint32_t n = in.u32();
      record.schema.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) record.schema.push_back(decode_column(in));
      break;
    }
    case WalOp::kDropTable:
      break;
    case WalOp::kCreateIndex:
      record.column = std::string(in.str());
      break;
  }
  if (!in.done()) throw ParseError("wal: trailing bytes in record payload");
  return record;
}

}  // namespace

std::string encode_wal_record(const WalRecord& record) {
  const std::string payload = encode_payload(record);
  BinaryWriter framed;
  framed.u32(static_cast<std::uint32_t>(payload.size()));
  framed.u32(support::crc32(payload));
  std::string out = framed.take();
  out += payload;
  return out;
}

WalReadResult read_wal(std::string_view bytes) {
  WalReadResult result;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    // Frame header: length + CRC. Anything short of a full, checksummed
    // record is a torn tail — expected after a crash, never fatal.
    if (bytes.size() - pos < 8) break;
    BinaryReader header(bytes.substr(pos, 8));
    const std::uint32_t length = header.u32();
    const std::uint32_t crc = header.u32();
    if (bytes.size() - pos - 8 < length) break;
    const std::string_view payload = bytes.substr(pos + 8, length);
    if (support::crc32(payload) != crc) break;
    try {
      result.records.push_back(decode_payload(payload));
    } catch (const ParseError&) {
      break;  // checksummed but undecodable: treat like corruption
    }
    pos += 8 + length;
  }
  result.valid_bytes = pos;
  result.torn = pos != bytes.size();
  return result;
}

std::vector<WalGroup> wal_groups_after(std::string_view bytes, std::uint64_t floor) {
  const WalReadResult wal = read_wal(bytes);
  std::vector<WalGroup> out;
  WalGroup open;
  for (const WalRecord& record : wal.records) {
    if (open.bytes.empty()) open.first_lsn = record.lsn;
    open.last_lsn = record.lsn;
    open.bytes += encode_wal_record(record);
    if (!record.commit) continue;
    if (open.last_lsn > floor) out.push_back(std::move(open));
    open = WalGroup{};
  }
  // An unterminated trailing group was never acknowledged: drop it, exactly
  // as open_durable's replay does.
  return out;
}

void WalWriter::append(const WalRecord& record) {
  if (pending_.empty()) pending_first_lsn_ = record.lsn;
  pending_last_lsn_ = record.lsn;
  pending_ += encode_wal_record(record);
  ++records_appended_;
}

void WalWriter::commit() {
  ++pending_statements_;
  if (pending_statements_ >= group_commit_) flush();
}

void WalWriter::flush() {
  if (pending_.empty()) {
    pending_statements_ = 0;
    return;
  }
  support::crash_point("wal.flush.before");
  auto& points = support::CrashPoints::instance();
  if (points.fires("wal.flush.torn")) {
    // Simulated power cut mid-append: half the buffer reaches the disk.
    fs_->append_file(path_, std::string_view(pending_).substr(0, pending_.size() / 2 + 1));
    points.trip("wal.flush.torn");
  }
  try {
    fs_->append_file(path_, pending_);
  } catch (const Error& error) {
    // The disk refused the bytes. Surface the exact LSN range that is NOT
    // durable — callers must not acknowledge anything in it — and keep the
    // buffer intact so the next flush retries the same records.
    ++flush_failures_;
    throw IoError(strings::cat("wal flush failed; LSN range [", pending_first_lsn_, ", ",
                               pending_last_lsn_, "] not durable: ", error.what()));
  }
  bytes_written_ += pending_.size();
  ++flushes_;
  // Between the append above and the clear below the record is durable but
  // the statement that triggered it has not returned: a crash here loses
  // nothing (the process dies holding a buffer that is already on disk).
  support::crash_point("wal.flush.after");
  pending_.clear();
  pending_statements_ = 0;
  pending_first_lsn_ = pending_last_lsn_ = 0;
}

void WalWriter::reset() {
  pending_.clear();
  pending_statements_ = 0;
  pending_first_lsn_ = pending_last_lsn_ = 0;
  fs_->write_file(path_, "");
}

void WalWriter::reset_through(std::uint64_t floor) {
  const std::string bytes = fs_->is_file(path_) ? fs_->read_file(path_) : std::string();
  // Re-encoding a decoded record is byte-identical to its original frame,
  // so the surviving suffix is exactly the bytes it had before.
  const WalReadResult wal = read_wal(bytes);
  std::string surviving;
  for (const WalRecord& record : wal.records)
    if (record.lsn > floor) surviving += encode_wal_record(record);
  if (surviving.size() == bytes.size()) return;  // nothing absorbed
  const std::string tmp = path_ + ".tmp";
  fs_->write_file(tmp, std::move(surviving));
  fs_->rename(tmp, path_);
}

}  // namespace rocks::sqldb
