#include "sqldb/snapshot.hpp"

#include <algorithm>

#include "sqldb/wal.hpp"
#include "support/binary.hpp"
#include "support/crc.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {
namespace {

using support::BinaryReader;
using support::BinaryWriter;

constexpr std::uint32_t kMagic = 0x4E534B52;  // "RKSN" little-endian
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::string encode_snapshot(const SnapshotData& snapshot) {
  BinaryWriter out;
  out.u32(kMagic);
  out.u32(kVersion);
  out.u64(snapshot.last_lsn);
  out.u64(snapshot.seq);
  out.u32(static_cast<std::uint32_t>(snapshot.tables.size()));
  for (const TableState& table : snapshot.tables) {
    out.str(table.name);
    out.u32(static_cast<std::uint32_t>(table.columns.size()));
    for (const ColumnDef& column : table.columns) encode_column(out, column);
    out.u32(static_cast<std::uint32_t>(table.indexed.size()));
    for (const std::string& column : table.indexed) out.str(column);
    out.i64(table.next_auto);
    out.u64(table.rows.size());
    for (const Row& row : table.rows) {
      out.u32(static_cast<std::uint32_t>(row.size()));
      for (const Value& value : row) encode_value(out, value);
    }
  }
  out.u32(static_cast<std::uint32_t>(snapshot.channels.size()));
  for (const auto& [name, revision] : snapshot.channels) {
    out.str(name);
    out.u64(revision);
  }
  std::string body = out.take();
  BinaryWriter trailer;
  trailer.u32(support::crc32(body));
  body += trailer.take();
  return body;
}

std::optional<SnapshotData> decode_snapshot(std::string_view bytes) {
  if (bytes.size() < 4) return std::nullopt;
  const std::string_view body = bytes.substr(0, bytes.size() - 4);
  {
    BinaryReader crc_in(bytes.substr(bytes.size() - 4));
    if (crc_in.u32() != support::crc32(body)) return std::nullopt;
  }
  try {
    BinaryReader in(body);
    if (in.u32() != kMagic) return std::nullopt;
    if (in.u32() != kVersion) return std::nullopt;
    SnapshotData snapshot;
    snapshot.last_lsn = in.u64();
    snapshot.seq = in.u64();
    const std::uint32_t ntables = in.u32();
    snapshot.tables.reserve(ntables);
    for (std::uint32_t t = 0; t < ntables; ++t) {
      TableState table;
      table.name = std::string(in.str());
      const std::uint32_t ncols = in.u32();
      table.columns.reserve(ncols);
      for (std::uint32_t c = 0; c < ncols; ++c) table.columns.push_back(decode_column(in));
      const std::uint32_t nindexed = in.u32();
      table.indexed.reserve(nindexed);
      for (std::uint32_t c = 0; c < nindexed; ++c) table.indexed.emplace_back(in.str());
      table.next_auto = in.i64();
      const std::uint64_t nrows = in.u64();
      table.rows.reserve(nrows);
      for (std::uint64_t r = 0; r < nrows; ++r) {
        const std::uint32_t width = in.u32();
        Row row;
        row.reserve(width);
        for (std::uint32_t c = 0; c < width; ++c) row.push_back(decode_value(in));
        table.rows.push_back(std::move(row));
      }
      snapshot.tables.push_back(std::move(table));
    }
    const std::uint32_t nchannels = in.u32();
    snapshot.channels.reserve(nchannels);
    for (std::uint32_t c = 0; c < nchannels; ++c) {
      std::string name(in.str());
      const std::uint64_t revision = in.u64();
      snapshot.channels.emplace_back(std::move(name), revision);
    }
    if (!in.done()) return std::nullopt;
    return snapshot;
  } catch (const ParseError&) {
    // CRC passed but framing didn't — corrupt in a way the checksum missed
    // (or an impossible encoder bug); either way the snapshot is unusable.
    return std::nullopt;
  }
}

std::string snapshot_file_name(std::uint64_t seq) {
  std::string digits = std::to_string(seq);
  if (digits.size() < 12) digits.insert(0, 12 - digits.size(), '0');
  return strings::cat("snapshot-", digits, ".snap");
}

std::optional<std::uint64_t> parse_snapshot_file_name(std::string_view name) {
  constexpr std::string_view kPrefix = "snapshot-";
  constexpr std::string_view kSuffix = ".snap";
  if (name.size() <= kPrefix.size() + kSuffix.size()) return std::nullopt;
  if (name.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return std::nullopt;
  const std::string_view digits =
      name.substr(kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
  std::uint64_t seq = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seq;
}

std::vector<std::uint64_t> list_snapshots(const vfs::FileSystem& fs, std::string_view dir) {
  std::vector<std::uint64_t> seqs;
  if (!fs.is_directory(dir)) return seqs;
  for (const std::string& entry : fs.list(dir))
    if (const auto seq = parse_snapshot_file_name(entry)) seqs.push_back(*seq);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

}  // namespace rocks::sqldb
