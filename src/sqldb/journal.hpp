// The change-propagation bus (DESIGN.md §10).
//
// Every piece of derived state in the toolkit — /etc configuration files,
// DHCP bindings, cached kickstart profiles — is a function of the SQL
// database plus a handful of non-SQL inputs (the XML graph, the node files,
// the distribution tree). The paper's update loop regenerates all of it
// after every insert-ethers change (Section 6.4); at production scale the
// cost of a change must track the size of the *change*, not the cluster.
//
// The ChangeJournal is the one mechanism every consumer invalidates
// through. It keeps, per named channel:
//   - a monotonic revision, bumped once per row-level change (or touch),
//   - a bounded changelog of (op, primary key, revision) records, so
//     consumers can turn "something changed" into "exactly these rows
//     changed" — or learn the log was truncated and a full rescan is due,
//   - a subscriber list, notified once per committed statement.
//
// Channels are case-insensitive names. Table channels ("nodes",
// "memberships", ...) are fed by the Database's INSERT/UPDATE/DELETE paths
// under its exclusive lock; external channels ("kickstart.graph", ...) are
// fed by touch() from whoever mutates the corresponding input. A touch
// carries no row identity, so it always reads back as "truncated" — the
// bus-level way of saying "full rescan required".
//
// Locking: the journal has two internal leaf mutexes (channel state,
// subscriber list) and never calls out while holding either — callbacks run
// after the locks are dropped. record() does NOT notify (the Database
// batches one notification per statement and dispatches it after releasing
// its table lock, so callbacks may safely re-enter the Database); touch()
// notifies immediately and must not be called while holding a lock the
// callbacks might take. Callbacks run on the committing thread and may fire
// concurrently with anything; subscribers must do thread-safe work (flip an
// atomic dirty flag, not regenerate a file). unsubscribe() does not wait
// for in-flight callbacks — quiesce writers before destroying a subscriber.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/value.hpp"

namespace rocks::sqldb {

enum class ChangeOp { kInsert, kUpdate, kDelete };

/// One row-level change: what happened, to which primary key, at which
/// channel revision. A NULL pk means the table has no primary key and the
/// row cannot be identified — consumers must treat the delta as unusable
/// (since() reports such ranges as truncated).
struct ChangeRecord {
  ChangeOp op = ChangeOp::kInsert;
  Value pk;
  std::uint64_t revision = 0;
};

/// What a cursor gets back from since(): either the exact records that move
/// it from its revision to `revision`, or truncated == true ("the journal no
/// longer covers that range — rescan the table and restart from `revision`").
struct ChangeDelta {
  bool truncated = false;
  std::uint64_t revision = 0;
  /// Truncation floor: the oldest revision the changelog can still serve a
  /// cursor from. A cursor below this must rescan; a cursor at or above it
  /// gets exact records. Recorded so bounded-changelog truncation (and the
  /// trims a WAL replay causes) give every consumer — since() cursors and
  /// WAL-replay-driven IncrementalReports alike — the same answer to "is a
  /// full rescan required, and where may incremental consumption resume".
  std::uint64_t floor = 0;
  std::vector<ChangeRecord> changes;  // empty when truncated
};

class ChangeJournal {
 public:
  /// Callback: (channel, revision after the change batch). Runs on the
  /// committing thread, outside all journal locks.
  using Callback = std::function<void(std::string_view channel, std::uint64_t revision)>;

  /// Subscribing to kAllChannels receives every notification on the bus.
  static constexpr std::string_view kAllChannels = "*";

  /// Default per-channel changelog bound. Big enough that a burst of node
  /// registrations between two flushes stays incremental; small enough that
  /// an unconsumed journal cannot grow without bound.
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit ChangeJournal(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  // Journals hand out subscription ids; copying one would fork the id space.
  ChangeJournal(const ChangeJournal&) = delete;
  ChangeJournal& operator=(const ChangeJournal&) = delete;

  /// Appends one change record, bumping the channel revision. Does NOT
  /// notify — callers batch notifications per statement (see notify()).
  /// A record whose pk is NULL poisons the covered range: since() reports
  /// it as truncated, because the row cannot be re-fetched by key.
  /// Returns the new revision.
  std::uint64_t record(std::string_view channel, ChangeOp op, Value pk);

  /// Bumps the channel revision with no row identity and notifies
  /// subscribers. Deltas spanning a touch read as truncated — this is the
  /// coarse "something changed, rescan" signal for inputs without row
  /// semantics (graph edits, distribution rebuilds, DROP TABLE).
  void touch(std::string_view channel);

  /// Like touch() but without the notification — for callers that must not
  /// run callbacks yet (the Database's DDL paths, which hold the table
  /// lock). Pair with a later notify().
  void truncate(std::string_view channel);

  /// Current revision of a channel; 0 for channels never written.
  [[nodiscard]] std::uint64_t revision(std::string_view channel) const;

  /// Truncation floor of a channel (see ChangeDelta::floor); 0 for channels
  /// never written or never truncated.
  [[nodiscard]] std::uint64_t floor(std::string_view channel) const;

  /// Cursor read: every record after `revision`, or truncated == true when
  /// the changelog no longer covers that range. Always returns the current
  /// channel revision, so callers can advance their cursor either way.
  [[nodiscard]] ChangeDelta since(std::string_view channel, std::uint64_t revision) const;

  /// Registers a callback for one channel (or kAllChannels). Returns an id
  /// for unsubscribe(). Safe to call concurrently with commits.
  std::size_t subscribe(std::string_view channel, Callback callback);
  void unsubscribe(std::size_t id);

  /// Invokes every subscriber of `channel` (and every kAllChannels
  /// subscriber) with the channel's current revision. Called by the
  /// Database once per committed statement, after its table lock is
  /// released; external publishers get it via touch().
  void notify(std::string_view channel);

  /// Changelog bound; shrinking may immediately truncate open cursors.
  /// Takes effect per channel on its next record().
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const;

  // --- durability hooks (DESIGN.md §11) ------------------------------------
  /// Every channel's (name, revision) — what a snapshot persists. Names are
  /// the lowered channel keys, in sorted order.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> channel_states() const;

  /// Recovery: reinstates a channel at `revision` with an empty changelog
  /// and floor == revision — the snapshot carries no row-level records, so
  /// consumers resuming below the floor correctly see "rescan required".
  /// Does not notify.
  void restore_channel(std::string_view channel, std::uint64_t revision);

  // Observability (tests, tuning).
  [[nodiscard]] std::uint64_t records_written() const;
  [[nodiscard]] std::uint64_t notifications_sent() const;

 private:
  struct Channel {
    std::uint64_t revision = 0;
    /// Deltas are reconstructible only for cursors at revision >= floor:
    /// truncation, touches, and NULL-pk records all raise the floor.
    std::uint64_t floor = 0;
    std::deque<ChangeRecord> log;
  };

  struct Subscriber {
    std::string channel;  // lowered; kAllChannels for the wildcard
    std::shared_ptr<Callback> callback;
  };

  Channel& channel_locked(std::string_view name);
  void trim_locked(Channel& channel);

  mutable std::mutex state_mutex_;  // guards channels_, capacity_
  std::map<std::string, Channel, std::less<>> channels_;  // keyed by lowered name
  std::size_t capacity_;

  mutable std::mutex subscriber_mutex_;  // guards subscribers_, next_subscription_
  std::map<std::size_t, Subscriber> subscribers_;
  std::size_t next_subscription_ = 1;

  std::uint64_t records_written_ = 0;        // under state_mutex_
  std::uint64_t notifications_sent_ = 0;     // under subscriber_mutex_
};

}  // namespace rocks::sqldb
