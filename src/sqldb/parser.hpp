// SQL statement AST and recursive-descent parser.
//
// Grammar subset (sufficient for every query in the paper plus the cluster
// tools' needs):
//
//   SELECT item[, item...] FROM table [alias][, table [alias]...]
//       [JOIN table [alias] ON expr]... [WHERE expr]
//       [ORDER BY expr [ASC|DESC][, ...]] [LIMIT n]
//   INSERT INTO table [(cols)] VALUES (exprs)[, (exprs)...]
//   UPDATE table SET col = expr[, ...] [WHERE expr]
//   DELETE FROM table [WHERE expr]
//   CREATE TABLE [IF NOT EXISTS] table (col TYPE [PRIMARY KEY]
//       [AUTO_INCREMENT], ...)
//   CREATE INDEX [IF NOT EXISTS] name ON table (column)
//   DROP TABLE [IF EXISTS] table
//
// JOIN ... ON is desugared into the FROM list plus a WHERE conjunct, which
// matches how the paper writes its joins (comma-style FROM with WHERE).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "sqldb/expr.hpp"
#include "sqldb/table.hpp"

namespace rocks::sqldb {

struct SelectItem {
  ExprPtr expr;        // null when star is set
  std::string alias;   // from AS, may be empty
  bool star = false;   // "*" or "table.*"
  std::string star_table;  // qualifier for "table.*", empty for bare "*"
};

struct TableRef {
  std::string table;
  std::string alias;  // empty means the table name itself
};

struct OrderKey {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  ExprPtr where;  // may be null
  std::vector<OrderKey> order_by;
  std::optional<std::size_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty: positional full-width rows
  std::vector<std::vector<ExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // may be null
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;  // may be null
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string name;  // index name (informational; lookup is by table+column)
  std::string table;
  std::string column;
  bool if_not_exists = false;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

using Statement = std::variant<SelectStmt, InsertStmt, UpdateStmt, DeleteStmt, CreateTableStmt,
                               CreateIndexStmt, DropTableStmt>;

/// Parses one statement (a trailing ';' is allowed). Throws ParseError.
[[nodiscard]] Statement parse_statement(std::string_view sql);

}  // namespace rocks::sqldb
