#include "sqldb/engine.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <exception>
#include <utility>
#include <variant>

#include "sqldb/snapshot.hpp"
#include "sqldb/wal.hpp"
#include "support/crashpoint.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/path.hpp"

namespace rocks::sqldb {

/// The attached durable store: the WAL writer plus the two cursors that
/// define its position — the next LSN to stamp and the next snapshot
/// sequence number to publish. Lives behind table_lock_ (mutations write
/// the WAL under the writer lock; snapshot()'s brief holds take it too).
struct Database::Durability {
  Durability(vfs::FileSystem& filesystem, std::string directory, std::string wal_path)
      : fs(&filesystem), dir(std::move(directory)), wal(filesystem, std::move(wal_path)) {}

  vfs::FileSystem* fs;
  std::string dir;
  WalWriter wal;
  std::uint64_t next_lsn = 1;
  std::uint64_t next_snapshot_seq = 1;
};

Database::Database() {
  // Publish the empty catalog so readers never observe a null pointer.
  catalog_storage_.push_back(std::make_unique<Catalog>());
  catalog_.store(catalog_storage_.back().get(), std::memory_order_relaxed);
}
Database::~Database() = default;

namespace {

/// Lock acquisition timed into a wait-time counter: the cost of the two
/// clock reads (~tens of ns) is noise against even the cheapest indexed
/// SELECT (~9 µs), and the counter is what lets a bench distinguish "slow
/// because scanning" from "slow because serialized on the writer".
template <typename Lock, typename Mutex>
Lock timed_lock(Mutex& mutex, std::atomic<std::uint64_t>& acquisitions,
                std::atomic<std::uint64_t>& wait_ns) {
  const auto start = std::chrono::steady_clock::now();
  Lock lock(mutex);
  wait_ns.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count(),
                    std::memory_order_relaxed);
  acquisitions.fetch_add(1, std::memory_order_relaxed);
  return lock;
}

/// Evaluation context with no columns in scope (INSERT value lists).
class EmptyContext final : public RowContext {
 public:
  [[nodiscard]] Value lookup(const std::string& table, const std::string& column) const override {
    throw LookupError(strings::cat("no column '", table.empty() ? column : table + "." + column,
                                   "' in scope here"));
  }
};

/// Context over one row of one table (UPDATE/DELETE WHERE clauses).
/// Constructed once per statement; set_row() switches rows so the
/// address-keyed resolution cache (see JoinContext) survives across them.
class SingleTableContext final : public RowContext {
 public:
  explicit SingleTableContext(const Table& table) : table_(table) {}

  void set_row(const Row* row) { row_ = row; }

  [[nodiscard]] Value lookup(const std::string& table, const std::string& column) const override {
    const auto cached = resolved_.find(&column);
    if (cached != resolved_.end()) return (*row_)[cached->second];
    if (!table.empty() && strings::to_lower(table) != strings::to_lower(table_.name()))
      throw LookupError(strings::cat("unknown table '", table, "' in expression"));
    const auto index = table_.column_index(column);
    if (!index) throw LookupError(strings::cat("unknown column '", column, "'"));
    resolved_.emplace(&column, *index);
    return (*row_)[*index];
  }

 private:
  const Table& table_;
  const Row* row_ = nullptr;
  // Keyed on the address of the Expr node's column string: stable for the
  // statement's lifetime and unique per reference site.
  mutable std::unordered_map<const std::string*, std::size_t> resolved_;
};

/// Context over the cartesian combination of several FROM tables.
class JoinContext final : public RowContext {
 public:
  JoinContext(const std::vector<const Table*>& tables, const std::vector<std::string>& aliases)
      : tables_(tables), aliases_(aliases), rows_(tables.size(), nullptr) {}

  void set_row(std::size_t table_idx, const Row* row) { rows_[table_idx] = row; }

  [[nodiscard]] Value lookup(const std::string& table, const std::string& column) const override {
    // A column reference resolves identically for every row of a query, and
    // lookup() receives the same Expr-owned strings each time — so resolve
    // once per reference site, keyed on the column string's address. The
    // up-front validation pass fills this cache, making per-row lookups a
    // single pointer-hash probe.
    const auto cached = resolved_.find(&column);
    if (cached != resolved_.end())
      return (*rows_[cached->second.first])[cached->second.second];

    if (!table.empty()) {
      const std::string lowered = strings::to_lower(table);
      for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (strings::to_lower(aliases_[i]) == lowered) {
          const auto index = tables_[i]->column_index(column);
          if (!index)
            throw LookupError(strings::cat("unknown column '", table, ".", column, "'"));
          resolved_.emplace(&column, std::make_pair(i, *index));
          return (*rows_[i])[*index];
        }
      }
      throw LookupError(strings::cat("unknown table '", table, "' in expression"));
    }
    // Unqualified: must be unique across all tables in scope.
    std::optional<std::pair<std::size_t, std::size_t>> found;
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      const auto index = tables_[i]->column_index(column);
      if (index) {
        if (found)
          throw LookupError(strings::cat("ambiguous column '", column, "'"));
        found = std::make_pair(i, *index);
      }
    }
    if (!found) throw LookupError(strings::cat("unknown column '", column, "'"));
    resolved_.emplace(&column, *found);
    return (*rows_[found->first])[found->second];
  }

 private:
  const std::vector<const Table*>& tables_;
  const std::vector<std::string>& aliases_;
  std::vector<const Row*> rows_;
  mutable std::unordered_map<const std::string*, std::pair<std::size_t, std::size_t>> resolved_;
};

// --- query planner helpers --------------------------------------------------

/// Flattens the top-level AND chain of a WHERE tree into its conjuncts.
void collect_conjuncts(const Expr* expr, std::vector<const Expr*>& out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kBinary && expr->binary_op() == BinaryOp::kAnd) {
    collect_conjuncts(expr->lhs(), out);
    collect_conjuncts(expr->rhs(), out);
    return;
  }
  out.push_back(expr);
}

/// The column/literal sides of a `col = literal` (or `literal = col`)
/// conjunct; nullopt when the conjunct has any other shape.
struct EqColumnLiteral {
  const Expr* column = nullptr;
  const Expr* literal = nullptr;
};
std::optional<EqColumnLiteral> match_eq_column_literal(const Expr* expr) {
  if (expr->kind() != Expr::Kind::kBinary || expr->binary_op() != BinaryOp::kEq)
    return std::nullopt;
  const Expr* l = expr->lhs();
  const Expr* r = expr->rhs();
  if (l->kind() == Expr::Kind::kColumn && r->kind() == Expr::Kind::kLiteral)
    return EqColumnLiteral{l, r};
  if (r->kind() == Expr::Kind::kColumn && l->kind() == Expr::Kind::kLiteral)
    return EqColumnLiteral{r, l};
  return std::nullopt;
}

/// Resolves a column expression to (FROM-table position, column position).
/// nullopt when the reference doesn't resolve cleanly to exactly one table
/// (the evaluator's own validation throws for genuinely bad names).
std::optional<std::pair<std::size_t, std::size_t>> resolve_column(
    const Expr* column, const std::vector<const Table*>& tables,
    const std::vector<std::string>& aliases) {
  if (!column->column_table().empty()) {
    const std::string lowered = strings::to_lower(column->column_table());
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (strings::to_lower(aliases[i]) != lowered) continue;
      const auto col = tables[i]->column_index(column->column_name());
      if (!col) return std::nullopt;
      return std::make_pair(i, *col);
    }
    return std::nullopt;
  }
  std::optional<std::pair<std::size_t, std::size_t>> found;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    const auto col = tables[i]->column_index(column->column_name());
    if (!col) continue;
    if (found) return std::nullopt;  // ambiguous
    found = std::make_pair(i, *col);
  }
  return found;
}

/// UPDATE/DELETE share SELECT's plan 1: when one WHERE conjunct is an
/// indexed `col = literal`, probe the writer-side index for candidate
/// positions instead of scanning every live row. Fills `positions`
/// (ascending — the scan's visit order) and `residual` (the conjuncts the
/// probe did not consume) and returns true when a probe applies. Point
/// mutations against a big live set — the batch scheduler's one-row
/// transition per job while thousands of rows stay live — go from O(live)
/// to O(hits) per statement.
bool plan_write_probe(const Table& target, const Expr* where,
                      std::vector<std::size_t>& positions,
                      std::vector<const Expr*>& residual) {
  if (where == nullptr) return false;
  std::vector<const Expr*> conjuncts;
  collect_conjuncts(where, conjuncts);
  const std::vector<const Table*> tables{&target};
  const std::vector<std::string> aliases{target.name()};
  for (const Expr* conjunct : conjuncts) {
    const auto eq = match_eq_column_literal(conjunct);
    if (!eq) continue;
    const auto resolved = resolve_column(eq->column, tables, aliases);
    if (!resolved || !target.has_index_on(resolved->second)) continue;
    positions = target.probe_positions(resolved->second, eq->literal->literal_value());
    for (const Expr* other : conjuncts)
      if (other != conjunct) residual.push_back(other);
    return true;
  }
  return false;
}

/// What snapshot()/snapshot_image() capture per table under their brief
/// lock hold: the shared table (kept alive across a concurrent DROP), plus
/// the schema-ish bits that belong to the checkpoint's commit timestamp
/// rather than to whenever serialization happens to read them.
struct CapturedTable {
  std::shared_ptr<const Table> table;
  std::vector<std::string> indexed;
  std::int64_t next_auto = 0;
};

}  // namespace

std::size_t ResultSet::column_index(std::string_view name) const {
  if (column_cache_.empty() && !columns.empty()) {
    column_cache_.reserve(columns.size());
    // try_emplace keeps the first occurrence of a duplicated header, matching
    // the first-match behaviour of the old linear scan.
    for (std::size_t i = 0; i < columns.size(); ++i)
      column_cache_.try_emplace(strings::to_lower(columns[i]), i);
  }
  const auto it = column_cache_.find(strings::to_lower(name));
  if (it == column_cache_.end())
    throw LookupError(strings::cat("result has no column '", std::string(name), "'"));
  return it->second;
}

const Value& ResultSet::at(std::size_t row, std::string_view column) const {
  return at(row, column_index(column));
}

const Value& ResultSet::at(std::size_t row, std::size_t column) const {
  require_found(row < rows.size(), "result row index out of range");
  require_found(column < rows[row].size(), "result column index out of range");
  return rows[row][column];
}

std::string ResultSet::render() const {
  AsciiTable out(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& value : row) cells.push_back(value.to_string());
    out.add_row(std::move(cells));
  }
  return out.render();
}

bool Database::NameLess::operator()(std::string_view a, std::string_view b) const {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const char ca = static_cast<char>(std::tolower(static_cast<unsigned char>(a[i])));
    const char cb = static_cast<char>(std::tolower(static_cast<unsigned char>(b[i])));
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

std::size_t Database::statement_cache_size() const {
  std::lock_guard<std::mutex> lock(statement_mutex_);
  return lru_.size();
}

Database::PreparedStatement Database::prepare(std::string_view sql) {
  {
    std::lock_guard<std::mutex> lock(statement_mutex_);
    const auto it = statement_cache_.find(sql);
    if (it != statement_cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->second;
    }
  }
  // Parse outside the mutex: a miss costs microseconds of parser time and
  // must not stall concurrent cache hits. Two threads missing on the same
  // text both parse; the loser's insert is dropped in favor of the entry
  // already present.
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  auto statement = std::make_shared<const Statement>(parse_statement(sql));
  std::lock_guard<std::mutex> lock(statement_mutex_);
  const auto it = statement_cache_.find(sql);
  if (it != statement_cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->second;
  }
  lru_.emplace_front(std::string(sql), std::move(statement));
  statement_cache_.emplace(std::string_view(lru_.front().first), lru_.begin());
  if (lru_.size() > kStatementCacheCapacity) {
    statement_cache_.erase(std::string_view(lru_.back().first));
    lru_.pop_back();
  }
  return lru_.front().second;
}

ResultSet Database::execute(std::string_view sql) {
  const PreparedStatement statement = prepare(sql);
  return execute(*statement);
}

ResultSet Database::execute(const Statement& statement) {
  // SELECT never touches the writer lock: it pins the current commit
  // timestamp (keeping reclamation at bay) and evaluates against the
  // version chains and catalog visible at that timestamp. Everything else
  // mutates table state and serializes on table_lock_ — run_* and
  // table_locked() assume it is already held (the mutex is not recursive).
  if (std::holds_alternative<SelectStmt>(statement)) {
    const ReaderRegistry::Pin pin = registry_.pin(commit_ts_);
    read_views_opened_.fetch_add(1, std::memory_order_relaxed);
    const Catalog* catalog = catalog_.load(std::memory_order_seq_cst);
    return run_select(std::get<SelectStmt>(statement), *catalog, pin.ts());
  }
  // Mutations: journal records are written by run_* under the writer lock,
  // but subscriber notifications fire only after it is released so a
  // callback may issue its own statements without self-deadlocking.
  std::vector<std::string> touched;
  std::vector<WalRecord> wal_records;
  // Only durable databases pay for building WAL records.
  std::vector<WalRecord>* wal = durability_ ? &wal_records : nullptr;
  ResultSet result;
  std::exception_ptr flush_error;
  {
    const auto lock = timed_lock<std::unique_lock<std::mutex>>(
        table_lock_, exclusive_acquisitions_, exclusive_wait_ns_);
    // Follower fencing (DESIGN.md §12.3): DML/DDL on a read-only replica is
    // redirected to the leader before any state is touched.
    require_state(!read_only_.load(std::memory_order_relaxed), read_only_error_);
    try {
      result = std::visit(
          [this, &touched, wal](const auto& stmt) -> ResultSet {
            using T = std::decay_t<decltype(stmt)>;
            if constexpr (std::is_same_v<T, SelectStmt>)
              // Unreachable (dispatched above); kept for visit completeness.
              return run_select(stmt, *catalog_.load(std::memory_order_seq_cst),
                                commit_ts_.load(std::memory_order_seq_cst));
            else if constexpr (std::is_same_v<T, InsertStmt>) return run_insert(stmt, touched, wal);
            else if constexpr (std::is_same_v<T, UpdateStmt>) return run_update(stmt, touched, wal);
            else if constexpr (std::is_same_v<T, DeleteStmt>) return run_delete(stmt, touched, wal);
            else if constexpr (std::is_same_v<T, CreateTableStmt>)
              return run_create(stmt, touched, wal);
            else if constexpr (std::is_same_v<T, CreateIndexStmt>)
              return run_create_index(stmt, wal);
            else return run_drop(stmt, touched, wal);
          },
          statement);
    } catch (...) {
      // A statement can fail midway with part of its work applied (this
      // engine has no rollback). The WAL must mirror memory exactly and
      // readers must eventually see the partial versions, so the partial
      // records are logged and stamped before the error propagates.
      commit_locked(wal_records);
      throw;
    }
    try {
      commit_locked(wal_records);
    } catch (...) {
      // The in-RAM commit happened; a WAL flush IO failure must not hide it
      // from subscribers. Notify, then surface the error — the caller's
      // durability barrier refuses to acknowledge until a retry succeeds.
      flush_error = std::current_exception();
    }
  }
  for (const std::string& channel : touched) journal_.notify(channel);
  if (flush_error) std::rethrow_exception(flush_error);
  return result;
}

void Database::commit_locked(std::vector<WalRecord>& records) {
  const bool logging = durability_ != nullptr && !records.empty();
  std::uint64_t ts = 0;
  if (logging) {
    records.back().commit = true;  // statement boundary (see WalRecord::commit)
    for (WalRecord& record : records) {
      record.lsn = durability_->next_lsn++;
      durability_->wal.append(record);
    }
    // Ship before the local flush: a flush failure (disk refusing the bytes)
    // must not open a gap in the ship stream — the group is already buffered
    // by the leader's control plane, and remote durability can outrun a
    // faulty local disk under quorum commit.
    if (wal_sink_) wal_sink_(records);
    // The commit timestamp IS the commit-marked record's LSN.
    ts = durability_->next_lsn - 1;
  } else if (durability_ != nullptr) {
    ts = durability_->next_lsn - 1;  // no-op statement: cursor unmoved
  } else {
    // In-RAM engine: a private gapless sequence plays the LSN role.
    ts = commit_ts_.load(std::memory_order_relaxed) + 1;
  }
  stamp_commit_locked(ts);
  maybe_reclaim_locked();
  // The (possibly throwing) group-commit flush runs strictly after the
  // in-memory commit is published, so an IO failure never hides it.
  if (logging) durability_->wal.commit();
}

void Database::stamp_commit_locked(std::uint64_t ts) {
  for (const auto& [key, table] : tables_) table->commit_pending(ts);
  for (const std::shared_ptr<Table>& dropped : pending_drops_) {
    // A DROP's table may still carry this statement's earlier row changes
    // (multi-statement replay groups); stamp them before the drop stamp.
    dropped->commit_pending(ts);
    dropped->stamp_dropped(ts);
  }
  pending_drops_.clear();
  for (const std::shared_ptr<Table>& created : pending_creates_) created->stamp_created(ts);
  pending_creates_.clear();
  // Publish last: a reader that pins ts sees every stamp above.
  commit_ts_.store(ts, std::memory_order_seq_cst);
}

void Database::maybe_reclaim_locked() {
  if (++commits_since_reclaim_ < kReclaimInterval) return;
  commits_since_reclaim_ = 0;
  reclaim_locked();
}

std::size_t Database::reclaim_locked() {
  const ReaderRegistry::Horizon horizon =
      registry_.horizon(commit_ts_.load(std::memory_order_seq_cst));
  if (horizon.ts == 0) return 0;  // a pin mid-registration: skip this round
  std::size_t freed = 0;
  for (const auto& [key, table] : tables_) freed += table->reclaim(horizon, registry_);
  return freed;
}

std::size_t Database::reclaim() {
  std::lock_guard<std::mutex> lock(table_lock_);
  return reclaim_locked();
}

Table& Database::create_table_locked(const std::string& name,
                                     const std::vector<ColumnDef>& columns) {
  auto table = std::make_shared<Table>(name, columns);
  Table& ref = *table;
  tables_.emplace(name, table);
  pending_creates_.push_back(table);
  catalog_append_locked(std::move(table));
  return ref;
}

void Database::drop_table_locked(std::string_view name) {
  const auto it = tables_.find(name);
  pending_drops_.push_back(it->second);
  tables_.erase(it);
}

void Database::catalog_append_locked(std::shared_ptr<Table> table) {
  auto next = std::make_unique<Catalog>();
  next->entries = catalog_.load(std::memory_order_relaxed)->entries;
  CatalogEntry entry{std::move(table), ++catalog_seq_};
  const auto pos = std::upper_bound(
      next->entries.begin(), next->entries.end(), entry,
      [](const CatalogEntry& a, const CatalogEntry& b) {
        const NameLess less;
        if (less(a.table->name(), b.table->name())) return true;
        if (less(b.table->name(), a.table->name())) return false;
        return a.seq < b.seq;
      });
  next->entries.insert(pos, std::move(entry));
  catalog_storage_.push_back(std::move(next));
  catalog_.store(catalog_storage_.back().get(), std::memory_order_seq_cst);
}

const Table* Database::catalog_lookup(const Catalog& catalog, std::string_view name,
                                      std::uint64_t ts) {
  const NameLess less;
  const Table* found = nullptr;
  for (const CatalogEntry& entry : catalog.entries) {
    const std::string& entry_name = entry.table->name();
    if (less(entry_name, name)) continue;
    if (less(name, entry_name)) break;  // entries are sorted: past the name run
    // Within the run entries are seq-ascending; the last visible one wins
    // (a recreated table supersedes its dropped predecessor).
    if (entry.table->visible_at(ts)) found = entry.table.get();
  }
  return found;
}

std::vector<std::string> Database::query_column(std::string_view sql) {
  const ResultSet result = execute(sql);
  require_state(result.columns.size() == 1,
                strings::cat("query_column expects exactly one output column, got ",
                             result.columns.size()));
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const auto& row : result.rows) out.push_back(row[0].to_string());
  return out;
}

bool Database::has_table(std::string_view name) const {
  std::lock_guard<std::mutex> lock(table_lock_);
  return tables_.contains(name);
}

const Table& Database::table(std::string_view name) const {
  std::lock_guard<std::mutex> lock(table_lock_);
  return table_locked(name);
}

const Table& Database::table_locked(std::string_view name) const {
  const auto it = tables_.find(name);
  require_found(it != tables_.end(), strings::cat("no such table: ", std::string(name)));
  return *it->second;
}

Table& Database::table_mutable(std::string_view name) {
  const auto it = tables_.find(name);
  require_found(it != tables_.end(), strings::cat("no such table: ", std::string(name)));
  return *it->second;
}

std::vector<std::string> Database::table_names() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table->name());
  return out;
}

ResultSet Database::run_select(const SelectStmt& stmt, const Catalog& catalog,
                               std::uint64_t ts) {
  // Resolve FROM tables against the catalog visible at the read timestamp.
  std::vector<const Table*> tables;
  std::vector<std::string> aliases;
  std::vector<Table::Reader> readers;
  for (const auto& ref : stmt.from) {
    const Table* resolved = catalog_lookup(catalog, ref.table, ts);
    require_found(resolved != nullptr, strings::cat("no such table: ", ref.table));
    tables.push_back(resolved);
    aliases.push_back(ref.alias);
    readers.push_back(resolved->reader(ts));
  }

  // Visible-row materialization is lazy and per table: the probe plans
  // never enumerate the probed side at all, and a join only pays for the
  // sides it actually streams.
  std::vector<std::vector<const Row*>> materialized(tables.size());
  std::vector<bool> materialized_done(tables.size(), false);
  const auto rows_of = [&](std::size_t i) -> const std::vector<const Row*>& {
    if (!materialized_done[i]) {
      materialized[i] = readers[i].visible_rows();
      materialized_done[i] = true;
    }
    return materialized[i];
  };

  // Expand the select list (stars become column references).
  struct OutputItem {
    const Expr* expr = nullptr;
    ExprPtr owned;
    std::string name;
  };
  std::vector<OutputItem> outputs;
  for (const auto& item : stmt.items) {
    if (item.star) {
      for (std::size_t i = 0; i < tables.size(); ++i) {
        if (!item.star_table.empty() &&
            strings::to_lower(item.star_table) != strings::to_lower(aliases[i]))
          continue;
        for (const auto& col : tables[i]->columns()) {
          OutputItem out;
          out.owned = Expr::column(aliases[i], col.name);
          out.expr = out.owned.get();
          out.name = tables.size() > 1 ? strings::cat(aliases[i], ".", col.name) : col.name;
          outputs.push_back(std::move(out));
        }
      }
      if (!item.star_table.empty() && outputs.empty())
        throw LookupError(strings::cat("unknown table '", item.star_table, "' in select list"));
    } else {
      OutputItem out;
      out.expr = item.expr.get();
      out.name = !item.alias.empty() ? item.alias : item.expr->display_name();
      outputs.push_back(std::move(out));
    }
  }

  ResultSet result;
  for (const auto& out : outputs) result.columns.push_back(out.name);

  JoinContext ctx(tables, aliases);

  // Validate every column reference up front against a row of NULLs so that
  // unknown names are rejected even when a table is empty (expressions over
  // NULL are total: they yield NULL rather than throwing).
  {
    std::vector<Row> null_rows;
    null_rows.reserve(tables.size());
    for (const auto* t : tables) null_rows.emplace_back(t->columns().size(), Value::null());
    for (std::size_t i = 0; i < tables.size(); ++i) ctx.set_row(i, &null_rows[i]);
    for (const auto& out : outputs) (void)out.expr->evaluate(ctx);
    if (stmt.where) (void)stmt.where->evaluate(ctx);
    for (const auto& key : stmt.order_by) (void)key.expr->evaluate(ctx);
  }
  struct Keyed {
    Row projected;
    Row keys;
  };
  std::vector<Keyed> collected;

  // When a plan consumes one equality conjunct (index probe / hash join),
  // the remaining conjuncts still run against every candidate; rows pass the
  // conjunct list iff they pass the original AND tree (a row passes either
  // exactly when every conjunct is truthy), so filtering is identical to the
  // scan — the planner only chooses *which* combinations to visit. The
  // consumed conjunct is skipped because hash/index matching IS its
  // evaluation: both use compare() == 0 on non-NULL keys, and NULL keys are
  // never indexed or hashed, matching '=' never being true for NULL.
  std::vector<const Expr*> residual;
  bool use_residual = false;

  const auto emit_current = [&] {
    if (use_residual) {
      for (const Expr* conjunct : residual) {
        const Value keep = conjunct->evaluate(ctx);
        if (keep.is_null() || !keep.truthy()) return;
      }
    } else if (stmt.where) {
      const Value keep = stmt.where->evaluate(ctx);
      if (keep.is_null() || !keep.truthy()) return;
    }
    Keyed keyed;
    keyed.projected.reserve(outputs.size());
    for (const auto& out : outputs) keyed.projected.push_back(out.expr->evaluate(ctx));
    keyed.keys.reserve(stmt.order_by.size());
    for (const auto& key : stmt.order_by) keyed.keys.push_back(key.expr->evaluate(ctx));
    collected.push_back(std::move(keyed));
  };

  // --- planner: pick how to enumerate candidate row combinations ----------
  // 1. Single table + an indexed `col = literal` conjunct -> index probe.
  // 2. Two tables + a selective indexed `col = literal` conjunct -> index
  //    join: probe the literal, pair the few hits with the other table.
  // 3. Two tables + a `a.x = b.y` conjunct -> hash join, built on the
  //    smaller side, matches re-sorted into nested-loop emission order.
  // 4. Anything else -> the original nested-loop scan (odometer).
  //
  // probe_rows() returns visible rows in slot (== scan) order, so pair
  // indices sort back into exactly the combination order the nested loop
  // would emit — plans stay bit-identical to the scan.
  enum class Plan { kScan, kIndexProbe, kIndexJoin, kHashJoin };
  Plan plan = Plan::kScan;
  std::vector<const Row*> probe_hits;                     // kIndexProbe/kIndexJoin
  std::vector<std::array<std::size_t, 2>> join_pairs;     // kIndexJoin/kHashJoin
  const std::vector<const Row*>* source0 = nullptr;       // join emission sides
  const std::vector<const Row*>* source1 = nullptr;

  std::vector<const Expr*> conjuncts;
  if (planner_enabled_.load(std::memory_order_relaxed) && stmt.where)
    collect_conjuncts(stmt.where.get(), conjuncts);

  if (tables.size() == 1) {
    for (const Expr* conjunct : conjuncts) {
      const auto eq = match_eq_column_literal(conjunct);
      if (!eq) continue;
      const auto resolved = resolve_column(eq->column, tables, aliases);
      if (!resolved || !tables[0]->has_index_on(resolved->second)) continue;
      probe_hits = readers[0].probe_rows(resolved->second, eq->literal->literal_value());
      plan = Plan::kIndexProbe;
      for (const Expr* other : conjuncts)
        if (other != conjunct) residual.push_back(other);
      use_residual = true;
      break;
    }
  } else if (tables.size() == 2) {
    // A selective indexed literal beats hashing both tables: probe it,
    // pair the hits with every row of the other side, and let the residual
    // conjuncts (including the join predicate) filter. This is the plan
    // behind point re-fetches that join — the kickstart resolve and the
    // incremental reports' select_one queries, both `pk = literal` against
    // a small dimension table.
    for (const Expr* conjunct : conjuncts) {
      const auto eq = match_eq_column_literal(conjunct);
      if (!eq) continue;
      const auto resolved = resolve_column(eq->column, tables, aliases);
      if (!resolved || !tables[resolved->first]->has_index_on(resolved->second)) continue;
      const std::size_t side = resolved->first;
      const auto hits =
          readers[side].probe_rows(resolved->second, eq->literal->literal_value());
      // Only when pairing is cheaper than the hash join's pass over both
      // tables; an unselective probe (or a big far side) stays hashed. The
      // gate uses the lock-free live estimates — a heuristic, like every
      // cost model.
      if (hits.size() * tables[1 - side]->live_estimate() >
          tables[0]->live_estimate() + tables[1]->live_estimate())
        continue;
      probe_hits = hits;
      const std::vector<const Row*>& other = rows_of(1 - side);
      for (std::size_t h = 0; h < probe_hits.size(); ++h)
        for (std::size_t o = 0; o < other.size(); ++o)
          join_pairs.push_back(side == 0 ? std::array<std::size_t, 2>{h, o}
                                         : std::array<std::size_t, 2>{o, h});
      // Restore nested-loop (outer, inner) emission order for bit-identical
      // results either way.
      std::sort(join_pairs.begin(), join_pairs.end());
      source0 = side == 0 ? &probe_hits : &other;
      source1 = side == 0 ? &other : &probe_hits;
      plan = Plan::kIndexJoin;
      for (const Expr* other_conjunct : conjuncts)
        if (other_conjunct != conjunct) residual.push_back(other_conjunct);
      use_residual = true;
      break;
    }
    for (const Expr* conjunct : conjuncts) {
      if (plan != Plan::kScan) break;
      if (conjunct->kind() != Expr::Kind::kBinary ||
          conjunct->binary_op() != BinaryOp::kEq)
        continue;
      const Expr* l = conjunct->lhs();
      const Expr* r = conjunct->rhs();
      if (l->kind() != Expr::Kind::kColumn || r->kind() != Expr::Kind::kColumn) continue;
      const auto a = resolve_column(l, tables, aliases);
      const auto b = resolve_column(r, tables, aliases);
      if (!a || !b || a->first == b->first) continue;
      const std::size_t col0 = a->first == 0 ? a->second : b->second;
      const std::size_t col1 = a->first == 0 ? b->second : a->second;

      // Build the hash table on the smaller side, stream the other through.
      const std::vector<const Row*>& rows0 = rows_of(0);
      const std::vector<const Row*>& rows1 = rows_of(1);
      const bool build_on_0 = rows0.size() <= rows1.size();
      const std::vector<const Row*>& build_rows = build_on_0 ? rows0 : rows1;
      const std::vector<const Row*>& probe_rows = build_on_0 ? rows1 : rows0;
      const std::size_t build_col = build_on_0 ? col0 : col1;
      const std::size_t probe_col = build_on_0 ? col1 : col0;
      std::unordered_map<Value, std::vector<std::size_t>, ValueHash, ValueEqual> built;
      built.reserve(build_rows.size());
      for (std::size_t i = 0; i < build_rows.size(); ++i) {
        const Value& key = (*build_rows[i])[build_col];
        if (!key.is_null()) built[key].push_back(i);  // NULL never joins
      }
      for (std::size_t i = 0; i < probe_rows.size(); ++i) {
        const Value& key = (*probe_rows[i])[probe_col];
        if (key.is_null()) continue;
        const auto hit = built.find(key);
        if (hit == built.end()) continue;
        for (const std::size_t j : hit->second)
          join_pairs.push_back(build_on_0 ? std::array<std::size_t, 2>{j, i}
                                          : std::array<std::size_t, 2>{i, j});
      }
      // Matches surface in probe order; restore the (outer, inner) order the
      // nested loop would emit so results are bit-identical to the scan.
      std::sort(join_pairs.begin(), join_pairs.end());
      source0 = &rows0;
      source1 = &rows1;
      plan = Plan::kHashJoin;
      for (const Expr* other : conjuncts)
        if (other != conjunct) residual.push_back(other);
      use_residual = true;
      break;
    }
  }

  switch (plan) {
    case Plan::kIndexProbe: plans_index_probe_.fetch_add(1, std::memory_order_relaxed); break;
    case Plan::kIndexJoin: plans_index_join_.fetch_add(1, std::memory_order_relaxed); break;
    case Plan::kHashJoin: plans_hash_join_.fetch_add(1, std::memory_order_relaxed); break;
    case Plan::kScan: plans_scan_.fetch_add(1, std::memory_order_relaxed); break;
  }

  switch (plan) {
    case Plan::kIndexProbe:
      for (const Row* row : probe_hits) {
        ctx.set_row(0, row);
        emit_current();
      }
      break;
    case Plan::kIndexJoin:
    case Plan::kHashJoin:
      for (const auto& pair : join_pairs) {
        ctx.set_row(0, (*source0)[pair[0]]);
        ctx.set_row(1, (*source1)[pair[1]]);
        emit_current();
      }
      break;
    case Plan::kScan: {
      // Iterative odometer over all table row combinations.
      std::vector<std::size_t> cursor(tables.size(), 0);
      if (!tables.empty()) {
        bool any_empty = false;
        for (std::size_t i = 0; i < tables.size(); ++i)
          if (rows_of(i).empty()) any_empty = true;
        if (!any_empty) {
          while (true) {
            for (std::size_t i = 0; i < tables.size(); ++i)
              ctx.set_row(i, rows_of(i)[cursor[i]]);
            emit_current();
            std::size_t level = tables.size();
            bool wrapped = false;
            while (level > 0) {
              --level;
              if (++cursor[level] < rows_of(level).size()) break;
              cursor[level] = 0;
              if (level == 0) wrapped = true;
            }
            if (wrapped) break;
          }
        }
      }
      break;
    }
  }

  if (!stmt.order_by.empty()) {
    std::stable_sort(collected.begin(), collected.end(), [&](const Keyed& a, const Keyed& b) {
      for (std::size_t i = 0; i < stmt.order_by.size(); ++i) {
        const int cmp = a.keys[i].compare(b.keys[i]);
        if (cmp != 0) return stmt.order_by[i].descending ? cmp > 0 : cmp < 0;
      }
      return false;
    });
  }

  const std::size_t limit = stmt.limit.value_or(collected.size());
  for (std::size_t i = 0; i < collected.size() && i < limit; ++i)
    result.rows.push_back(std::move(collected[i].projected));
  return result;
}

namespace {
/// Row identity for the change journal: the PRIMARY KEY value, or NULL for
/// tables without one (NULL poisons the delta range — full rescan).
Value journal_pk(const Table& table, const Row& row) {
  const auto pk_column = table.primary_key_column();
  return pk_column ? row[*pk_column] : Value::null();
}
}  // namespace

ResultSet Database::run_insert(const InsertStmt& stmt, std::vector<std::string>& touched,
                               std::vector<WalRecord>* wal) {
  Table& target = table_mutable(stmt.table);
  const EmptyContext ctx;
  ResultSet result;
  for (const auto& exprs : stmt.rows) {
    Row row(target.columns().size(), Value::null());
    if (stmt.columns.empty()) {
      require_state(exprs.size() == target.columns().size(),
                    strings::cat("INSERT into ", stmt.table, ": expected ",
                                 target.columns().size(), " values, got ", exprs.size()));
      for (std::size_t i = 0; i < exprs.size(); ++i) row[i] = exprs[i]->evaluate(ctx);
    } else {
      require_state(exprs.size() == stmt.columns.size(),
                    strings::cat("INSERT into ", stmt.table, ": column/value count mismatch"));
      for (std::size_t i = 0; i < stmt.columns.size(); ++i) {
        const auto index = target.column_index(stmt.columns[i]);
        require_found(index.has_value(),
                      strings::cat("unknown column '", stmt.columns[i], "' in INSERT"));
        row[*index] = exprs[i]->evaluate(ctx);
      }
    }
    // Journal (and WAL-log) the row *after* insert so AUTO_INCREMENT keys
    // carry their assigned value.
    const std::size_t inserted = target.insert(std::move(row));
    journal_.record(target.name(), ChangeOp::kInsert,
                    journal_pk(target, target.live_row(inserted)));
    if (wal != nullptr) {
      WalRecord record;
      record.op = WalOp::kInsert;
      record.table = target.name();
      record.row = target.live_row(inserted);
      wal->push_back(std::move(record));
    }
    ++result.affected_rows;
  }
  if (result.affected_rows > 0) touched.push_back(strings::to_lower(stmt.table));
  return result;
}

ResultSet Database::run_update(const UpdateStmt& stmt, std::vector<std::string>& touched,
                               std::vector<WalRecord>* wal) {
  Table& target = table_mutable(stmt.table);
  // Resolve assignment columns once.
  std::vector<std::pair<std::size_t, const Expr*>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    const auto index = target.column_index(column);
    require_found(index.has_value(), strings::cat("unknown column '", column, "' in UPDATE"));
    assignments.emplace_back(*index, expr.get());
  }
  ResultSet result;
  SingleTableContext ctx(target);
  std::vector<std::size_t> probe;
  std::vector<const Expr*> residual;
  const bool probed = planner_enabled_.load(std::memory_order_relaxed) &&
                      plan_write_probe(target, stmt.where.get(), probe, residual);
  if (probed) plans_index_probe_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t candidates = probed ? probe.size() : target.live_size();
  for (std::size_t c = 0; c < candidates; ++c) {
    const std::size_t r = probed ? probe[c] : c;
    ctx.set_row(&target.live_row(r));
    if (probed) {
      bool pass = true;
      for (const Expr* conjunct : residual) {
        const Value keep = conjunct->evaluate(ctx);
        if (keep.is_null() || !keep.truthy()) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
    } else if (stmt.where) {
      const Value keep = stmt.where->evaluate(ctx);
      if (keep.is_null() || !keep.truthy()) continue;
    }
    // Evaluate all RHS against the pre-update row, then publish one new
    // version carrying the changed cells (hash indexes track the new keys).
    std::vector<std::pair<std::size_t, Value>> cells;
    cells.reserve(assignments.size());
    for (const auto& [index, expr] : assignments) cells.emplace_back(index, expr->evaluate(ctx));
    const Value old_pk = journal_pk(target, target.live_row(r));
    if (wal != nullptr) {
      WalRecord record;
      record.op = WalOp::kUpdate;
      record.table = target.name();
      record.row_index = r;
      record.cells = cells;
      wal->push_back(std::move(record));
    }
    target.update_row(r, cells);
    const Value new_pk = journal_pk(target, target.live_row(r));
    // An UPDATE that reassigns the key is a delete of the old identity plus
    // an insert of the new one — consumers keyed by PK cannot see it as an
    // in-place change.
    if (!old_pk.is_null() && !new_pk.is_null() && old_pk.compare(new_pk) == 0) {
      journal_.record(target.name(), ChangeOp::kUpdate, new_pk);
    } else {
      journal_.record(target.name(), ChangeOp::kDelete, old_pk);
      journal_.record(target.name(), ChangeOp::kInsert, new_pk);
    }
    ++result.affected_rows;
  }
  if (result.affected_rows > 0) touched.push_back(strings::to_lower(stmt.table));
  return result;
}

ResultSet Database::run_delete(const DeleteStmt& stmt, std::vector<std::string>& touched,
                               std::vector<WalRecord>* wal) {
  Table& target = table_mutable(stmt.table);
  std::vector<std::size_t> doomed;
  SingleTableContext ctx(target);
  std::vector<std::size_t> probe;
  std::vector<const Expr*> residual;
  const bool probed = planner_enabled_.load(std::memory_order_relaxed) &&
                      plan_write_probe(target, stmt.where.get(), probe, residual);
  if (probed) plans_index_probe_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t candidates = probed ? probe.size() : target.live_size();
  for (std::size_t c = 0; c < candidates; ++c) {
    const std::size_t i = probed ? probe[c] : c;
    ctx.set_row(&target.live_row(i));
    if (probed) {
      bool pass = true;
      for (const Expr* conjunct : residual) {
        const Value keep = conjunct->evaluate(ctx);
        if (keep.is_null() || !keep.truthy()) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
    } else if (stmt.where) {
      const Value keep = stmt.where->evaluate(ctx);
      if (keep.is_null() || !keep.truthy()) continue;
    }
    doomed.push_back(i);
  }
  // Journal identities before erase_rows invalidates the row positions.
  for (const std::size_t i : doomed)
    journal_.record(target.name(), ChangeOp::kDelete, journal_pk(target, target.live_row(i)));
  if (wal != nullptr && !doomed.empty()) {
    WalRecord record;
    record.op = WalOp::kDelete;
    record.table = target.name();
    record.row_indexes = doomed;
    wal->push_back(std::move(record));
  }
  target.erase_rows(doomed);
  ResultSet result;
  result.affected_rows = doomed.size();
  if (result.affected_rows > 0) touched.push_back(strings::to_lower(stmt.table));
  return result;
}

ResultSet Database::run_create(const CreateTableStmt& stmt, std::vector<std::string>& touched,
                               std::vector<WalRecord>* wal) {
  if (tables_.contains(stmt.table)) {
    if (stmt.if_not_exists) return {};
    throw StateError(strings::cat("table already exists: ", stmt.table));
  }
  create_table_locked(stmt.table, stmt.columns);
  // DDL has no row identity: truncate (revision bump, rescan-on-read) now,
  // notify after the lock drops like any other mutation.
  journal_.truncate(stmt.table);
  touched.push_back(strings::to_lower(stmt.table));
  if (wal != nullptr) {
    WalRecord record;
    record.op = WalOp::kCreateTable;
    record.table = stmt.table;
    record.schema = stmt.columns;
    wal->push_back(std::move(record));
  }
  return {};
}

ResultSet Database::run_create_index(const CreateIndexStmt& stmt, std::vector<WalRecord>* wal) {
  // create_index is idempotent, so IF NOT EXISTS is accepted but needs no
  // special handling.
  table_mutable(stmt.table).create_index(stmt.column);
  if (wal != nullptr) {
    WalRecord record;
    record.op = WalOp::kCreateIndex;
    record.table = stmt.table;
    record.column = stmt.column;
    wal->push_back(std::move(record));
  }
  return {};
}

ResultSet Database::run_drop(const DropTableStmt& stmt, std::vector<std::string>& touched,
                             std::vector<WalRecord>* wal) {
  if (!tables_.contains(stmt.table)) {
    if (stmt.if_exists) return {};
    throw LookupError(strings::cat("no such table: ", stmt.table));
  }
  drop_table_locked(stmt.table);
  journal_.truncate(stmt.table);
  touched.push_back(strings::to_lower(stmt.table));
  if (wal != nullptr) {
    WalRecord record;
    record.op = WalOp::kDropTable;
    record.table = stmt.table;
    wal->push_back(std::move(record));
  }
  return {};
}

// --- durable store (DESIGN.md §11) -------------------------------------------

void Database::apply_wal_record(const WalRecord& record) {
  switch (record.op) {
    case WalOp::kInsert: {
      Table& target = table_mutable(record.table);
      // insert() re-coerces (idempotent on the already-typed logged row) and
      // advances the AUTO_INCREMENT cursor past the logged key, exactly as
      // the original insert left it.
      const std::size_t inserted = target.insert(record.row);
      journal_.record(target.name(), ChangeOp::kInsert,
                      journal_pk(target, target.live_row(inserted)));
      break;
    }
    case WalOp::kUpdate: {
      Table& target = table_mutable(record.table);
      require_state(record.row_index < target.live_size(),
                    strings::cat("wal replay: row index out of range in ", record.table));
      const Value old_pk = journal_pk(target, target.live_row(record.row_index));
      target.update_row(record.row_index, record.cells);
      const Value new_pk = journal_pk(target, target.live_row(record.row_index));
      // Same journal semantics as run_update: a key reassignment is a
      // delete + insert, anything else an in-place update.
      if (!old_pk.is_null() && !new_pk.is_null() && old_pk.compare(new_pk) == 0) {
        journal_.record(target.name(), ChangeOp::kUpdate, new_pk);
      } else {
        journal_.record(target.name(), ChangeOp::kDelete, old_pk);
        journal_.record(target.name(), ChangeOp::kInsert, new_pk);
      }
      break;
    }
    case WalOp::kDelete: {
      Table& target = table_mutable(record.table);
      for (const std::size_t index : record.row_indexes) {
        require_state(index < target.live_size(),
                      strings::cat("wal replay: row index out of range in ", record.table));
        journal_.record(target.name(), ChangeOp::kDelete,
                        journal_pk(target, target.live_row(index)));
      }
      target.erase_rows(record.row_indexes);
      break;
    }
    case WalOp::kCreateTable:
      require_state(!tables_.contains(record.table),
                    strings::cat("wal replay: table already exists: ", record.table));
      create_table_locked(record.table, record.schema);
      journal_.truncate(record.table);
      break;
    case WalOp::kDropTable: {
      require_state(tables_.contains(record.table),
                    strings::cat("wal replay: no such table: ", record.table));
      drop_table_locked(record.table);
      journal_.truncate(record.table);
      break;
    }
    case WalOp::kCreateIndex:
      table_mutable(record.table).create_index(record.column);
      break;
  }
}

RecoveryReport Database::open_durable(vfs::FileSystem& fs, std::string_view dir) {
  std::unique_lock<std::mutex> lock(table_lock_);
  require_state(durability_ == nullptr, "durable store already open");
  require_state(tables_.empty(), "open_durable() requires an empty database");
  // A pre-durable CREATE+DROP history leaves dropped catalog entries whose
  // stamps came from the in-RAM timestamp sequence; LSN timestamps start a
  // fresh domain, so force those entries invisible to every future reader.
  for (const CatalogEntry& entry : catalog_.load(std::memory_order_relaxed)->entries)
    entry.table->stamp_dropped(0);
  const std::string root = vfs::normalize(dir);
  fs.mkdir_p(root);
  durability_ = std::make_unique<Durability>(fs, root, vfs::join(root, kWalFileName));

  RecoveryReport report;

  // 1. Newest valid snapshot wins; corrupt ones are skipped, falling back
  //    one retention step (the WAL's LSN-gap guard below keeps a stale
  //    snapshot from mis-applying newer physical records).
  const std::vector<std::uint64_t> seqs = list_snapshots(fs, root);
  std::optional<SnapshotData> snapshot;
  for (auto it = seqs.rbegin(); it != seqs.rend() && !snapshot; ++it) {
    snapshot = decode_snapshot(fs.read_file(vfs::join(root, snapshot_file_name(*it))));
    if (!snapshot) ++report.snapshots_skipped;
  }
  if (snapshot) {
    for (TableState& state : snapshot->tables) {
      Table& table = create_table_locked(state.name, state.columns);
      for (Row& row : state.rows) table.restore_row(std::move(row));
      table.set_next_auto(state.next_auto);
      for (const std::string& column : state.indexed) table.create_index(column);
    }
    // Snapshot state is the base every read timestamp sees: rows restore
    // with begin_ts 0, tables stamp created at 0.
    for (const std::shared_ptr<Table>& created : pending_creates_) created->stamp_created(0);
    pending_creates_.clear();
    for (const auto& [channel, revision] : snapshot->channels)
      journal_.restore_channel(channel, revision);
    durability_->next_lsn = snapshot->last_lsn + 1;
    report.snapshot_loaded = true;
    report.snapshot_seq = snapshot->seq;
    report.snapshot_lsn = snapshot->last_lsn;
  }
  // Never reuse a sequence number, even one whose file was corrupt — the
  // next snapshot() must not overwrite evidence or collide with retention.
  durability_->next_snapshot_seq = seqs.empty() ? 1 : seqs.back() + 1;

  // 2. Replay the WAL on top. Records the snapshot already absorbed are
  //    skipped; a torn tail is truncated; an LSN gap (records that only
  //    apply to a newer state than the best surviving snapshot) drops the
  //    rest rather than corrupting.
  const std::string wal_path = durability_->wal.path();
  if (fs.is_file(wal_path)) {
    const std::string bytes = fs.read_file(wal_path);  // copy: we may rewrite
    const WalReadResult wal = read_wal(bytes);
    report.wal_torn = wal.torn;
    // Records apply in whole statements: buffer until a commit-marked
    // record closes the group, then apply all of it and stamp its versions
    // with the commit record's LSN — reconstructing the original commit
    // timestamps exactly. A trailing group with no commit marker is a
    // statement whose flush was cut short — dropped, exactly as if it never
    // ran (it was never acknowledged).
    std::size_t consumed = 0;
    std::size_t group_start = 0;  // index of the open group's first record
    std::uint64_t expected = durability_->next_lsn;
    for (std::size_t i = 0; i < wal.records.size(); ++i) {
      const WalRecord& record = wal.records[i];
      if (record.lsn < durability_->next_lsn) {  // absorbed by the snapshot
        ++report.wal_records_skipped;
        consumed = group_start = i + 1;
        continue;
      }
      if (record.lsn != expected) break;  // gap: unusable tail
      ++expected;
      if (!record.commit) continue;
      for (std::size_t j = group_start; j <= i; ++j) {
        apply_wal_record(wal.records[j]);
        ++durability_->next_lsn;
        ++report.wal_records_replayed;
      }
      stamp_commit_locked(wal.records[i].lsn);
      consumed = group_start = i + 1;
    }
    report.wal_records_dropped = wal.records.size() - consumed;
    if (wal.torn || report.wal_records_dropped > 0) {
      // Rewrite the file as exactly the records that survive, so a later
      // recovery (or further appends) never sees the dead tail. Re-encoding
      // a decoded record is byte-identical to its original frame.
      std::string surviving;
      for (std::size_t i = 0; i < consumed; ++i)
        surviving += encode_wal_record(wal.records[i]);
      fs.write_file(wal_path, std::move(surviving));
    }
  }
  // Recovery's position is the commit cursor: pins taken from here on see
  // everything replayed (and nothing a dropped tail half-applied).
  commit_ts_.store(durability_->next_lsn - 1, std::memory_order_seq_cst);
  report.last_lsn = durability_->next_lsn - 1;
  return report;
}

std::uint64_t Database::snapshot() {
  // One checkpoint at a time: the serialization window runs unlocked, so a
  // second snapshot() must not interleave with this one's publish phase.
  // Lock order: snapshot_mutex_ -> table_lock_.
  std::lock_guard<std::mutex> checkpoint_guard(snapshot_mutex_);

  SnapshotData data;
  std::vector<CapturedTable> captured;
  ReaderRegistry::Pin pin;
  {
    // Phase 1 (brief exclusive hold): fix the checkpoint's commit timestamp,
    // flush what it absorbs, pin a read view at it, and capture the bits
    // that belong to that timestamp rather than to serialization time.
    std::lock_guard<std::mutex> lock(table_lock_);
    require_state(durability_ != nullptr, "snapshot() requires a durable store (open_durable)");
    // Everything committed must be on disk before the snapshot claims to
    // absorb it (a group-commit tail could otherwise be lost twice over).
    durability_->wal.flush();
    data.last_lsn = commit_ts_.load(std::memory_order_seq_cst);
    data.seq = durability_->next_snapshot_seq;
    for (const auto& [key, table] : tables_)
      captured.push_back({table, table->indexed_columns(), table->next_auto()});
    data.channels = journal_.channel_states();
    pin = registry_.pin(commit_ts_);
  }

  // Phase 2 (no locks): serialize the pinned view while DML proceeds.
  // pin.ts() == last_lsn — both were read under the same hold.
  for (const CapturedTable& cap : captured) {
    TableState state;
    state.name = cap.table->name();
    state.columns = cap.table->columns();
    state.indexed = cap.indexed;
    state.next_auto = cap.next_auto;
    const Table::Reader reader = cap.table->reader(pin.ts());
    for (const Row* row : reader.visible_rows()) state.rows.push_back(*row);
    data.tables.push_back(std::move(state));
  }
  std::string bytes = encode_snapshot(data);
  pin.release();

  {
    // Phase 3 (brief exclusive hold): publish and truncate.
    std::lock_guard<std::mutex> lock(table_lock_);
    vfs::FileSystem& fs = *durability_->fs;
    const std::string tmp_path = vfs::join(durability_->dir, kSnapshotTmpName);
    const std::string final_path = vfs::join(durability_->dir, snapshot_file_name(data.seq));
    support::crash_point("snapshot.write.before");
    fs.write_file(tmp_path, std::move(bytes));
    // Crash here: an orphaned tmp file recovery never reads. Publication is
    // the rename — atomic, so readers see the old snapshot set or the new
    // one, never a partial file under the real name.
    support::crash_point("snapshot.write.after");
    fs.rename(tmp_path, final_path);
    // Crash here: the snapshot is live but the WAL still holds records it
    // absorbed — replay skips them by LSN, so recovery is exact either way.
    support::crash_point("snapshot.rename.after");
    // Drop only what the snapshot absorbed: statements that committed while
    // serialization ran stay in the WAL for the next recovery to replay.
    durability_->wal.reset_through(data.last_lsn);
    ++durability_->next_snapshot_seq;
    support::crash_point("snapshot.retire.before");
    // Retention: keep the newest two, so a corrupt newest falls back one
    // step instead of losing the store.
    const std::vector<std::uint64_t> seqs = list_snapshots(fs, durability_->dir);
    for (std::size_t i = 0; i + 2 < seqs.size(); ++i)
      fs.remove(vfs::join(durability_->dir, snapshot_file_name(seqs[i])));
  }
  return data.seq;
}

void Database::wal_flush() {
  std::lock_guard<std::mutex> lock(table_lock_);
  if (durability_) durability_->wal.flush();
}

void Database::set_wal_group_commit(std::size_t batch) {
  std::lock_guard<std::mutex> lock(table_lock_);
  require_state(durability_ != nullptr, "set_wal_group_commit() requires a durable store");
  durability_->wal.set_group_commit(batch);
}

// --- replication surface (DESIGN.md §12) -------------------------------------

void Database::set_wal_sink(WalSink sink) {
  std::lock_guard<std::mutex> lock(table_lock_);
  require_state(sink == nullptr || durability_ != nullptr,
                "set_wal_sink() requires a durable store (open_durable)");
  wal_sink_ = std::move(sink);
}

void Database::set_read_only(bool read_only, std::string leader_hint) {
  std::lock_guard<std::mutex> lock(table_lock_);
  read_only_error_ =
      leader_hint.empty()
          ? std::string("read-only replica: writes must go to the leader")
          : strings::cat("read-only replica: writes must go to the leader (", leader_hint,
                         ")");
  read_only_.store(read_only, std::memory_order_relaxed);
}

std::uint64_t Database::replicate_apply(const std::vector<WalRecord>& group) {
  require_state(!group.empty(), "replicate_apply: empty statement group");
  std::vector<std::string> touched;
  std::uint64_t position = 0;
  {
    const auto lock = timed_lock<std::unique_lock<std::mutex>>(
        table_lock_, exclusive_acquisitions_, exclusive_wait_ns_);
    require_state(durability_ != nullptr, "replicate_apply() requires a durable store");
    for (const WalRecord& record : group) {
      // Duplicate delivery (a re-ship overlapping the acked prefix) is
      // idempotent: already-applied records are skipped by LSN.
      if (record.lsn < durability_->next_lsn) continue;
      require_state(
          record.lsn == durability_->next_lsn,
          strings::cat("replication gap: expected LSN ", durability_->next_lsn, ", got ",
                       record.lsn, " — catch up from the leader WAL or re-bootstrap"));
      apply_wal_record(record);
      // Replay-applied records keep their leader LSNs in the replica's own
      // WAL, so a crashed follower recovers to the same gapless history.
      durability_->wal.append(record);
      ++durability_->next_lsn;
      // Commit-marked record: stamp the group's versions with its LSN —
      // the leader's commit timestamps, reproduced exactly.
      if (record.commit) stamp_commit_locked(record.lsn);
      // Mirror the run_* dirty-channel semantics: every mutation marks its
      // table; CREATE INDEX changes no rows and notifies nobody.
      if (record.op != WalOp::kCreateIndex) {
        std::string channel = strings::to_lower(record.table);
        if (touched.empty() || touched.back() != channel)
          touched.push_back(std::move(channel));
      }
    }
    maybe_reclaim_locked();
    durability_->wal.commit();
    position = durability_->next_lsn - 1;
  }
  for (const std::string& channel : touched) journal_.notify(channel);
  return position;
}

std::string Database::snapshot_image() const {
  SnapshotData data;
  std::vector<CapturedTable> captured;
  ReaderRegistry::Pin pin;
  {
    std::lock_guard<std::mutex> lock(table_lock_);
    require_state(durability_ != nullptr, "snapshot_image() requires a durable store");
    // The commit cursor, not next_lsn - 1: under the lock they agree, and
    // the cursor is what the pinned view actually serializes.
    data.last_lsn = commit_ts_.load(std::memory_order_seq_cst);
    data.seq = durability_->next_snapshot_seq;
    for (const auto& [key, table] : tables_)
      captured.push_back({table, table->indexed_columns(), table->next_auto()});
    data.channels = journal_.channel_states();
    pin = registry_.pin(commit_ts_);
  }
  // Serialize the pinned view with the lock released — a leader keeps
  // committing while it builds a follower's bootstrap image.
  for (const CapturedTable& cap : captured) {
    TableState state;
    state.name = cap.table->name();
    state.columns = cap.table->columns();
    state.indexed = cap.indexed;
    state.next_auto = cap.next_auto;
    const Table::Reader reader = cap.table->reader(pin.ts());
    for (const Row* row : reader.visible_rows()) state.rows.push_back(*row);
    data.tables.push_back(std::move(state));
  }
  return encode_snapshot(data);
}

std::uint64_t Database::install_replica_snapshot(std::string_view image) {
  // Not zero-pause: a wholesale state replacement has no meaningful
  // concurrent-writer story. Holds both locks like snapshot()'s publish.
  std::lock_guard<std::mutex> checkpoint_guard(snapshot_mutex_);
  std::lock_guard<std::mutex> lock(table_lock_);
  require_state(durability_ != nullptr,
                "install_replica_snapshot() requires a durable store");
  const std::optional<SnapshotData> snapshot = decode_snapshot(image);
  require_state(snapshot.has_value(), "install_replica_snapshot: corrupt snapshot image");
  const std::uint64_t boundary = snapshot->last_lsn;
  // Re-bootstrap replaces everything: the current tables are stamped
  // dropped at the image boundary (readers pinned before the install keep
  // resolving them through the catalog), the image's tables restore as the
  // new visible set, and its channel revisions and LSN cursor are adopted
  // wholesale.
  for (const auto& [key, table] : tables_) {
    table->commit_pending(boundary);  // no rollback: stamp any strays
    table->stamp_dropped(boundary);
  }
  tables_.clear();
  pending_drops_.clear();
  for (const TableState& state : snapshot->tables) {
    Table& table = create_table_locked(state.name, state.columns);
    for (const Row& row : state.rows) table.restore_row(Row(row));
    table.set_next_auto(state.next_auto);
    for (const std::string& column : state.indexed) table.create_index(column);
  }
  for (const std::shared_ptr<Table>& created : pending_creates_) created->stamp_created(boundary);
  pending_creates_.clear();
  for (const auto& [channel, revision] : snapshot->channels)
    journal_.restore_channel(channel, revision);
  durability_->next_lsn = boundary + 1;
  commit_ts_.store(boundary, std::memory_order_seq_cst);
  // Persist the image as this replica's own snapshot (temp + atomic rename,
  // same publication protocol as snapshot()) and truncate the WAL: an
  // independent crash recovery of this store now starts from the image.
  vfs::FileSystem& fs = *durability_->fs;
  const std::string tmp_path = vfs::join(durability_->dir, kSnapshotTmpName);
  const std::string final_path =
      vfs::join(durability_->dir, snapshot_file_name(durability_->next_snapshot_seq));
  fs.write_file(tmp_path, std::string(image));
  fs.rename(tmp_path, final_path);
  ++durability_->next_snapshot_seq;
  durability_->wal.reset();
  const std::vector<std::uint64_t> seqs = list_snapshots(fs, durability_->dir);
  for (std::size_t i = 0; i + 2 < seqs.size(); ++i)
    fs.remove(vfs::join(durability_->dir, snapshot_file_name(seqs[i])));
  return boundary;
}

std::string Database::wal_image() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  require_state(durability_ != nullptr, "wal_image() requires a durable store");
  const std::string& path = durability_->wal.path();
  return durability_->fs->is_file(path) ? durability_->fs->read_file(path) : std::string();
}

std::string Database::dump_state() const {
  // A pinned view, like any SELECT: dump_state on a live database races
  // nothing and blocks nothing. Catalog entries are (name, seq)-sorted and
  // at most one entry per name is visible at any ts, so iteration order
  // matches the old name-keyed map exactly.
  const ReaderRegistry::Pin pin = registry_.pin(commit_ts_);
  const Catalog* catalog = catalog_.load(std::memory_order_seq_cst);
  std::string out;
  for (const CatalogEntry& entry : catalog->entries) {
    const Table& table = *entry.table;
    if (!table.visible_at(pin.ts())) continue;
    out += strings::cat("table ", table.name(), "\n");
    for (const ColumnDef& column : table.columns())
      out += strings::cat("  column ", column.name, " type=",
                          static_cast<int>(column.type), " pk=", column.primary_key ? 1 : 0,
                          " auto=", column.auto_increment ? 1 : 0, "\n");
    for (const std::string& column : table.indexed_columns())
      out += strings::cat("  index ", column, "\n");
    out += strings::cat("  next_auto ", table.next_auto(), "\n");
    for (const Row* row : table.reader(pin.ts()).visible_rows()) {
      out += "  row";
      for (const Value& value : *row) out += strings::cat(" |", value.to_string());
      out += "\n";
    }
  }
  for (const auto& [channel, revision] : journal_.channel_states())
    out += strings::cat("channel ", channel, " revision=", revision, "\n");
  return out;
}

std::uint64_t Database::last_lsn() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  return durability_ ? durability_->next_lsn - 1 : 0;
}

std::uint64_t Database::wal_records_appended() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  return durability_ ? durability_->wal.records_appended() : 0;
}

std::uint64_t Database::wal_flushes() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  return durability_ ? durability_->wal.flushes() : 0;
}

std::uint64_t Database::wal_bytes_written() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  return durability_ ? durability_->wal.bytes_written() : 0;
}

// --- MVCC observability & read views (DESIGN.md §13) -------------------------

MvccStatus Database::mvcc_status() const {
  std::lock_guard<std::mutex> lock(table_lock_);
  MvccStatus status;
  status.commit_ts = commit_ts_.load(std::memory_order_seq_cst);
  const ReaderRegistry::Horizon horizon = registry_.horizon(status.commit_ts);
  status.min_active_ts = horizon.ts;
  status.active_read_views = registry_.active_views();
  status.read_views_opened = read_views_opened_.load(std::memory_order_relaxed);
  for (const auto& [key, table] : tables_) {
    const Table::Stats stats = table->stats();
    status.versions_reclaimed += stats.reclaimed;
    status.versions_live += stats.versions;
    status.retired_pending += stats.retired_pending;
    status.limbo_versions += stats.limbo_versions;
    status.max_chain = std::max(status.max_chain, stats.max_chain);
    for (std::size_t i = 0; i < status.chain_histogram.size(); ++i)
      status.chain_histogram[i] += stats.chain_histogram[i];
    status.tables.push_back({table->name(), stats});
  }
  return status;
}

ReadView Database::read_view() {
  ReadView view;
  view.db_ = this;
  view.pin_ = registry_.pin(commit_ts_);
  read_views_opened_.fetch_add(1, std::memory_order_relaxed);
  view.catalog_ = catalog_.load(std::memory_order_seq_cst);
  return view;
}

void Database::reset_stats() {
  cache_hits_.store(0, std::memory_order_relaxed);
  cache_misses_.store(0, std::memory_order_relaxed);
  plans_index_probe_.store(0, std::memory_order_relaxed);
  plans_index_join_.store(0, std::memory_order_relaxed);
  plans_hash_join_.store(0, std::memory_order_relaxed);
  plans_scan_.store(0, std::memory_order_relaxed);
  shared_acquisitions_.store(0, std::memory_order_relaxed);
  exclusive_acquisitions_.store(0, std::memory_order_relaxed);
  shared_wait_ns_.store(0, std::memory_order_relaxed);
  exclusive_wait_ns_.store(0, std::memory_order_relaxed);
  read_views_opened_.store(0, std::memory_order_relaxed);
}

ResultSet ReadView::execute(std::string_view sql) {
  require_state(db_ != nullptr, "ReadView: not attached to a database");
  return execute(*db_->prepare(sql));
}

ResultSet ReadView::execute(const Statement& statement) {
  require_state(db_ != nullptr, "ReadView: not attached to a database");
  require_state(std::holds_alternative<SelectStmt>(statement),
                "ReadView accepts SELECT statements only");
  return db_->run_select(std::get<SelectStmt>(statement), *catalog_, pin_.ts());
}

std::vector<std::string> ReadView::query_column(std::string_view sql) {
  const ResultSet result = execute(sql);
  require_state(result.columns.size() == 1,
                strings::cat("query_column expects exactly one output column, got ",
                             result.columns.size()));
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const auto& row : result.rows) out.push_back(row[0].to_string());
  return out;
}

}  // namespace rocks::sqldb
