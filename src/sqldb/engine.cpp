#include "sqldb/engine.hpp"

#include <algorithm>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::sqldb {
namespace {

/// Evaluation context with no columns in scope (INSERT value lists).
class EmptyContext final : public RowContext {
 public:
  [[nodiscard]] Value lookup(const std::string& table, const std::string& column) const override {
    throw LookupError(strings::cat("no column '", table.empty() ? column : table + "." + column,
                                   "' in scope here"));
  }
};

/// Context over one row of one table (UPDATE/DELETE WHERE clauses).
class SingleTableContext final : public RowContext {
 public:
  SingleTableContext(const Table& table, const Row& row) : table_(table), row_(row) {}

  [[nodiscard]] Value lookup(const std::string& table, const std::string& column) const override {
    if (!table.empty() && strings::to_lower(table) != strings::to_lower(table_.name()))
      throw LookupError(strings::cat("unknown table '", table, "' in expression"));
    const auto index = table_.column_index(column);
    if (!index) throw LookupError(strings::cat("unknown column '", column, "'"));
    return row_[*index];
  }

 private:
  const Table& table_;
  const Row& row_;
};

/// Context over the cartesian combination of several FROM tables.
class JoinContext final : public RowContext {
 public:
  JoinContext(const std::vector<const Table*>& tables, const std::vector<std::string>& aliases)
      : tables_(tables), aliases_(aliases), rows_(tables.size(), nullptr) {}

  void set_row(std::size_t table_idx, const Row* row) { rows_[table_idx] = row; }

  [[nodiscard]] Value lookup(const std::string& table, const std::string& column) const override {
    if (!table.empty()) {
      const std::string lowered = strings::to_lower(table);
      for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (strings::to_lower(aliases_[i]) == lowered) {
          const auto index = tables_[i]->column_index(column);
          if (!index)
            throw LookupError(strings::cat("unknown column '", table, ".", column, "'"));
          return (*rows_[i])[*index];
        }
      }
      throw LookupError(strings::cat("unknown table '", table, "' in expression"));
    }
    // Unqualified: must be unique across all tables in scope.
    std::optional<Value> found;
    for (std::size_t i = 0; i < tables_.size(); ++i) {
      const auto index = tables_[i]->column_index(column);
      if (index) {
        if (found)
          throw LookupError(strings::cat("ambiguous column '", column, "'"));
        found = (*rows_[i])[*index];
      }
    }
    if (!found) throw LookupError(strings::cat("unknown column '", column, "'"));
    return *found;
  }

 private:
  const std::vector<const Table*>& tables_;
  const std::vector<std::string>& aliases_;
  std::vector<const Row*> rows_;
};

}  // namespace

std::size_t ResultSet::column_index(std::string_view name) const {
  const std::string lowered = strings::to_lower(name);
  for (std::size_t i = 0; i < columns.size(); ++i)
    if (strings::to_lower(columns[i]) == lowered) return i;
  throw LookupError(strings::cat("result has no column '", std::string(name), "'"));
}

const Value& ResultSet::at(std::size_t row, std::string_view column) const {
  require_found(row < rows.size(), "result row index out of range");
  return rows[row][column_index(column)];
}

std::string ResultSet::render() const {
  AsciiTable out(columns);
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const auto& value : row) cells.push_back(value.to_string());
    out.add_row(std::move(cells));
  }
  return out.render();
}

ResultSet Database::execute(std::string_view sql) { return execute(parse_statement(sql)); }

ResultSet Database::execute(const Statement& statement) {
  return std::visit(
      [this](const auto& stmt) -> ResultSet {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStmt>) return run_select(stmt);
        else if constexpr (std::is_same_v<T, InsertStmt>) return run_insert(stmt);
        else if constexpr (std::is_same_v<T, UpdateStmt>) return run_update(stmt);
        else if constexpr (std::is_same_v<T, DeleteStmt>) return run_delete(stmt);
        else if constexpr (std::is_same_v<T, CreateTableStmt>) return run_create(stmt);
        else return run_drop(stmt);
      },
      statement);
}

std::vector<std::string> Database::query_column(std::string_view sql) {
  const ResultSet result = execute(sql);
  require_state(result.columns.size() == 1,
                strings::cat("query_column expects exactly one output column, got ",
                             result.columns.size()));
  std::vector<std::string> out;
  out.reserve(result.rows.size());
  for (const auto& row : result.rows) out.push_back(row[0].to_string());
  return out;
}

bool Database::has_table(std::string_view name) const {
  return tables_.contains(strings::to_lower(name));
}

const Table& Database::table(std::string_view name) const {
  const auto it = tables_.find(strings::to_lower(name));
  require_found(it != tables_.end(), strings::cat("no such table: ", std::string(name)));
  return it->second;
}

Table& Database::table_mutable(std::string_view name) {
  const auto it = tables_.find(strings::to_lower(name));
  require_found(it != tables_.end(), strings::cat("no such table: ", std::string(name)));
  return it->second;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, table] : tables_) out.push_back(table.name());
  return out;
}

ResultSet Database::run_select(const SelectStmt& stmt) {
  // Resolve FROM tables.
  std::vector<const Table*> tables;
  std::vector<std::string> aliases;
  for (const auto& ref : stmt.from) {
    tables.push_back(&table(ref.table));
    aliases.push_back(ref.alias);
  }

  // Expand the select list (stars become column references).
  struct OutputItem {
    const Expr* expr = nullptr;
    ExprPtr owned;
    std::string name;
  };
  std::vector<OutputItem> outputs;
  for (const auto& item : stmt.items) {
    if (item.star) {
      for (std::size_t i = 0; i < tables.size(); ++i) {
        if (!item.star_table.empty() &&
            strings::to_lower(item.star_table) != strings::to_lower(aliases[i]))
          continue;
        for (const auto& col : tables[i]->columns()) {
          OutputItem out;
          out.owned = Expr::column(aliases[i], col.name);
          out.expr = out.owned.get();
          out.name = tables.size() > 1 ? strings::cat(aliases[i], ".", col.name) : col.name;
          outputs.push_back(std::move(out));
        }
      }
      if (!item.star_table.empty() && outputs.empty())
        throw LookupError(strings::cat("unknown table '", item.star_table, "' in select list"));
    } else {
      OutputItem out;
      out.expr = item.expr.get();
      out.name = !item.alias.empty() ? item.alias : item.expr->display_name();
      outputs.push_back(std::move(out));
    }
  }

  ResultSet result;
  for (const auto& out : outputs) result.columns.push_back(out.name);

  // Nested-loop cartesian product with WHERE filtering; fine for config-size
  // tables (a few thousand nodes at most).
  JoinContext ctx(tables, aliases);

  // Validate every column reference up front against a row of NULLs so that
  // unknown names are rejected even when a table is empty (expressions over
  // NULL are total: they yield NULL rather than throwing).
  {
    std::vector<Row> null_rows;
    null_rows.reserve(tables.size());
    for (const auto* t : tables) null_rows.emplace_back(t->columns().size(), Value::null());
    for (std::size_t i = 0; i < tables.size(); ++i) ctx.set_row(i, &null_rows[i]);
    for (const auto& out : outputs) (void)out.expr->evaluate(ctx);
    if (stmt.where) (void)stmt.where->evaluate(ctx);
    for (const auto& key : stmt.order_by) (void)key.expr->evaluate(ctx);
  }
  struct Keyed {
    Row projected;
    Row keys;
  };
  std::vector<Keyed> collected;

  std::vector<std::size_t> cursor(tables.size(), 0);
  const auto emit_current = [&] {
    if (stmt.where) {
      const Value keep = stmt.where->evaluate(ctx);
      if (keep.is_null() || !keep.truthy()) return;
    }
    Keyed keyed;
    keyed.projected.reserve(outputs.size());
    for (const auto& out : outputs) keyed.projected.push_back(out.expr->evaluate(ctx));
    keyed.keys.reserve(stmt.order_by.size());
    for (const auto& key : stmt.order_by) keyed.keys.push_back(key.expr->evaluate(ctx));
    collected.push_back(std::move(keyed));
  };

  // Iterative odometer over all table row combinations.
  if (!tables.empty()) {
    bool any_empty = false;
    for (const auto* t : tables)
      if (t->rows().empty()) any_empty = true;
    if (!any_empty) {
      while (true) {
        for (std::size_t i = 0; i < tables.size(); ++i)
          ctx.set_row(i, &tables[i]->rows()[cursor[i]]);
        emit_current();
        std::size_t level = tables.size();
        while (level > 0) {
          --level;
          if (++cursor[level] < tables[level]->rows().size()) break;
          cursor[level] = 0;
          if (level == 0) goto done;
        }
      }
    }
  }
done:

  if (!stmt.order_by.empty()) {
    std::stable_sort(collected.begin(), collected.end(), [&](const Keyed& a, const Keyed& b) {
      for (std::size_t i = 0; i < stmt.order_by.size(); ++i) {
        const int cmp = a.keys[i].compare(b.keys[i]);
        if (cmp != 0) return stmt.order_by[i].descending ? cmp > 0 : cmp < 0;
      }
      return false;
    });
  }

  const std::size_t limit = stmt.limit.value_or(collected.size());
  for (std::size_t i = 0; i < collected.size() && i < limit; ++i)
    result.rows.push_back(std::move(collected[i].projected));
  return result;
}

ResultSet Database::run_insert(const InsertStmt& stmt) {
  Table& target = table_mutable(stmt.table);
  const EmptyContext ctx;
  ResultSet result;
  for (const auto& exprs : stmt.rows) {
    Row row(target.columns().size(), Value::null());
    if (stmt.columns.empty()) {
      require_state(exprs.size() == target.columns().size(),
                    strings::cat("INSERT into ", stmt.table, ": expected ",
                                 target.columns().size(), " values, got ", exprs.size()));
      for (std::size_t i = 0; i < exprs.size(); ++i) row[i] = exprs[i]->evaluate(ctx);
    } else {
      require_state(exprs.size() == stmt.columns.size(),
                    strings::cat("INSERT into ", stmt.table, ": column/value count mismatch"));
      for (std::size_t i = 0; i < stmt.columns.size(); ++i) {
        const auto index = target.column_index(stmt.columns[i]);
        require_found(index.has_value(),
                      strings::cat("unknown column '", stmt.columns[i], "' in INSERT"));
        row[*index] = exprs[i]->evaluate(ctx);
      }
    }
    target.insert(std::move(row));
    ++result.affected_rows;
  }
  return result;
}

ResultSet Database::run_update(const UpdateStmt& stmt) {
  Table& target = table_mutable(stmt.table);
  // Resolve assignment columns once.
  std::vector<std::pair<std::size_t, const Expr*>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    const auto index = target.column_index(column);
    require_found(index.has_value(), strings::cat("unknown column '", column, "' in UPDATE"));
    assignments.emplace_back(*index, expr.get());
  }
  ResultSet result;
  for (auto& row : target.rows()) {
    const SingleTableContext ctx(target, row);
    if (stmt.where) {
      const Value keep = stmt.where->evaluate(ctx);
      if (keep.is_null() || !keep.truthy()) continue;
    }
    // Evaluate all RHS against the pre-update row, then assign.
    Row updates;
    updates.reserve(assignments.size());
    for (const auto& [index, expr] : assignments) updates.push_back(expr->evaluate(ctx));
    for (std::size_t i = 0; i < assignments.size(); ++i) row[assignments[i].first] = updates[i];
    ++result.affected_rows;
  }
  return result;
}

ResultSet Database::run_delete(const DeleteStmt& stmt) {
  Table& target = table_mutable(stmt.table);
  std::vector<std::size_t> doomed;
  for (std::size_t i = 0; i < target.rows().size(); ++i) {
    const SingleTableContext ctx(target, target.rows()[i]);
    if (stmt.where) {
      const Value keep = stmt.where->evaluate(ctx);
      if (keep.is_null() || !keep.truthy()) continue;
    }
    doomed.push_back(i);
  }
  target.erase_rows(doomed);
  ResultSet result;
  result.affected_rows = doomed.size();
  return result;
}

ResultSet Database::run_create(const CreateTableStmt& stmt) {
  const std::string key = strings::to_lower(stmt.table);
  if (tables_.contains(key)) {
    if (stmt.if_not_exists) return {};
    throw StateError(strings::cat("table already exists: ", stmt.table));
  }
  tables_.emplace(key, Table(stmt.table, stmt.columns));
  return {};
}

ResultSet Database::run_drop(const DropTableStmt& stmt) {
  const std::string key = strings::to_lower(stmt.table);
  if (!tables_.contains(key)) {
    if (stmt.if_exists) return {};
    throw LookupError(strings::cat("no such table: ", stmt.table));
  }
  tables_.erase(key);
  return {};
}

}  // namespace rocks::sqldb
