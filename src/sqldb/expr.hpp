// Expression AST and evaluator for the mini SQL engine.
//
// Supports everything the paper's queries use — qualified column references
// ("nodes.membership = memberships.id"), comparisons, AND/OR/NOT — plus
// arithmetic, LIKE, IN, and IS [NOT] NULL for general use by the cluster
// tools (Section 6.4: "Any SQL query, including joins, can be fed to
// cluster-kill").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sqldb/value.hpp"

namespace rocks::sqldb {

/// Resolves column references while a row (or joined row) is in scope.
class RowContext {
 public:
  virtual ~RowContext() = default;
  /// `table` is empty for an unqualified reference. Throws LookupError for
  /// unknown or ambiguous names.
  [[nodiscard]] virtual Value lookup(const std::string& table, const std::string& column)
      const = 0;
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kLike,
};

enum class UnaryOp { kNot, kNeg };

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

class Expr {
 public:
  enum class Kind { kLiteral, kColumn, kUnary, kBinary, kIn, kIsNull };

  static ExprPtr literal(Value value);
  static ExprPtr column(std::string table, std::string column);
  static ExprPtr unary(UnaryOp op, ExprPtr operand);
  static ExprPtr binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr in(ExprPtr needle, std::vector<ExprPtr> haystack, bool negated);
  static ExprPtr is_null(ExprPtr operand, bool negated);

  [[nodiscard]] Kind kind() const { return kind_; }

  // Structural accessors for the engine's query planner (engine.cpp), which
  // pattern-matches WHERE trees for AND-chains of equality predicates.
  [[nodiscard]] BinaryOp binary_op() const { return binary_op_; }      // kBinary
  [[nodiscard]] const Expr* lhs() const { return lhs_.get(); }         // kUnary/kBinary
  [[nodiscard]] const Expr* rhs() const { return rhs_.get(); }         // kBinary
  [[nodiscard]] const std::string& column_table() const { return table_; }   // kColumn
  [[nodiscard]] const std::string& column_name() const { return column_; }   // kColumn
  [[nodiscard]] const Value& literal_value() const { return value_; }        // kLiteral

  /// Evaluates against the row in scope. SQL three-valued logic is
  /// approximated: comparisons involving NULL yield NULL (which is falsy).
  [[nodiscard]] Value evaluate(const RowContext& row) const;

  /// Column name heuristics used for SELECT output headers.
  [[nodiscard]] std::string display_name() const;

 private:
  Kind kind_ = Kind::kLiteral;
  Value value_;                    // kLiteral
  std::string table_, column_;     // kColumn
  UnaryOp unary_op_ = UnaryOp::kNot;
  BinaryOp binary_op_ = BinaryOp::kEq;
  ExprPtr lhs_, rhs_;              // kUnary uses lhs_ only
  std::vector<ExprPtr> list_;      // kIn
  bool negated_ = false;           // kIn / kIsNull
};

/// SQL LIKE with % and _ wildcards (case sensitive, MySQL-binary style).
[[nodiscard]] bool like_match(const std::string& pattern, const std::string& text);

}  // namespace rocks::sqldb
