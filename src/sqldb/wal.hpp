// Write-ahead log for the configuration database (DESIGN.md §11).
//
// The paper's frontend keeps the whole cluster's identity in MySQL; ours
// kept it in RAM, so a frontend crash forgot every insert-ethers
// registration. The WAL closes that gap: every committed DML/DDL statement
// appends one record per row-level change — the same granularity the
// ChangeJournal records, hooked off the same commit point, so WAL replay
// reproduces table contents AND bus revisions in lockstep.
//
// Records are *physical*: an INSERT logs the post-coercion row (with its
// assigned AUTO_INCREMENT key), an UPDATE logs (row index, changed cells),
// a DELETE logs the doomed row indexes. Replay applies them straight to
// Table storage — deterministic and byte-identical, because the base state
// a record applies to is pinned by its LSN (a global, gapless sequence
// number): a snapshot remembers the last LSN it contains, replay skips
// records at or below it, and a gap in the sequence (only possible when
// data loss already happened) stops replay rather than corrupting.
//
// On-disk format (all little-endian, see support/binary.hpp):
//   file  := record*
//   record := u32 payload_len | u32 crc32(payload) | payload
//   payload := u64 lsn | u8 op | str table | op-specific fields
// A torn tail — a partial record, or one whose CRC fails — ends the log:
// read_wal() reports every record before it and the byte offset where
// validity ends, and recovery truncates the file there (crash-safe: the
// tail was never acknowledged as committed).
//
// Group commit: the writer buffers serialized records and flushes once per
// `group_commit` committed statements (1 = every statement is durable when
// execute() returns). Batching amortizes the append under registration
// bursts at the cost of the unflushed tail on a crash — a documented,
// bounded loss window, never an inconsistency.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sqldb/table.hpp"
#include "sqldb/value.hpp"
#include "support/binary.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::sqldb {

// Shared Value/ColumnDef wire codec (WAL records and snapshots use the same
// encoding, so a row round-trips identically through either path).
void encode_value(support::BinaryWriter& out, const Value& value);
[[nodiscard]] Value decode_value(support::BinaryReader& in);
void encode_column(support::BinaryWriter& out, const ColumnDef& column);
[[nodiscard]] ColumnDef decode_column(support::BinaryReader& in);

enum class WalOp : std::uint8_t {
  kInsert = 1,       // append `row` to `table`
  kUpdate = 2,       // set `cells` of row `row_index` in `table`
  kDelete = 3,       // erase `row_indexes` (ascending) from `table`
  kCreateTable = 4,  // create `table` with `schema`
  kDropTable = 5,    // drop `table`
  kCreateIndex = 6,  // create index on `column` of `table`
};

struct WalRecord {
  std::uint64_t lsn = 0;
  WalOp op = WalOp::kInsert;
  /// Statement-commit marker: set on the last record of each statement.
  /// Replay applies records in whole statements only — a torn flush that
  /// splits a multi-record statement (one UPDATE touching many rows) drops
  /// the unterminated tail group, so statement atomicity survives any
  /// crash, not just crashes between statements.
  bool commit = false;
  std::string table;

  Row row;                                          // kInsert
  std::size_t row_index = 0;                        // kUpdate
  std::vector<std::pair<std::size_t, Value>> cells; // kUpdate
  std::vector<std::size_t> row_indexes;             // kDelete
  std::vector<ColumnDef> schema;                    // kCreateTable
  std::string column;                               // kCreateIndex
};

/// Serializes one record, framing (length + CRC) included.
[[nodiscard]] std::string encode_wal_record(const WalRecord& record);

struct WalReadResult {
  std::vector<WalRecord> records;  // every valid record, in file order
  std::uint64_t valid_bytes = 0;   // offset where the valid prefix ends
  bool torn = false;               // a partial/corrupt tail was found after valid_bytes
};

/// Decodes a WAL image, stopping cleanly at the first torn or corrupt
/// record. Never throws on bad framing — a damaged tail is an expected
/// crash artifact, reported rather than fatal.
[[nodiscard]] WalReadResult read_wal(std::string_view bytes);

/// One whole committed statement, as framed bytes ready to re-append or
/// ship: every record of the statement (the last one carries the commit
/// marker), plus its LSN range.
struct WalGroup {
  std::uint64_t first_lsn = 0;
  std::uint64_t last_lsn = 0;
  std::string bytes;  // concatenated framed records (length | crc | payload)
};

/// The streaming cursor over a WAL image (DESIGN.md §12.2): splits `bytes`
/// into committed statement groups and returns those whose last LSN is
/// above `floor` — exactly what a leader ships to a follower acked through
/// `floor`. A torn tail and a trailing group with no commit marker are
/// dropped (neither was ever acknowledged). Re-encoding a decoded record is
/// byte-identical to its original frame, so shipped groups replay the same
/// way local recovery would.
[[nodiscard]] std::vector<WalGroup> wal_groups_after(std::string_view bytes,
                                                     std::uint64_t floor);

/// Appends records to the log file with group-commit batching. All calls
/// must be externally serialized (the Database holds its exclusive table
/// lock across append + commit), matching WAL order to commit order.
class WalWriter {
 public:
  WalWriter(vfs::FileSystem& fs, std::string path) : fs_(&fs), path_(std::move(path)) {}

  /// Buffers one record (already LSN-stamped by the caller).
  void append(const WalRecord& record);

  /// Marks the end of one committed statement; flushes when the batch
  /// policy says so. Crash points: "wal.flush.before", "wal.flush.torn",
  /// "wal.flush.after".
  void commit();

  /// Forces the buffer to disk (group-commit barrier; also used before a
  /// snapshot and by Database::wal_flush()). An IO failure surfaces as
  /// IoError naming the buffered LSN range that did NOT become durable;
  /// the buffer is kept intact so a later flush retries the same bytes —
  /// callers (the frontend's durability barrier) must refuse to
  /// acknowledge work until a flush succeeds.
  void flush();

  /// Statements per flush; 1 = synchronous commit.
  void set_group_commit(std::size_t batch) { group_commit_ = batch == 0 ? 1 : batch; }
  [[nodiscard]] std::size_t group_commit() const { return group_commit_; }

  /// Empties the buffer and truncates the file (snapshot just absorbed it).
  void reset();

  /// Truncates only what a snapshot absorbed: rewrites the file keeping the
  /// records with lsn > `floor` (statements that committed while the
  /// zero-pause checkpoint was serializing). Publication is temp file +
  /// atomic rename, so a crash mid-rewrite leaves the old file intact. The
  /// unflushed buffer is untouched — its records are all above the floor by
  /// construction (the checkpoint flushed before fixing it).
  void reset_through(std::uint64_t floor);

  [[nodiscard]] const std::string& path() const { return path_; }

  // Observability (tests, bench_durability).
  [[nodiscard]] std::uint64_t records_appended() const { return records_appended_; }
  [[nodiscard]] std::uint64_t flushes() const { return flushes_; }
  [[nodiscard]] std::uint64_t bytes_written() const { return bytes_written_; }
  [[nodiscard]] std::size_t pending_bytes() const { return pending_.size(); }
  /// Flush attempts that failed with an IO error (the buffer survived).
  [[nodiscard]] std::uint64_t flush_failures() const { return flush_failures_; }

 private:
  vfs::FileSystem* fs_;
  std::string path_;
  std::string pending_;                 // serialized, unflushed records
  std::size_t pending_statements_ = 0;  // commits since last flush
  // LSN range of the buffered records; 0/0 when the buffer is empty. Names
  // the exact records an IO failure left non-durable.
  std::uint64_t pending_first_lsn_ = 0;
  std::uint64_t pending_last_lsn_ = 0;
  std::size_t group_commit_ = 1;
  std::uint64_t records_appended_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t flush_failures_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace rocks::sqldb
