#include "sqldb/table.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  require_state(!columns_.empty(), "a table needs at least one column");
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].primary_key) create_index(columns_[i].name);
}

std::optional<std::size_t> Table::column_index(std::string_view name) const {
  const std::string lowered = strings::to_lower(name);
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (strings::to_lower(columns_[i].name) == lowered) return i;
  return std::nullopt;
}

std::optional<std::size_t> Table::primary_key_column() const {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].primary_key) return i;
  return std::nullopt;
}

Value Table::coerce(const Value& value, Type type) {
  if (value.is_null()) return value;
  switch (type) {
    case Type::kInt:
      if (value.type() == Type::kText) {
        char* end = nullptr;
        const std::string& text = value.as_text();
        const long long parsed = std::strtoll(text.c_str(), &end, 10);
        if (end != nullptr && *end == '\0') return Value(static_cast<std::int64_t>(parsed));
        return value;  // keep text if not numeric (lenient, like MySQL would warn)
      }
      return Value(value.as_int());
    case Type::kReal:
      if (value.type() == Type::kText) return value;
      return Value(value.as_real());
    case Type::kText:
      if (value.type() == Type::kText) return value;
      return Value(value.to_string());
    case Type::kNull: return value;
  }
  return value;
}

std::size_t Table::insert(Row row) {
  require_state(row.size() == columns_.size(),
                strings::cat("insert into ", name_, ": row width ", row.size(),
                             " != column count ", columns_.size()));
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (columns_[i].auto_increment && row[i].is_null()) {
      row[i] = Value(next_auto_++);
    } else {
      row[i] = coerce(row[i], columns_[i].type);
      if (columns_[i].auto_increment && !row[i].is_null())
        next_auto_ = std::max(next_auto_, row[i].as_int() + 1);
    }
  }
  rows_.push_back(std::move(row));
  const std::size_t index = rows_.size() - 1;
  for (auto& idx : indexes_) index_row(idx, index);
  return index;
}

std::size_t Table::restore_row(Row row) {
  require_state(row.size() == columns_.size(),
                strings::cat("restore into ", name_, ": row width ", row.size(),
                             " != column count ", columns_.size()));
  rows_.push_back(std::move(row));
  const std::size_t index = rows_.size() - 1;
  for (auto& idx : indexes_) index_row(idx, index);
  return index;
}

void Table::set_cell(std::size_t row, std::size_t column, Value value) {
  require_state(row < rows_.size(), "set_cell: row index out of range");
  require_state(column < columns_.size(), "set_cell: column index out of range");
  for (auto& index : indexes_) {
    if (index.column != column) continue;
    const Value& old = rows_[row][column];
    if (!old.is_null()) {
      const auto it = index.buckets.find(old);
      if (it != index.buckets.end()) {
        auto& bucket = it->second;
        bucket.erase(std::remove(bucket.begin(), bucket.end(), row), bucket.end());
        if (bucket.empty()) index.buckets.erase(it);
      }
    }
    if (!value.is_null()) index.buckets[value].push_back(row);
  }
  rows_[row][column] = std::move(value);
}

void Table::erase_rows(const std::vector<std::size_t>& sorted_indexes) {
  if (sorted_indexes.empty()) return;
  for (const std::size_t doomed : sorted_indexes)
    require_state(doomed < rows_.size(), "erase_rows: index out of range");
  if (sorted_indexes.front() + sorted_indexes.size() == rows_.size()) {
    // The doomed rows are exactly the table's tail (ascending unique values
    // bounded by row_count force contiguity), so no surviving row shifts
    // position: drop their index entries directly instead of rebuilding.
    // Retiring the newest nodes — the insert-ethers churn pattern — stays
    // O(deleted) instead of O(table).
    for (auto& index : indexes_) {
      for (const std::size_t doomed : sorted_indexes) {
        const Value& key = rows_[doomed][index.column];
        if (key.is_null()) continue;
        const auto it = index.buckets.find(key);
        if (it == index.buckets.end()) continue;
        auto& bucket = it->second;
        bucket.erase(std::remove(bucket.begin(), bucket.end(), doomed), bucket.end());
        if (bucket.empty()) index.buckets.erase(it);
      }
    }
    rows_.resize(sorted_indexes.front());
    return;
  }
  for (auto it = sorted_indexes.rbegin(); it != sorted_indexes.rend(); ++it)
    rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(*it));
  // Every surviving row may have shifted position; rebuild rather than
  // patching (mid-table deletes are rare on the CGI hot path).
  rebuild_indexes();
}

void Table::create_index(std::string_view column) {
  const auto col = column_index(column);
  require_found(col.has_value(),
                strings::cat("no column '", std::string(column), "' in table ", name_,
                             " to index"));
  if (has_index_on(*col)) return;
  HashIndex index;
  index.column = *col;
  for (std::size_t i = 0; i < rows_.size(); ++i) index_row(index, i);
  indexes_.push_back(std::move(index));
}

bool Table::has_index_on(std::size_t column) const {
  for (const auto& index : indexes_)
    if (index.column == column) return true;
  return false;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::string> out;
  out.reserve(indexes_.size());
  for (const auto& index : indexes_) out.push_back(columns_[index.column].name);
  return out;
}

std::vector<std::size_t> Table::probe_index(std::size_t column, const Value& key) const {
  for (const auto& index : indexes_) {
    if (index.column != column) continue;
    if (key.is_null()) return {};  // '=' never matches NULL
    const auto it = index.buckets.find(key);
    if (it == index.buckets.end()) return {};
    std::vector<std::size_t> hits = it->second;
    std::sort(hits.begin(), hits.end());  // restore scan order
    return hits;
  }
  throw StateError(strings::cat("probe_index: column ", column, " of ", name_,
                                " has no hash index"));
}

void Table::index_row(HashIndex& index, std::size_t row) {
  const Value& key = rows_[row][index.column];
  if (!key.is_null()) index.buckets[key].push_back(row);
}

void Table::rebuild_indexes() {
  for (auto& index : indexes_) {
    index.buckets.clear();
    for (std::size_t i = 0; i < rows_.size(); ++i) index_row(index, i);
  }
}

}  // namespace rocks::sqldb
