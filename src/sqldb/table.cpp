#include "sqldb/table.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)), indexes_(columns_.size()) {
  require_state(!columns_.empty(), "a table needs at least one column");
  directory_storage_.push_back(std::make_unique<SlotDirectory>());
  directory_.store(directory_storage_.back().get(), std::memory_order_relaxed);
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].primary_key) create_index(columns_[i].name);
}

Table::~Table() {
  const SlotDirectory* dir = directory_.load(std::memory_order_relaxed);
  for (std::uint32_t s = 0; s < slots_used_; ++s)
    free_chain(dir->slot(s).head.load(std::memory_order_relaxed));
  for (const Limbo& limbo : limbo_) free_chain(limbo.chain);
}

std::optional<std::size_t> Table::column_index(std::string_view name) const {
  const std::string lowered = strings::to_lower(name);
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (strings::to_lower(columns_[i].name) == lowered) return i;
  return std::nullopt;
}

std::optional<std::size_t> Table::primary_key_column() const {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i].primary_key) return i;
  return std::nullopt;
}

Value Table::coerce(const Value& value, Type type) {
  if (value.is_null()) return value;
  switch (type) {
    case Type::kInt:
      if (value.type() == Type::kText) {
        char* end = nullptr;
        const std::string& text = value.as_text();
        const long long parsed = std::strtoll(text.c_str(), &end, 10);
        if (end != nullptr && *end == '\0') return Value(static_cast<std::int64_t>(parsed));
        return value;  // keep text if not numeric (lenient, like MySQL would warn)
      }
      return Value(value.as_int());
    case Type::kReal:
      if (value.type() == Type::kText) return value;
      return Value(value.as_real());
    case Type::kText:
      if (value.type() == Type::kText) return value;
      return Value(value.to_string());
    case Type::kNull: return value;
  }
  return value;
}

std::uint32_t Table::allocate_slot() {
  const SlotDirectory* current = directory_.load(std::memory_order_relaxed);
  if (slots_used_ == current->capacity()) {
    auto grown = std::make_unique<SlotDirectory>();
    grown->chunks = current->chunks;  // shared: existing slots keep their address
    grown->chunks.push_back(std::make_shared<VersionChunk>());
    directory_storage_.push_back(std::move(grown));
    directory_.store(directory_storage_.back().get(), std::memory_order_seq_cst);
  }
  return static_cast<std::uint32_t>(slots_used_++);
}

RowSlot& Table::slot_ref(std::uint32_t slot) const {
  return directory_.load(std::memory_order_relaxed)->slot(slot);
}

std::size_t Table::insert(Row row) {
  require_state(row.size() == columns_.size(),
                strings::cat("insert into ", name_, ": row width ", row.size(),
                             " != column count ", columns_.size()));
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (columns_[i].auto_increment && row[i].is_null()) {
      row[i] = Value(next_auto_.fetch_add(1, std::memory_order_seq_cst));
    } else {
      row[i] = coerce(row[i], columns_[i].type);
      if (columns_[i].auto_increment && !row[i].is_null())
        next_auto_.store(std::max(next_auto_.load(std::memory_order_seq_cst),
                                  row[i].as_int() + 1),
                         std::memory_order_seq_cst);
    }
  }
  const std::uint32_t slot = allocate_slot();
  auto* version = new RowVersion;
  version->data = std::move(row);  // begin_ts stays kTsUncommitted until commit
  slot_ref(slot).head.store(version, std::memory_order_seq_cst);
  pending_begin_.push_back(version);
  ++versions_;
  live_.push_back(slot);
  live_count_.store(live_.size(), std::memory_order_relaxed);
  slot_position_.resize(slots_used_, kNoPosition);
  slot_position_[slot] = live_.size() - 1;
  for (std::size_t col = 0; col < indexes_.size(); ++col) {
    if (indexes_[col].current == nullptr) continue;
    const Value& key = version->data[col];
    if (!key.is_null()) index_insert(col, key, slot);
  }
  return live_.size() - 1;
}

std::size_t Table::restore_row(Row row) {
  require_state(row.size() == columns_.size(),
                strings::cat("restore into ", name_, ": row width ", row.size(),
                             " != column count ", columns_.size()));
  const std::uint32_t slot = allocate_slot();
  auto* version = new RowVersion;
  version->data = std::move(row);
  version->begin_ts.store(0, std::memory_order_relaxed);  // the base state: every ts sees it
  slot_ref(slot).head.store(version, std::memory_order_seq_cst);
  ++versions_;
  live_.push_back(slot);
  live_count_.store(live_.size(), std::memory_order_relaxed);
  slot_position_.resize(slots_used_, kNoPosition);
  slot_position_[slot] = live_.size() - 1;
  for (std::size_t col = 0; col < indexes_.size(); ++col) {
    if (indexes_[col].current == nullptr) continue;
    const Value& key = version->data[col];
    if (!key.is_null()) index_insert(col, key, slot);
  }
  return live_.size() - 1;
}

void Table::update_row(std::size_t position,
                       const std::vector<std::pair<std::size_t, Value>>& cells) {
  require_state(position < live_.size(), "update_row: row index out of range");
  const std::uint32_t slot = live_[position];
  RowSlot& row_slot = slot_ref(slot);
  RowVersion* old = row_slot.head.load(std::memory_order_relaxed);
  auto* version = new RowVersion;
  version->data = old->data;
  for (const auto& [column, value] : cells) {
    require_state(column < columns_.size(), "update_row: column index out of range");
    version->data[column] = value;  // stored as given, like the old set_cell
  }
  version->older.store(old, std::memory_order_relaxed);
  row_slot.head.store(version, std::memory_order_seq_cst);
  pending_begin_.push_back(version);
  pending_end_.emplace_back(slot, old);
  ++versions_;
  for (const auto& [column, value] : cells) {
    if (indexes_[column].current == nullptr) continue;
    if (value.is_null()) continue;  // probes never match NULL; no entry needed
    const Value& before = old->data[column];
    if (!before.is_null() && ValueEqual{}(before, value)) continue;  // key unchanged
    index_insert(column, version->data[column], slot);
  }
}

void Table::erase_rows(const std::vector<std::size_t>& sorted_positions) {
  if (sorted_positions.empty()) return;
  for (const std::size_t doomed : sorted_positions)
    require_state(doomed < live_.size(), "erase_rows: index out of range");
  for (const std::size_t doomed : sorted_positions) {
    const std::uint32_t slot = live_[doomed];
    RowVersion* head = slot_ref(slot).head.load(std::memory_order_relaxed);
    pending_end_.emplace_back(slot, head);
  }
  // Order-preserving compaction: surviving positions keep their relative
  // order, exactly like the old rows_.erase() path, so positional WAL
  // records replay identically.
  std::size_t next_doomed = 0;
  std::size_t out = 0;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (next_doomed < sorted_positions.size() && sorted_positions[next_doomed] == i) {
      slot_position_[live_[i]] = kNoPosition;
      ++next_doomed;
      continue;
    }
    slot_position_[live_[i]] = out;  // survivors shift left past the gaps
    live_[out++] = live_[i];
  }
  live_.resize(out);
  live_count_.store(live_.size(), std::memory_order_relaxed);
}

std::vector<std::size_t> Table::probe_positions(std::size_t column, const Value& key) const {
  const IndexArray* array =
      column < indexes_.size() ? indexes_[column].current : nullptr;
  if (array == nullptr)
    throw StateError(strings::cat("probe_positions: column ", column, " of ", name_,
                                  " has no hash index"));
  std::vector<std::size_t> positions;
  if (key.is_null()) return positions;  // '=' never matches NULL
  const std::size_t mask = array->buckets.size() - 1;
  for (const IndexEntry* entry =
           array->buckets[key.hash() & mask].load(std::memory_order_relaxed);
       entry != nullptr; entry = entry->next) {
    if (!ValueEqual{}(entry->key, key)) continue;
    if (entry->slot >= slot_position_.size()) continue;
    const std::size_t position = slot_position_[entry->slot];
    if (position == kNoPosition) continue;  // the slot's row left the live set
    // Entries may be stale (a superseded version's key): the current row
    // must actually carry the key for the probe to consume the conjunct.
    const Value& current = live_row(position)[column];
    if (current.is_null() || !ValueEqual{}(current, key)) continue;
    positions.push_back(position);
  }
  std::sort(positions.begin(), positions.end());  // restore scan order
  positions.erase(std::unique(positions.begin(), positions.end()), positions.end());
  return positions;
}

const Row& Table::live_row(std::size_t position) const {
  require_state(position < live_.size(), "live_row: index out of range");
  return slot_ref(live_[position]).head.load(std::memory_order_relaxed)->data;
}

void Table::commit_pending(std::uint64_t ts) {
  for (RowVersion* version : pending_begin_)
    version->begin_ts.store(ts, std::memory_order_seq_cst);
  for (const auto& [slot, version] : pending_end_) {
    version->end_ts.store(ts, std::memory_order_seq_cst);
    retired_.push_back({slot, ts});
  }
  pending_begin_.clear();
  pending_end_.clear();
}

std::size_t Table::free_chain(RowVersion* version) {
  std::size_t freed = 0;
  while (version != nullptr) {
    RowVersion* older = version->older.load(std::memory_order_relaxed);
    delete version;
    version = older;
    ++freed;
  }
  return freed;
}

std::size_t Table::reclaim(const ReaderRegistry::Horizon& horizon,
                           const ReaderRegistry& registry) {
  std::size_t freed = 0;
  // Gate 2 (mvcc.hpp): limbo chains whose unlink predates every active
  // pin's registration can no longer be reached by any walker.
  std::size_t i = 0;
  while (i < limbo_.size()) {
    if (limbo_[i].reg <= horizon.reg) {
      freed += free_chain(limbo_[i].chain);
      limbo_[i] = limbo_.back();
      limbo_.pop_back();
    } else {
      ++i;
    }
  }
  // Gate 1: versions superseded at or before the oldest active read ts.
  // retired_ is FIFO in end_ts, so the prefix with end_ts <= horizon is
  // exactly the reclaimable set.
  const SlotDirectory* dir = directory_.load(std::memory_order_relaxed);
  bool unlinked_head = false;
  while (!retired_.empty() && retired_.front().end_ts <= horizon.ts) {
    const std::uint32_t slot_id = retired_.front().slot;
    retired_.pop_front();
    RowSlot& slot = dir->slot(slot_id);
    RowVersion* head = slot.head.load(std::memory_order_relaxed);
    if (head == nullptr) continue;  // an earlier entry already emptied this slot
    if (head->end_ts.load(std::memory_order_relaxed) <= horizon.ts) {
      // Deleted row: the whole chain is invisible at every active ts, but a
      // reader may have loaded the head pointer just before this unlink —
      // park the chain in limbo until every active registration postdates it.
      slot.head.store(nullptr, std::memory_order_seq_cst);
      std::size_t chain_len = 0;
      for (RowVersion* v = head; v != nullptr; v = v->older.load(std::memory_order_relaxed))
        ++chain_len;
      versions_ -= chain_len;
      ++dead_slots_;
      limbo_.push_back({0, head, chain_len});  // stamped below, after all unlinks
      unlinked_head = true;
      continue;
    }
    // Live row: truncate the dead suffix (first version with end_ts <= the
    // horizon, plus everything older). No reader walk can reach it — the
    // walk stops at the suffix's predecessor or earlier (mvcc.hpp, gate 1)
    // — so it is freed immediately.
    RowVersion* pred = head;
    RowVersion* v = pred->older.load(std::memory_order_relaxed);
    while (v != nullptr && v->end_ts.load(std::memory_order_relaxed) > horizon.ts) {
      pred = v;
      v = v->older.load(std::memory_order_relaxed);
    }
    if (v == nullptr) continue;
    pred->older.store(nullptr, std::memory_order_seq_cst);
    const std::size_t chain_len = free_chain(v);
    versions_ -= chain_len;
    freed += chain_len;
  }
  if (unlinked_head) {
    // Taken after the unlinks: any pin registered at or past this stamp
    // observed the nulled head (seq_cst total order), so once the minimum
    // active registration reaches it the chain is unreachable.
    const std::uint64_t stamp = registry.registration_sequence();
    for (Limbo& limbo : limbo_)
      if (limbo.reg == 0) limbo.reg = stamp;
  }
  maybe_rebuild_stale_indexes();
  if (freed != 0) reclaimed_.fetch_add(freed, std::memory_order_relaxed);
  return freed;
}

void Table::create_index(std::string_view column) {
  const auto col = column_index(column);
  require_found(col.has_value(),
                strings::cat("no column '", std::string(column), "' in table ", name_,
                             " to index"));
  if (has_index_on(*col)) return;
  IndexArray* array = build_index_array(*col, 64);
  array->created_seq = ++index_seq_;
  publish_index(*col, array);
}

bool Table::has_index_on(std::size_t column) const {
  return column < indexes_.size() &&
         indexes_[column].published.load(std::memory_order_seq_cst) != nullptr;
}

std::vector<std::string> Table::indexed_columns() const {
  std::vector<std::pair<std::uint64_t, std::size_t>> created;
  for (std::size_t col = 0; col < indexes_.size(); ++col) {
    const IndexArray* array = indexes_[col].published.load(std::memory_order_seq_cst);
    if (array != nullptr) created.emplace_back(array->created_seq, col);
  }
  std::sort(created.begin(), created.end());
  std::vector<std::string> out;
  out.reserve(created.size());
  for (const auto& [seq, col] : created) out.push_back(columns_[col].name);
  return out;
}

Table::IndexArray* Table::build_index_array(std::size_t column, std::size_t min_buckets) {
  const SlotDirectory* dir = directory_.load(std::memory_order_relaxed);
  std::size_t candidates = 0;
  for (std::uint32_t s = 0; s < slots_used_; ++s)
    for (RowVersion* v = dir->slot(s).head.load(std::memory_order_relaxed); v != nullptr;
         v = v->older.load(std::memory_order_relaxed))
      if (!v->data[column].is_null()) ++candidates;
  const std::size_t buckets =
      std::bit_ceil(std::max({min_buckets, candidates, std::size_t{64}}));
  auto array = std::make_unique<IndexArray>(buckets);
  const std::size_t mask = buckets - 1;
  std::vector<const Value*> seen;  // distinct keys of one chain (chains are short)
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    seen.clear();
    for (RowVersion* v = dir->slot(s).head.load(std::memory_order_relaxed); v != nullptr;
         v = v->older.load(std::memory_order_relaxed)) {
      const Value& key = v->data[column];
      if (key.is_null()) continue;
      bool duplicate = false;
      for (const Value* prior : seen)
        if (ValueEqual{}(*prior, key)) {
          duplicate = true;
          break;
        }
      if (duplicate) continue;
      seen.push_back(&key);
      IndexEntry& entry = array->arena.emplace_back();
      entry.key = key;
      entry.slot = s;
      auto& bucket = array->buckets[key.hash() & mask];
      entry.next = bucket.load(std::memory_order_relaxed);
      bucket.store(&entry, std::memory_order_relaxed);  // array not yet published
    }
  }
  IndexArray* raw = array.get();
  index_storage_.push_back(std::move(array));
  return raw;
}

void Table::publish_index(std::size_t column, IndexArray* array) {
  indexes_[column].current = array;
  indexes_[column].published.store(array, std::memory_order_seq_cst);
}

void Table::index_insert(std::size_t column, const Value& key, std::uint32_t slot) {
  IndexArray* array = indexes_[column].current;
  if (array->arena.size() + 1 > 2 * array->buckets.size()) {
    IndexArray* grown = build_index_array(column, array->buckets.size() * 2);
    grown->created_seq = array->created_seq;
    // The rebuild walked the chains, which already hold the version being
    // indexed — nothing left to append.
    publish_index(column, grown);
    return;
  }
  IndexEntry& entry = array->arena.emplace_back();
  entry.key = key;
  entry.slot = slot;
  auto& bucket = array->buckets[key.hash() & (array->buckets.size() - 1)];
  entry.next = bucket.load(std::memory_order_relaxed);
  // Release the fully built entry into the bucket chain; readers that load
  // it see key/slot/next complete.
  bucket.store(&entry, std::memory_order_seq_cst);
}

void Table::maybe_rebuild_stale_indexes() {
  for (std::size_t col = 0; col < indexes_.size(); ++col) {
    IndexArray* array = indexes_[col].current;
    if (array == nullptr) continue;
    // Entries pointing at reclaimed versions are harmless (probes re-check
    // the visible row) but accumulate; rebuild once they dominate.
    if (array->arena.size() <= 2 * versions_ + 64) continue;
    IndexArray* rebuilt = build_index_array(col, 64);
    rebuilt->created_seq = array->created_seq;
    publish_index(col, rebuilt);
  }
}

Table::Stats Table::stats() const {
  Stats out;
  out.live_rows = live_.size();
  out.slots = slots_used_;
  out.dead_slots = dead_slots_;
  out.retired_pending = retired_.size();
  out.reclaimed = reclaimed_.load(std::memory_order_relaxed);
  for (const Limbo& limbo : limbo_) out.limbo_versions += limbo.count;
  const SlotDirectory* dir = directory_.load(std::memory_order_relaxed);
  for (std::uint32_t s = 0; s < slots_used_; ++s) {
    std::size_t length = 0;
    for (RowVersion* v = dir->slot(s).head.load(std::memory_order_relaxed); v != nullptr;
         v = v->older.load(std::memory_order_relaxed))
      ++length;
    if (length == 0) continue;
    out.versions += length;
    out.max_chain = std::max(out.max_chain, length);
    ++out.chain_histogram[std::min<std::size_t>(length, 9) - 1];
  }
  return out;
}

Table::Reader::Reader(const Table& table, std::uint64_t ts)
    : table_(&table), ts_(ts), directory_(table.directory_.load(std::memory_order_seq_cst)) {}

const Row* Table::Reader::visible(std::uint32_t slot) const {
  if (slot >= directory_->capacity()) return nullptr;  // allocated after this view
  RowVersion* v = directory_->slot(slot).head.load(std::memory_order_seq_cst);
  while (v != nullptr && v->begin_ts.load(std::memory_order_seq_cst) > ts_)
    v = v->older.load(std::memory_order_seq_cst);
  if (v == nullptr) return nullptr;
  if (v->end_ts.load(std::memory_order_seq_cst) <= ts_) return nullptr;
  return &v->data;
}

std::vector<const Row*> Table::Reader::visible_rows() const {
  std::vector<const Row*> out;
  out.reserve(table_->live_count_.load(std::memory_order_relaxed));
  const std::size_t capacity = directory_->capacity();
  for (std::uint32_t slot = 0; slot < capacity; ++slot) {
    const Row* row = visible(slot);
    if (row != nullptr) out.push_back(row);
  }
  return out;
}

std::vector<const Row*> Table::Reader::probe_rows(std::size_t column, const Value& key) const {
  const IndexArray* array =
      column < table_->indexes_.size()
          ? table_->indexes_[column].published.load(std::memory_order_seq_cst)
          : nullptr;
  if (array == nullptr)
    throw StateError(strings::cat("probe_index: column ", column, " of ", table_->name_,
                                  " has no hash index"));
  if (key.is_null()) return {};  // '=' never matches NULL
  std::vector<std::uint32_t> slots;
  const std::size_t mask = array->buckets.size() - 1;
  for (const IndexEntry* entry =
           array->buckets[key.hash() & mask].load(std::memory_order_seq_cst);
       entry != nullptr; entry = entry->next)
    if (ValueEqual{}(entry->key, key)) slots.push_back(entry->slot);
  std::sort(slots.begin(), slots.end());  // restore scan order
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  std::vector<const Row*> out;
  out.reserve(slots.size());
  for (const std::uint32_t slot : slots) {
    const Row* row = visible(slot);
    if (row == nullptr) continue;
    // Entries may be stale (superseded version's key) — the visible row
    // must actually carry the key for the probe to consume the conjunct.
    const Value& current = (*row)[column];
    if (!current.is_null() && ValueEqual{}(current, key)) out.push_back(row);
  }
  return out;
}

}  // namespace rocks::sqldb
