#include "sqldb/table.hpp"

#include <algorithm>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {

Table::Table(std::string name, std::vector<ColumnDef> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {
  require_state(!columns_.empty(), "a table needs at least one column");
}

std::optional<std::size_t> Table::column_index(std::string_view name) const {
  const std::string lowered = strings::to_lower(name);
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (strings::to_lower(columns_[i].name) == lowered) return i;
  return std::nullopt;
}

Value Table::coerce(const Value& value, Type type) {
  if (value.is_null()) return value;
  switch (type) {
    case Type::kInt:
      if (value.type() == Type::kText) {
        char* end = nullptr;
        const std::string& text = value.as_text();
        const long long parsed = std::strtoll(text.c_str(), &end, 10);
        if (end != nullptr && *end == '\0') return Value(static_cast<std::int64_t>(parsed));
        return value;  // keep text if not numeric (lenient, like MySQL would warn)
      }
      return Value(value.as_int());
    case Type::kReal:
      if (value.type() == Type::kText) return value;
      return Value(value.as_real());
    case Type::kText:
      if (value.type() == Type::kText) return value;
      return Value(value.to_string());
    case Type::kNull: return value;
  }
  return value;
}

std::size_t Table::insert(Row row) {
  require_state(row.size() == columns_.size(),
                strings::cat("insert into ", name_, ": row width ", row.size(),
                             " != column count ", columns_.size()));
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (columns_[i].auto_increment && row[i].is_null()) {
      row[i] = Value(next_auto_++);
    } else {
      row[i] = coerce(row[i], columns_[i].type);
      if (columns_[i].auto_increment && !row[i].is_null())
        next_auto_ = std::max(next_auto_, row[i].as_int() + 1);
    }
  }
  rows_.push_back(std::move(row));
  return rows_.size() - 1;
}

void Table::erase_rows(const std::vector<std::size_t>& sorted_indexes) {
  for (auto it = sorted_indexes.rbegin(); it != sorted_indexes.rend(); ++it) {
    require_state(*it < rows_.size(), "erase_rows: index out of range");
    rows_.erase(rows_.begin() + static_cast<std::ptrdiff_t>(*it));
  }
}

}  // namespace rocks::sqldb
