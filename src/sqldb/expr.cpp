#include "sqldb/expr.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {

ExprPtr Expr::literal(Value value) {
  auto e = std::make_unique<Expr>();
  e->kind_ = Kind::kLiteral;
  e->value_ = std::move(value);
  return e;
}

ExprPtr Expr::column(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind_ = Kind::kColumn;
  e->table_ = std::move(table);
  e->column_ = std::move(column);
  return e;
}

ExprPtr Expr::unary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind_ = Kind::kUnary;
  e->unary_op_ = op;
  e->lhs_ = std::move(operand);
  return e;
}

ExprPtr Expr::binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind_ = Kind::kBinary;
  e->binary_op_ = op;
  e->lhs_ = std::move(lhs);
  e->rhs_ = std::move(rhs);
  return e;
}

ExprPtr Expr::in(ExprPtr needle, std::vector<ExprPtr> haystack, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind_ = Kind::kIn;
  e->lhs_ = std::move(needle);
  e->list_ = std::move(haystack);
  e->negated_ = negated;
  return e;
}

ExprPtr Expr::is_null(ExprPtr operand, bool negated) {
  auto e = std::make_unique<Expr>();
  e->kind_ = Kind::kIsNull;
  e->lhs_ = std::move(operand);
  e->negated_ = negated;
  return e;
}

namespace {

Value compare_result(const Value& lhs, const Value& rhs, BinaryOp op) {
  if (lhs.is_null() || rhs.is_null()) return Value::null();
  const int cmp = lhs.compare(rhs);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq: result = cmp == 0; break;
    case BinaryOp::kNe: result = cmp != 0; break;
    case BinaryOp::kLt: result = cmp < 0; break;
    case BinaryOp::kLe: result = cmp <= 0; break;
    case BinaryOp::kGt: result = cmp > 0; break;
    case BinaryOp::kGe: result = cmp >= 0; break;
    default: throw StateError("compare_result: not a comparison op");
  }
  return Value(std::int64_t{result});
}

Value arithmetic_result(const Value& lhs, const Value& rhs, BinaryOp op) {
  if (lhs.is_null() || rhs.is_null()) return Value::null();
  const bool integral = lhs.type() == Type::kInt && rhs.type() == Type::kInt;
  if (integral) {
    const std::int64_t a = lhs.as_int();
    const std::int64_t b = rhs.as_int();
    switch (op) {
      case BinaryOp::kAdd: return Value(a + b);
      case BinaryOp::kSub: return Value(a - b);
      case BinaryOp::kMul: return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Value::null();
        return Value(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Value::null();
        return Value(a % b);
      default: break;
    }
  } else {
    const double a = lhs.as_real();
    const double b = rhs.as_real();
    switch (op) {
      case BinaryOp::kAdd: return Value(a + b);
      case BinaryOp::kSub: return Value(a - b);
      case BinaryOp::kMul: return Value(a * b);
      case BinaryOp::kDiv:
        if (b == 0.0) return Value::null();
        return Value(a / b);
      case BinaryOp::kMod: return Value::null();
      default: break;
    }
  }
  throw StateError("arithmetic_result: not an arithmetic op");
}

}  // namespace

Value Expr::evaluate(const RowContext& row) const {
  switch (kind_) {
    case Kind::kLiteral: return value_;
    case Kind::kColumn: return row.lookup(table_, column_);
    case Kind::kUnary: {
      const Value v = lhs_->evaluate(row);
      if (unary_op_ == UnaryOp::kNot) {
        if (v.is_null()) return Value::null();
        return Value(std::int64_t{!v.truthy()});
      }
      if (v.is_null()) return Value::null();
      if (v.type() == Type::kReal) return Value(-v.as_real());
      return Value(-v.as_int());
    }
    case Kind::kBinary: {
      switch (binary_op_) {
        case BinaryOp::kAnd: {
          // Short-circuit with NULL handling: false AND x == false.
          const Value a = lhs_->evaluate(row);
          if (!a.is_null() && !a.truthy()) return Value(std::int64_t{0});
          const Value b = rhs_->evaluate(row);
          if (!b.is_null() && !b.truthy()) return Value(std::int64_t{0});
          if (a.is_null() || b.is_null()) return Value::null();
          return Value(std::int64_t{1});
        }
        case BinaryOp::kOr: {
          const Value a = lhs_->evaluate(row);
          if (!a.is_null() && a.truthy()) return Value(std::int64_t{1});
          const Value b = rhs_->evaluate(row);
          if (!b.is_null() && b.truthy()) return Value(std::int64_t{1});
          if (a.is_null() || b.is_null()) return Value::null();
          return Value(std::int64_t{0});
        }
        case BinaryOp::kLike: {
          const Value a = lhs_->evaluate(row);
          const Value b = rhs_->evaluate(row);
          if (a.is_null() || b.is_null()) return Value::null();
          return Value(std::int64_t{like_match(b.to_string(), a.to_string())});
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return compare_result(lhs_->evaluate(row), rhs_->evaluate(row), binary_op_);
        default: return arithmetic_result(lhs_->evaluate(row), rhs_->evaluate(row), binary_op_);
      }
    }
    case Kind::kIn: {
      const Value needle = lhs_->evaluate(row);
      if (needle.is_null()) return Value::null();
      bool found = false;
      for (const auto& candidate : list_) {
        const Value v = candidate->evaluate(row);
        if (!v.is_null() && needle.compare(v) == 0) {
          found = true;
          break;
        }
      }
      return Value(std::int64_t{negated_ ? !found : found});
    }
    case Kind::kIsNull: {
      const bool null = lhs_->evaluate(row).is_null();
      return Value(std::int64_t{negated_ ? !null : null});
    }
  }
  return Value::null();
}

std::string Expr::display_name() const {
  switch (kind_) {
    case Kind::kColumn:
      return table_.empty() ? column_ : strings::cat(table_, ".", column_);
    case Kind::kLiteral: return value_.to_string();
    default: return "expr";
  }
}

bool like_match(const std::string& pattern, const std::string& text) {
  // Translate SQL wildcards into the glob matcher's alphabet. Literal '*'
  // or '?' in the pattern must not act as glob wildcards, so match directly.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '_' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star = p++;
      star_t = t;
    } else if (star != std::string::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace rocks::sqldb
