// SQL tokenizer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rocks::sqldb {

enum class TokenKind {
  kKeywordOrIdent,  // unquoted word; keyword-ness decided by the parser
  kInt,
  kReal,
  kString,  // quoted literal, quotes stripped, escapes resolved
  kSymbol,  // punctuation / operators: ( ) , . = != <> < <= > >= + - * / %
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/keyword (original case), symbol, or string body
  std::int64_t int_value = 0;
  double real_value = 0.0;
  std::size_t offset = 0;  // byte offset, for error messages
};

/// Tokenizes a SQL statement; throws rocks::ParseError on bad input
/// (unterminated string, stray character).
[[nodiscard]] std::vector<Token> lex(std::string_view sql);

}  // namespace rocks::sqldb
