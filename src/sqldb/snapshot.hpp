// Snapshots for the durable configuration store (DESIGN.md §11).
//
// A snapshot is a full, checksummed serialization of the database: every
// table (schema, index definitions, AUTO_INCREMENT cursor, rows) plus the
// change-journal channel revisions, stamped with the last LSN it absorbs.
// Together with the WAL it forms the classic pair: recovery loads the
// newest valid snapshot, then replays WAL records with lsn > last_lsn.
//
// Publication protocol (crash-safe by construction):
//   1. serialize to `snapshot.tmp`            (crash: tmp ignored on recovery)
//   2. rename tmp -> `snapshot-<seq>.snap`    (atomic: old or new, never both)
//   3. truncate the WAL                       (crash before: replay is
//                                              idempotent-by-LSN, records at
//                                              or below last_lsn are skipped)
//   4. delete snapshots older than the last 2 (retention: a corrupt newest
//                                              snapshot falls back one step)
//
// On-disk format (little-endian, support/binary.hpp):
//   u32 magic "RKSN" | u32 version | u64 last_lsn | u64 seq
//   | u32 ntables  | table*   (str name, u32 ncols, coldef*, u32 nindexed,
//                              str*, i64 next_auto, u64 nrows, row*)
//   | u32 nchannels | (str name, u64 revision)*
//   | u32 crc32(everything above)
// Any truncation, bit flip, or trailing garbage fails the CRC or a bounds
// check and the snapshot is rejected as a whole — recovery then tries the
// next-older file.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sqldb/table.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::sqldb {

/// File names inside the durable-store directory.
inline constexpr std::string_view kWalFileName = "wal.log";
inline constexpr std::string_view kSnapshotTmpName = "snapshot.tmp";

/// One table's persistent state.
struct TableState {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> indexed;  // indexed column names
  std::int64_t next_auto = 1;
  std::vector<Row> rows;
};

struct SnapshotData {
  std::uint64_t last_lsn = 0;  // WAL records at or below this are absorbed
  std::uint64_t seq = 0;       // snapshot sequence number (file name carries it)
  std::vector<TableState> tables;
  std::vector<std::pair<std::string, std::uint64_t>> channels;  // journal revisions
};

[[nodiscard]] std::string encode_snapshot(const SnapshotData& snapshot);

/// Decodes and verifies a snapshot image; nullopt on any corruption (bad
/// magic, version, CRC, framing). Never throws — a damaged snapshot is an
/// expected crash/bit-rot artifact and recovery falls back to an older one.
[[nodiscard]] std::optional<SnapshotData> decode_snapshot(std::string_view bytes);

/// `snapshot-<seq>.snap`, zero-padded so lexicographic order == seq order.
[[nodiscard]] std::string snapshot_file_name(std::uint64_t seq);

/// Sequence number of a snapshot file name; nullopt for anything else.
[[nodiscard]] std::optional<std::uint64_t> parse_snapshot_file_name(std::string_view name);

/// Sequence numbers of every snapshot file in `dir`, ascending.
[[nodiscard]] std::vector<std::uint64_t> list_snapshots(const vfs::FileSystem& fs,
                                                        std::string_view dir);

}  // namespace rocks::sqldb
