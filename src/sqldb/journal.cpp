#include "sqldb/journal.hpp"

#include "support/strings.hpp"

namespace rocks::sqldb {

ChangeJournal::Channel& ChangeJournal::channel_locked(std::string_view name) {
  const auto it = channels_.find(strings::to_lower(name));
  if (it != channels_.end()) return it->second;
  return channels_.emplace(strings::to_lower(name), Channel{}).first->second;
}

void ChangeJournal::trim_locked(Channel& channel) {
  while (channel.log.size() > capacity_) {
    // The popped record's range is no longer reconstructible: cursors at or
    // before it must rescan.
    channel.floor = channel.log.front().revision;
    channel.log.pop_front();
  }
}

std::uint64_t ChangeJournal::record(std::string_view channel, ChangeOp op, Value pk) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Channel& state = channel_locked(channel);
  ++state.revision;
  if (pk.is_null()) {
    // No row identity: the delta cannot be applied by key, so poison the
    // range instead of logging an unusable record.
    state.floor = state.revision;
    state.log.clear();
  } else {
    state.log.push_back(ChangeRecord{op, std::move(pk), state.revision});
    trim_locked(state);
  }
  ++records_written_;
  return state.revision;
}

void ChangeJournal::truncate(std::string_view channel) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Channel& state = channel_locked(channel);
  ++state.revision;
  state.floor = state.revision;
  state.log.clear();
}

void ChangeJournal::touch(std::string_view channel) {
  truncate(channel);
  notify(channel);
}

std::uint64_t ChangeJournal::revision(std::string_view channel) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const auto it = channels_.find(strings::to_lower(channel));
  return it == channels_.end() ? 0 : it->second.revision;
}

std::uint64_t ChangeJournal::floor(std::string_view channel) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  const auto it = channels_.find(strings::to_lower(channel));
  return it == channels_.end() ? 0 : it->second.floor;
}

std::vector<std::pair<std::string, std::uint64_t>> ChangeJournal::channel_states() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(channels_.size());
  for (const auto& [name, channel] : channels_) out.emplace_back(name, channel.revision);
  return out;
}

void ChangeJournal::restore_channel(std::string_view channel, std::uint64_t revision) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  Channel& state = channel_locked(channel);
  state.revision = revision;
  state.floor = revision;
  state.log.clear();
}

ChangeDelta ChangeJournal::since(std::string_view channel, std::uint64_t revision) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  ChangeDelta delta;
  const auto it = channels_.find(strings::to_lower(channel));
  if (it == channels_.end()) return delta;  // never written: empty, at revision 0
  const Channel& state = it->second;
  delta.revision = state.revision;
  delta.floor = state.floor;
  if (revision >= state.revision) return delta;  // caller is current
  if (revision < state.floor) {
    delta.truncated = true;  // range fell out of the log (or was touched)
    return delta;
  }
  for (const ChangeRecord& record : state.log)
    if (record.revision > revision) delta.changes.push_back(record);
  return delta;
}

std::size_t ChangeJournal::subscribe(std::string_view channel, Callback callback) {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  const std::size_t id = next_subscription_++;
  subscribers_.emplace(
      id, Subscriber{strings::to_lower(channel),
                     std::make_shared<Callback>(std::move(callback))});
  return id;
}

void ChangeJournal::unsubscribe(std::size_t id) {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  subscribers_.erase(id);
}

void ChangeJournal::notify(std::string_view channel) {
  const std::string lowered = strings::to_lower(channel);
  const std::uint64_t current = revision(lowered);
  // Snapshot matching callbacks, then invoke outside both locks so a
  // callback may re-enter the journal (or the Database that owns it).
  std::vector<std::shared_ptr<Callback>> matched;
  {
    std::lock_guard<std::mutex> lock(subscriber_mutex_);
    for (const auto& [id, subscriber] : subscribers_)
      if (subscriber.channel == kAllChannels || subscriber.channel == lowered)
        matched.push_back(subscriber.callback);
    notifications_sent_ += matched.size();
  }
  for (const auto& callback : matched) (*callback)(lowered, current);
}

void ChangeJournal::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  capacity_ = capacity;
  for (auto& [name, channel] : channels_) trim_locked(channel);
}

std::size_t ChangeJournal::capacity() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return capacity_;
}

std::uint64_t ChangeJournal::records_written() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return records_written_;
}

std::uint64_t ChangeJournal::notifications_sent() const {
  std::lock_guard<std::mutex> lock(subscriber_mutex_);
  return notifications_sent_;
}

}  // namespace rocks::sqldb
