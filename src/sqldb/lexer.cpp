#include "sqldb/lexer.hpp"

#include <cctype>
#include <cstdlib>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {

std::vector<Token> lex(std::string_view sql) {
  std::vector<Token> out;
  std::size_t i = 0;
  const auto fail = [&](const std::string& what) {
    throw ParseError(strings::cat("SQL lex error at offset ", i, ": ", what));
  };

  while (i < sql.size()) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < sql.size() &&
             (std::isalnum(static_cast<unsigned char>(sql[i])) || sql[i] == '_'))
        ++i;
      token.kind = TokenKind::kKeywordOrIdent;
      token.text = std::string(sql.substr(start, i - start));
      out.push_back(std::move(token));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_real = false;
      while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < sql.size() && sql[i] == '.' && i + 1 < sql.size() &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_real = true;
        ++i;
        while (i < sql.size() && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      const std::string text(sql.substr(start, i - start));
      if (is_real) {
        token.kind = TokenKind::kReal;
        token.real_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.kind = TokenKind::kInt;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      token.text = text;
      out.push_back(std::move(token));
      continue;
    }

    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string body;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\\' && i + 1 < sql.size()) {
          body += sql[i + 1];
          i += 2;
          continue;
        }
        if (sql[i] == quote) {
          if (i + 1 < sql.size() && sql[i + 1] == quote) {  // doubled quote escape
            body += quote;
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        body += sql[i++];
      }
      if (!closed) fail("unterminated string literal");
      token.kind = TokenKind::kString;
      token.text = std::move(body);
      out.push_back(std::move(token));
      continue;
    }

    // Multi-character operators first.
    const std::string_view rest = sql.substr(i);
    for (std::string_view op : {"<=", ">=", "!=", "<>"}) {
      if (strings::starts_with(rest, op)) {
        token.kind = TokenKind::kSymbol;
        token.text = std::string(op);
        out.push_back(std::move(token));
        i += op.size();
        goto next;
      }
    }
    if (std::string_view("(),.=<>+-*/%;").find(c) != std::string_view::npos) {
      token.kind = TokenKind::kSymbol;
      token.text = std::string(1, c);
      out.push_back(std::move(token));
      ++i;
      continue;
    }
    fail(strings::cat("unexpected character '", std::string(1, c), "'"));
  next:;
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = sql.size();
  out.push_back(std::move(end));
  return out;
}

}  // namespace rocks::sqldb
