// Multi-version concurrency control primitives (DESIGN.md §13).
//
// The engine used to serialize the world through one std::shared_mutex:
// every insert-ethers burst stalled all kickstart generation, and
// snapshot() held the cluster still while it serialized. These primitives
// replace the reader side of that lock with snapshot-isolation reads:
//
//   - Every row lives in a RowSlot holding a newest-first chain of
//     RowVersions. A version is visible at read timestamp `ts` iff
//     begin_ts <= ts < end_ts; the first chain entry with begin_ts <= ts
//     decides (chains are ordered by begin_ts descending).
//   - Commit timestamps ride the WAL LSN sequence: a statement's versions
//     are stamped with the LSN of its commit-marked record, so "the state
//     at ts" and "the state after replaying LSNs <= ts" are the same thing
//     by construction.
//   - Readers pin a timestamp in the ReaderRegistry; writers never block
//     them. Reclamation (Table::reclaim) frees superseded versions only
//     once the registry proves no live read view can reach them.
//
// Reclamation safety has two independent gates:
//   1. Timestamp horizon: a version chain suffix whose end_ts <= min
//      active read ts is invisible to every live and future reader, and —
//      because the suffix's predecessor has begin_ts == suffix head's
//      end_ts <= every active ts — no reader's chain walk ever *reaches*
//      the suffix (the walk stops at the first begin_ts <= ts). Such
//      suffixes are unlinked and freed immediately.
//   2. Registration epochs: a chain whose *head* is dead (deleted row) can
//      still have its fields loaded by a reader that fetched the head
//      pointer just before the unlink. Dead heads are therefore unlinked
//      immediately but freed lazily: each pin records a registration
//      number from a global counter, the unlink records the counter *after*
//      nulling the head, and the limbo entry is freed only when every
//      active pin's registration number is >= that stamp — at which point
//      every live reader provably loaded the head after it became null.
//      (All participating loads/stores are seq_cst, so "after" in the
//      coherence order really means "observes the null".)
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "sqldb/value.hpp"

namespace rocks::sqldb {

using Row = std::vector<Value>;

/// end_ts of a live version / drop_ts of a live table: visible to every ts.
inline constexpr std::uint64_t kTsInfinity = ~std::uint64_t{0};
/// begin_ts of a version created by the statement in flight: greater than
/// any real timestamp, so invisible to every reader until commit stamps it.
inline constexpr std::uint64_t kTsUncommitted = ~std::uint64_t{0} - 1;

/// One immutable state of one row. `data` never changes after the version
/// is published (UPDATE creates a new version; the old in-place set_cell
/// path is gone), which is what makes reader access safe without locks.
struct RowVersion {
  Row data;
  std::atomic<std::uint64_t> begin_ts{kTsUncommitted};
  std::atomic<std::uint64_t> end_ts{kTsInfinity};
  std::atomic<RowVersion*> older{nullptr};  // next-oldest version, or null
};

/// One row identity. Slots are allocated in insert order and never reused,
/// so enumerating slots in id order reproduces the historical row order the
/// old contiguous rows_ vector had — the invariant behind dump_state()
/// byte-identity and scan-identical SELECT emission.
struct RowSlot {
  std::atomic<RowVersion*> head{nullptr};  // newest version; null = never
                                           // written or fully reclaimed
};

/// Fixed-size slot block. Blocks are never reallocated once published, so
/// a reader iterating a block never races slot *storage* growth.
struct VersionChunk {
  static constexpr std::size_t kSize = 256;
  std::array<RowSlot, kSize> slots;
};

/// The table's slot array: an immutable vector of shared chunk pointers.
/// Growth publishes a new directory (copying the chunk pointer vector and
/// appending a fresh chunk); old directories stay valid for readers that
/// loaded them.
struct SlotDirectory {
  std::vector<std::shared_ptr<VersionChunk>> chunks;
  [[nodiscard]] std::size_t capacity() const { return chunks.size() * VersionChunk::kSize; }
  [[nodiscard]] RowSlot& slot(std::uint32_t id) const {
    return chunks[id / VersionChunk::kSize]->slots[id % VersionChunk::kSize];
  }
};

/// Tracks every live read view so reclamation can compute the oldest
/// timestamp (and oldest registration number) still in use. Pins are
/// lock-free through a fixed array of cache-line-padded slots; the rare
/// overflow past kSlots concurrent views falls back to a mutexed map.
class ReaderRegistry {
 public:
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        registry_ = other.registry_;
        ts_ = other.ts_;
        slot_ = other.slot_;
        reg_ = other.reg_;
        other.registry_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { release(); }

    /// The pinned read timestamp. Valid only while the pin is held.
    [[nodiscard]] std::uint64_t ts() const { return ts_; }
    [[nodiscard]] explicit operator bool() const { return registry_ != nullptr; }
    void release();

   private:
    friend class ReaderRegistry;
    ReaderRegistry* registry_ = nullptr;
    std::uint64_t ts_ = 0;
    int slot_ = -1;  // -1: overflow entry keyed by reg_
    std::uint64_t reg_ = 0;
  };

  /// Registers a read view at the current commit timestamp. The returned
  /// pin holds the view's ts and keeps reclamation from freeing anything
  /// the view can reach until released. Protocol (all seq_cst): claim a
  /// slot with the kRegistering sentinel, take a registration number, load
  /// commit_ts, publish the ts — so reclamation either sees the final ts
  /// or the sentinel (and then skips the round), never a stale gap.
  [[nodiscard]] Pin pin(const std::atomic<std::uint64_t>& commit_ts);

  struct Horizon {
    std::uint64_t ts = 0;    // min active read ts (fallback when idle)
    std::uint64_t reg = 0;   // min active registration number (counter when idle)
    std::size_t active = 0;  // live read views observed
  };
  /// The reclamation horizon. `fallback_ts` (the current commit ts) is
  /// returned when no view is active. A ts of 0 means a pin was observed
  /// mid-registration — the caller must skip this reclamation round.
  [[nodiscard]] Horizon horizon(std::uint64_t fallback_ts) const;

  /// Live read views right now (status/observability; racy by nature).
  [[nodiscard]] std::size_t active_views() const;
  /// Total pins ever taken; also the next registration number to issue.
  [[nodiscard]] std::uint64_t registration_sequence() const {
    return reg_counter_.load(std::memory_order_seq_cst);
  }

 private:
  static constexpr std::size_t kSlots = 128;
  static constexpr std::uint64_t kFree = kTsInfinity;
  static constexpr std::uint64_t kRegistering = kTsUncommitted;
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> ts{kFree};
    std::atomic<std::uint64_t> reg{0};
  };
  std::array<Slot, kSlots> slots_;
  std::atomic<std::uint64_t> reg_counter_{1};
  mutable std::mutex overflow_mutex_;
  std::map<std::uint64_t, std::uint64_t> overflow_;  // registration -> ts
};

}  // namespace rocks::sqldb
