#include "sqldb/mvcc.hpp"

namespace rocks::sqldb {

void ReaderRegistry::Pin::release() {
  if (registry_ == nullptr) return;
  if (slot_ >= 0) {
    registry_->slots_[static_cast<std::size_t>(slot_)].ts.store(kFree,
                                                                std::memory_order_seq_cst);
  } else {
    std::lock_guard<std::mutex> lock(registry_->overflow_mutex_);
    registry_->overflow_.erase(reg_);
  }
  registry_ = nullptr;
}

ReaderRegistry::Pin ReaderRegistry::pin(const std::atomic<std::uint64_t>& commit_ts) {
  Pin out;
  out.registry_ = this;
  for (std::size_t i = 0; i < kSlots; ++i) {
    std::uint64_t expected = kFree;
    // Claim first, then read the commit ts: reclamation that scans the
    // registry between the claim and the final publish sees kRegistering
    // and backs off, so the window where our ts is undeclared is safe.
    if (slots_[i].ts.compare_exchange_strong(expected, kRegistering,
                                             std::memory_order_seq_cst)) {
      out.slot_ = static_cast<int>(i);
      out.reg_ = reg_counter_.fetch_add(1, std::memory_order_seq_cst);
      slots_[i].reg.store(out.reg_, std::memory_order_seq_cst);
      out.ts_ = commit_ts.load(std::memory_order_seq_cst);
      slots_[i].ts.store(out.ts_, std::memory_order_seq_cst);
      return out;
    }
  }
  // Every slot taken: fall back to the mutexed overflow map. The horizon
  // scan takes the same mutex, so a pin is either fully registered before
  // the scan or takes its registration number after it — both safe.
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  out.slot_ = -1;
  out.reg_ = reg_counter_.fetch_add(1, std::memory_order_seq_cst);
  out.ts_ = commit_ts.load(std::memory_order_seq_cst);
  overflow_.emplace(out.reg_, out.ts_);
  return out;
}

ReaderRegistry::Horizon ReaderRegistry::horizon(std::uint64_t fallback_ts) const {
  Horizon h;
  h.ts = fallback_ts;
  h.reg = reg_counter_.load(std::memory_order_seq_cst);
  for (const Slot& slot : slots_) {
    const std::uint64_t ts = slot.ts.load(std::memory_order_seq_cst);
    if (ts == kFree) continue;
    if (ts == kRegistering) return {0, 0, h.active + 1};  // back off this round
    h.ts = std::min(h.ts, ts);
    h.reg = std::min(h.reg, slot.reg.load(std::memory_order_seq_cst));
    ++h.active;
  }
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  for (const auto& [reg, ts] : overflow_) {
    h.ts = std::min(h.ts, ts);
    h.reg = std::min(h.reg, reg);
    ++h.active;
  }
  return h;
}

std::size_t ReaderRegistry::active_views() const {
  std::size_t active = 0;
  for (const Slot& slot : slots_)
    if (slot.ts.load(std::memory_order_relaxed) != kFree) ++active;
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  return active + overflow_.size();
}

}  // namespace rocks::sqldb
