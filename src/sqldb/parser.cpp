#include "sqldb/parser.hpp"

#include "sqldb/lexer.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::sqldb {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view sql) : tokens_(lex(sql)) {}

  Statement parse() {
    Statement stmt = parse_statement_body();
    accept_symbol(";");
    expect_end();
    return stmt;
  }

 private:
  // --- token helpers -------------------------------------------------------
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }

  const Token& advance() { return tokens_[pos_++]; }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError(strings::cat("SQL parse error near offset ", peek().offset, ": ", what));
  }

  [[nodiscard]] bool peek_keyword(std::string_view kw) const {
    return peek().kind == TokenKind::kKeywordOrIdent &&
           strings::to_lower(peek().text) == strings::to_lower(kw);
  }

  bool accept_keyword(std::string_view kw) {
    if (!peek_keyword(kw)) return false;
    ++pos_;
    return true;
  }

  void expect_keyword(std::string_view kw) {
    if (!accept_keyword(kw)) fail(strings::cat("expected ", std::string(kw)));
  }

  [[nodiscard]] bool peek_symbol(std::string_view sym) const {
    return peek().kind == TokenKind::kSymbol && peek().text == sym;
  }

  bool accept_symbol(std::string_view sym) {
    if (!peek_symbol(sym)) return false;
    ++pos_;
    return true;
  }

  void expect_symbol(std::string_view sym) {
    if (!accept_symbol(sym)) fail(strings::cat("expected '", std::string(sym), "'"));
  }

  std::string expect_identifier(std::string_view what) {
    if (peek().kind != TokenKind::kKeywordOrIdent)
      fail(strings::cat("expected ", std::string(what)));
    return advance().text;
  }

  void expect_end() {
    if (peek().kind != TokenKind::kEnd) fail("unexpected trailing tokens");
  }

  [[nodiscard]] static bool is_reserved(std::string_view word) {
    static const char* kReserved[] = {
        "select", "from",  "where", "order", "by",     "limit",  "insert", "into",
        "values", "update", "set",  "delete", "create", "table",  "drop",   "join",
        "inner",  "on",    "and",   "or",    "not",    "like",   "in",     "is",
        "null",   "asc",   "desc",  "as",    "if",     "exists", "primary", "key",
        "auto_increment",
    };
    const std::string lowered = strings::to_lower(word);
    for (const char* kw : kReserved)
      if (lowered == kw) return true;
    return false;
  }

  // --- statements ----------------------------------------------------------
  Statement parse_statement_body() {
    if (accept_keyword("select")) return parse_select();
    if (accept_keyword("insert")) return parse_insert();
    if (accept_keyword("update")) return parse_update();
    if (accept_keyword("delete")) return parse_delete();
    if (accept_keyword("create")) return parse_create();
    if (accept_keyword("drop")) return parse_drop();
    fail("expected SELECT, INSERT, UPDATE, DELETE, CREATE, or DROP");
  }

  SelectStmt parse_select() {
    SelectStmt stmt;
    // Select list.
    do {
      SelectItem item;
      if (accept_symbol("*")) {
        item.star = true;
      } else if (peek().kind == TokenKind::kKeywordOrIdent && !is_reserved(peek().text) &&
                 tokens_[pos_ + 1].kind == TokenKind::kSymbol && tokens_[pos_ + 1].text == "." &&
                 tokens_[pos_ + 2].kind == TokenKind::kSymbol && tokens_[pos_ + 2].text == "*") {
        item.star = true;
        item.star_table = advance().text;
        pos_ += 2;  // ". *"
      } else {
        item.expr = parse_expr();
        if (accept_keyword("as")) item.alias = expect_identifier("alias");
      }
      stmt.items.push_back(std::move(item));
    } while (accept_symbol(","));

    expect_keyword("from");
    do {
      stmt.from.push_back(parse_table_ref());
    } while (accept_symbol(","));

    // JOIN ... ON desugars into the FROM list + WHERE conjuncts.
    ExprPtr join_filter;
    while (peek_keyword("join") || peek_keyword("inner")) {
      accept_keyword("inner");
      expect_keyword("join");
      stmt.from.push_back(parse_table_ref());
      expect_keyword("on");
      ExprPtr condition = parse_expr();
      join_filter = join_filter
                        ? Expr::binary(BinaryOp::kAnd, std::move(join_filter),
                                       std::move(condition))
                        : std::move(condition);
    }

    if (accept_keyword("where")) stmt.where = parse_expr();
    if (join_filter) {
      stmt.where = stmt.where ? Expr::binary(BinaryOp::kAnd, std::move(join_filter),
                                             std::move(stmt.where))
                              : std::move(join_filter);
    }

    if (accept_keyword("order")) {
      expect_keyword("by");
      do {
        OrderKey key;
        key.expr = parse_expr();
        if (accept_keyword("desc"))
          key.descending = true;
        else
          accept_keyword("asc");
        stmt.order_by.push_back(std::move(key));
      } while (accept_symbol(","));
    }

    if (accept_keyword("limit")) {
      if (peek().kind != TokenKind::kInt) fail("expected integer after LIMIT");
      stmt.limit = static_cast<std::size_t>(advance().int_value);
    }
    return stmt;
  }

  TableRef parse_table_ref() {
    TableRef ref;
    ref.table = expect_identifier("table name");
    if (peek().kind == TokenKind::kKeywordOrIdent && !is_reserved(peek().text))
      ref.alias = advance().text;
    if (ref.alias.empty()) ref.alias = ref.table;
    return ref;
  }

  InsertStmt parse_insert() {
    InsertStmt stmt;
    expect_keyword("into");
    stmt.table = expect_identifier("table name");
    if (accept_symbol("(")) {
      do {
        stmt.columns.push_back(expect_identifier("column name"));
      } while (accept_symbol(","));
      expect_symbol(")");
    }
    expect_keyword("values");
    do {
      expect_symbol("(");
      std::vector<ExprPtr> row;
      do {
        row.push_back(parse_expr());
      } while (accept_symbol(","));
      expect_symbol(")");
      stmt.rows.push_back(std::move(row));
    } while (accept_symbol(","));
    return stmt;
  }

  UpdateStmt parse_update() {
    UpdateStmt stmt;
    stmt.table = expect_identifier("table name");
    expect_keyword("set");
    do {
      std::string column = expect_identifier("column name");
      expect_symbol("=");
      stmt.assignments.emplace_back(std::move(column), parse_expr());
    } while (accept_symbol(","));
    if (accept_keyword("where")) stmt.where = parse_expr();
    return stmt;
  }

  DeleteStmt parse_delete() {
    DeleteStmt stmt;
    expect_keyword("from");
    stmt.table = expect_identifier("table name");
    if (accept_keyword("where")) stmt.where = parse_expr();
    return stmt;
  }

  Statement parse_create() {
    if (accept_keyword("index")) return parse_create_index();
    expect_keyword("table");
    CreateTableStmt stmt;
    if (accept_keyword("if")) {
      expect_keyword("not");
      expect_keyword("exists");
      stmt.if_not_exists = true;
    }
    stmt.table = expect_identifier("table name");
    expect_symbol("(");
    do {
      ColumnDef col;
      col.name = expect_identifier("column name");
      const std::string type = strings::to_lower(expect_identifier("column type"));
      if (type == "int" || type == "integer" || type == "bigint") {
        col.type = Type::kInt;
      } else if (type == "real" || type == "double" || type == "float") {
        col.type = Type::kReal;
      } else if (type == "text" || type == "varchar" || type == "char") {
        col.type = Type::kText;
      } else {
        fail(strings::cat("unknown column type '", type, "'"));
      }
      if (accept_symbol("(")) {  // VARCHAR(64) style size, ignored
        if (peek().kind != TokenKind::kInt) fail("expected size in type");
        advance();
        expect_symbol(")");
      }
      while (true) {
        if (accept_keyword("primary")) {
          expect_keyword("key");
          col.primary_key = true;
        } else if (accept_keyword("auto_increment")) {
          col.auto_increment = true;
        } else {
          break;
        }
      }
      stmt.columns.push_back(std::move(col));
    } while (accept_symbol(","));
    expect_symbol(")");
    return stmt;
  }

  CreateIndexStmt parse_create_index() {
    CreateIndexStmt stmt;
    if (accept_keyword("if")) {
      expect_keyword("not");
      expect_keyword("exists");
      stmt.if_not_exists = true;
    }
    stmt.name = expect_identifier("index name");
    expect_keyword("on");
    stmt.table = expect_identifier("table name");
    expect_symbol("(");
    stmt.column = expect_identifier("column name");
    expect_symbol(")");
    return stmt;
  }

  DropTableStmt parse_drop() {
    expect_keyword("table");
    DropTableStmt stmt;
    if (accept_keyword("if")) {
      expect_keyword("exists");
      stmt.if_exists = true;
    }
    stmt.table = expect_identifier("table name");
    return stmt;
  }

  // --- expressions (precedence climbing) -----------------------------------
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept_keyword("or")) lhs = Expr::binary(BinaryOp::kOr, std::move(lhs), parse_and());
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (accept_keyword("and")) lhs = Expr::binary(BinaryOp::kAnd, std::move(lhs), parse_not());
    return lhs;
  }

  ExprPtr parse_not() {
    if (accept_keyword("not")) return Expr::unary(UnaryOp::kNot, parse_not());
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    while (true) {
      if (accept_symbol("=")) {
        lhs = Expr::binary(BinaryOp::kEq, std::move(lhs), parse_additive());
      } else if (accept_symbol("!=") || accept_symbol("<>")) {
        lhs = Expr::binary(BinaryOp::kNe, std::move(lhs), parse_additive());
      } else if (accept_symbol("<=")) {
        lhs = Expr::binary(BinaryOp::kLe, std::move(lhs), parse_additive());
      } else if (accept_symbol(">=")) {
        lhs = Expr::binary(BinaryOp::kGe, std::move(lhs), parse_additive());
      } else if (accept_symbol("<")) {
        lhs = Expr::binary(BinaryOp::kLt, std::move(lhs), parse_additive());
      } else if (accept_symbol(">")) {
        lhs = Expr::binary(BinaryOp::kGt, std::move(lhs), parse_additive());
      } else if (peek_keyword("like")) {
        advance();
        lhs = Expr::binary(BinaryOp::kLike, std::move(lhs), parse_additive());
      } else if (peek_keyword("not") && tokens_[pos_ + 1].kind == TokenKind::kKeywordOrIdent &&
                 strings::to_lower(tokens_[pos_ + 1].text) == "in") {
        pos_ += 2;
        lhs = parse_in_tail(std::move(lhs), /*negated=*/true);
      } else if (peek_keyword("not") && tokens_[pos_ + 1].kind == TokenKind::kKeywordOrIdent &&
                 strings::to_lower(tokens_[pos_ + 1].text) == "like") {
        pos_ += 2;
        lhs = Expr::unary(UnaryOp::kNot,
                          Expr::binary(BinaryOp::kLike, std::move(lhs), parse_additive()));
      } else if (peek_keyword("in")) {
        advance();
        lhs = parse_in_tail(std::move(lhs), /*negated=*/false);
      } else if (peek_keyword("is")) {
        advance();
        const bool negated = accept_keyword("not");
        expect_keyword("null");
        lhs = Expr::is_null(std::move(lhs), negated);
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_in_tail(ExprPtr needle, bool negated) {
    expect_symbol("(");
    std::vector<ExprPtr> list;
    do {
      list.push_back(parse_expr());
    } while (accept_symbol(","));
    expect_symbol(")");
    return Expr::in(std::move(needle), std::move(list), negated);
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    while (true) {
      if (accept_symbol("+")) {
        lhs = Expr::binary(BinaryOp::kAdd, std::move(lhs), parse_multiplicative());
      } else if (accept_symbol("-")) {
        lhs = Expr::binary(BinaryOp::kSub, std::move(lhs), parse_multiplicative());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    while (true) {
      if (accept_symbol("*")) {
        lhs = Expr::binary(BinaryOp::kMul, std::move(lhs), parse_unary());
      } else if (accept_symbol("/")) {
        lhs = Expr::binary(BinaryOp::kDiv, std::move(lhs), parse_unary());
      } else if (accept_symbol("%")) {
        lhs = Expr::binary(BinaryOp::kMod, std::move(lhs), parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprPtr parse_unary() {
    if (accept_symbol("-")) return Expr::unary(UnaryOp::kNeg, parse_unary());
    if (accept_symbol("+")) return parse_unary();
    return parse_primary();
  }

  ExprPtr parse_primary() {
    const Token& token = peek();
    switch (token.kind) {
      case TokenKind::kInt: {
        advance();
        return Expr::literal(Value(token.int_value));
      }
      case TokenKind::kReal: {
        advance();
        return Expr::literal(Value(token.real_value));
      }
      case TokenKind::kString: {
        advance();
        return Expr::literal(Value(token.text));
      }
      case TokenKind::kSymbol:
        if (token.text == "(") {
          advance();
          ExprPtr inner = parse_expr();
          expect_symbol(")");
          return inner;
        }
        fail(strings::cat("unexpected symbol '", token.text, "'"));
      case TokenKind::kKeywordOrIdent: {
        if (strings::to_lower(token.text) == "null") {
          advance();
          return Expr::literal(Value::null());
        }
        if (is_reserved(token.text))
          fail(strings::cat("unexpected keyword '", token.text, "'"));
        std::string first = advance().text;
        if (accept_symbol(".")) {
          std::string second = expect_identifier("column name");
          return Expr::column(std::move(first), std::move(second));
        }
        return Expr::column("", std::move(first));
      }
      case TokenKind::kEnd: fail("unexpected end of statement");
    }
    fail("unexpected token");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Statement parse_statement(std::string_view sql) { return Parser(sql).parse(); }

}  // namespace rocks::sqldb
