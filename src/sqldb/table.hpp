// Table storage for the mini SQL engine.
//
// Besides the row store, a table can carry per-column hash indexes (built
// automatically for PRIMARY KEY columns, or explicitly via CREATE INDEX /
// create_index()). The engine's planner probes them to answer equality
// predicates without scanning; they are kept consistent across INSERT,
// UPDATE (set_cell) and DELETE (erase_rows).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sqldb/value.hpp"

namespace rocks::sqldb {

struct ColumnDef {
  std::string name;
  Type type = Type::kText;
  bool primary_key = false;
  bool auto_increment = false;
};

using Row = std::vector<Value>;

class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of a column by (case-insensitive) name; nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> column_index(std::string_view name) const;

  /// Index of the PRIMARY KEY column, if the table declares one. The change
  /// journal uses it to stamp row identity onto change records.
  [[nodiscard]] std::optional<std::size_t> primary_key_column() const;

  /// Inserts a full-width row; AUTO_INCREMENT columns left NULL are
  /// assigned the next sequence value. Values are coerced to column types
  /// (int text -> int, etc.). Returns the row's index.
  std::size_t insert(Row row);

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Overwrites one cell, keeping the hash indexes in sync. This is the
  /// engine's UPDATE path; values are stored as given (no type coercion,
  /// matching UPDATE semantics).
  void set_cell(std::size_t row, std::size_t column, Value value);

  /// Removes rows whose indexes appear in `sorted_indexes` (ascending).
  void erase_rows(const std::vector<std::size_t>& sorted_indexes);

  // --- hash indexes --------------------------------------------------------
  /// Builds a hash index over `column` (idempotent). Throws LookupError on
  /// an unknown column. PRIMARY KEY columns are indexed automatically.
  void create_index(std::string_view column);
  [[nodiscard]] bool has_index_on(std::size_t column) const;
  /// Names of every indexed column (introspection/tests).
  [[nodiscard]] std::vector<std::string> indexed_columns() const;
  /// Row indexes whose `column` equals `key`, in ascending row order —
  /// exactly the rows a full scan with `column = key` would visit. Requires
  /// has_index_on(column). A NULL key matches nothing (SQL '=' semantics).
  [[nodiscard]] std::vector<std::size_t> probe_index(std::size_t column, const Value& key) const;

  // --- durability hooks (DESIGN.md §11) ------------------------------------
  /// The AUTO_INCREMENT sequence cursor. Snapshots persist it and recovery
  /// restores it, because it is not derivable from the surviving rows (the
  /// highest-id row may have been deleted).
  [[nodiscard]] std::int64_t next_auto() const { return next_auto_; }
  void set_next_auto(std::int64_t next) { next_auto_ = next; }

  /// Appends a snapshot row verbatim — no coercion, no AUTO_INCREMENT
  /// assignment. insert() would be wrong here: set_cell stores UPDATE
  /// values as given, so a live row may hold a value coercion would alter,
  /// and recovery must reproduce memory byte-for-byte. Returns the index.
  std::size_t restore_row(Row row);

 private:
  struct HashIndex {
    std::size_t column = 0;
    // value -> row indexes holding it (unsorted; probe_index sorts a copy).
    std::unordered_map<Value, std::vector<std::size_t>, ValueHash, ValueEqual> buckets;
  };

  static Value coerce(const Value& value, Type type);
  void index_row(HashIndex& index, std::size_t row);
  void rebuild_indexes();

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<Row> rows_;
  std::vector<HashIndex> indexes_;
  std::int64_t next_auto_ = 1;
};

}  // namespace rocks::sqldb
