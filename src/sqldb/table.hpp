// Table storage for the mini SQL engine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/value.hpp"

namespace rocks::sqldb {

struct ColumnDef {
  std::string name;
  Type type = Type::kText;
  bool primary_key = false;
  bool auto_increment = false;
};

using Row = std::vector<Value>;

class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of a column by (case-insensitive) name; nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> column_index(std::string_view name) const;

  /// Inserts a full-width row; AUTO_INCREMENT columns left NULL are
  /// assigned the next sequence value. Values are coerced to column types
  /// (int text -> int, etc.). Returns the row's index.
  std::size_t insert(Row row);

  [[nodiscard]] const std::vector<Row>& rows() const { return rows_; }
  [[nodiscard]] std::vector<Row>& rows() { return rows_; }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Removes rows whose indexes appear in `sorted_indexes` (ascending).
  void erase_rows(const std::vector<std::size_t>& sorted_indexes);

 private:
  static Value coerce(const Value& value, Type type);

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<Row> rows_;
  std::int64_t next_auto_ = 1;
};

}  // namespace rocks::sqldb
