// Table storage for the mini SQL engine — multi-versioned (DESIGN.md §13).
//
// Rows live in append-only slots holding newest-first version chains
// (sqldb/mvcc.hpp). The writer side — insert/update_row/erase_rows, index
// maintenance, commit stamping, reclamation — is serialized by the
// Database's exclusive lock exactly as before. The reader side is new:
// Table::Reader evaluates a point-in-time view at a commit timestamp
// without any lock, against storage the writer only ever grows or
// atomically republishes.
//
// Two invariants carry the old engine's external contracts:
//
//   1. Slot order == historical row order. Inserts append slots, deletes
//      remove positions from the live list without reordering, and slots
//      are never reused — so enumerating slots ascending reproduces the
//      row order the old contiguous rows_ vector had, keeping SELECT scan
//      emission, probe_rows ordering, and dump_state() byte-identical.
//   2. The live list (position -> slot) IS the old row indexing. WAL
//      records address rows positionally (row_index / row_indexes);
//      live_row(i) resolves those positions against the current state, so
//      replay applies old logs bit-for-bit.
//
// Hash indexes are per-column bucket arrays of (key, slot) entries built
// over *all* versions and never pruned in place: a probe may surface
// slots whose visible row no longer carries the key (stale entries, or a
// version invisible at the reader's ts), so every probe re-checks the
// visible row's key — the same "index consumes the conjunct" semantics
// the planner always had. Arrays are republished wholesale on growth or
// post-reclamation staleness; superseded arrays and slot directories are
// retained until the table dies (bounded by a geometric series), which is
// what lets readers hold raw pointers with no refcount traffic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/mvcc.hpp"
#include "sqldb/value.hpp"

namespace rocks::sqldb {

struct ColumnDef {
  std::string name;
  Type type = Type::kText;
  bool primary_key = false;
  bool auto_increment = false;
};

class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);
  ~Table();
  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of a column by (case-insensitive) name; nullopt when unknown.
  [[nodiscard]] std::optional<std::size_t> column_index(std::string_view name) const;

  /// Index of the PRIMARY KEY column, if the table declares one. The change
  /// journal uses it to stamp row identity onto change records.
  [[nodiscard]] std::optional<std::size_t> primary_key_column() const;

  // --- writer side (requires the Database's exclusive lock) ----------------

  /// Inserts a full-width row; AUTO_INCREMENT columns left NULL are
  /// assigned the next sequence value. Values are coerced to column types
  /// (int text -> int, etc.). The new version is uncommitted (invisible to
  /// every reader) until commit_pending() stamps it. Returns the row's
  /// live position.
  std::size_t insert(Row row);

  /// Appends a snapshot row verbatim — no coercion, no AUTO_INCREMENT
  /// assignment — already committed (begin_ts 0, the base state every read
  /// timestamp sees). insert() would be wrong here: update_row stores
  /// UPDATE values as given, so a live row may hold a value coercion would
  /// alter, and recovery must reproduce memory byte-for-byte.
  std::size_t restore_row(Row row);

  /// The engine's UPDATE path: publishes a new version of the row at
  /// `position` with `cells` (column, value) overwrites applied. Values are
  /// stored as given (no coercion, matching UPDATE semantics). The old
  /// version stays visible to readers until the commit stamp retires it.
  void update_row(std::size_t position, const std::vector<std::pair<std::size_t, Value>>& cells);

  /// Removes the rows at `sorted_positions` (ascending) from the live set.
  /// Their final versions stay visible to pinned readers until stamped and
  /// reclaimed. Surviving rows keep their relative order (invariant 1).
  void erase_rows(const std::vector<std::size_t>& sorted_positions);

  /// Current committed+pending row of a live position (WAL replay and the
  /// UPDATE/DELETE scans address rows positionally).
  [[nodiscard]] const Row& live_row(std::size_t position) const;
  /// Writer-exact live row count.
  [[nodiscard]] std::size_t live_size() const { return live_.size(); }

  /// Writer-side index probe: the live positions whose *current* row has
  /// `column` == `key`, ascending — exactly the rows the UPDATE/DELETE scan
  /// with `column = key` would visit, in the same order. Stale entries
  /// (superseded keys, dead slots) are filtered by re-checking the current
  /// row, like Reader::probe_rows. Requires an index on the column
  /// (StateError otherwise); a NULL key matches nothing.
  [[nodiscard]] std::vector<std::size_t> probe_positions(std::size_t column,
                                                         const Value& key) const;

  /// Stamps every version this statement created (begin_ts) or superseded
  /// (end_ts) with the statement's commit timestamp and queues superseded
  /// versions for reclamation. Called once per committed statement — also
  /// on the partial-failure path, since this engine has no rollback.
  void commit_pending(std::uint64_t ts);

  /// Frees versions no live read view can reach (see mvcc.hpp for the two
  /// safety gates). Returns the number of versions freed.
  std::size_t reclaim(const ReaderRegistry::Horizon& horizon, const ReaderRegistry& registry);

  // --- hash indexes --------------------------------------------------------
  /// Builds a hash index over `column` (idempotent). Throws LookupError on
  /// an unknown column. PRIMARY KEY columns are indexed automatically.
  /// Writer side; the array is built over every existing version so a
  /// reader pinned at any timestamp probes correctly.
  void create_index(std::string_view column);
  /// Lock-free: probed by the planner on the read path.
  [[nodiscard]] bool has_index_on(std::size_t column) const;
  /// Names of every indexed column, in creation order (dump_state relies
  /// on the order being stable). Lock-free.
  [[nodiscard]] std::vector<std::string> indexed_columns() const;

  // --- DDL visibility (the catalog analogue of row versioning) -------------
  void stamp_created(std::uint64_t ts) {
    created_ts_.store(ts, std::memory_order_seq_cst);
  }
  void stamp_dropped(std::uint64_t ts) {
    dropped_ts_.store(ts, std::memory_order_seq_cst);
  }
  [[nodiscard]] std::uint64_t dropped_ts() const {
    return dropped_ts_.load(std::memory_order_seq_cst);
  }
  [[nodiscard]] bool visible_at(std::uint64_t ts) const {
    return created_ts_.load(std::memory_order_seq_cst) <= ts &&
           ts < dropped_ts_.load(std::memory_order_seq_cst);
  }

  // --- durability hooks (DESIGN.md §11) ------------------------------------
  /// The AUTO_INCREMENT sequence cursor. Snapshots persist it and recovery
  /// restores it, because it is not derivable from the surviving rows (the
  /// highest-id row may have been deleted). Atomic so dump_state() can read
  /// it without the table lock.
  [[nodiscard]] std::int64_t next_auto() const {
    return next_auto_.load(std::memory_order_seq_cst);
  }
  void set_next_auto(std::int64_t next) { next_auto_.store(next, std::memory_order_seq_cst); }

  // --- observability (cluster-status --engine, bench_mvcc) -----------------
  struct Stats {
    std::size_t live_rows = 0;        // rows visible to a fresh reader
    std::size_t slots = 0;            // allocated (live + dead, never reused)
    std::size_t dead_slots = 0;       // fully reclaimed identities
    std::size_t versions = 0;         // version nodes currently linked
    std::size_t retired_pending = 0;  // superseded, awaiting the ts horizon
    std::size_t limbo_versions = 0;   // unlinked, awaiting walker drain
    std::uint64_t reclaimed = 0;      // versions freed over the table's life
    std::size_t max_chain = 0;
    std::array<std::size_t, 9> chain_histogram{};  // [i] = chains of length
                                                   // i+1; [8] = length > 8
  };
  /// Writer side (walks chains).
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::uint64_t versions_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }
  /// Lock-free live-count estimate (planner cost gates, status).
  [[nodiscard]] std::size_t live_estimate() const {
    return live_count_.load(std::memory_order_relaxed);
  }

  // --- reader side (lock-free) ---------------------------------------------
  /// A point-in-time view of this table at commit timestamp `ts`. The
  /// caller must hold a ReaderRegistry pin at (or below) `ts` for the
  /// Reader's whole lifetime, and must not use returned Row pointers after
  /// releasing the pin.
  class Reader {
   public:
    Reader(const Table& table, std::uint64_t ts);

    /// The row of `slot` visible at the view's ts, or null.
    [[nodiscard]] const Row* visible(std::uint32_t slot) const;
    /// Every visible row, in slot (== historical row) order.
    [[nodiscard]] std::vector<const Row*> visible_rows() const;
    /// Visible rows whose `column` equals `key`, in slot order — exactly
    /// the rows a full scan with `column = key` would visit. Requires an
    /// index on the column (StateError otherwise); a NULL key matches
    /// nothing (SQL '=' semantics).
    [[nodiscard]] std::vector<const Row*> probe_rows(std::size_t column, const Value& key) const;
    [[nodiscard]] std::uint64_t ts() const { return ts_; }

   private:
    const Table* table_;
    std::uint64_t ts_;
    const SlotDirectory* directory_;  // the snapshot this view iterates
  };
  [[nodiscard]] Reader reader(std::uint64_t ts) const { return Reader(*this, ts); }

 private:
  friend class Reader;

  /// One bucket-chained hash entry. `next` is written only before the
  /// entry is published into its bucket, so readers see it immutable.
  struct IndexEntry {
    Value key;
    std::uint32_t slot = 0;
    IndexEntry* next = nullptr;
  };
  /// One published index array. The writer appends entries in place
  /// (publishing each via its bucket head); readers walk bucket chains.
  /// The deque arena keeps entry addresses stable across appends.
  struct IndexArray {
    explicit IndexArray(std::size_t bucket_count) : buckets(bucket_count) {}
    std::vector<std::atomic<IndexEntry*>> buckets;  // size is a power of two
    std::deque<IndexEntry> arena;
    std::uint64_t created_seq = 0;  // creation order, for indexed_columns()
  };
  struct ColumnIndex {
    std::atomic<const IndexArray*> published{nullptr};
    IndexArray* current = nullptr;  // same object, writer-mutable
  };

  static Value coerce(const Value& value, Type type);
  [[nodiscard]] std::uint32_t allocate_slot();
  [[nodiscard]] RowSlot& slot_ref(std::uint32_t slot) const;
  void index_insert(std::size_t column, const Value& key, std::uint32_t slot);
  IndexArray* build_index_array(std::size_t column, std::size_t min_buckets);
  void publish_index(std::size_t column, IndexArray* array);
  void maybe_rebuild_stale_indexes();
  std::size_t free_chain(RowVersion* version);

  std::string name_;
  std::vector<ColumnDef> columns_;

  // Slot storage. Superseded directories are retained until destruction;
  // the chunks they share are refcounted, so retention costs pointers, not
  // row data.
  std::vector<std::unique_ptr<const SlotDirectory>> directory_storage_;
  std::atomic<const SlotDirectory*> directory_{nullptr};
  std::size_t slots_used_ = 0;

  std::vector<std::uint32_t> live_;  // position -> slot, writer-side
  std::atomic<std::size_t> live_count_{0};
  /// slot -> live position (kNoPosition when the slot's row left the live
  /// set) — what lets probe_positions answer in O(hits) instead of O(live).
  static constexpr std::size_t kNoPosition = ~std::size_t{0};
  std::vector<std::size_t> slot_position_;

  std::vector<ColumnIndex> indexes_;  // per column; sized once, never grown
  std::vector<std::unique_ptr<IndexArray>> index_storage_;  // kept until death
  std::uint64_t index_seq_ = 0;

  // Commit pipeline (writer-side).
  std::vector<RowVersion*> pending_begin_;                    // created this stmt
  std::vector<std::pair<std::uint32_t, RowVersion*>> pending_end_;  // superseded
  struct Retired {
    std::uint32_t slot = 0;
    std::uint64_t end_ts = 0;
  };
  std::deque<Retired> retired_;  // FIFO: end_ts is monotone per table
  struct Limbo {
    std::uint64_t reg = 0;  // registration stamp taken after the unlink
    RowVersion* chain = nullptr;
    std::size_t count = 0;
  };
  std::vector<Limbo> limbo_;

  std::size_t versions_ = 0;    // version nodes currently linked
  std::size_t dead_slots_ = 0;  // heads unlinked (row identity gone)
  std::atomic<std::uint64_t> reclaimed_{0};

  std::atomic<std::int64_t> next_auto_{1};
  std::atomic<std::uint64_t> created_ts_{kTsUncommitted};
  std::atomic<std::uint64_t> dropped_ts_{kTsInfinity};
};

}  // namespace rocks::sqldb
