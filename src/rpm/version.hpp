// RPM version semantics.
//
// rocks-dist "resolves version numbers of RPMs and only includes the most
// recent software" (paper Section 6.2.1). That resolution is exactly Red
// Hat's rpmvercmp ordering over (epoch, version, release) triples, which is
// reimplemented here, including the segment-wise digit/alpha rules and
// tilde pre-release handling.
#pragma once

#include <string>
#include <string_view>

namespace rocks::rpm {

/// Red Hat's rpmvercmp: returns -1, 0, or 1 as `a` is older than, equal to,
/// or newer than `b`. Segments are runs of digits or letters; separators are
/// skipped; numeric segments beat alphabetic ones; '~' sorts before
/// everything including end-of-string.
[[nodiscard]] int rpmvercmp(std::string_view a, std::string_view b);

/// An (epoch, version, release) triple.
struct Evr {
  int epoch = 0;
  std::string version;
  std::string release;

  /// Parses "epoch:version-release", "version-release", or "version".
  /// Throws ParseError on an empty version.
  [[nodiscard]] static Evr parse(std::string_view text);

  /// Full ordering: epoch numerically, then version and release by rpmvercmp.
  [[nodiscard]] int compare(const Evr& other) const;

  [[nodiscard]] bool operator==(const Evr& other) const { return compare(other) == 0; }
  [[nodiscard]] bool operator<(const Evr& other) const { return compare(other) < 0; }

  /// "version-release" (epoch prefixed only when nonzero).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace rocks::rpm
