// A collection of packages — either a full distribution's RPMS directory or
// an updates directory. rocks-dist merges several of these, resolving each
// package name to its newest version (paper Section 6.2.1).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpm/package.hpp"

namespace rocks::rpm {

class Repository {
 public:
  Repository() = default;
  explicit Repository(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Adds a package; multiple versions of the same name/arch may coexist
  /// (a mirror holds the stock release and every update).
  void add(Package package);

  /// All stored packages, in deterministic (name, arch, EVR) order.
  [[nodiscard]] std::vector<const Package*> all() const;

  /// Every version of `name` (any arch), oldest first.
  [[nodiscard]] std::vector<const Package*> versions(std::string_view name) const;

  /// The newest version of `name` (optionally restricted to `arch`;
  /// "noarch" packages match any requested arch). Nullopt when unknown.
  [[nodiscard]] const Package* newest(std::string_view name, std::string_view arch = "") const;

  /// The package that provides capability `cap` (its own name or an entry
  /// in `provides`), newest version. Nullptr when nothing provides it.
  [[nodiscard]] const Package* provider(std::string_view cap, std::string_view arch = "") const;

  /// One package per (name, arch) at its newest EVR — the version
  /// resolution step of rocks-dist.
  [[nodiscard]] std::vector<const Package*> resolve_newest() const;

  [[nodiscard]] std::size_t package_count() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  [[nodiscard]] bool contains(std::string_view name) const;

 private:
  std::string name_;
  // name -> list of versions (append order; newest located by scan).
  std::map<std::string, std::vector<Package>, std::less<>> packages_;
};

}  // namespace rocks::rpm
