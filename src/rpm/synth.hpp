// Synthetic Red Hat-like distribution generator.
//
// The paper's experiments run against Red Hat 7.2 plus its update stream;
// neither is available here, so this generator builds a statistically
// similar stand-in: ~1000 binary RPMs with realistic names, dependency
// structure (including one deliberate bash<->glibc style cycle), and sizes
// calibrated so the compute-appliance closure totals the 225 MB each node
// transfers in Table I. The update stream reproduces the Section 6.2.1
// observation: 124 updated packages and 74 security advisories against one
// release in under a year — one update roughly every three days.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rpm/repository.hpp"

namespace rocks::rpm {

struct SynthOptions {
  std::uint64_t seed = 2001;
  /// Extra contrib packages beyond the curated core (Red Hat 7.2 shipped on
  /// the order of a thousand binary RPMs).
  std::size_t filler_packages = 550;
  /// Calibration target: total bytes of the compute appliance's package
  /// closure (paper: "Each node transfers approximately 225 MB").
  double compute_payload_mb = 225.0;
  std::string release_version = "7.2";
  /// Architectures to build every arch-specific package for. The Meteor
  /// cluster ran "three processor types (IA-32, Athlon and IA-64)" from one
  /// graph (paper Section 6.1); pass {"i386", "ia64"} to exercise that.
  std::vector<std::string> arches = {"i386"};
};

/// A generated release: the repository plus the package-name sets each
/// appliance type draws from (consumed by the default kickstart graph).
struct SynthDistro {
  Repository repo;
  std::string release_version;

  std::vector<std::string> base;             // every appliance installs these
  std::vector<std::string> compute_extras;   // MPI, PBS mom, Myrinet driver...
  std::vector<std::string> frontend_extras;  // servers, compilers, schedulers
  std::vector<std::string> nfs_extras;
  std::vector<std::string> web_extras;

  [[nodiscard]] std::vector<std::string> compute_set() const;
  [[nodiscard]] std::vector<std::string> frontend_set() const;
};

[[nodiscard]] SynthDistro make_redhat_release(const SynthOptions& options = {});

/// One entry of an errata stream.
struct TimedUpdate {
  int day = 0;  // days since release
  Package package;
};

struct UpdateStreamOptions {
  std::uint64_t seed = 1968;
  int days = 360;
  int update_count = 124;    // paper: 124 updated packages in <1 year
  int security_count = 74;   // paper: 74 securityfocus.com advisories
};

/// Generates an errata stream against `distro`: updates target real package
/// names, bump the release number, and arrive at roughly even intervals
/// with jitter. Sorted by day.
[[nodiscard]] std::vector<TimedUpdate> make_update_stream(const SynthDistro& distro,
                                                          const UpdateStreamOptions& options = {});

/// The Myrinet driver source package (rebuilt on-node at install time,
/// paper Section 6.3). `kernel_evr` ties the binary to a kernel version.
[[nodiscard]] Package make_myrinet_driver_source(const Evr& kernel_evr);

}  // namespace rocks::rpm
