// Dependency closure and install ordering.
//
// Kickstart hands anaconda a package list; anaconda pulls in dependencies
// and installs in dependency order. This solver reproduces that step for
// the simulated installer.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "rpm/repository.hpp"

namespace rocks::rpm {

struct Resolution {
  /// Packages to install, dependencies before dependents (cycles broken in
  /// deterministic name order, as rpm does within a transaction).
  std::vector<const Package*> install_order;
  /// Requirements no package in the repository provides.
  std::vector<std::string> missing;

  [[nodiscard]] bool complete() const { return missing.empty(); }
  [[nodiscard]] std::uint64_t total_bytes() const;
};

/// Resolves `requested` package names (newest versions for `arch`) plus the
/// transitive closure of their requirements against `repo`.
[[nodiscard]] Resolution resolve(const Repository& repo,
                                 const std::vector<std::string>& requested,
                                 std::string_view arch = "i386");

}  // namespace rocks::rpm
