// The package model.
//
// "All software deployed on Rocks clusters are in RPMs" (paper Section 5) —
// every artifact the toolkit moves around, from glibc to the Myrinet driver
// source, is one of these.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rpm/version.hpp"

namespace rocks::rpm {

/// Origin of a package within a distribution, mirroring the three sources
/// rocks-dist gathers (Section 6.2.1).
enum class Origin {
  kVendor,      // the stock Red Hat release
  kUpdate,      // a Red Hat updates/errata package
  kThirdParty,  // community software (MPICH, PVM, ATLAS...)
  kLocal,       // RPMs built on site (Rocks tools, kickstart profiles, eKV)
};

[[nodiscard]] std::string_view origin_name(Origin origin);

struct Package {
  std::string name;
  Evr evr;
  std::string arch = "i386";  // "i386", "ia64", "athlon", "noarch", "src"
  std::uint64_t size_bytes = 0;
  Origin origin = Origin::kVendor;
  std::string group;    // RPM group ("System Environment/Daemons", ...)
  std::string summary;

  std::vector<std::string> requires_names;  // names of required packages
  std::vector<std::string> provides;        // extra provided capabilities
  std::vector<std::string> files;           // installed file paths

  /// Source packages are compiled on the node at install time (the Myrinet
  /// driver pattern, Section 6.3); `build_seconds` models that compile.
  bool is_source = false;
  double build_seconds = 0.0;

  /// True when this update closes a security hole (Section 6.2.1 counts 74
  /// advisories against Red Hat 6.2 in under a year).
  bool security_fix = false;

  /// "name-version-release" (label form used in kickstart %packages).
  [[nodiscard]] std::string nvr() const;
  /// "name-version-release.arch" (full identity).
  [[nodiscard]] std::string nevra() const;
  /// On-disk file name inside a distribution tree: "<nevra>.rpm".
  [[nodiscard]] std::string filename() const;

  /// True when `this` is the same name/arch at a strictly newer EVR.
  [[nodiscard]] bool upgrades(const Package& other) const;
};

/// Parses "name-version-release" where the name itself may contain dashes
/// (the split point is the last dash before a segment starting with a
/// digit, matching RPM's label convention). Throws ParseError.
struct NvrParts {
  std::string name;
  Evr evr;
};
[[nodiscard]] NvrParts parse_nvr(std::string_view label);

}  // namespace rocks::rpm
