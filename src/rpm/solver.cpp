#include "rpm/solver.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace rocks::rpm {

std::uint64_t Resolution::total_bytes() const {
  std::uint64_t total = 0;
  for (const Package* pkg : install_order) total += pkg->size_bytes;
  return total;
}

Resolution resolve(const Repository& repo, const std::vector<std::string>& requested,
                   std::string_view arch) {
  Resolution result;
  std::map<std::string, const Package*> selected;  // by package name
  std::set<std::string> missing;

  // Breadth-first closure over requirements.
  std::vector<const Package*> frontier;
  for (const auto& name : requested) {
    const Package* pkg = repo.provider(name, arch);
    if (pkg == nullptr) {
      missing.insert(name);
      continue;
    }
    if (selected.emplace(pkg->name, pkg).second) frontier.push_back(pkg);
  }
  while (!frontier.empty()) {
    const Package* current = frontier.back();
    frontier.pop_back();
    for (const auto& req : current->requires_names) {
      const Package* dep = repo.provider(req, arch);
      if (dep == nullptr) {
        missing.insert(req);
        continue;
      }
      if (selected.emplace(dep->name, dep).second) frontier.push_back(dep);
    }
  }

  // Topological order (dependencies first); Kahn's algorithm with a sorted
  // ready set for determinism. Cycles (glibc <-> bash style) are broken by
  // emitting the lexicographically smallest remaining node.
  std::map<const Package*, int> in_degree;
  std::map<const Package*, std::vector<const Package*>> dependents;
  for (const auto& [name, pkg] : selected) in_degree[pkg] = 0;
  for (const auto& [name, pkg] : selected) {
    for (const auto& req : pkg->requires_names) {
      const Package* dep = repo.provider(req, arch);
      if (dep == nullptr || dep == pkg) continue;
      const auto it = selected.find(dep->name);
      if (it == selected.end() || it->second != dep) continue;
      dependents[dep].push_back(pkg);
      ++in_degree[pkg];
    }
  }

  auto by_name = [](const Package* a, const Package* b) { return a->name < b->name; };
  std::vector<const Package*> ready;
  for (const auto& [pkg, degree] : in_degree)
    if (degree == 0) ready.push_back(pkg);
  std::sort(ready.begin(), ready.end(), by_name);

  std::set<const Package*> emitted;
  while (result.install_order.size() < selected.size()) {
    if (ready.empty()) {
      // Cycle: emit the smallest remaining package to break it.
      const Package* fallback = nullptr;
      for (const auto& [pkg, degree] : in_degree) {
        if (emitted.contains(pkg)) continue;
        if (fallback == nullptr || pkg->name < fallback->name) fallback = pkg;
      }
      ready.push_back(fallback);
    }
    const Package* next = ready.front();
    ready.erase(ready.begin());
    if (emitted.contains(next)) continue;
    emitted.insert(next);
    result.install_order.push_back(next);
    for (const Package* dependent : dependents[next]) {
      if (--in_degree[dependent] == 0 && !emitted.contains(dependent)) {
        ready.insert(std::upper_bound(ready.begin(), ready.end(), dependent, by_name),
                     dependent);
      }
    }
  }

  result.missing.assign(missing.begin(), missing.end());
  return result;
}

}  // namespace rocks::rpm
