#include "rpm/repository.hpp"

#include <algorithm>

namespace rocks::rpm {
namespace {

bool arch_matches(const Package& pkg, std::string_view arch) {
  // "noarch" fits anywhere; source packages are compiled on the target node
  // (the Myrinet-driver pattern), so they also satisfy any architecture.
  return arch.empty() || pkg.arch == arch || pkg.arch == "noarch" || pkg.arch == "src";
}

}  // namespace

void Repository::add(Package package) {
  packages_[package.name].push_back(std::move(package));
}

std::vector<const Package*> Repository::all() const {
  std::vector<const Package*> out;
  for (const auto& [name, versions] : packages_)
    for (const auto& pkg : versions) out.push_back(&pkg);
  std::sort(out.begin(), out.end(), [](const Package* a, const Package* b) {
    if (a->name != b->name) return a->name < b->name;
    if (a->arch != b->arch) return a->arch < b->arch;
    return a->evr < b->evr;
  });
  return out;
}

std::vector<const Package*> Repository::versions(std::string_view name) const {
  std::vector<const Package*> out;
  const auto it = packages_.find(name);
  if (it == packages_.end()) return out;
  for (const auto& pkg : it->second) out.push_back(&pkg);
  std::sort(out.begin(), out.end(),
            [](const Package* a, const Package* b) { return a->evr < b->evr; });
  return out;
}

const Package* Repository::newest(std::string_view name, std::string_view arch) const {
  const auto it = packages_.find(name);
  if (it == packages_.end()) return nullptr;
  const Package* best = nullptr;
  for (const auto& pkg : it->second) {
    if (!arch_matches(pkg, arch)) continue;
    if (best == nullptr || best->evr < pkg.evr) best = &pkg;
  }
  return best;
}

const Package* Repository::provider(std::string_view cap, std::string_view arch) const {
  if (const Package* direct = newest(cap, arch)) return direct;
  const Package* best = nullptr;
  for (const auto& [name, versions] : packages_) {
    for (const auto& pkg : versions) {
      if (!arch_matches(pkg, arch)) continue;
      if (std::find(pkg.provides.begin(), pkg.provides.end(), cap) == pkg.provides.end())
        continue;
      if (best == nullptr || best->evr < pkg.evr) best = &pkg;
    }
  }
  return best;
}

std::vector<const Package*> Repository::resolve_newest() const {
  // Newest per (name, arch).
  std::vector<const Package*> out;
  for (const auto& [name, versions] : packages_) {
    std::map<std::string, const Package*> best_by_arch;
    for (const auto& pkg : versions) {
      auto& slot = best_by_arch[pkg.arch];
      if (slot == nullptr || slot->evr < pkg.evr) slot = &pkg;
    }
    for (const auto& [arch, pkg] : best_by_arch) out.push_back(pkg);
  }
  std::sort(out.begin(), out.end(), [](const Package* a, const Package* b) {
    if (a->name != b->name) return a->name < b->name;
    return a->arch < b->arch;
  });
  return out;
}

std::size_t Repository::package_count() const {
  std::size_t total = 0;
  for (const auto& [name, versions] : packages_) total += versions.size();
  return total;
}

std::uint64_t Repository::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [name, versions] : packages_)
    for (const auto& pkg : versions) total += pkg.size_bytes;
  return total;
}

bool Repository::contains(std::string_view name) const { return packages_.contains(name); }

}  // namespace rocks::rpm
