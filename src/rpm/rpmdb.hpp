// Per-node installed-package database (the /var/lib/rpm of a simulated
// machine). Installing a package materializes its files into the node's
// virtual filesystem; the manifest fingerprint is how the toolkit decides
// whether two nodes run identical software (the consistency question the
// paper's reinstall philosophy is designed to eliminate, Section 3.2).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "rpm/package.hpp"
#include "rpm/repository.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::rpm {

class RpmDatabase {
 public:
  /// Installs (or upgrades, when an older version is present) into `fs`.
  /// Files are written with the package's bytes spread across them.
  void install(const Package& package, vfs::FileSystem& fs);

  /// Removes the package and its files. Returns false when not installed.
  bool erase(std::string_view name, vfs::FileSystem& fs);

  [[nodiscard]] bool installed(std::string_view name) const;
  [[nodiscard]] const Package* find(std::string_view name) const;
  [[nodiscard]] std::size_t package_count() const { return installed_.size(); }

  /// Sorted "name-version-release.arch" list — `rpm -qa` output.
  [[nodiscard]] std::vector<std::string> manifest() const;

  /// Order-independent hash of the manifest; equal fingerprints mean equal
  /// installed software sets.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Packages in `this` that are older than the newest version in `repo`
  /// (the "is my node stale?" question from Section 6.2.1).
  [[nodiscard]] std::vector<const Package*> stale_against(const Repository& repo) const;

  /// Drops all records without touching the filesystem — used when a node's
  /// disk is wiped wholesale at reinstall time.
  void clear() { installed_.clear(); }

 private:
  std::map<std::string, Package, std::less<>> installed_;  // by name
};

}  // namespace rocks::rpm
