#include "rpm/package.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::rpm {

std::string_view origin_name(Origin origin) {
  switch (origin) {
    case Origin::kVendor: return "vendor";
    case Origin::kUpdate: return "update";
    case Origin::kThirdParty: return "third-party";
    case Origin::kLocal: return "local";
  }
  return "?";
}

std::string Package::nvr() const { return strings::cat(name, "-", evr.to_string()); }

std::string Package::nevra() const { return strings::cat(nvr(), ".", arch); }

std::string Package::filename() const { return strings::cat(nevra(), ".rpm"); }

bool Package::upgrades(const Package& other) const {
  return name == other.name && arch == other.arch && other.evr < evr;
}

NvrParts parse_nvr(std::string_view label) {
  // Find the release dash (last dash), then the version dash (the last dash
  // before it whose following character is a digit).
  const std::size_t release_dash = label.rfind('-');
  if (release_dash == std::string_view::npos || release_dash + 1 >= label.size())
    throw ParseError(strings::cat("not a name-version-release label: '", std::string(label), "'"));
  const std::size_t version_dash = label.rfind('-', release_dash - 1);
  if (version_dash == std::string_view::npos || version_dash + 1 >= label.size())
    throw ParseError(strings::cat("not a name-version-release label: '", std::string(label), "'"));
  NvrParts out;
  out.name = std::string(label.substr(0, version_dash));
  out.evr = Evr::parse(label.substr(version_dash + 1));
  if (out.name.empty())
    throw ParseError(strings::cat("empty package name in '", std::string(label), "'"));
  return out;
}

}  // namespace rocks::rpm
