#include "rpm/version.hpp"

#include <cctype>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::rpm {
namespace {

bool is_sep(char c) {
  return !std::isalnum(static_cast<unsigned char>(c)) && c != '~';
}

}  // namespace

int rpmvercmp(std::string_view a, std::string_view b) {
  if (a == b) return 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() || j < b.size()) {
    // Skip separators.
    while (i < a.size() && is_sep(a[i])) ++i;
    while (j < b.size() && is_sep(b[j])) ++j;

    // Tilde: sorts before everything, including the empty string.
    const bool ta = i < a.size() && a[i] == '~';
    const bool tb = j < b.size() && b[j] == '~';
    if (ta || tb) {
      if (ta && tb) {
        ++i;
        ++j;
        continue;
      }
      return ta ? -1 : 1;
    }

    if (i >= a.size() || j >= b.size()) break;

    // Grab the next segment: a run of digits or a run of letters.
    const bool numeric = std::isdigit(static_cast<unsigned char>(a[i])) != 0;
    std::size_t si = i, sj = j;
    if (numeric) {
      while (si < a.size() && std::isdigit(static_cast<unsigned char>(a[si]))) ++si;
      while (sj < b.size() && std::isdigit(static_cast<unsigned char>(b[sj]))) ++sj;
    } else {
      while (si < a.size() && std::isalpha(static_cast<unsigned char>(a[si]))) ++si;
      while (sj < b.size() && std::isalpha(static_cast<unsigned char>(b[sj]))) ++sj;
    }
    std::string_view sa = a.substr(i, si - i);
    std::string_view sb = b.substr(j, sj - j);

    // b's segment is of the other type: numeric segments always win.
    if (sb.empty()) return numeric ? 1 : -1;

    if (numeric) {
      // Strip leading zeros, then longer number wins, then lexicographic.
      while (!sa.empty() && sa.front() == '0') sa.remove_prefix(1);
      while (!sb.empty() && sb.front() == '0') sb.remove_prefix(1);
      if (sa.size() != sb.size()) return sa.size() < sb.size() ? -1 : 1;
    }
    const int cmp = sa.compare(sb);
    if (cmp != 0) return cmp < 0 ? -1 : 1;

    i = si;
    j = sj;
  }
  // One string exhausted: the one with a remaining segment is newer.
  const bool a_left = i < a.size();
  const bool b_left = j < b.size();
  if (a_left == b_left) return 0;
  return a_left ? 1 : -1;
}

Evr Evr::parse(std::string_view text) {
  Evr out;
  const std::size_t colon = text.find(':');
  if (colon != std::string_view::npos) {
    int epoch = 0;
    for (char c : text.substr(0, colon)) {
      if (!std::isdigit(static_cast<unsigned char>(c)))
        throw ParseError(strings::cat("bad epoch in '", std::string(text), "'"));
      epoch = epoch * 10 + (c - '0');
    }
    out.epoch = epoch;
    text.remove_prefix(colon + 1);
  }
  const std::size_t dash = text.rfind('-');
  if (dash != std::string_view::npos) {
    out.version = std::string(text.substr(0, dash));
    out.release = std::string(text.substr(dash + 1));
  } else {
    out.version = std::string(text);
  }
  if (out.version.empty())
    throw ParseError(strings::cat("empty version in '", std::string(text), "'"));
  return out;
}

int Evr::compare(const Evr& other) const {
  if (epoch != other.epoch) return epoch < other.epoch ? -1 : 1;
  const int v = rpmvercmp(version, other.version);
  if (v != 0) return v;
  return rpmvercmp(release, other.release);
}

std::string Evr::to_string() const {
  std::string out;
  if (epoch != 0) out = strings::cat(epoch, ":");
  out += version;
  if (!release.empty()) {
    out += '-';
    out += release;
  }
  return out;
}

}  // namespace rocks::rpm
