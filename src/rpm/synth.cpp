#include "rpm/synth.hpp"

#include <algorithm>
#include <set>

#include "rpm/solver.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace rocks::rpm {
namespace {

struct Seed {
  const char* name;
  const char* group;
  double size_mb;  // pre-calibration weight
  const char* requires_csv;
};

// The curated core: names, groups, and dependency skeleton modeled on the
// actual Red Hat 7.2 package set the paper deployed.
constexpr Seed kBaseSeeds[] = {
    {"setup", "System Environment/Base", 0.1, ""},
    {"filesystem", "System Environment/Base", 0.1, "setup"},
    {"basesystem", "System Environment/Base", 0.1, "filesystem"},
    {"glibc", "System Environment/Libraries", 24.0, "basesystem,bash"},  // deliberate cycle
    {"bash", "System Environment/Shells", 1.8, "glibc"},
    {"libtermcap", "System Environment/Libraries", 0.2, "glibc"},
    {"termcap", "System Environment/Base", 0.3, ""},
    {"ncurses", "System Environment/Libraries", 2.1, "glibc"},
    {"readline", "System Environment/Libraries", 0.5, "ncurses"},
    {"zlib", "System Environment/Libraries", 0.3, "glibc"},
    {"info", "System Environment/Base", 0.7, "glibc"},
    {"fileutils", "System Environment/Base", 1.9, "glibc"},
    {"textutils", "System Environment/Base", 1.2, "glibc"},
    {"sh-utils", "System Environment/Base", 1.0, "glibc"},
    {"grep", "Applications/Text", 0.5, "glibc"},
    {"sed", "Applications/Text", 0.3, "glibc"},
    {"gawk", "Applications/Text", 1.6, "glibc"},
    {"tar", "Applications/Archiving", 0.9, "glibc"},
    {"gzip", "Applications/Archiving", 0.4, "glibc"},
    {"bzip2", "Applications/Archiving", 0.3, "glibc"},
    {"cpio", "Applications/Archiving", 0.3, "glibc"},
    {"findutils", "Applications/File", 0.4, "glibc"},
    {"which", "Applications/System", 0.1, "bash"},
    {"diffutils", "Applications/Text", 0.5, "glibc"},
    {"less", "Applications/Text", 0.3, "ncurses"},
    {"file", "Applications/File", 0.5, "glibc"},
    {"popt", "System Environment/Libraries", 0.2, "glibc"},
    {"db3", "System Environment/Libraries", 1.1, "glibc"},
    {"gdbm", "System Environment/Libraries", 0.2, "glibc"},
    {"rpm", "System Environment/Base", 3.5, "popt,db3,bzip2,zlib"},
    {"dev", "System Environment/Base", 0.4, "filesystem"},
    {"e2fsprogs", "System Environment/Base", 1.5, "glibc"},
    {"modutils", "System Environment/Kernel", 1.0, "glibc"},
    {"kernel", "System Environment/Kernel", 19.0, "modutils,dev"},
    {"kernel-headers", "Development/System", 2.5, ""},
    {"SysVinit", "System Environment/Base", 0.3, "glibc"},
    {"initscripts", "System Environment/Base", 1.2, "SysVinit,bash,sed,gawk"},
    {"chkconfig", "System Environment/Base", 0.3, "glibc"},
    {"mingetty", "System Environment/Base", 0.1, "glibc"},
    {"kbd", "System Environment/Base", 1.1, "glibc"},
    {"console-tools", "System Environment/Base", 2.2, "glibc"},
    {"sysklogd", "System Environment/Daemons", 0.3, "initscripts"},
    {"net-tools", "System Environment/Base", 0.9, "glibc"},
    {"iputils", "System Environment/Base", 0.3, "glibc"},
    {"procps", "Applications/System", 0.5, "ncurses"},
    {"psmisc", "Applications/System", 0.2, "glibc"},
    {"util-linux", "System Environment/Base", 2.3, "ncurses,pam"},
    {"pam", "System Environment/Base", 1.4, "cracklib,initscripts"},  // 2nd cycle via initscripts->bash
    {"cracklib", "System Environment/Libraries", 0.2, "glibc"},
    {"cracklib-dicts", "System Environment/Libraries", 3.0, "cracklib"},
    {"shadow-utils", "System Environment/Base", 1.1, "pam"},
    {"glib", "System Environment/Libraries", 0.4, "glibc"},
    {"slang", "System Environment/Libraries", 0.6, "glibc"},
    {"newt", "System Environment/Libraries", 0.4, "slang"},
    {"groff", "Applications/Publishing", 2.8, "glibc"},
    {"man", "System Environment/Base", 0.6, "groff,less"},
    {"crontabs", "System Environment/Base", 0.1, ""},
    {"vixie-cron", "System Environment/Base", 0.2, "initscripts"},
    {"anacron", "System Environment/Base", 0.2, "initscripts"},
    {"logrotate", "System Environment/Base", 0.2, "glibc"},
    {"mktemp", "System Environment/Base", 0.1, "glibc"},
    {"vim-minimal", "Applications/Editors", 1.3, "glibc"},
    {"openssl", "System Environment/Libraries", 3.2, "glibc"},
    {"krb5-libs", "System Environment/Libraries", 1.9, "glibc"},
    {"cyrus-sasl", "System Environment/Libraries", 0.8, "openssl,db3"},
    {"openldap", "System Environment/Daemons", 1.6, "cyrus-sasl,openssl"},
    {"nss_ldap", "System Environment/Base", 0.7, "openldap"},
    {"openssh", "Applications/Internet", 0.6, "openssl"},
    {"openssh-clients", "Applications/Internet", 0.8, "openssh"},
    {"openssh-server", "System Environment/Daemons", 0.5, "openssh"},
    {"pump", "System Environment/Base", 0.2, "glibc"},
    {"dhcpcd", "System Environment/Base", 0.2, "glibc"},
    {"portmap", "System Environment/Daemons", 0.2, "initscripts"},
    {"ypbind", "System Environment/Daemons", 0.3, "portmap,yp-tools"},
    {"yp-tools", "System Environment/Base", 0.3, "glibc"},
    {"nfs-utils", "System Environment/Daemons", 0.7, "portmap"},
    {"wget", "Applications/Internet", 0.7, "openssl"},
    {"telnet", "Applications/Internet", 0.2, "glibc"},
    {"rsh", "Applications/Internet", 0.2, "glibc"},
    {"rdate", "System Environment/Base", 0.1, "glibc"},
    {"ntp", "System Environment/Daemons", 1.4, "glibc"},
    {"tcpdump", "Applications/Internet", 0.9, "glibc"},
    {"perl", "Development/Languages", 11.5, "glibc"},
    {"python", "Development/Languages", 7.9, "glibc"},
    {"syslinux", "Applications/System", 0.3, "glibc"},
    {"rocks-ekv", "NPACI Rocks/Base", 0.2, "python"},  // eKV install console (local RPM)
};

constexpr Seed kComputeSeeds[] = {
    {"gcc", "Development/Languages", 9.8, "binutils,cpp,glibc-devel"},
    {"gcc-g77", "Development/Languages", 3.8, "gcc"},
    {"cpp", "Development/Languages", 1.2, "glibc"},
    {"binutils", "Development/Tools", 5.3, "glibc"},
    {"glibc-devel", "Development/Libraries", 8.9, "glibc,kernel-headers"},
    {"make", "Development/Tools", 0.8, "glibc"},
    {"kernel-source", "Development/System", 38.0, ""},
    {"mpich", "NPACI Rocks/Libraries", 14.0, "gcc,rsh"},
    {"mpich-gm", "NPACI Rocks/Libraries", 15.0, "gm,gcc"},
    {"pvm", "NPACI Rocks/Libraries", 5.5, "gcc,rsh"},
    {"atlas", "NPACI Rocks/Libraries", 16.0, "gcc-g77"},
    {"gm", "NPACI Rocks/Myrinet", 3.0, "kernel"},
    {"rexec", "NPACI Rocks/Base", 0.5, "openssl,python"},
    {"pbs-mom", "NPACI Rocks/Scheduling", 1.1, "initscripts"},
    {"ganglia-monitor-core", "NPACI Rocks/Monitoring", 0.6, "python"},
    {"intel-mkl", "NPACI Rocks/Libraries", 24.0, "glibc"},
};

constexpr Seed kFrontendSeeds[] = {
    {"mysql", "Applications/Databases", 6.5, "glibc"},
    {"mysql-server", "System Environment/Daemons", 9.0, "mysql,initscripts"},
    {"apache", "System Environment/Daemons", 2.5, "initscripts"},
    {"dhcp", "System Environment/Daemons", 0.8, "initscripts"},
    {"ypserv", "System Environment/Daemons", 0.5, "portmap"},
    {"pbs-server", "NPACI Rocks/Scheduling", 2.2, "initscripts"},
    {"maui", "NPACI Rocks/Scheduling", 3.1, "pbs-server"},
    {"rocks-dist", "NPACI Rocks/Base", 0.6, "python,wget"},
    {"rocks-tools", "NPACI Rocks/Base", 0.8, "python,mysql"},
    {"rocks-kickstart-profiles", "NPACI Rocks/Base", 0.3, "rocks-dist"},
    {"insert-ethers", "NPACI Rocks/Base", 0.2, "rocks-tools"},
    {"shoot-node", "NPACI Rocks/Base", 0.2, "rocks-tools"},
    {"intel-cc", "Development/Languages", 42.0, "glibc"},
    {"intel-fortran", "Development/Languages", 38.0, "glibc"},
    {"pgi-hpf", "Development/Languages", 31.0, "glibc"},
    {"XFree86-libs", "System Environment/Libraries", 7.5, "glibc"},
    {"xterm", "User Interface/X", 0.7, "XFree86-libs"},
};

constexpr Seed kNfsSeeds[] = {
    {"raidtools", "System Environment/Base", 0.4, "glibc"},
    {"quota", "System Environment/Base", 0.4, "glibc"},
};

// Architecture-independent packages (scripts, data, configuration).
constexpr const char* kNoarchNames[] = {
    "setup",        "filesystem", "basesystem",  "crontabs",    "termcap",
    "cracklib-dicts", "rocks-dist", "rocks-tools", "rocks-kickstart-profiles",
    "insert-ethers", "shoot-node", "rocks-ekv",
};

// Bootloaders exist only on their own architecture.
constexpr Seed kArchOnlySeeds[] = {
    {"grub", "System Environment/Base", 0.8, "glibc"},    // i386 only
    {"elilo", "System Environment/Base", 0.4, "glibc"},   // ia64 only
};

bool is_noarch(std::string_view name) {
  for (const char* candidate : kNoarchNames)
    if (name == candidate) return true;
  return false;
}

constexpr Seed kWebSeeds[] = {
    {"php", "Development/Languages", 3.8, "apache"},
    {"mod_ssl", "System Environment/Daemons", 0.9, "apache,openssl"},
};

constexpr const char* kFillerStems[] = {
    "lib",  "perl", "python", "gnome", "kde",  "x11",  "tex",  "emacs",
    "font", "doc",  "games",  "sound", "print", "mail", "news", "irc",
};

std::vector<std::string> make_files(const std::string& name, const Evr& evr, Rng& rng) {
  std::vector<std::string> files;
  files.push_back(strings::cat("/usr/bin/", name));
  files.push_back(strings::cat("/usr/lib/", name, ".so.", evr.version));
  files.push_back(strings::cat("/usr/share/doc/", name, "-", evr.version, "/README"));
  const int extra = static_cast<int>(rng.next_below(4));
  for (int i = 0; i < extra; ++i)
    files.push_back(strings::cat("/usr/share/", name, "/data", i));
  if (rng.chance(0.3)) files.push_back(strings::cat("/etc/", name, ".conf"));
  return files;
}

Package make_package(const Seed& seed, const std::string& version, Rng& rng, Origin origin) {
  Package pkg;
  pkg.name = seed.name;
  pkg.evr.version = version;
  pkg.evr.release = std::to_string(1 + rng.next_below(9));
  pkg.size_bytes = static_cast<std::uint64_t>(seed.size_mb * 1024.0 * 1024.0);
  pkg.origin = origin;
  pkg.group = seed.group;
  pkg.summary = strings::cat("The ", seed.name, " package");
  if (*seed.requires_csv != '\0') {
    for (auto& dep : strings::split(seed.requires_csv, ',')) pkg.requires_names.push_back(dep);
  }
  pkg.files = make_files(pkg.name, pkg.evr, rng);
  return pkg;
}

std::string seed_version(Rng& rng) {
  return strings::cat(1 + rng.next_below(7), ".", rng.next_below(10), ".",
                      rng.next_below(30));
}

}  // namespace

std::vector<std::string> SynthDistro::compute_set() const {
  std::vector<std::string> out = base;
  out.insert(out.end(), compute_extras.begin(), compute_extras.end());
  return out;
}

std::vector<std::string> SynthDistro::frontend_set() const {
  std::vector<std::string> out = base;
  out.insert(out.end(), frontend_extras.begin(), frontend_extras.end());
  // The frontend also carries the development stack so users can build
  // applications there (paper Section 4.1).
  out.insert(out.end(), compute_extras.begin(), compute_extras.end());
  return out;
}

SynthDistro make_redhat_release(const SynthOptions& options) {
  Rng rng(options.seed);
  SynthDistro distro;
  distro.repo = Repository(strings::cat("redhat-", options.release_version));
  distro.release_version = options.release_version;

  // One package per seed per architecture (noarch packages once, with
  // identical EVR across arches, as a real multi-arch release does).
  const auto add_one = [&](const Seed& seed, std::vector<std::string>* names) {
    Package prototype = make_package(seed, seed_version(rng), rng, Origin::kVendor);
    if (strings::starts_with(prototype.group, "NPACI Rocks"))
      prototype.origin = strings::contains(prototype.group, "Libraries")
                             ? Origin::kThirdParty
                             : Origin::kLocal;
    if (names != nullptr) names->push_back(prototype.name);
    if (is_noarch(prototype.name)) {
      prototype.arch = "noarch";
      distro.repo.add(std::move(prototype));
      return;
    }
    for (const auto& arch : options.arches) {
      Package copy = prototype;
      copy.arch = arch;
      distro.repo.add(std::move(copy));
    }
  };
  const auto add_seeds = [&](const Seed* seeds, std::size_t count,
                             std::vector<std::string>& names) {
    for (std::size_t i = 0; i < count; ++i) add_one(seeds[i], &names);
  };
  add_seeds(kBaseSeeds, std::size(kBaseSeeds), distro.base);
  add_seeds(kComputeSeeds, std::size(kComputeSeeds), distro.compute_extras);
  add_seeds(kFrontendSeeds, std::size(kFrontendSeeds), distro.frontend_extras);
  add_seeds(kNfsSeeds, std::size(kNfsSeeds), distro.nfs_extras);
  add_seeds(kWebSeeds, std::size(kWebSeeds), distro.web_extras);

  // Bootloaders: grub only exists for IA-32-family arches, elilo for IA-64.
  for (const Seed& seed : kArchOnlySeeds) {
    const bool is_grub = std::string_view(seed.name) == "grub";
    const char* wanted = is_grub ? "i386" : "ia64";
    bool have_arch = false;
    for (const auto& arch : options.arches)
      if (arch == wanted) have_arch = true;
    if (!have_arch && is_grub) have_arch = true;  // default release keeps grub
    if (!have_arch) continue;
    Package pkg = make_package(seed, seed_version(rng), rng, Origin::kVendor);
    pkg.arch = wanted;
    distro.base.push_back(pkg.name);
    distro.repo.add(std::move(pkg));
  }

  // The Myrinet driver source package (compute appliances rebuild it).
  const Package* kernel = distro.repo.newest("kernel");
  distro.repo.add(make_myrinet_driver_source(kernel->evr));
  distro.compute_extras.push_back("gm-driver");

  // Filler: the long tail of a real distribution (never installed on
  // cluster appliances, but carried by every mirror and symlink tree).
  std::set<std::string> taken;
  for (const Package* pkg : distro.repo.all()) taken.insert(pkg->name);
  std::size_t made = 0;
  while (made < options.filler_packages) {
    const char* stem = kFillerStems[rng.next_below(std::size(kFillerStems))];
    const std::string name = strings::cat(stem, "-extra", made);
    if (!taken.insert(name).second) continue;
    Package pkg;
    pkg.name = name;
    pkg.evr.version = seed_version(rng);
    pkg.evr.release = std::to_string(1 + rng.next_below(9));
    // Log-ish size distribution: mostly small, a few multi-MB.
    const double mb = rng.chance(0.15) ? rng.next_double_range(2.0, 14.0)
                                       : rng.next_double_range(0.05, 1.5);
    pkg.size_bytes = static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
    pkg.group = "Applications/Contrib";
    pkg.summary = strings::cat("Contrib package ", name);
    pkg.requires_names.push_back("glibc");
    pkg.files = make_files(pkg.name, pkg.evr, rng);
    distro.repo.add(std::move(pkg));
    ++made;
  }

  // Calibrate: scale the curated packages so the compute closure hits the
  // configured payload (225 MB by default), keeping relative sizes.
  const Resolution compute = resolve(distro.repo, distro.compute_set());
  const double actual_mb =
      static_cast<double>(compute.total_bytes()) / (1024.0 * 1024.0);
  if (actual_mb > 0) {
    const double scale = options.compute_payload_mb / actual_mb;
    Repository scaled(distro.repo.name());
    for (const Package* pkg : distro.repo.all()) {
      Package copy = *pkg;
      if (copy.group != "Applications/Contrib")
        copy.size_bytes = static_cast<std::uint64_t>(static_cast<double>(copy.size_bytes) * scale);
      scaled.add(std::move(copy));
    }
    distro.repo = std::move(scaled);
  }
  return distro;
}

std::vector<TimedUpdate> make_update_stream(const SynthDistro& distro,
                                            const UpdateStreamOptions& options) {
  Rng rng(options.seed);
  std::vector<TimedUpdate> stream;
  const auto all = distro.repo.all();

  // Candidate packages for errata: the curated (non-contrib) set.
  std::vector<const Package*> candidates;
  for (const Package* pkg : all)
    if (pkg->group != "Applications/Contrib" && !pkg->is_source) candidates.push_back(pkg);

  for (int i = 0; i < options.update_count; ++i) {
    const Package* victim = candidates[rng.next_below(candidates.size())];
    TimedUpdate update;
    // Roughly even spacing ("one update every three days") with jitter.
    update.day = static_cast<int>((static_cast<double>(i) + rng.next_double()) *
                                  static_cast<double>(options.days) /
                                  static_cast<double>(options.update_count));
    update.package = *victim;
    update.package.origin = Origin::kUpdate;
    // Bump the release; repeated errata against the same package stack.
    int prior = 0;
    for (const auto& existing : stream)
      if (existing.package.name == victim->name) ++prior;
    update.package.evr.release =
        strings::cat(victim->evr.release, ".", prior + 1);
    update.package.security_fix = i < options.security_count;
    update.package.summary = strings::cat(victim->name, " errata #", i + 1);
    stream.push_back(std::move(update));
  }
  // Shuffle which updates are security fixes, then order by day.
  for (std::size_t i = stream.size(); i > 1; --i) {
    const std::size_t j = rng.next_below(i);
    std::swap(stream[i - 1].package.security_fix, stream[j].package.security_fix);
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TimedUpdate& a, const TimedUpdate& b) { return a.day < b.day; });
  return stream;
}

Package make_myrinet_driver_source(const Evr& kernel_evr) {
  Package pkg;
  pkg.name = "gm-driver";
  pkg.evr.version = "1.5.1";
  pkg.evr.release = "1";
  pkg.arch = "src";
  pkg.size_bytes = 6 * 1024 * 1024;
  pkg.origin = Origin::kLocal;
  pkg.group = "NPACI Rocks/Myrinet";
  pkg.summary = "Myrinet GM driver, compiled on-node against the running kernel";
  pkg.requires_names = {"kernel-source", "gcc", "make"};
  pkg.provides = {strings::cat("gm-driver-for-kernel-", kernel_evr.to_string())};
  pkg.files = {"/usr/src/gm/Makefile", "/usr/src/gm/gm.c"};
  pkg.is_source = true;
  // The paper reports driver rebuilds adding a 20-30% penalty on a 5-10
  // minute reinstall; 120 s of compile+insmod lands in that band.
  pkg.build_seconds = 120.0;
  return pkg;
}

}  // namespace rocks::rpm
