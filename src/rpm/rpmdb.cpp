#include "rpm/rpmdb.hpp"

#include "rpm/repository.hpp"
#include "support/strings.hpp"
#include "vfs/path.hpp"

namespace rocks::rpm {

void RpmDatabase::install(const Package& package, vfs::FileSystem& fs) {
  // Upgrade semantics: drop the old version's files first.
  erase(package.name, fs);

  const std::uint64_t per_file =
      package.files.empty() ? 0 : package.size_bytes / package.files.size();
  for (std::size_t i = 0; i < package.files.size(); ++i) {
    const std::string& path = package.files[i];
    fs.mkdir_p(vfs::dirname(path));
    // Content records the owning package version so drift detection can see
    // when a file belongs to a different build.
    const std::uint64_t payload =
        i + 1 == package.files.size()
            ? package.size_bytes - per_file * (package.files.size() - 1)
            : per_file;
    fs.write_file(path, strings::cat("%", package.nevra(), "%\n"), payload);
  }
  installed_.insert_or_assign(package.name, package);
}

bool RpmDatabase::erase(std::string_view name, vfs::FileSystem& fs) {
  const auto it = installed_.find(name);
  if (it == installed_.end()) return false;
  for (const auto& path : it->second.files) fs.remove(path);
  installed_.erase(it);
  return true;
}

bool RpmDatabase::installed(std::string_view name) const { return installed_.contains(name); }

const Package* RpmDatabase::find(std::string_view name) const {
  const auto it = installed_.find(name);
  return it == installed_.end() ? nullptr : &it->second;
}

std::vector<std::string> RpmDatabase::manifest() const {
  std::vector<std::string> out;
  out.reserve(installed_.size());
  for (const auto& [name, pkg] : installed_) out.push_back(pkg.nevra());
  return out;  // map order == sorted by name
}

std::uint64_t RpmDatabase::fingerprint() const {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const auto& entry : manifest()) {
    for (char c : entry) {
      hash ^= static_cast<unsigned char>(c);
      hash *= 1099511628211ULL;
    }
    hash ^= '\n';
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::vector<const Package*> RpmDatabase::stale_against(const Repository& repo) const {
  std::vector<const Package*> out;
  for (const auto& [name, pkg] : installed_) {
    const Package* newest = repo.newest(name, pkg.arch);
    if (newest != nullptr && pkg.evr < newest->evr) out.push_back(&pkg);
  }
  return out;
}

}  // namespace rocks::rpm
