// Error types shared by all rocks++ libraries.
//
// Policy (per C++ Core Guidelines E.2/E.14): errors that a caller cannot
// reasonably recover from locally are reported by throwing a subclass of
// rocks::Error carrying a formatted message; recoverable "not found" style
// lookups return std::optional instead.
#pragma once

#include <stdexcept>
#include <string>

namespace rocks {

/// Root of the rocks++ exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// A malformed input document (XML, SQL, kickstart, spec string...).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A reference to an entity that does not exist (package, node, table...).
class LookupError : public Error {
 public:
  using Error::Error;
};

/// An operation invoked in a state that cannot honour it
/// (e.g. shooting a node that is powered off).
class StateError : public Error {
 public:
  using Error::Error;
};

/// Virtual-filesystem failures (missing path, not-a-directory...).
class IoError : public Error {
 public:
  using Error::Error;
};

/// A service that exists but is transiently down (crashed HTTP replica,
/// kickstart CGI outage). Callers are expected to retry with backoff rather
/// than treat this as a configuration error.
class UnavailableError : public Error {
 public:
  using Error::Error;
};

/// Throws LookupError with `message` when `condition` is false.
void require_found(bool condition, const std::string& message);

/// Throws StateError with `message` when `condition` is false.
void require_state(bool condition, const std::string& message);

}  // namespace rocks
