#include "support/strings.hpp"

#include <algorithm>
#include <cctype>

namespace rocks::strings {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer algorithm with star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_t = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

}  // namespace rocks::strings
