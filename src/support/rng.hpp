// Deterministic pseudo-random number generation.
//
// All stochastic elements of the simulation (operator-error injection in the
// hand-administration baseline, update-stream arrival jitter, install-time
// variance) draw from this splitmix64-based generator so every benchmark and
// test is exactly reproducible from its seed.
#pragma once

#include <cstdint>
#include <limits>

namespace rocks {

class Rng {
 public:
  constexpr explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value (splitmix64).
  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound); bound must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) {
    // Multiply-shift rejection-free mapping is fine for simulation purposes.
    return next_u64() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr std::int64_t next_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  constexpr bool chance(double p) { return next_double() < p; }

  /// Uniform double in [lo, hi).
  constexpr double next_double_range(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

 private:
  std::uint64_t state_;
};

}  // namespace rocks
