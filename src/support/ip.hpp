// IPv4 and Ethernet MAC address value types.
//
// insert-ethers (Section 6.4 of the paper) allocates IP addresses downward
// from 10.255.255.254 and binds them to the MAC addresses it observes in
// DHCP discover messages; these types make those bindings strongly typed
// throughout netsim, sqldb rows, and the services generators.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace rocks {

/// An IPv4 address stored in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) |
               std::uint32_t{d}) {}

  /// Parses dotted-quad notation; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  /// The next lower address (insert-ethers allocates top-down).
  [[nodiscard]] constexpr Ipv4 prev() const { return Ipv4(value_ - 1); }
  [[nodiscard]] constexpr Ipv4 next() const { return Ipv4(value_ + 1); }

  /// True when this address lies inside `network/prefix_len`.
  [[nodiscard]] constexpr bool in_subnet(Ipv4 network, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask = prefix_len >= 32 ? ~std::uint32_t{0}
                                                : ~((std::uint32_t{1} << (32 - prefix_len)) - 1);
    return (value_ & mask) == (network.value_ & mask);
  }

  auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A 48-bit Ethernet MAC address.
class Mac {
 public:
  constexpr Mac() = default;
  constexpr explicit Mac(std::uint64_t value) : value_(value & 0xFFFFFFFFFFFFULL) {}

  /// Parses colon-separated hex ("00:50:8b:e0:3a:a7"); nullopt on error.
  [[nodiscard]] static std::optional<Mac> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const Mac&) const = default;

 private:
  std::uint64_t value_ = 0;
};

}  // namespace rocks
