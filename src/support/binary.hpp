// Little-endian binary encode/decode for the durability layer's on-disk
// formats (WAL records, snapshots — DESIGN.md §11).
//
// The writer appends fixed-width integers and length-prefixed strings to a
// std::string; the reader walks a string_view with hard bounds checks and
// throws ParseError the moment a read would run past the end — a truncated
// or corrupt buffer can never read garbage, it fails loudly and the caller
// (WAL replay, snapshot load) treats the data as invalid.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rocks::support {

class BinaryWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u32) byte string.
  void str(std::string_view v);

  [[nodiscard]] const std::string& bytes() const { return out_; }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string_view str();

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  /// Throws ParseError unless `n` more bytes are available.
  void need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace rocks::support
