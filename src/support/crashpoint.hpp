// Crash-point injection (DESIGN.md §11.4).
//
// The durability layer's correctness claim is "power loss at any instant
// loses at most the unflushed tail, never consistency". That claim is only
// testable if the test harness can *cause* power loss at every interesting
// instant. A crash point is a compiled-in hook on a durability-critical
// code path — before a WAL flush, between a snapshot's rename and its WAL
// reset, mid config-file write — that normally costs one mutex-guarded map
// probe and does nothing. A test arms a point (optionally with a countdown:
// "crash on the Nth hit") and the hook throws CrashError, simulating the
// process dying at exactly that instant: in-memory state is abandoned, and
// recovery must rebuild a consistent image from what reached the vfs.
//
// Points self-register on first execution, so a discovery run of a workload
// enumerates every crash point it crosses — the crash-sweep test then trips
// each of them in turn (test_durability.cpp). The catalog of shipped points
// is documented in DESIGN.md §11.4.
//
// Torn writes: a point like "wal.flush.torn" is queried with fires() by
// code that, when the point is armed, deliberately writes a *prefix* of the
// intended bytes before calling trip() — simulating the sector-granular
// partial write a real power cut leaves behind.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.hpp"

namespace rocks::support {

/// The simulated power loss. Deliberately NOT a subclass of rocks::Error:
/// generic error handling (service-manager catch blocks, retry loops) must
/// not swallow a crash — it propagates to the test harness like death.
class CrashError : public std::exception {
 public:
  explicit CrashError(std::string message) : message_(std::move(message)) {}
  [[nodiscard]] const char* what() const noexcept override { return message_.c_str(); }

 private:
  std::string message_;
};

/// Process-wide registry of crash points. Thread-safe; the common path
/// (nothing armed) is one uncontended mutex acquisition.
class CrashPoints {
 public:
  static CrashPoints& instance();

  /// Arms `name`: the countdown-th future hit of the point trips it (then
  /// the point disarms itself — one crash per arm, like one power cut).
  void arm(std::string_view name, std::uint64_t countdown = 1);
  void disarm(std::string_view name);
  void disarm_all();

  /// Registers the point and counts the hit; true when an armed countdown
  /// just expired — the caller must finish simulating the crash (possibly
  /// after leaving partial state behind) by calling trip().
  [[nodiscard]] bool fires(std::string_view name);

  /// Throws CrashError for `name`. [[noreturn]].
  [[noreturn]] void trip(std::string_view name);

  /// Every point that has ever executed (or been armed) — the sweep's
  /// work list after a discovery run.
  [[nodiscard]] std::vector<std::string> registered() const;

  [[nodiscard]] std::uint64_t hits(std::string_view name) const;
  [[nodiscard]] std::uint64_t trips() const;

 private:
  struct Point {
    std::uint64_t hits = 0;
    bool armed = false;
    std::uint64_t countdown = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Point, std::less<>> points_;
  std::uint64_t trips_ = 0;
};

/// The hook itself: registers, counts, and throws CrashError when armed.
inline void crash_point(std::string_view name) {
  auto& points = CrashPoints::instance();
  if (points.fires(name)) points.trip(name);
}

}  // namespace rocks::support
