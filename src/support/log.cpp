#include "support/log.hpp"

#include <iostream>

namespace rocks::log {
namespace {

Level g_level = Level::kOff;
std::ostream* g_sink = &std::clog;

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) { g_level = level; }
Level level() { return g_level; }
void set_sink(std::ostream* sink) { g_sink = sink != nullptr ? sink : &std::clog; }

void write(Level level, std::string_view component, std::string_view message) {
  if (level < g_level || g_level == Level::kOff) return;
  (*g_sink) << '[' << level_name(level) << "] " << component << ": " << message << '\n';
}

}  // namespace rocks::log
