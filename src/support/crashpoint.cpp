#include "support/crashpoint.hpp"

#include "support/strings.hpp"

namespace rocks::support {

CrashPoints& CrashPoints::instance() {
  static CrashPoints points;
  return points;
}

void CrashPoints::arm(std::string_view name, std::uint64_t countdown) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& point = points_[std::string(name)];
  point.armed = countdown > 0;
  point.countdown = countdown;
}

void CrashPoints::disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  if (it == points_.end()) return;
  it->second.armed = false;
  it->second.countdown = 0;
}

void CrashPoints::disarm_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, point] : points_) {
    point.armed = false;
    point.countdown = 0;
  }
}

bool CrashPoints::fires(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = points_.find(name);
  if (it == points_.end()) it = points_.emplace(std::string(name), Point{}).first;
  Point& point = it->second;
  ++point.hits;
  if (!point.armed) return false;
  if (--point.countdown > 0) return false;
  point.armed = false;  // one crash per arm
  return true;
}

void CrashPoints::trip(std::string_view name) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++trips_;
  }
  throw CrashError(strings::cat("simulated crash at '", std::string(name), "'"));
}

std::vector<std::string> CrashPoints::registered() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(points_.size());
  for (const auto& [name, point] : points_) out.push_back(name);
  return out;
}

std::uint64_t CrashPoints::hits(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t CrashPoints::trips() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

}  // namespace rocks::support
