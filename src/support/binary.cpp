#include "support/binary.hpp"

#include <cstring>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::support {

void BinaryWriter::u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out_.push_back(static_cast<char>((v >> (8 * i)) & 0xFFU));
}

void BinaryWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void BinaryWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void BinaryWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  out_.append(v);
}

void BinaryReader::need(std::size_t n) const {
  if (data_.size() - pos_ < n)
    throw ParseError(strings::cat("binary decode: need ", n, " bytes at offset ", pos_,
                                  ", only ", data_.size() - pos_, " left"));
}

std::uint8_t BinaryReader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t BinaryReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t BinaryReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data_[pos_ + i])) << (8 * i);
  pos_ += 8;
  return v;
}

std::int64_t BinaryReader::i64() { return static_cast<std::int64_t>(u64()); }

double BinaryReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view BinaryReader::str() {
  const std::uint32_t len = u32();
  need(len);
  const std::string_view out = data_.substr(pos_, len);
  pos_ += len;
  return out;
}

}  // namespace rocks::support
