#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"

namespace rocks {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void AsciiTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw StateError("AsciiTable row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ';
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };

  std::string rule = "+";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string fixed(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

}  // namespace rocks
