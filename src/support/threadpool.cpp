#include "support/threadpool.hpp"

#include <algorithm>
#include <cmath>
#include <exception>

namespace rocks::support {

ThreadPool::ThreadPool(std::size_t workers) {
  const std::size_t count = std::max<std::size_t>(1, workers);
  threads_.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::enqueue(std::function<void()> work) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back({std::move(work), std::chrono::steady_clock::now()});
    // High-water under the lock: cheap, and the exact max matters to tests.
    const std::size_t depth = queue_.size();
    if (depth > queue_high_water_.load(std::memory_order_relaxed))
      queue_high_water_.store(depth, std::memory_order_relaxed);
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain semantics: stopping_ alone doesn't end the loop — the queue
      // must be empty too, so every submitted future becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto started = std::chrono::steady_clock::now();
    wait_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(started - task.enqueued).count(),
        std::memory_order_relaxed);
    task.work();  // packaged_task: exceptions land in the future, never here
    run_ns_.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - started)
                          .count(),
                      std::memory_order_relaxed);
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Contiguous chunks, at most 4 per worker: enough slack that one slow
  // chunk doesn't idle the rest of the pool, few enough that per-task
  // overhead stays negligible against per-item work.
  const std::size_t chunks = std::min(n, size() * 4);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t begin = c * per_chunk;
    const std::size_t end = std::min(n, begin + per_chunk);
    if (begin >= end) break;
    futures.push_back(submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  // Wait for every chunk before rethrowing so no task is left touching
  // caller state after parallel_for returns.
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

double parallel_wall_seconds(std::size_t items, std::size_t workers,
                             double seconds_per_item) {
  const std::size_t lanes = std::max<std::size_t>(1, workers);
  const std::size_t rounds = (items + lanes - 1) / lanes;
  return static_cast<double>(rounds) * seconds_per_item;
}

}  // namespace rocks::support
