#include "support/crc.hpp"

#include <array>

namespace rocks::support {
namespace {

/// The classic 256-entry table for the reflected IEEE polynomial
/// 0xEDB88320, built once at static-init time.
std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xEDB88320U : 0U);
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kTable = build_table();

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const char c : data)
    crc = (crc >> 8) ^ kTable[(crc ^ static_cast<unsigned char>(c)) & 0xFFU];
  return ~crc;
}

}  // namespace rocks::support
