// Small string utilities used across rocks++.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace rocks::strings {

/// Splits `text` on every occurrence of `sep`; empty fields are preserved.
/// split("a,,b", ',') == {"a", "", "b"}; split("", ',') == {""}.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace; no empty fields are produced.
[[nodiscard]] std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing ASCII whitespace.
[[nodiscard]] std::string_view trim(std::string_view text);

/// Joins `parts` with `sep` between consecutive elements.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing (locale independent).
[[nodiscard]] std::string to_lower(std::string_view text);

[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// True when `text` contains `needle`.
[[nodiscard]] bool contains(std::string_view text, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view text, std::string_view from,
                                      std::string_view to);

/// Glob-style match supporting '*' (any run) and '?' (any one char).
/// Used by package-name patterns and cluster-fork host selectors.
[[nodiscard]] bool glob_match(std::string_view pattern, std::string_view text);

namespace detail {
inline void cat_one(std::ostringstream& out) { (void)out; }
template <typename T, typename... Rest>
void cat_one(std::ostringstream& out, const T& head, const Rest&... rest) {
  out << head;
  cat_one(out, rest...);
}
}  // namespace detail

/// Streams every argument into one std::string. cat("n=", 4) == "n=4".
template <typename... Args>
[[nodiscard]] std::string cat(const Args&... args) {
  std::ostringstream out;
  detail::cat_one(out, args...);
  return out.str();
}

}  // namespace rocks::strings
