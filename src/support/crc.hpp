// CRC-32 (IEEE 802.3 polynomial, reflected) for the durability layer.
//
// Every WAL record and every snapshot file carries a CRC so crash-recovery
// can tell a torn or bit-rotted tail from valid data (DESIGN.md §11). The
// checksum is for *corruption detection*, not authentication — it catches
// the failure modes a power loss or disk error produces.
#pragma once

#include <cstdint>
#include <string_view>

namespace rocks::support {

/// CRC-32 of `data`, continuing from `seed` (pass a previous result to
/// checksum discontiguous buffers as one stream). crc32("") == 0.
[[nodiscard]] std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace rocks::support
