// ASCII table rendering, used by the bench binaries to print the paper's
// tables (Table I reinstall times, Table II nodes, Table III memberships)
// in a layout directly comparable with the published ones.
#pragma once

#include <string>
#include <vector>

namespace rocks {

class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> headers);

  /// Appends one row; it must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header rule, one space of padding, columns sized to fit.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places ("10.3").
[[nodiscard]] std::string fixed(double value, int digits);

}  // namespace rocks
