// Minimal leveled logger. Quiet by default so tests and benches stay clean;
// examples raise the level to narrate what the toolkit is doing.
#pragma once

#include <ostream>
#include <string_view>

namespace rocks::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the minimum level that will be emitted (default: kOff).
void set_level(Level level);
[[nodiscard]] Level level();

/// Redirects output (default: std::clog). The stream must outlive all logging.
void set_sink(std::ostream* sink);

void write(Level level, std::string_view component, std::string_view message);

inline void debug(std::string_view component, std::string_view message) {
  write(Level::kDebug, component, message);
}
inline void info(std::string_view component, std::string_view message) {
  write(Level::kInfo, component, message);
}
inline void warn(std::string_view component, std::string_view message) {
  write(Level::kWarn, component, message);
}
inline void error(std::string_view component, std::string_view message) {
  write(Level::kError, component, message);
}

}  // namespace rocks::log
