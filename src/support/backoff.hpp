// Capped exponential backoff with jitter (DESIGN.md §12.6).
//
// One retry schedule, shared by every retry loop in the system: the node
// installer's DHCP/kickstart/download retries and the replication layer's
// follower reconnect/re-ship loop. Extracting it here keeps the two
// policies from drifting — both promise the same two properties:
//
//   1. Attempt 1 waits exactly `base`. The fault-free path (and anything
//      calibrated against it, like the Table I install timings) never
//      consults the RNG, so adding retries to a code path cannot perturb
//      deterministic timing until a fault actually occurs.
//   2. Attempt n doubles the delay up to `cap`, then multiplies by a
//      uniform draw from [1, 1 + jitter) — the jitter decorrelates a pulse
//      of peers (32 installing nodes, N reconnecting followers) that all
//      failed at the same instant, so they do not retry in lockstep.
#pragma once

#include <algorithm>

#include "support/rng.hpp"

namespace rocks::support {

struct BackoffPolicy {
  double base = 5.0;   // seconds before the first retry (exact, no jitter)
  double cap = 60.0;   // exponential growth ceiling
  double jitter = 0.25;  // delay *= [1, 1 + jitter) from the 2nd attempt on

  /// Delay in seconds before retry `attempt` (1-based). Draws from `rng`
  /// only for attempt >= 2 with a nonzero jitter.
  [[nodiscard]] double delay(int attempt, Rng& rng) const {
    if (attempt <= 1) return base;
    double d = base;
    for (int i = 1; i < attempt && d < cap; ++i) d *= 2.0;
    d = std::min(d, cap);
    if (jitter > 0.0) d *= rng.next_double_range(1.0, 1.0 + jitter);
    return d;
  }
};

}  // namespace rocks::support
