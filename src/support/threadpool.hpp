// A fixed-size worker thread pool with a FIFO work queue.
//
// The paper's frontend must survive a mass reinstall (Section 6.3): every
// compute node requests its kickstart file and pulls RPMs at once. One
// slow request must not serialize the cluster, so the serving stack —
// KickstartServer::handle_many(), rocks-dist mirror/build — fans work
// across this pool. See DESIGN.md §9 for the threading model and lock
// hierarchy.
//
// Semantics:
//   - submit(f) enqueues a task and returns a std::future for its result;
//     exceptions thrown by the task surface through future::get().
//   - parallel_for(n, fn) partitions [0, n) into contiguous chunks (at
//     most 4 per worker, for balance), runs them on the pool, blocks until
//     every index has run, and rethrows the first worker exception.
//   - Destruction drains: queued tasks still run to completion before the
//     workers exit, so a future obtained from submit() is always
//     eventually ready. Tests pin this (ThreadPoolTest.ShutdownDrains*).
//
// Per-pool stats (tasks run, queue-depth high water, cumulative queue-wait
// and run time) are kept with relaxed atomics — they are observability,
// not synchronization.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace rocks::support {

class ThreadPool {
 public:
  /// Spawns `workers` threads (0 is clamped to 1).
  explicit ThreadPool(std::size_t workers);
  /// Drains the queue — every submitted task runs — then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

  /// Enqueues `f` and returns a future for its result. Exceptions thrown by
  /// `f` propagate through the future.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    enqueue([task]() { (*task)(); });
    return result;
  }

  /// Runs fn(i) for every i in [0, n), spread across the workers in
  /// contiguous chunks. Blocks until all indexes have run; if any fn call
  /// throws, the remaining indexes of *other* chunks still run, and the
  /// first exception (in chunk order) is rethrown here. n == 0 returns
  /// immediately without touching the queue.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  // --- stats ---------------------------------------------------------------
  [[nodiscard]] std::uint64_t tasks_run() const {
    return tasks_run_.load(std::memory_order_relaxed);
  }
  /// Deepest the queue has ever been (pending tasks not yet picked up).
  [[nodiscard]] std::size_t queue_depth_high_water() const {
    return queue_high_water_.load(std::memory_order_relaxed);
  }
  /// Cumulative time tasks spent waiting in the queue before a worker
  /// picked them up.
  [[nodiscard]] std::chrono::nanoseconds total_wait() const {
    return std::chrono::nanoseconds(wait_ns_.load(std::memory_order_relaxed));
  }
  /// Cumulative time workers spent executing tasks.
  [[nodiscard]] std::chrono::nanoseconds total_run() const {
    return std::chrono::nanoseconds(run_ns_.load(std::memory_order_relaxed));
  }

 private:
  struct QueuedTask {
    std::function<void()> work;
    std::chrono::steady_clock::time_point enqueued;
  };

  void enqueue(std::function<void()> work);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<QueuedTask> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::size_t> queue_high_water_{0};
  std::atomic<std::uint64_t> wait_ns_{0};
  std::atomic<std::uint64_t> run_ns_{0};
};

/// Simulated-wall-clock helper shared by the serving cost models: the time
/// `items` uniform tasks of `seconds_per_item` take on `workers` parallel
/// lanes — ceil(items/workers) rounds of one item each. workers == 0 is
/// treated as 1.
[[nodiscard]] double parallel_wall_seconds(std::size_t items, std::size_t workers,
                                           double seconds_per_item);

}  // namespace rocks::support
