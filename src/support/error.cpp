#include "support/error.hpp"

namespace rocks {

void require_found(bool condition, const std::string& message) {
  if (!condition) throw LookupError(message);
}

void require_state(bool condition, const std::string& message) {
  if (!condition) throw StateError(message);
}

}  // namespace rocks
