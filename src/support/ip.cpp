#include "support/ip.hpp"

#include <cctype>
#include <cstdio>

#include "support/strings.hpp"

namespace rocks {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  const auto parts = strings::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    for (char c : part) {
      if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
      octet = octet * 10 + static_cast<unsigned>(c - '0');
    }
    if (octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4(value);
}

std::string Ipv4::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xFF, (value_ >> 16) & 0xFF,
                (value_ >> 8) & 0xFF, value_ & 0xFF);
  return buf;
}

std::optional<Mac> Mac::parse(std::string_view text) {
  const auto parts = strings::split(text, ':');
  if (parts.size() != 6) return std::nullopt;
  std::uint64_t value = 0;
  for (const auto& part : parts) {
    if (part.empty() || part.size() > 2) return std::nullopt;
    unsigned byte = 0;
    for (char c : part) {
      const unsigned char uc = static_cast<unsigned char>(c);
      unsigned digit;
      if (std::isdigit(uc)) {
        digit = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<unsigned>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
      byte = byte * 16 + digit;
    }
    value = (value << 8) | byte;
  }
  return Mac(value);
}

std::string Mac::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 40) & 0xFF),
                static_cast<unsigned>((value_ >> 32) & 0xFF),
                static_cast<unsigned>((value_ >> 24) & 0xFF),
                static_cast<unsigned>((value_ >> 16) & 0xFF),
                static_cast<unsigned>((value_ >> 8) & 0xFF),
                static_cast<unsigned>(value_ & 0xFF));
  return buf;
}

}  // namespace rocks
