#include "events/bus.hpp"

#include <algorithm>

#include "sqldb/journal.hpp"
#include "support/error.hpp"

namespace rocks::events {

namespace {

constexpr std::string_view kTypeNames[kEventTypeCount] = {
    "node-state",        // kNodeState
    "node-down",         // kNodeDown
    "node-up",           // kNodeUp
    "membership",        // kMembership
    "health-summary",    // kHealthSummary
    "replication-epoch", // kReplicationEpoch
    "replication-lag",   // kReplicationLag
    "quorum",            // kQuorum
    "service-flush",     // kServiceFlush
    "config-change",     // kConfigChange
    "fault",             // kFault
    "recovery",          // kRecovery
    "job",               // kJob
    "node-alloc",        // kNodeAlloc
    "trigger",           // kTrigger
};

}  // namespace

std::string_view event_type_name(EventType type) {
  return kTypeNames[static_cast<std::size_t>(type)];
}

bool parse_event_type(std::string_view name, EventType& out) {
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    if (kTypeNames[i] == name) {
      out = static_cast<EventType>(i);
      return true;
    }
  }
  return false;
}

EventBus::EventBus(Clock clock, std::size_t capacity)
    : clock_(std::move(clock)), capacity_(std::max<std::size_t>(capacity, 1)) {}

EventBus::~EventBus() { unbridge_journal(); }

std::uint64_t EventBus::publish(Event event) {
  if (event.time == 0.0 && clock_) event.time = clock_();
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(state_mutex_);
    Channel& channel = channels_[static_cast<std::size_t>(event.type)];
    seq = ++channel.seq;
    event.seq = seq;
    channel.log.push_back(event);
    while (channel.log.size() > capacity_) {
      channel.floor = channel.log.front().seq;
      channel.log.pop_front();
    }
    ++published_;
  }

  // Copy out the matching callbacks, then invoke with both locks dropped —
  // a subscriber may publish, subscribe, or re-enter the Database.
  std::vector<std::shared_ptr<Callback>> callbacks;
  {
    std::lock_guard lock(subscriber_mutex_);
    for (const auto& [id, sub] : subscribers_) {
      if (sub.type < 0 || sub.type == static_cast<int>(event.type))
        callbacks.push_back(sub.callback);
    }
    notifications_sent_ += callbacks.size();
  }
  for (const auto& callback : callbacks) (*callback)(event);
  return seq;
}

std::size_t EventBus::subscribe(EventType type, Callback callback) {
  std::lock_guard lock(subscriber_mutex_);
  const std::size_t id = next_subscription_++;
  subscribers_.emplace(id, Subscriber{static_cast<int>(type),
                                      std::make_shared<Callback>(std::move(callback))});
  return id;
}

std::size_t EventBus::subscribe_all(Callback callback) {
  std::lock_guard lock(subscriber_mutex_);
  const std::size_t id = next_subscription_++;
  subscribers_.emplace(id, Subscriber{-1, std::make_shared<Callback>(std::move(callback))});
  return id;
}

void EventBus::unsubscribe(std::size_t id) {
  std::lock_guard lock(subscriber_mutex_);
  subscribers_.erase(id);
}

std::uint64_t EventBus::seq(EventType type) const {
  std::lock_guard lock(state_mutex_);
  return channels_[static_cast<std::size_t>(type)].seq;
}

EventDelta EventBus::since(EventType type, std::uint64_t seq) const {
  std::lock_guard lock(state_mutex_);
  const Channel& channel = channels_[static_cast<std::size_t>(type)];
  EventDelta delta;
  delta.seq = channel.seq;
  delta.floor = channel.floor;
  if (seq >= channel.seq) return delta;  // already current
  if (seq < channel.floor) {
    delta.truncated = true;  // the log no longer reaches back that far
    return delta;
  }
  for (const Event& event : channel.log)
    if (event.seq > seq) delta.events.push_back(event);
  return delta;
}

std::vector<Event> EventBus::recent(EventType type, std::size_t limit) const {
  std::lock_guard lock(state_mutex_);
  const Channel& channel = channels_[static_cast<std::size_t>(type)];
  const std::size_t n = std::min(limit, channel.log.size());
  return {channel.log.end() - static_cast<std::ptrdiff_t>(n), channel.log.end()};
}

void EventBus::bridge_journal(sqldb::ChangeJournal& journal) {
  require_state(bridged_ == nullptr, "EventBus: a journal is already bridged");
  bridged_ = &journal;
  bridge_subscription_ = journal.subscribe(
      sqldb::ChangeJournal::kAllChannels,
      [this](std::string_view channel, std::uint64_t revision) {
        publish(Event{EventType::kConfigChange, std::string(channel), "",
                      static_cast<double>(revision), 0.0, 0});
      });
}

void EventBus::unbridge_journal() {
  if (bridged_ == nullptr) return;
  bridged_->unsubscribe(bridge_subscription_);
  bridged_ = nullptr;
  bridge_subscription_ = 0;
}

std::uint64_t EventBus::published() const {
  std::lock_guard lock(state_mutex_);
  return published_;
}

std::uint64_t EventBus::notifications_sent() const {
  std::lock_guard lock(subscriber_mutex_);
  return notifications_sent_;
}

}  // namespace rocks::events
