// The cluster-wide event spine (DESIGN.md §15).
//
// PR 4's ChangeJournal proved the shape — per-channel monotonic revisions, a
// bounded retained log with a truncation floor, subscribers notified outside
// all locks — but only configuration regeneration ever rode it. Meanwhile
// every other signal in the system grew its own ad-hoc path: the health
// monitor kept a private last-seen table, recovery swept the cluster for
// failed installs, replication surfaced quorum loss only as a thrown
// exception, fault injection counted silently into a stats struct. The CERN
// and Brookhaven large-cluster reports (PAPERS.md) name exactly this —
// per-subsystem monitoring that does not compose — as what breaks past a
// thousand nodes.
//
// EventBus generalizes the journal's (channel, revision, record) model to
// typed cluster events. A channel is an EventType; a revision is the
// channel's monotonic sequence number; a record is the full Event. Producers
// publish; consumers either subscribe (callbacks, for the trigger engine and
// dirty tracking) or cursor-read with since() (for operator tools), with the
// same truncation-floor contract the ChangeJournal gives IncrementalReport:
// a cursor below the floor is told to rescan, never handed a gapped delta.
//
// Locking mirrors ChangeJournal: two leaf mutexes (channel state,
// subscriber list), callbacks run on the publishing thread after both are
// dropped. Publishers may be any committing thread (the journal bridge runs
// from Database::execute's notify path), so subscribers must either do
// thread-safe work or serialize internally (TriggerEngine does the latter).
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rocks::sqldb {
class ChangeJournal;
}

namespace rocks::events {

enum class EventType : std::uint8_t {
  kNodeState,         // installer state machine moved; subject=host, detail=state
  kNodeDown,          // health aggregation declared a node dead; subject=host
  kNodeUp,            // ... and alive again
  kMembership,        // insert-ethers registered a node; subject=host
  kHealthSummary,     // aggregation root changed; value=alive count
  kReplicationEpoch,  // leadership change; subject=leader, value=epoch
  kReplicationLag,    // follower lag/link transition; subject=follower
  kQuorum,            // quorum lost/restored; value=acks
  kServiceFlush,      // a service restarted on new config; subject=service
  kConfigChange,      // bridged ChangeJournal channel; subject=channel
  kFault,             // an injected fault landed; subject=fault kind
  kRecovery,          // recovery ladder action; subject=host
  kJob,               // batch job transition; subject=job name,
                      // detail=queued/start/end/cancel/requeue, value=job id
  kNodeAlloc,         // batch node lifecycle; subject=host,
                      // detail=drain/down/reinstall/rejoin/pending
  kTrigger,           // a trigger fired; subject=trigger name
};

/// Number of channels (for dense per-type arrays).
inline constexpr std::size_t kEventTypeCount =
    static_cast<std::size_t>(EventType::kTrigger) + 1;

[[nodiscard]] std::string_view event_type_name(EventType type);
/// Inverse of event_type_name; returns false for unknown names.
[[nodiscard]] bool parse_event_type(std::string_view name, EventType& out);

struct Event {
  EventType type = EventType::kNodeState;
  std::string subject;  // who: host / service / follower / channel name
  std::string detail;   // what: state name, "lost", "disconnected", ...
  double value = 0.0;   // how much: epoch, lag, alive count, ...
  double time = 0.0;    // simulation clock at publish (bus clock)
  std::uint64_t seq = 0;  // per-channel monotonic, assigned by publish()
};

/// Cursor read result, mirroring sqldb::ChangeDelta: either the exact events
/// moving the cursor to `seq`, or truncated == true with the floor below
/// which the retained log no longer reaches.
struct EventDelta {
  bool truncated = false;
  std::uint64_t seq = 0;
  std::uint64_t floor = 0;
  std::vector<Event> events;  // empty when truncated
};

class EventBus {
 public:
  using Callback = std::function<void(const Event&)>;
  using Clock = std::function<double()>;

  /// Per-channel retained-log bound. Sized like the ChangeJournal's: big
  /// enough that an operator tool polling between flushes stays incremental,
  /// small enough that an unconsumed channel cannot grow without bound.
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit EventBus(Clock clock = {}, std::size_t capacity = kDefaultCapacity);
  ~EventBus();

  // Subscriptions hand out ids; copying would fork the id space.
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  /// Publishes one event: stamps time (from the clock, unless the caller set
  /// a nonzero time) and the channel's next sequence number, appends it to
  /// the retained log, and notifies typed + wildcard subscribers after all
  /// bus locks are dropped. Returns the assigned sequence number.
  std::uint64_t publish(Event event);

  /// Registers a callback for one channel. Safe to call concurrently with
  /// publishes; the callback runs on publishing threads.
  std::size_t subscribe(EventType type, Callback callback);
  /// Registers a wildcard callback receiving every event on the bus.
  std::size_t subscribe_all(Callback callback);
  /// Does not wait for in-flight callbacks — quiesce publishers before
  /// destroying a subscriber.
  void unsubscribe(std::size_t id);

  /// Newest sequence number of a channel; 0 when nothing was published.
  [[nodiscard]] std::uint64_t seq(EventType type) const;
  /// Every event after `seq`, or truncated == true when the retained log no
  /// longer covers the range (cursor below the floor: rescan, then resume
  /// from the returned seq).
  [[nodiscard]] EventDelta since(EventType type, std::uint64_t seq) const;
  /// The newest <= limit retained events of a channel, oldest first (the
  /// cluster-status --events tail).
  [[nodiscard]] std::vector<Event> recent(EventType type, std::size_t limit) const;

  /// Bridges a ChangeJournal onto the spine: every journal notification
  /// republishes as a kConfigChange event (subject = channel, value =
  /// revision). This is how SQL commits, graph edits, and distribution
  /// rebuilds reach bus consumers without a second subscription mechanism.
  /// The journal must outlive the bus (or call unbridge_journal first).
  void bridge_journal(sqldb::ChangeJournal& journal);
  void unbridge_journal();

  // Observability (cluster-status --events, tests).
  [[nodiscard]] std::uint64_t published() const;
  [[nodiscard]] std::uint64_t notifications_sent() const;
  [[nodiscard]] double now() const { return clock_ ? clock_() : 0.0; }

 private:
  struct Channel {
    std::uint64_t seq = 0;
    std::uint64_t floor = 0;  // oldest seq the log can still serve + 1 below
    std::deque<Event> log;
  };

  struct Subscriber {
    int type = -1;  // -1 = wildcard
    std::shared_ptr<Callback> callback;
  };

  Clock clock_;
  std::size_t capacity_;

  mutable std::mutex state_mutex_;  // guards channels_, published_
  std::array<Channel, kEventTypeCount> channels_;
  std::uint64_t published_ = 0;

  mutable std::mutex subscriber_mutex_;  // guards subscribers_, counters
  std::map<std::size_t, Subscriber> subscribers_;
  std::size_t next_subscription_ = 1;
  std::uint64_t notifications_sent_ = 0;

  sqldb::ChangeJournal* bridged_ = nullptr;
  std::size_t bridge_subscription_ = 0;
};

}  // namespace rocks::events
