#include "events/trigger.hpp"

#include <algorithm>
#include <cstdio>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::events {

namespace {

// The trigger table's own journal channel. Accounting UPDATEs republish on
// this channel through the bus bridge; the engine must never match those or
// every firing would seed the next.
constexpr std::string_view kTableChannel = "triggers";

std::string sql_text(std::string_view text) {
  std::string out = "'";
  for (char c : text) {
    out += c;
    if (c == '\'') out += c;  // doubled-quote escape
  }
  out += '\'';
  return out;
}

// Round-trippable REAL literal: rate-limit decisions made before a crash
// must replay identically from the recovered row.
std::string sql_real(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char x = a[i] >= 'A' && a[i] <= 'Z' ? static_cast<char>(a[i] + 32) : a[i];
    const char y = b[i] >= 'A' && b[i] <= 'Z' ? static_cast<char>(b[i] + 32) : b[i];
    if (x != y) return false;
  }
  return true;
}

}  // namespace

void TriggerEngine::ensure_trigger_schema(sqldb::Database& db) {
  if (db.has_table("triggers")) return;
  db.execute(
      "CREATE TABLE triggers ("
      "id INT PRIMARY KEY AUTO_INCREMENT, "
      "name TEXT, event TEXT, subject TEXT, detail TEXT, "
      "threshold REAL, action TEXT, arg TEXT, rate_limit REAL, "
      "fired INT, suppressed INT, last_fired REAL)");
}

TriggerEngine::TriggerEngine(sqldb::Database& db, EventBus& bus) : db_(db), bus_(bus) {
  ensure_trigger_schema(db_);
  load();
  // The loud default: a firing whose action is the built-in "alert" (or has
  // no registered handler at all) lands here instead of vanishing.
  actions_.emplace("alert", [this](const Event& event, const std::string& arg) {
    std::lock_guard lock(mutex_);
    alerts_.push_back(strings::cat(arg.empty() ? "alert" : arg, ": ",
                                   event_type_name(event.type), " ", event.subject,
                                   event.detail.empty() ? "" : " ", event.detail));
  });
  subscription_ = bus_.subscribe_all([this](const Event& event) { on_event(event); });
}

TriggerEngine::~TriggerEngine() { bus_.unsubscribe(subscription_); }

void TriggerEngine::register_action(std::string name, Action action) {
  std::lock_guard lock(mutex_);
  actions_[std::move(name)] = std::move(action);
}

void TriggerEngine::load() {
  const sqldb::ResultSet rows = db_.execute(
      "SELECT id, name, event, subject, detail, threshold, action, arg, "
      "rate_limit, fired, suppressed, last_fired FROM triggers");
  std::lock_guard lock(mutex_);
  triggers_.clear();
  for (std::size_t i = 0; i < rows.row_count(); ++i) {
    Armed armed;
    armed.id = rows.at(i, "id").as_int();
    armed.spec.name = rows.at(i, "name").as_text();
    EventType type{};
    require_state(parse_event_type(rows.at(i, "event").as_text(), type),
                  strings::cat("trigger '", armed.spec.name, "': unknown event type '",
                               rows.at(i, "event").as_text(), "'"));
    armed.spec.event = type;
    armed.spec.subject = rows.at(i, "subject").as_text();
    armed.spec.detail = rows.at(i, "detail").as_text();
    armed.spec.threshold = rows.at(i, "threshold").as_real();
    armed.spec.action = rows.at(i, "action").as_text();
    armed.spec.arg = rows.at(i, "arg").as_text();
    armed.spec.rate_limit = rows.at(i, "rate_limit").as_real();
    armed.fired = static_cast<std::uint64_t>(rows.at(i, "fired").as_int());
    armed.suppressed = static_cast<std::uint64_t>(rows.at(i, "suppressed").as_int());
    armed.last_fired = rows.at(i, "last_fired").as_real();
    triggers_.push_back(std::move(armed));
  }
  std::sort(triggers_.begin(), triggers_.end(),
            [](const Armed& a, const Armed& b) { return a.id < b.id; });
}

std::int64_t TriggerEngine::add(const TriggerSpec& spec) {
  require_state(!spec.name.empty(), "trigger name must not be empty");
  std::lock_guard lock(mutex_);
  for (const Armed& armed : triggers_)
    require_state(armed.spec.name != spec.name,
                  strings::cat("trigger '", spec.name, "' already registered"));
  db_.execute(strings::cat(
      "INSERT INTO triggers (name, event, subject, detail, threshold, action, "
      "arg, rate_limit, fired, suppressed, last_fired) VALUES (",
      sql_text(spec.name), ", ", sql_text(event_type_name(spec.event)), ", ",
      sql_text(spec.subject), ", ", sql_text(spec.detail), ", ",
      sql_real(spec.threshold), ", ", sql_text(spec.action), ", ", sql_text(spec.arg),
      ", ", sql_real(spec.rate_limit), ", 0, 0, -1.0)"));
  const sqldb::ResultSet row =
      db_.execute(strings::cat("SELECT id FROM triggers WHERE name = ", sql_text(spec.name)));
  require_state(row.row_count() == 1, "trigger insert did not land");
  Armed armed;
  armed.id = row.at(0, "id").as_int();
  armed.spec = spec;
  triggers_.push_back(std::move(armed));
  return triggers_.back().id;
}

void TriggerEngine::remove(std::string_view name) {
  std::lock_guard lock(mutex_);
  const auto it = std::find_if(triggers_.begin(), triggers_.end(),
                               [&](const Armed& t) { return t.spec.name == name; });
  if (it == triggers_.end()) return;
  db_.execute(strings::cat("DELETE FROM triggers WHERE id = ", it->id));
  triggers_.erase(it);
}

std::vector<TriggerStatus> TriggerEngine::list() const {
  std::lock_guard lock(mutex_);
  std::vector<TriggerStatus> out;
  out.reserve(triggers_.size());
  for (const Armed& armed : triggers_)
    out.push_back({armed.id, armed.spec, armed.fired, armed.suppressed, armed.last_fired});
  return out;
}

void TriggerEngine::persist_accounting(const Armed& trigger) {
  db_.execute(strings::cat("UPDATE triggers SET fired = ", trigger.fired,
                           ", suppressed = ", trigger.suppressed,
                           ", last_fired = ", sql_real(trigger.last_fired),
                           " WHERE id = ", trigger.id));
}

void TriggerEngine::match_locked(const Event& event, std::vector<PendingAction>& out) {
  for (Armed& armed : triggers_) {
    if (armed.spec.event != event.type) continue;
    if (!strings::glob_match(armed.spec.subject, event.subject)) continue;
    if (!strings::glob_match(armed.spec.detail, event.detail)) continue;
    if (armed.spec.threshold != 0.0 && event.value < armed.spec.threshold) continue;
    if (armed.spec.rate_limit > 0.0 && armed.last_fired >= 0.0 &&
        event.time - armed.last_fired < armed.spec.rate_limit) {
      ++armed.suppressed;
      ++suppressions_;
      persist_accounting(armed);
      continue;
    }
    ++armed.fired;
    armed.last_fired = event.time;
    ++firings_;
    persist_accounting(armed);
    PendingAction pending;
    const auto handler = actions_.find(armed.spec.action);
    pending.action = handler != actions_.end() ? handler->second : actions_.at("alert");
    pending.event = event;
    pending.arg = armed.spec.arg;
    pending.trigger = armed.spec.name;
    out.push_back(std::move(pending));
  }
}

void TriggerEngine::on_event(const Event& event) {
  // Never match our own exhaust: trigger firings, and config changes on the
  // trigger table itself (accounting UPDATEs ride the journal bridge).
  if (event.type == EventType::kTrigger) return;
  if (event.type == EventType::kConfigChange && iequals(event.subject, kTableChannel)) return;

  std::unique_lock lock(mutex_);
  queue_.push_back(event);
  if (dispatching_) return;  // an outer frame on this or another thread drains
  dispatching_ = true;
  while (!queue_.empty()) {
    const Event next = std::move(queue_.front());
    queue_.pop_front();
    ++events_seen_;
    std::vector<PendingAction> pending;
    match_locked(next, pending);
    if (pending.empty()) continue;
    // Actions run with the engine lock dropped: they commit SQL, shoot
    // nodes, publish — any of which may re-enter on_event (queued above).
    lock.unlock();
    for (PendingAction& fire : pending) {
      fire.action(fire.event, fire.arg);
      bus_.publish(Event{EventType::kTrigger, fire.trigger,
                         std::string(event_type_name(fire.event.type)), fire.event.value,
                         fire.event.time, 0});
    }
    lock.lock();
  }
  dispatching_ = false;
}

}  // namespace rocks::events
