// Hierarchical health aggregation (DESIGN.md §15.4).
//
// The seed monitor kept one flat last-seen table and answered "who is dead?"
// by scanning it — O(n) on the frontend per query, the exact pattern the
// Brookhaven scalability paper says falls over past a few thousand nodes.
// Real Ganglia never did that: gmond aggregates per multicast domain (a
// rack), gmetad federates the domains into a tree. HealthAggregator is that
// tree over the netsim rack topology.
//
// Shape: endpoints (nodes) group into leaves of `leaf_size` (one per rack —
// the monitor wires leaf_size to the topology's nodes_per_rack), leaves
// group under interior nodes of `fanout`, up to a single root. 100k nodes at
// 32/32 is 3125 leaves -> 98 -> 4 -> 1: four levels.
//
// Rollup is round-based and synchronous, like a gmetad polling sweep: in one
// rollup_round(), every dirty tree node recomputes its pending summary from
// its children's *published* summaries, and only then does the whole level
// set commit (pending -> published, parent marked dirty). Information moves
// exactly one level per round, so a leaf change reaches the root in depth()
// rounds — convergence is O(depth), never O(n), and the bench asserts it.
// Work per round is proportional to *changed* subtrees: an idle leaf whose
// earliest possible death (min last-seen + dead_after) lies in the future is
// skipped without touching its endpoints, so a quiet 100k-node cluster rolls
// up in O(1).
//
// Liveness matches the seed monitor exactly: an endpoint is alive iff it has
// ever heartbeated and its last heartbeat is at most dead_after old.
// Transitions publish kNodeUp / kNodeDown on the bus as the *leaf* discovers
// them (round 1), root summary changes publish kHealthSummary — this is what
// the trigger engine's self-healing predicates consume.
//
// Single-threaded by design: it lives on the simulation thread next to the
// Simulator. (The bus it publishes into is thread-safe; the tree is not.)
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "events/bus.hpp"

namespace rocks::events {

struct AggregatorConfig {
  std::size_t leaf_size = 32;  // endpoints per leaf (rack)
  std::size_t fanout = 32;     // children per interior node
  double dead_after = 30.0;    // silence threshold, seconds
};

/// One subtree's rolled-up state.
struct HealthSummary {
  std::size_t total = 0;
  std::size_t alive = 0;
  [[nodiscard]] std::size_t dead() const { return total - alive; }
  bool operator==(const HealthSummary& o) const {
    return total == o.total && alive == o.alive;
  }
};

class HealthAggregator {
 public:
  /// `bus` may be null (bench harnesses measure pure rollup).
  explicit HealthAggregator(AggregatorConfig config = {}, EventBus* bus = nullptr);

  /// Grows the endpoint space to `count` (monotonic; shrinking throws).
  /// New endpoints have never heartbeated, i.e. start dead — matching the
  /// seed monitor, where a node is not alive until its first beat lands.
  /// Rebuilds the tree; cheap relative to the endpoints themselves.
  void register_endpoints(std::size_t count);
  [[nodiscard]] std::size_t endpoint_count() const { return endpoints_.size(); }

  /// Display name used as the event subject ("compute-0-17"); defaults to
  /// the endpoint index rendered as text.
  void set_name(std::size_t endpoint, std::string name);

  /// Records a heartbeat. O(1): stamps last-seen and dirties the leaf; the
  /// liveness flip itself happens in the next rollup round.
  void heartbeat(std::size_t endpoint, double now);

  /// One synchronous rollup round at time `now`: dirty leaves rescan their
  /// endpoints (publishing kNodeUp/kNodeDown transitions), dirty interior
  /// nodes re-sum their children's published summaries, then every pending
  /// summary commits and dirties its parent. Returns the number of tree
  /// nodes that did work (0 = converged).
  std::size_t rollup_round(double now);

  /// Runs rollup rounds until one does no work; returns how many ran.
  /// Bounded by depth() + 1 per disturbance batch — the O(depth) claim.
  std::size_t converge(double now);

  /// Tree levels, leaves included (the convergence bound).
  [[nodiscard]] std::size_t depth() const { return levels_.size(); }
  /// The root's committed summary (stale until converge()).
  [[nodiscard]] HealthSummary root() const;
  /// Names of endpoints the committed tree currently holds dead, sorted.
  [[nodiscard]] std::vector<std::string> dead_endpoints() const;
  /// Committed liveness of one endpoint.
  [[nodiscard]] bool alive(std::size_t endpoint) const;
  /// Last heartbeat time; < 0 = never.
  [[nodiscard]] double last_seen(std::size_t endpoint) const;

  // Observability (bench_events): cumulative tree-node recomputations and
  // committed root versions.
  [[nodiscard]] std::uint64_t rollup_work() const { return rollup_work_; }
  [[nodiscard]] std::uint64_t root_version() const { return root_version_; }

 private:
  struct Endpoint {
    double last_seen = -1.0;
    bool alive = false;  // committed liveness (as of the leaf's last rescan)
    std::string name;
  };

  struct TreeNode {
    HealthSummary published;
    HealthSummary pending;
    bool has_pending = false;
    bool dirty = true;  // needs recompute next round
    // Leaves only: earliest time an alive endpoint can cross dead_after.
    double next_deadline = std::numeric_limits<double>::infinity();
  };

  void rebuild_tree();
  /// Rescans one leaf's endpoints at `now`, publishing transitions and
  /// refreshing next_deadline; returns its new summary.
  HealthSummary scan_leaf(std::size_t leaf, double now);
  [[nodiscard]] std::string endpoint_name(std::size_t endpoint) const;

  AggregatorConfig config_;
  EventBus* bus_;
  std::vector<Endpoint> endpoints_;
  // levels_[0] = leaves, levels_.back() = single root.
  std::vector<std::vector<TreeNode>> levels_;
  std::uint64_t rollup_work_ = 0;
  std::uint64_t root_version_ = 0;
};

}  // namespace rocks::events
