#include "events/aggregator.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace rocks::events {

HealthAggregator::HealthAggregator(AggregatorConfig config, EventBus* bus)
    : config_(config), bus_(bus) {
  config_.leaf_size = std::max<std::size_t>(config_.leaf_size, 1);
  config_.fanout = std::max<std::size_t>(config_.fanout, 2);
}

void HealthAggregator::register_endpoints(std::size_t count) {
  require_state(count >= endpoints_.size(),
                "HealthAggregator: endpoint space only grows");
  if (count == endpoints_.size()) return;
  endpoints_.resize(count);
  rebuild_tree();
}

void HealthAggregator::rebuild_tree() {
  levels_.clear();
  if (endpoints_.empty()) return;
  std::size_t width = (endpoints_.size() + config_.leaf_size - 1) / config_.leaf_size;
  levels_.emplace_back(width);  // leaves; all dirty, summaries re-derived
  while (width > 1) {
    width = (width + config_.fanout - 1) / config_.fanout;
    levels_.emplace_back(width);
  }
}

void HealthAggregator::set_name(std::size_t endpoint, std::string name) {
  endpoints_.at(endpoint).name = std::move(name);
}

std::string HealthAggregator::endpoint_name(std::size_t endpoint) const {
  const std::string& name = endpoints_[endpoint].name;
  return name.empty() ? std::to_string(endpoint) : name;
}

void HealthAggregator::heartbeat(std::size_t endpoint, double now) {
  Endpoint& ep = endpoints_.at(endpoint);
  ep.last_seen = now;
  levels_[0][endpoint / config_.leaf_size].dirty = true;
}

HealthSummary HealthAggregator::scan_leaf(std::size_t leaf, double now) {
  TreeNode& node = levels_[0][leaf];
  const std::size_t begin = leaf * config_.leaf_size;
  const std::size_t end = std::min(endpoints_.size(), begin + config_.leaf_size);
  HealthSummary summary;
  summary.total = end - begin;
  node.next_deadline = std::numeric_limits<double>::infinity();
  for (std::size_t i = begin; i < end; ++i) {
    Endpoint& ep = endpoints_[i];
    const bool alive = ep.last_seen >= 0.0 && now - ep.last_seen <= config_.dead_after;
    if (alive != ep.alive) {
      ep.alive = alive;
      if (bus_ != nullptr)
        bus_->publish(Event{alive ? EventType::kNodeUp : EventType::kNodeDown,
                            endpoint_name(i), alive ? "alive" : "silent",
                            now - ep.last_seen, now, 0});
    }
    if (alive) {
      ++summary.alive;
      node.next_deadline =
          std::min(node.next_deadline, ep.last_seen + config_.dead_after);
    }
  }
  return summary;
}

std::size_t HealthAggregator::rollup_round(double now) {
  if (levels_.empty()) return 0;
  std::size_t work = 0;

  // Phase A: recompute pending summaries against *published* child state.
  // Leaves rescan when a heartbeat dirtied them or an alive endpoint's
  // death deadline passed; untouched leaves cost nothing.
  std::vector<TreeNode>& leaves = levels_[0];
  for (std::size_t leaf = 0; leaf < leaves.size(); ++leaf) {
    TreeNode& node = leaves[leaf];
    if (!node.dirty && now <= node.next_deadline) continue;
    node.dirty = false;
    ++work;
    const HealthSummary summary = scan_leaf(leaf, now);
    if (!(summary == node.published)) {
      node.pending = summary;
      node.has_pending = true;
    }
  }
  for (std::size_t level = 1; level < levels_.size(); ++level) {
    std::vector<TreeNode>& row = levels_[level];
    const std::vector<TreeNode>& children = levels_[level - 1];
    for (std::size_t i = 0; i < row.size(); ++i) {
      TreeNode& node = row[i];
      if (!node.dirty) continue;
      node.dirty = false;
      ++work;
      HealthSummary summary;
      const std::size_t begin = i * config_.fanout;
      const std::size_t end = std::min(children.size(), begin + config_.fanout);
      for (std::size_t c = begin; c < end; ++c) {
        summary.total += children[c].published.total;
        summary.alive += children[c].published.alive;
      }
      if (!(summary == node.published)) {
        node.pending = summary;
        node.has_pending = true;
      }
    }
  }

  // Phase B: commit. Only now do parents see the new child summaries — next
  // round they recompute, so information climbs one level per round.
  for (std::size_t level = 0; level < levels_.size(); ++level) {
    std::vector<TreeNode>& row = levels_[level];
    for (std::size_t i = 0; i < row.size(); ++i) {
      TreeNode& node = row[i];
      if (!node.has_pending) continue;
      node.published = node.pending;
      node.has_pending = false;
      if (level + 1 < levels_.size()) {
        levels_[level + 1][i / config_.fanout].dirty = true;
      } else {
        ++root_version_;
        if (bus_ != nullptr)
          bus_->publish(Event{EventType::kHealthSummary, "cluster",
                              std::to_string(node.published.dead()) + " dead",
                              static_cast<double>(node.published.alive), now, 0});
      }
    }
  }

  rollup_work_ += work;
  return work;
}

std::size_t HealthAggregator::converge(double now) {
  std::size_t rounds = 0;
  while (rollup_round(now) > 0) ++rounds;
  return rounds;
}

HealthSummary HealthAggregator::root() const {
  return levels_.empty() ? HealthSummary{} : levels_.back().front().published;
}

std::vector<std::string> HealthAggregator::dead_endpoints() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < endpoints_.size(); ++i)
    if (!endpoints_[i].alive) out.push_back(endpoint_name(i));
  std::sort(out.begin(), out.end());
  return out;
}

bool HealthAggregator::alive(std::size_t endpoint) const {
  return endpoints_.at(endpoint).alive;
}

double HealthAggregator::last_seen(std::size_t endpoint) const {
  return endpoints_.at(endpoint).last_seen;
}

}  // namespace rocks::events
