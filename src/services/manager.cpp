#include "services/manager.hpp"

#include <exception>

#include "support/crashpoint.hpp"
#include "support/strings.hpp"
#include "vfs/path.hpp"

namespace rocks::services {

ServiceManager::~ServiceManager() { detach(); }

void ServiceManager::register_service(std::string name, std::string config_path,
                                      Generator generator, std::vector<std::string> tables) {
  for (std::string& table : tables) table = strings::to_lower(table);
  // Service is neither copyable nor movable (atomic dirty flag), so build
  // it in place; re-registering a name replaces the old entry.
  services_.erase(name);
  const auto it = services_.try_emplace(std::move(name)).first;
  it->second.config_path = std::move(config_path);
  it->second.generator = std::move(generator);
  it->second.tables = std::move(tables);
}

void ServiceManager::attach(sqldb::ChangeJournal& journal) {
  detach();
  journal_ = &journal;
  // One wildcard subscription; the callback fans the channel out to the
  // services that declared it. Only atomic flags are touched, so this is
  // safe from any committing thread.
  subscription_ = journal.subscribe(
      sqldb::ChangeJournal::kAllChannels,
      [this](std::string_view channel, std::uint64_t) { mark_dirty(channel); });
}

void ServiceManager::attach(events::EventBus& bus) {
  detach();
  bus_ = &bus;
  // The spine's kConfigChange channel carries every journal notification
  // (subject = channel name), so this is the journal wildcard subscription
  // routed through one more hop — same atomic-flag-only callback.
  bus_subscription_ = bus.subscribe(
      events::EventType::kConfigChange,
      [this](const events::Event& event) { mark_dirty(event.subject); });
}

void ServiceManager::detach() {
  if (journal_ != nullptr) {
    journal_->unsubscribe(subscription_);
    journal_ = nullptr;
    subscription_ = 0;
  }
  if (bus_ != nullptr) {
    bus_->unsubscribe(bus_subscription_);
    bus_ = nullptr;
    bus_subscription_ = 0;
  }
}

void ServiceManager::mark_dirty(std::string_view table) {
  const std::string lowered = strings::to_lower(table);
  for (auto& [name, service] : services_) {
    if (service.tables.empty()) {
      service.dirty.store(true, std::memory_order_release);
      continue;
    }
    for (const std::string& dep : service.tables) {
      if (dep == lowered) {
        service.dirty.store(true, std::memory_order_release);
        break;
      }
    }
  }
}

void ServiceManager::mark_all_dirty() {
  for (auto& [name, service] : services_)
    service.dirty.store(true, std::memory_order_release);
}

bool ServiceManager::dirty(std::string_view service) const {
  const auto it = services_.find(service);
  return it != services_.end() && it->second.dirty.load(std::memory_order_acquire);
}

ServiceManager::Report ServiceManager::regenerate(sqldb::Database& db, vfs::FileSystem& fs) {
  Report report;
  for (auto& [name, service] : services_) {
    // Detached managers keep the original regenerate-everything behaviour.
    // Clear the flag *before* rendering: a commit landing mid-render
    // re-marks the service and the next flush catches it.
    if (attached() && !service.dirty.exchange(false, std::memory_order_acq_rel)) continue;

    std::string fresh;
    try {
      fresh = service.generator(db);
      ++service.generator_runs;
    } catch (const std::exception& error) {
      // Keep flushing the remaining services; this one stays dirty and is
      // retried next time.
      service.dirty.store(true, std::memory_order_release);
      report.failed.push_back(name);
      report.failure_reasons.push_back(error.what());
      continue;
    }

    const std::uint64_t fresh_hash = vfs::content_hash(fresh);
    bool changed;
    if (!fs.is_file(service.config_path)) {
      changed = true;
    } else if (service.last_hash && fs.file_hash(service.config_path) == *service.last_hash) {
      // The file is still exactly what we last wrote: hash-to-hash compare,
      // no byte comparison.
      ++hash_compares_;
      changed = fresh_hash != *service.last_hash;
    } else {
      // Externally modified (or written before hashes were tracked) —
      // distrust our record and compare against the actual bytes.
      ++read_fallbacks_;
      changed = fs.read_file(service.config_path) != fresh;
    }
    if (!changed) {
      service.last_hash = fresh_hash;
      continue;
    }
    fs.mkdir_p(vfs::dirname(service.config_path));
    // Atomic publication (DESIGN.md §11): write the full content to a temp
    // file, then rename over the live path. A daemon reading its config
    // concurrently — or a crash at any instant — observes the old file or
    // the new one, never a partial write. A stale .tmp from an earlier
    // crash is simply overwritten here.
    const std::string tmp_path = strings::cat(service.config_path, ".tmp");
    auto& points = support::CrashPoints::instance();
    if (points.fires("services.config.tmp.torn")) {
      // Simulated crash mid-write: half the bytes land in the temp file.
      // The live config path is untouched — that is the invariant.
      fs.write_file(tmp_path, fresh.substr(0, fresh.size() / 2));
      points.trip("services.config.tmp.torn");
    }
    // Hand over the bytes and their digest: no copy, and the next flush's
    // file_hash is a cache read instead of a re-hash (the hash cache moves
    // with the node through the rename).
    fs.write_file(tmp_path, std::move(fresh), 0, fresh_hash);
    support::crash_point("services.config.rename.before");
    fs.rename(tmp_path, service.config_path);
    support::crash_point("services.config.rename.after");
    service.last_hash = fresh_hash;
    ++service.restarts;
    report.restarted.push_back(name);
  }
  return report;
}

std::uint64_t ServiceManager::restarts(std::string_view service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? 0 : it->second.restarts;
}

std::uint64_t ServiceManager::total_restarts() const {
  std::uint64_t total = 0;
  for (const auto& [name, service] : services_) total += service.restarts;
  return total;
}

std::uint64_t ServiceManager::generator_runs(std::string_view service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? 0 : it->second.generator_runs;
}

std::vector<std::string> ServiceManager::service_names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, service] : services_) out.push_back(name);
  return out;
}

}  // namespace rocks::services
