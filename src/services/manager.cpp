#include "services/manager.hpp"

#include "vfs/path.hpp"

namespace rocks::services {

void ServiceManager::register_service(std::string name, std::string config_path,
                                      Generator generator) {
  services_.insert_or_assign(std::move(name),
                             Service{std::move(config_path), std::move(generator), 0});
}

std::vector<std::string> ServiceManager::regenerate(sqldb::Database& db, vfs::FileSystem& fs) {
  std::vector<std::string> restarted;
  for (auto& [name, service] : services_) {
    const std::string fresh = service.generator(db);
    const bool changed =
        !fs.is_file(service.config_path) || fs.read_file(service.config_path) != fresh;
    if (!changed) continue;
    fs.mkdir_p(vfs::dirname(service.config_path));
    if (fs.exists(service.config_path)) fs.remove(service.config_path);
    fs.write_file(service.config_path, fresh);
    ++service.restarts;
    restarted.push_back(name);
  }
  return restarted;
}

std::uint64_t ServiceManager::restarts(std::string_view service) const {
  const auto it = services_.find(service);
  return it == services_.end() ? 0 : it->second.restarts;
}

std::uint64_t ServiceManager::total_restarts() const {
  std::uint64_t total = 0;
  for (const auto& [name, service] : services_) total += service.restarts;
  return total;
}

std::vector<std::string> ServiceManager::service_names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, service] : services_) out.push_back(name);
  return out;
}

}  // namespace rocks::services
