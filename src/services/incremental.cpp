#include "services/incremental.hpp"

#include <algorithm>

namespace rocks::services {

bool SortKeyLess::operator()(const sqldb::Row& a, const sqldb::Row& b) const {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int cmp = a[i].compare(b[i]);
    if (cmp != 0) return cmp < 0;
  }
  return a.size() < b.size();
}

std::string IncrementalReport::render(sqldb::Database& db) {
  // Read the cursors *before* querying: changes committed between the
  // revision read and the SELECT are re-applied on the next render, which
  // the idempotent re-fetch tolerates.
  const std::uint64_t revision = db.revision(spec_.table);
  std::vector<std::uint64_t> rescan_now;
  rescan_now.reserve(spec_.rescan_tables.size());
  for (const std::string& table : spec_.rescan_tables)
    rescan_now.push_back(db.revision(table));

  bool full = !primed_ || rescan_now != rescan_cursors_;
  sqldb::ChangeDelta delta;
  if (!full) {
    delta = db.since(spec_.table, cursor_);
    full = delta.truncated;
  }

  if (full) {
    rebuild(db);
    cursor_ = revision;
  } else {
    // One pinned read view for the whole delta: every per-PK re-fetch
    // resolves against the same committed state, so a writer landing
    // mid-delta cannot make two re-fetched lines disagree. The view is
    // pinned *after* since(), so it sees at least the delta's revision;
    // anything newer it happens to observe is re-applied idempotently on
    // the next render.
    sqldb::ReadView view = db.read_view();
    for (const sqldb::ChangeRecord& record : delta.changes) apply_one(view, record);
    if (!delta.changes.empty()) ++delta_applies_;
    cursor_ = delta.revision;
  }
  rescan_cursors_ = std::move(rescan_now);
  primed_ = true;

  std::string out = spec_.header;
  out.reserve(std::max(out.size(), last_render_size_));  // one allocation, not log N
  for (const auto& [key, line] : lines_) out += line;
  last_render_size_ = out.size();
  return out;
}

void IncrementalReport::rebuild(sqldb::Database& db) {
  lines_.clear();
  key_by_pk_.clear();
  const sqldb::ResultSet rows = db.execute(spec_.select_all);
  for (std::size_t i = 0; i < rows.row_count(); ++i) {
    sqldb::Row key = spec_.key_of(rows, i);
    // The key's tie-break column is the PK (unique), so collisions cannot
    // happen in a rebuild; last-write-wins keeps this total anyway.
    key_by_pk_.insert_or_assign(key.back(), key);
    lines_.insert_or_assign(std::move(key), spec_.render_row(rows, i));
  }
  ++full_rebuilds_;
}

void IncrementalReport::apply_one(sqldb::ReadView& view, const sqldb::ChangeRecord& record) {
  if (record.op == sqldb::ChangeOp::kDelete) {
    erase_pk(record.pk);
    return;
  }
  // Insert or update: re-fetch the row's state as of the pinned view. A
  // stale record (row since deleted, or filtered out) yields zero rows.
  const sqldb::ResultSet rows = view.execute(spec_.select_one(record.pk));
  if (rows.row_count() == 0) {
    erase_pk(record.pk);
    return;
  }
  sqldb::Row key = spec_.key_of(rows, 0);
  upsert(record.pk, std::move(key), spec_.render_row(rows, 0));
}

void IncrementalReport::upsert(const sqldb::Value& pk, sqldb::Row key, std::string line) {
  const auto it = key_by_pk_.find(pk);
  if (it != key_by_pk_.end()) {
    if (!SortKeyLess{}(it->second, key) && !SortKeyLess{}(key, it->second)) {
      // Key unchanged: replace the line in place.
      lines_[key] = std::move(line);
      return;
    }
    lines_.erase(it->second);  // key changed: the line moves within the file
    key_by_pk_.erase(it);
  }
  key_by_pk_.insert_or_assign(pk, key);
  lines_.insert_or_assign(std::move(key), std::move(line));
}

void IncrementalReport::erase_pk(const sqldb::Value& pk) {
  const auto it = key_by_pk_.find(pk);
  if (it == key_by_pk_.end()) return;  // idempotent: already gone
  lines_.erase(it->second);
  key_by_pk_.erase(it);
}

}  // namespace rocks::services
