// Service-specific configuration files generated from the SQL database.
//
// "Rocks uses a MySQL database to define these global configurations and
// then generates database reports to create service-specific configuration
// files (e.g., DHCP configuration file, /etc/hosts, and PBS nodes file)"
// (paper Section 1). Each generator is a pure function: database in,
// file text out — regenerating after every insert-ethers change is how the
// cluster's "global knowledge" stays consistent.
#pragma once

#include <string>

#include "services/incremental.hpp"
#include "services/manager.hpp"
#include "sqldb/engine.hpp"
#include "support/ip.hpp"

namespace rocks::services {

/// /etc/hosts: localhost plus every row of the nodes table.
[[nodiscard]] std::string generate_hosts(sqldb::Database& db);

/// /etc/dhcpd.conf: one static host stanza per node with a MAC binding;
/// `frontend_ip` becomes each stanza's next-server (kickstart source).
[[nodiscard]] std::string generate_dhcpd_conf(sqldb::Database& db, Ipv4 frontend_ip);

/// PBS server nodes file: one line per node whose membership is marked
/// compute = 'yes' (the memberships-join report from Section 6.4).
[[nodiscard]] std::string generate_pbs_nodes(sqldb::Database& db, int np = 2);

/// NIS passwd map from the users table (created on demand by
/// ensure_users_table); the frontend pushes this map to compute nodes.
[[nodiscard]] std::string generate_nis_passwd(sqldb::Database& db);

/// /etc/exports for the frontend's NFS home-directory service.
[[nodiscard]] std::string generate_nfs_exports(sqldb::Database& db);

/// Creates users(name, uid, home, shell) with a root row when missing.
void ensure_users_table(sqldb::Database& db);

/// Registers the standard generated-configuration services — dhcpd, hosts,
/// pbs (incremental node reports), nis, nfs — against `manager`, each
/// declaring the tables it derives from. Shared by the frontend and by
/// replica frontends (DESIGN.md §12.3) so both render byte-identical /etc
/// content from the same database state.
void register_standard_services(ServiceManager& manager, Ipv4 frontend_ip);

// --- incremental specs (DESIGN.md §10) --------------------------------------
// IncrementalReport specs whose output is byte-identical to the full
// generators above (asserted in tests), but updatable from journal deltas:
// a single node registration re-renders one line instead of the cluster.

/// Incremental /etc/hosts, driven by the nodes table.
[[nodiscard]] IncrementalReport::Spec hosts_report_spec();

/// Incremental /etc/dhcpd.conf; nodes-driven, frontend_ip baked into the
/// header and per-host next-server stanzas.
[[nodiscard]] IncrementalReport::Spec dhcpd_report_spec(Ipv4 frontend_ip);

/// Incremental PBS nodes file. Driven by nodes deltas; memberships is a
/// rescan table (the compute flag gates line inclusion through a join).
[[nodiscard]] IncrementalReport::Spec pbs_nodes_report_spec(int np = 2);

}  // namespace rocks::services
