// Incremental report rendering (DESIGN.md §10).
//
// The paper's configuration files are all "header + one line per database
// row" reports. A full render is O(cluster): every node row is re-queried
// and re-formatted after every change. IncrementalReport instead keeps the
// rendered lines in a map ordered by the report's sort key and applies
// journal deltas — a single node registration re-renders one line, not ten
// thousand — while remaining byte-identical to the full render (asserted in
// tests for every spec).
//
// A report consumes the change journal of one *driving* table, whose
// primary keys identify lines. Other tables the report joins against are
// declared as rescan tables: any change to them forces a full rebuild
// (joins do not map 1:1 onto lines, so deltas cannot be applied by key).
// Truncated journals, NULL-PK deltas, and the first render also rebuild.
//
// Delta application is idempotent: each record re-fetches the row's current
// state by primary key, so replaying a suffix of the journal twice (the
// cursor is only advanced to the delta's revision, while the re-fetch may
// observe newer commits) converges instead of corrupting.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "sqldb/engine.hpp"

namespace rocks::services {

/// Lexicographic Value-row ordering — the ORDER BY of the report's full
/// query, expressed over extracted sort keys.
struct SortKeyLess {
  bool operator()(const sqldb::Row& a, const sqldb::Row& b) const;
};

class IncrementalReport {
 public:
  struct Spec {
    /// Static preamble emitted before the per-row lines.
    std::string header;
    /// Driving table: journal channel whose (op, PK) deltas map to lines.
    std::string table;
    /// Tables the report reads but is not keyed by; any revision change
    /// forces a full rebuild.
    std::vector<std::string> rescan_tables;
    /// Full query; must ORDER BY the same key `key_of` extracts.
    std::string select_all;
    /// SQL selecting the same columns as select_all for one primary key;
    /// zero result rows mean "this row renders no line" (filtered out).
    std::function<std::string(const sqldb::Value& pk)> select_one;
    /// Sort key of a result row, including a unique tie-break column (the
    /// PK) so the map order reproduces the full query's ORDER BY exactly.
    std::function<sqldb::Row(const sqldb::ResultSet&, std::size_t)> key_of;
    /// Rendered line for a result row ("" = row contributes no text).
    std::function<std::string(const sqldb::ResultSet&, std::size_t)> render_row;
  };

  explicit IncrementalReport(Spec spec) : spec_(std::move(spec)) {}

  /// Renders the report, incrementally when the journal permits. Matches
  /// ServiceManager::Generator once wrapped in a lambda. Not re-entrant.
  [[nodiscard]] std::string render(sqldb::Database& db);

  // Observability: how renders were satisfied (tests assert minimality).
  [[nodiscard]] std::uint64_t full_rebuilds() const { return full_rebuilds_; }
  [[nodiscard]] std::uint64_t delta_applies() const { return delta_applies_; }

 private:
  struct Entry {
    sqldb::Row key;
    std::string line;
  };

  void rebuild(sqldb::Database& db);
  /// Re-fetches one primary key and inserts/replaces/removes its line.
  void apply_one(sqldb::ReadView& view, const sqldb::ChangeRecord& record);
  void upsert(const sqldb::Value& pk, sqldb::Row key, std::string line);
  void erase_pk(const sqldb::Value& pk);

  Spec spec_;
  bool primed_ = false;
  std::uint64_t cursor_ = 0;                  // driving table's journal cursor
  std::vector<std::uint64_t> rescan_cursors_; // parallel to spec_.rescan_tables

  std::map<sqldb::Row, std::string, SortKeyLess> lines_;  // sort key -> line
  std::unordered_map<sqldb::Value, sqldb::Row, sqldb::ValueHash, sqldb::ValueEqual>
      key_by_pk_;  // pk -> its current sort key in lines_

  std::size_t last_render_size_ = 0;  // sizes renders' reserve; sticky is fine
  std::uint64_t full_rebuilds_ = 0;
  std::uint64_t delta_applies_ = 0;
};

}  // namespace rocks::services
