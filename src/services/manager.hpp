// The service manager: regenerates configuration files from the database
// and restarts exactly the services whose files changed — what
// insert-ethers does after each new node registration ("rebuilds
// service-specific configuration files by running queries against the
// database, and restarting the respective services", paper Section 6.4).
//
// Regeneration is dirty-tracked (DESIGN.md §10): each service declares the
// database tables it is derived from, and once the manager is attached to a
// ChangeJournal, committed changes to those tables mark the service dirty.
// regenerate() then re-renders only dirty services; clean services are not
// even invoked. Detached managers (no bus) treat every service as always
// dirty, preserving the original regenerate-everything behaviour.
//
// Change detection keeps a per-service FNV-1a content hash: a re-render is
// compared hash-to-hash against what the manager last wrote, falling back
// to a byte compare only when the file on disk was externally modified.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "events/bus.hpp"
#include "sqldb/engine.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::services {

class ServiceManager {
 public:
  using Generator = std::function<std::string(sqldb::Database&)>;

  /// Outcome of one regenerate() flush. A generator that throws does not
  /// abort the flush: the service is recorded here, stays dirty, and is
  /// retried on the next flush while every other service still regenerates.
  struct Report {
    std::vector<std::string> restarted;
    std::vector<std::string> failed;          // services whose generator threw
    std::vector<std::string> failure_reasons; // parallel to `failed`
  };

  ServiceManager() = default;
  ServiceManager(const ServiceManager&) = delete;
  ServiceManager& operator=(const ServiceManager&) = delete;
  ~ServiceManager();

  /// Registers a service: its config file path, the generator that produces
  /// the file's content from the database, and the tables the content is
  /// derived from (bus channels that mark it dirty). An empty table list
  /// means "depends on everything": any channel marks it dirty.
  /// Register services before attach() — registration is not synchronized
  /// against in-flight bus callbacks.
  void register_service(std::string name, std::string config_path, Generator generator,
                        std::vector<std::string> tables = {});

  /// Subscribes to the journal (one wildcard subscription); from here on,
  /// committed changes mark dependent services dirty and regenerate()
  /// renders dirty services only. Callbacks only flip per-service atomic
  /// dirty flags, so they are safe from any committing thread.
  void attach(sqldb::ChangeJournal& journal);
  /// Same dirty tracking, but subscribed through the event spine
  /// (DESIGN.md §15): kConfigChange events carry every journal notification
  /// via the bus bridge, so the manager needs no direct journal hookup. The
  /// bus must outlive the manager (or detach() first).
  void attach(events::EventBus& bus);
  void detach();
  [[nodiscard]] bool attached() const { return journal_ != nullptr || bus_ != nullptr; }

  /// Marks every service that depends on `table` dirty (the bus callback's
  /// path; also useful for external inputs without journal channels).
  void mark_dirty(std::string_view table);
  void mark_all_dirty();
  /// True when the named service is due for regeneration.
  [[nodiscard]] bool dirty(std::string_view service) const;

  /// Regenerates dirty services' config files into `fs` (all services when
  /// detached); a service whose file content changed is restarted. Not
  /// re-entrant: call from one flushing thread at a time.
  Report regenerate(sqldb::Database& db, vfs::FileSystem& fs);

  /// Per-service restart counters (for asserting restart minimality).
  [[nodiscard]] std::uint64_t restarts(std::string_view service) const;
  [[nodiscard]] std::uint64_t total_restarts() const;
  /// How many times a service's generator actually ran (asserting that
  /// clean services are skipped entirely).
  [[nodiscard]] std::uint64_t generator_runs(std::string_view service) const;
  [[nodiscard]] std::vector<std::string> service_names() const;

  // Change-detection observability: hash-compare fast path vs full-read
  // fallback (the latter only when a file was externally modified).
  [[nodiscard]] std::uint64_t hash_compares() const { return hash_compares_; }
  [[nodiscard]] std::uint64_t read_fallbacks() const { return read_fallbacks_; }

 private:
  struct Service {
    std::string config_path;
    Generator generator;
    std::vector<std::string> tables;          // lowered channel names
    std::atomic<bool> dirty{true};            // new services start dirty
    std::optional<std::uint64_t> last_hash;   // content hash we last wrote
    std::uint64_t restarts = 0;
    std::uint64_t generator_runs = 0;
  };

  // Service is non-movable (atomic member); the map stores it in place and
  // nodes are stable, so bus callbacks may dereference entries concurrently
  // with regenerate().
  std::map<std::string, Service, std::less<>> services_;

  sqldb::ChangeJournal* journal_ = nullptr;
  std::size_t subscription_ = 0;
  events::EventBus* bus_ = nullptr;
  std::size_t bus_subscription_ = 0;

  std::uint64_t hash_compares_ = 0;
  std::uint64_t read_fallbacks_ = 0;
};

}  // namespace rocks::services
