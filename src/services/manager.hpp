// The service manager: regenerates configuration files from the database
// and restarts exactly the services whose files changed — what
// insert-ethers does after each new node registration ("rebuilds
// service-specific configuration files by running queries against the
// database, and restarting the respective services", paper Section 6.4).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sqldb/engine.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::services {

class ServiceManager {
 public:
  using Generator = std::function<std::string(sqldb::Database&)>;

  /// Registers a service: its config file path and the generator that
  /// produces the file's content from the database.
  void register_service(std::string name, std::string config_path, Generator generator);

  /// Regenerates every registered config file into `fs`; a service whose
  /// file content changed is restarted. Returns the restarted names.
  std::vector<std::string> regenerate(sqldb::Database& db, vfs::FileSystem& fs);

  /// Per-service restart counters (for asserting restart minimality).
  [[nodiscard]] std::uint64_t restarts(std::string_view service) const;
  [[nodiscard]] std::uint64_t total_restarts() const;
  [[nodiscard]] std::vector<std::string> service_names() const;

 private:
  struct Service {
    std::string config_path;
    Generator generator;
    std::uint64_t restarts = 0;
  };
  std::map<std::string, Service, std::less<>> services_;
};

}  // namespace rocks::services
