// A follower frontend: a durable replica that serves reads (DESIGN.md §12.3).
//
// The paper's single frontend is the cluster's one irreplaceable machine —
// lose it and nothing can register, kickstart, or resolve configuration. A
// Follower closes that gap: it continuously replays the leader's shipped
// WAL into its *own* durable store (leader LSNs preserved, so its
// independent crash recovery replays the same history), regenerates the
// same /etc configuration files through the same registered services, and —
// when built with a distribution — runs a live kickstart CGI and HTTP tree
// that installing nodes can be re-pointed at (Node::repoint). DML is fenced:
// the underlying Database is read-only with a redirect-to-leader hint, and
// only replication traffic (apply_shipment / bootstrap) writes.
//
// Epoch fencing: the follower remembers the highest leader epoch it has
// seen. Shipments from a lower epoch are refused without touching state —
// a resurrected stale leader cannot commit anything here — and a higher
// epoch is adopted (a promotion happened). promote() turns the follower
// itself into the new epoch's leader: the write fence drops and the
// ControlPlane re-points the ship stream at its database.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/node.hpp"
#include "kickstart/defaults.hpp"
#include "kickstart/server.hpp"
#include "netsim/dhcp.hpp"
#include "netsim/engine.hpp"
#include "netsim/http.hpp"
#include "netsim/syslog.hpp"
#include "replication/shipment.hpp"
#include "rocksdist/rocksdist.hpp"
#include "services/manager.hpp"
#include "sqldb/engine.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::replication {

struct FollowerConfig {
  std::string name = "frontend-1";
  Ipv4 ip{10, 1, 1, 2};
  std::string state_dir = "/state/db";
  std::string dist_version = "7.2";
  double http_capacity = 7.5 * 1024 * 1024;
  std::size_t http_servers = 1;
  /// Needed for the serving role's DHCP server; null = no DHCP service.
  netsim::SyslogBus* syslog = nullptr;
};

class Follower {
 public:
  /// A storage-only replica when `distro` is null; with a distribution the
  /// follower also builds its own rocks-dist tree and serves kickstart +
  /// HTTP — the full read path installing nodes need after a failover.
  Follower(netsim::Simulator& sim, const rpm::SynthDistro* distro, FollowerConfig config);

  [[nodiscard]] const std::string& name() const { return config_.name; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t last_lsn() const { return db_.last_lsn(); }
  [[nodiscard]] bool serving() const { return kickstart_ != nullptr; }
  [[nodiscard]] bool leader() const { return !db_.read_only(); }

  // --- the replication receive path ----------------------------------------
  /// Decodes and applies one wire shipment; a corrupt envelope is refused
  /// (never throws — the link delivered bytes, the answer is an Ack).
  Ack handle_shipment(std::string_view wire);
  Ack apply_shipment(const Shipment& shipment);
  /// Installs a leader bootstrap image (snapshot catch-up), fenced by epoch
  /// like any shipment.
  Ack apply_bootstrap(std::string_view image, std::uint64_t shipment_epoch);

  /// Failover: this follower becomes the leader of `new_epoch` (must be
  /// above every epoch it has seen). Drops the write fence and regenerates
  /// services so the promoted frontend's config files are current before it
  /// answers anything.
  void promote(std::uint64_t new_epoch);

  // --- the read-serving surface --------------------------------------------
  [[nodiscard]] sqldb::Database& db() { return db_; }
  [[nodiscard]] const sqldb::Database& db() const { return db_; }
  /// The follower's disk (durable store + generated config files); tests
  /// copy_tree this for shadow-replay verification.
  [[nodiscard]] vfs::FileSystem& disk() { return disk_; }
  [[nodiscard]] const vfs::FileSystem& disk() const { return disk_; }
  [[nodiscard]] const sqldb::RecoveryReport& recovery() const { return recovery_; }
  [[nodiscard]] services::ServiceManager& services() { return services_; }
  [[nodiscard]] kickstart::KickstartServer& kickstart_server() { return *kickstart_; }

  /// The wiring to re-point an installing Node at this follower
  /// (Node::repoint after a failover). Requires the serving role.
  [[nodiscard]] cluster::NodeEnvironment environment();

  // --- observability ---------------------------------------------------------
  [[nodiscard]] std::uint64_t shipments_applied() const { return shipments_applied_; }
  [[nodiscard]] std::uint64_t fenced() const { return fenced_; }
  [[nodiscard]] std::uint64_t bootstraps() const { return bootstraps_; }

 private:
  /// Post-apply flush: regenerate dirty services into the follower's disk
  /// and (when serving DHCP) re-push bindings — the same derived-state
  /// convergence the leader's Frontend::flush_services performs.
  void flush_services();

  netsim::Simulator& sim_;
  FollowerConfig config_;
  vfs::FileSystem disk_;
  sqldb::Database db_;
  sqldb::RecoveryReport recovery_;
  services::ServiceManager services_;

  std::uint64_t epoch_ = 0;
  std::uint64_t shipments_applied_ = 0;
  std::uint64_t fenced_ = 0;
  std::uint64_t bootstraps_ = 0;

  // Serving role (null for storage-only replicas).
  std::optional<kickstart::DefaultConfiguration> configuration_;
  std::unique_ptr<rocksdist::RocksDist> rocksdist_;
  std::unique_ptr<netsim::HttpServerGroup> http_;
  std::unique_ptr<netsim::DhcpServer> dhcp_;
  std::unique_ptr<kickstart::KickstartServer> kickstart_;
  static constexpr std::uint64_t kNeverPushed = ~std::uint64_t{0};
  std::uint64_t dhcp_pushed_revision_ = kNeverPushed;
};

}  // namespace rocks::replication
