// The replicated control plane: leader election, WAL shipping, failover
// (DESIGN.md §12).
//
// One ControlPlane supervises a leader Database (the active frontend's) and
// N Followers, each behind its own ReplicationLink. The leader's commit
// stream feeds a bounded in-memory ship log through Database::set_wal_sink —
// the sink runs under the engine's exclusive lock, so ship order is commit
// order by construction — and pump() drains that log to every follower:
// snapshot bootstrap when a follower is behind the log's floor, incremental
// LSN-ordered statement groups otherwise, with per-follower acked-LSN
// cursors and capped-exponential reconnect backoff (support::BackoffPolicy)
// when a link is severed or a follower refuses.
//
// Epochs are monotonic and fence everything: every shipment carries the
// leader's epoch, followers refuse lower epochs and adopt higher ones.
// kill_leader() models the frontend dying (the sink detaches — a dead
// leader ships nothing); promote() elects the connected follower with the
// highest replayed LSN, bumps the epoch, drops that follower's write fence,
// re-points the ship stream at its database, and announces the new epoch so
// any resurrected stale leader finds every follower already fenced.
//
// Commit modes bound the loss window (§12.4):
//   kAsync  — commit_barrier() returns immediately; shipping happens on the
//             next pump. Lost on leader death: everything committed since
//             the last completed pump (measurable, bounded by pump cadence).
//   kQuorum — commit_barrier() pumps and then requires a majority of the
//             voting set (leader + followers) at the leader's durable LSN,
//             throwing UnavailableError otherwise so the caller never acks.
//             An acked commit is then on ≥1 follower, and promotion picks
//             the max-LSN follower — no acked commit can be lost.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "events/bus.hpp"
#include "netsim/engine.hpp"
#include "netsim/link.hpp"
#include "replication/follower.hpp"
#include "replication/shipment.hpp"
#include "sqldb/engine.hpp"
#include "sqldb/wal.hpp"
#include "support/backoff.hpp"
#include "support/rng.hpp"

namespace rocks::replication {

enum class CommitMode { kAsync, kQuorum };

[[nodiscard]] std::string_view commit_mode_name(CommitMode mode);

struct ControlPlaneConfig {
  CommitMode mode = CommitMode::kQuorum;
  /// Ship-log cap in statement groups; overflow raises the floor and forces
  /// behind-floor followers through snapshot bootstrap instead.
  std::size_t max_log_groups = 4096;
  /// Reconnect schedule after a severed link / refused delivery (§12.6).
  support::BackoffPolicy reconnect{5.0, 60.0, 0.25};
  std::uint64_t seed = 0x5EED0C1A;
};

struct FollowerStatus {
  std::string name;
  std::uint64_t epoch = 0;
  std::uint64_t last_lsn = 0;   // the follower's durable position
  std::uint64_t acked_lsn = 0;  // last LSN it acknowledged to the leader
  bool connected = true;
  bool is_leader = false;  // promoted: now the ship stream's source
  bool dead = false;       // killed while leading; never ships again
  std::uint64_t reconnects = 0;
  std::uint64_t bootstraps = 0;
  std::uint64_t fenced = 0;
};

struct ControlPlaneStatus {
  std::string leader;  // "" while leaderless (between kill and promote)
  std::uint64_t epoch = 0;
  CommitMode mode = CommitMode::kQuorum;
  std::uint64_t leader_lsn = 0;
  std::vector<FollowerStatus> followers;
  std::uint64_t shipped_groups = 0;
  std::uint64_t shipped_bytes = 0;
  std::uint64_t bootstraps = 0;
  std::uint64_t quorum_failures = 0;
  std::uint64_t log_evictions = 0;
};

/// One-line-per-follower operator report (cluster-status --replication).
[[nodiscard]] std::string render_status(const ControlPlaneStatus& status);

class ControlPlane {
 public:
  explicit ControlPlane(netsim::Simulator& sim, ControlPlaneConfig config = {});
  ~ControlPlane();

  // --- topology --------------------------------------------------------------
  /// Installs `db` (the active frontend's durable database) as the leader of
  /// epoch 1: hooks the WAL sink and seeds the ship log from the durable
  /// WAL image so followers added later can catch up without a bootstrap
  /// when the WAL still covers them.
  void lead(sqldb::Database& db, std::string name);

  /// Adds a follower behind a fresh ReplicationLink. Storage-only when
  /// `distro` is null; serving (kickstart + HTTP + optional DHCP) otherwise.
  Follower& add_follower(FollowerConfig config, const rpm::SynthDistro* distro = nullptr);

  [[nodiscard]] std::size_t follower_count() const { return slots_.size(); }
  [[nodiscard]] Follower& follower(std::size_t index) { return *slots_[index]->follower; }
  [[nodiscard]] netsim::ReplicationLink& link(std::size_t index) {
    return *slots_[index]->link;
  }
  /// Every follower's link, for FaultInjector::wire_links.
  [[nodiscard]] std::vector<netsim::ReplicationLink*> links();

  // --- the ship loop -----------------------------------------------------------
  /// Drains the ship log to every live follower: bootstrap when behind the
  /// floor, incremental groups otherwise. A failed delivery marks the
  /// follower disconnected and schedules its retry (backoff with jitter);
  /// pumping before `retry_at` skips it. Crash point: "replication.ship".
  void pump();

  /// The hook for Frontend::set_commit_barrier (§12.4): under kQuorum,
  /// ships and throws UnavailableError unless a majority of the voting set
  /// has acknowledged the leader's durable LSN; under kAsync, returns
  /// immediately (the loss window is whatever the next pump hasn't shipped).
  void commit_barrier();

  /// Schedules pump() every `interval` simulated seconds (the async mode's
  /// background shipper). Stops on stop_pump_timer() or destruction.
  void start_pump_timer(double interval);
  void stop_pump_timer();

  // --- failover ----------------------------------------------------------------
  /// The leader dies: detaches the sink (a dead leader ships nothing) and
  /// leaves the plane leaderless. If the leader was a promoted follower its
  /// slot is marked dead. The epoch does NOT advance here — promotion owns
  /// the epoch bump.
  void kill_leader();

  /// Elects the live follower with the highest replayed LSN (deterministic
  /// name tiebreak), bumps the epoch, promotes it (write fence drops,
  /// services regenerate), re-points the ship stream at its database, and
  /// announces the new epoch to the remaining followers. Returns the new
  /// leader's name. Throws StateError when a leader is still installed or
  /// no live follower exists.
  std::string promote();

  /// Delivers an arbitrary shipment to every live follower — the stale-
  /// leader resurrection drill: a revenant leader re-shipping at its old
  /// epoch must collect only fenced refusals.
  std::vector<Ack> broadcast(const Shipment& shipment);

  // --- observability -----------------------------------------------------------
  /// Event spine hookup (DESIGN.md §15): epoch transitions publish
  /// kReplicationEpoch (promotion and leader death), per-follower
  /// disconnect/reconnect/bootstrap publish kReplicationLag, and quorum
  /// lost/restored transitions publish kQuorum. Null detaches.
  void set_event_bus(events::EventBus* bus) { bus_ = bus; }
  [[nodiscard]] ControlPlaneStatus status() const;
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] bool has_leader() const { return leader_db_ != nullptr; }
  [[nodiscard]] const std::string& leader_name() const { return leader_name_; }
  [[nodiscard]] CommitMode mode() const { return config_.mode; }
  void set_mode(CommitMode mode) { config_.mode = mode; }

 private:
  struct Slot {
    std::unique_ptr<Follower> follower;
    std::unique_ptr<netsim::ReplicationLink> link;
    std::uint64_t acked_lsn = 0;
    bool connected = true;
    bool is_leader = false;
    bool dead = false;
    bool force_bootstrap = false;  // set when the follower diverged (§12.5)
    int attempts = 0;              // consecutive failed deliveries
    double retry_at = 0.0;         // next attempt time (sim clock)
    std::uint64_t reconnects = 0;
    std::uint64_t bootstraps = 0;
  };

  /// The WAL sink: appends one committed statement's records to the ship
  /// log. Runs under the leader engine's exclusive lock — log_mutex_ is a
  /// leaf below it, and pump() copies the log out before delivering, so the
  /// two lock orders never interleave.
  void on_commit(const std::vector<sqldb::WalRecord>& records);

  /// Rebuilds the ship log from `db`'s durable WAL image (lead/promote).
  void seed_log_from(sqldb::Database& db);

  /// Ships to one slot from a log copy: bootstrap when forced or behind the
  /// floor, incremental groups otherwise. Throws UnavailableError when the
  /// link refuses; the caller owns retry bookkeeping.
  void ship_to(Slot& slot, const std::vector<sqldb::WalGroup>& log, std::uint64_t floor);
  void schedule_next_pump();
  void publish(events::EventType type, std::string subject, std::string detail,
               double value);

  netsim::Simulator& sim_;
  ControlPlaneConfig config_;
  Rng rng_;

  sqldb::Database* leader_db_ = nullptr;
  std::string leader_name_;
  std::uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<Slot>> slots_;

  // The ship log: whole committed statement groups above floor_. Guarded by
  // log_mutex_ (the sink may run from any committing thread).
  mutable std::mutex log_mutex_;
  std::deque<sqldb::WalGroup> log_;
  std::uint64_t floor_ = 0;  // every LSN <= floor_ has left the log
  std::uint64_t log_evictions_ = 0;

  // Pump-thread stats (status() reads them; call sites are single-threaded).
  std::uint64_t shipped_groups_ = 0;
  std::uint64_t shipped_bytes_ = 0;
  std::uint64_t bootstraps_ = 0;
  std::uint64_t quorum_failures_ = 0;

  events::EventBus* bus_ = nullptr;
  bool quorum_lost_ = false;  // edge-detect: publish lost/restored once each

  bool pump_timer_armed_ = false;
  double pump_interval_ = 0.0;
  netsim::EventId pump_event_ = 0;
};

}  // namespace rocks::replication
