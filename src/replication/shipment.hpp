// Wire format for WAL shipping (DESIGN.md §12.1).
//
// A Shipment is what the leader puts on a ReplicationLink: the leader's
// current epoch plus zero or more whole committed statement groups, each
// group the exact framed WAL bytes (`len | crc | payload` records) the
// leader wrote locally. Shipping frames verbatim is the point — the
// follower replays the same bytes local crash recovery would, so the two
// paths cannot diverge, and every record arrives CRC-protected twice (the
// WAL frame inside the shipment envelope).
//
// An empty-groups Shipment is a valid heartbeat/epoch announcement: the
// promotion path uses it to fence a resurrected stale leader before any
// data moves.
//
// The Ack carries the follower's epoch and durable LSN after the apply.
// `accepted == false` distinguishes two refusals the leader treats very
// differently: an epoch fence (the follower has seen a newer leader — stop
// immediately) and an LSN gap (the follower missed history — catch it up
// from the WAL cursor or re-bootstrap).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace rocks::replication {

struct Shipment {
  std::uint64_t epoch = 0;
  /// Framed WAL bytes of whole committed statements, oldest first.
  std::vector<std::string> groups;
};

struct Ack {
  std::uint64_t epoch = 0;     // the follower's epoch after the exchange
  std::uint64_t last_lsn = 0;  // the follower's durable position
  bool accepted = false;
  std::string error;  // "" when accepted; fence/gap/corruption otherwise
};

[[nodiscard]] std::string encode_shipment(const Shipment& shipment);
/// Throws ParseError on a truncated or corrupt envelope (the per-record WAL
/// CRCs are checked later, by the follower's read_wal pass).
[[nodiscard]] Shipment decode_shipment(std::string_view bytes);

[[nodiscard]] std::string encode_ack(const Ack& ack);
[[nodiscard]] Ack decode_ack(std::string_view bytes);

}  // namespace rocks::replication
