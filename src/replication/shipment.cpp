#include "replication/shipment.hpp"

#include "support/binary.hpp"

namespace rocks::replication {

std::string encode_shipment(const Shipment& shipment) {
  support::BinaryWriter out;
  out.u64(shipment.epoch);
  out.u32(static_cast<std::uint32_t>(shipment.groups.size()));
  for (const std::string& group : shipment.groups) out.str(group);
  return out.take();
}

Shipment decode_shipment(std::string_view bytes) {
  support::BinaryReader in(bytes);
  Shipment shipment;
  shipment.epoch = in.u64();
  const std::uint32_t count = in.u32();
  shipment.groups.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) shipment.groups.emplace_back(in.str());
  return shipment;
}

std::string encode_ack(const Ack& ack) {
  support::BinaryWriter out;
  out.u64(ack.epoch);
  out.u64(ack.last_lsn);
  out.u8(ack.accepted ? 1 : 0);
  out.str(ack.error);
  return out.take();
}

Ack decode_ack(std::string_view bytes) {
  support::BinaryReader in(bytes);
  Ack ack;
  ack.epoch = in.u64();
  ack.last_lsn = in.u64();
  ack.accepted = in.u8() != 0;
  ack.error = std::string(in.str());
  return ack;
}

}  // namespace rocks::replication
