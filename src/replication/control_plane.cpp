#include "replication/control_plane.hpp"

#include <algorithm>
#include <limits>

#include "support/crashpoint.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::replication {

using strings::cat;

std::string_view commit_mode_name(CommitMode mode) {
  return mode == CommitMode::kQuorum ? "quorum-ack" : "async";
}

ControlPlane::ControlPlane(netsim::Simulator& sim, ControlPlaneConfig config)
    : sim_(sim), config_(config), rng_(config.seed) {}

void ControlPlane::publish(events::EventType type, std::string subject,
                           std::string detail, double value) {
  if (bus_ == nullptr) return;
  bus_->publish(events::Event{type, std::move(subject), std::move(detail), value, 0.0, 0});
}

ControlPlane::~ControlPlane() {
  stop_pump_timer();
  if (leader_db_ != nullptr) leader_db_->set_wal_sink(nullptr);
}

void ControlPlane::lead(sqldb::Database& db, std::string name) {
  require_state(leader_db_ == nullptr,
                cat("already led by ", leader_name_, "; kill_leader() first"));
  require_state(db.durable(), "the leader database needs a durable store to ship from");
  if (epoch_ == 0) epoch_ = 1;
  leader_db_ = &db;
  leader_name_ = std::move(name);
  seed_log_from(db);
  db.set_wal_sink(
      [this](const std::vector<sqldb::WalRecord>& records) { on_commit(records); });
}

Follower& ControlPlane::add_follower(FollowerConfig config, const rpm::SynthDistro* distro) {
  auto slot = std::make_unique<Slot>();
  slot->link = std::make_unique<netsim::ReplicationLink>(
      sim_, cat(leader_name_.empty() ? "leader" : leader_name_, "->", config.name));
  slot->follower = std::make_unique<Follower>(sim_, distro, std::move(config));
  slots_.push_back(std::move(slot));
  return *slots_.back()->follower;
}

std::vector<netsim::ReplicationLink*> ControlPlane::links() {
  std::vector<netsim::ReplicationLink*> out;
  out.reserve(slots_.size());
  for (const auto& slot : slots_) out.push_back(slot->link.get());
  return out;
}

void ControlPlane::on_commit(const std::vector<sqldb::WalRecord>& records) {
  if (records.empty()) return;
  sqldb::WalGroup group;
  group.first_lsn = records.front().lsn;
  group.last_lsn = records.back().lsn;
  for (const sqldb::WalRecord& record : records)
    group.bytes += sqldb::encode_wal_record(record);
  // log_mutex_ is a leaf under the engine's exclusive lock: nothing else is
  // acquired while it is held, so the sink can run from any committing
  // thread while pump() copies the log out on another.
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_.push_back(std::move(group));
  while (log_.size() > config_.max_log_groups) {
    // Overflow raises the floor: a follower acked below it re-bootstraps
    // from a snapshot image instead of replaying ancient history.
    floor_ = log_.front().last_lsn;
    log_.pop_front();
    ++log_evictions_;
  }
}

void ControlPlane::seed_log_from(sqldb::Database& db) {
  const std::vector<sqldb::WalGroup> groups = sqldb::wal_groups_after(db.wal_image(), 0);
  std::lock_guard<std::mutex> lock(log_mutex_);
  log_.assign(groups.begin(), groups.end());
  // Everything the durable WAL no longer covers (absorbed by a snapshot)
  // is below the floor; a follower acked below it must bootstrap.
  floor_ = log_.empty() ? db.last_lsn() : log_.front().first_lsn - 1;
  while (log_.size() > config_.max_log_groups) {
    floor_ = log_.front().last_lsn;
    log_.pop_front();
    ++log_evictions_;
  }
}

void ControlPlane::ship_to(Slot& slot, const std::vector<sqldb::WalGroup>& log,
                           std::uint64_t floor) {
  if (slot.force_bootstrap || slot.acked_lsn < floor) {
    const std::string image = leader_db_->snapshot_image();
    slot.link->deliver(image.size());
    const Ack ack = slot.follower->apply_bootstrap(image, epoch_);
    if (!ack.accepted) return;  // fenced: a newer epoch exists; stop shipping
    slot.force_bootstrap = false;
    slot.acked_lsn = ack.last_lsn;
    ++slot.bootstraps;
    ++bootstraps_;
    publish(events::EventType::kReplicationLag, slot.follower->name(), "bootstrap",
            static_cast<double>(slot.bootstraps));
  }
  Shipment shipment;
  shipment.epoch = epoch_;
  for (const sqldb::WalGroup& group : log)
    if (group.last_lsn > slot.acked_lsn) shipment.groups.push_back(group.bytes);
  if (shipment.groups.empty() && slot.connected) return;  // nothing new, nothing to probe
  const std::string wire = encode_shipment(shipment);
  slot.link->deliver(wire.size());
  const Ack ack = slot.follower->handle_shipment(wire);
  if (ack.accepted) {
    slot.acked_lsn = ack.last_lsn;
    shipped_groups_ += shipment.groups.size();
    shipped_bytes_ += wire.size();
    return;
  }
  if (ack.epoch > epoch_) return;  // fenced: we are the stale leader now
  // Refused without a fence: an LSN gap (the follower's history diverged
  // from the ship log, e.g. across a promotion). Snapshot bootstrap is the
  // repair for every such case.
  slot.force_bootstrap = true;
}

void ControlPlane::pump() {
  if (leader_db_ == nullptr) return;
  // Copy out only the log suffix some live follower still needs: in the
  // steady state every follower is acked near the tip, so a pump per commit
  // copies O(1) groups, not the whole retained log.
  std::uint64_t min_acked = std::numeric_limits<std::uint64_t>::max();
  bool anyone = false;
  for (const auto& slot : slots_) {
    if (slot->is_leader || slot->dead) continue;
    anyone = true;
    min_acked = std::min(min_acked, slot->acked_lsn);
  }
  if (!anyone) return;
  std::vector<sqldb::WalGroup> log;
  std::uint64_t floor = 0;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    floor = floor_;
    // A behind-floor follower re-bootstraps and resumes from the image's
    // LSN, so nothing below max(min_acked, floor) can ever ship again.
    const std::uint64_t needed = std::max(min_acked, floor);
    for (const sqldb::WalGroup& group : log_)
      if (group.last_lsn > needed) log.push_back(group);
  }
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    if (slot.is_leader || slot.dead) continue;
    if (!slot.connected && sim_.now() < slot.retry_at) continue;
    support::crash_point("replication.ship");
    try {
      const bool was_disconnected = !slot.connected;
      ship_to(slot, log, floor);
      slot.connected = true;
      slot.attempts = 0;
      if (was_disconnected) {
        ++slot.reconnects;
        publish(events::EventType::kReplicationLag, slot.follower->name(), "reconnected",
                static_cast<double>(leader_db_->last_lsn() - slot.acked_lsn));
      }
    } catch (const UnavailableError&) {
      // Severed link or dead peer: back off (capped exponential + jitter,
      // §12.6) and try again at retry_at.
      if (slot.connected)
        publish(events::EventType::kReplicationLag, slot.follower->name(), "disconnected",
                static_cast<double>(leader_db_->last_lsn() - slot.acked_lsn));
      slot.connected = false;
      ++slot.attempts;
      slot.retry_at = sim_.now() + config_.reconnect.delay(slot.attempts, rng_);
    }
  }
}

void ControlPlane::commit_barrier() {
  if (leader_db_ == nullptr)
    throw UnavailableError("control plane is leaderless; cannot commit");
  if (config_.mode == CommitMode::kAsync) return;
  pump();
  const std::uint64_t target = leader_db_->last_lsn();
  std::size_t voters = 1;  // the leader itself
  std::size_t votes = 1;
  for (const auto& slot : slots_) {
    if (slot->is_leader || slot->dead) continue;
    ++voters;
    if (slot->connected && slot->acked_lsn >= target) ++votes;
  }
  if (votes * 2 > voters) {
    if (quorum_lost_) {
      quorum_lost_ = false;
      publish(events::EventType::kQuorum, leader_name_, "restored",
              static_cast<double>(votes));
    }
    return;
  }
  ++quorum_failures_;
  if (!quorum_lost_) {
    quorum_lost_ = true;
    publish(events::EventType::kQuorum, leader_name_, "lost", static_cast<double>(votes));
  }
  throw UnavailableError(cat("quorum-ack failed at LSN ", target, ": ", votes, " of ",
                             voters, " voters acknowledged"));
}

void ControlPlane::start_pump_timer(double interval) {
  stop_pump_timer();
  pump_timer_armed_ = true;
  pump_interval_ = interval;
  schedule_next_pump();
}

void ControlPlane::schedule_next_pump() {
  pump_event_ = sim_.schedule(pump_interval_, [this] {
    if (!pump_timer_armed_) return;
    pump();
    schedule_next_pump();
  });
}

void ControlPlane::stop_pump_timer() {
  if (!pump_timer_armed_) return;
  pump_timer_armed_ = false;
  sim_.cancel(pump_event_);
}

void ControlPlane::kill_leader() {
  if (leader_db_ == nullptr) return;
  leader_db_->set_wal_sink(nullptr);
  for (const auto& slot : slots_)
    if (slot->is_leader && &slot->follower->db() == leader_db_) slot->dead = true;
  publish(events::EventType::kReplicationEpoch, leader_name_, "leader-killed",
          static_cast<double>(epoch_));
  leader_db_ = nullptr;
  leader_name_.clear();
}

std::string ControlPlane::promote() {
  require_state(leader_db_ == nullptr,
                cat("cannot promote while ", leader_name_, " still leads"));
  Slot* best = nullptr;
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    if (slot.is_leader || slot.dead || slot.link->severed()) continue;
    if (best == nullptr || slot.follower->last_lsn() > best->follower->last_lsn() ||
        (slot.follower->last_lsn() == best->follower->last_lsn() &&
         slot.follower->name() < best->follower->name()))
      best = &slot;
  }
  require_state(best != nullptr, "no live follower to promote");

  // Monotonic epoch bump: the new leader outranks every epoch ever issued,
  // so a resurrected old leader's shipments are refused everywhere.
  ++epoch_;
  best->follower->promote(epoch_);
  best->is_leader = true;
  leader_db_ = &best->follower->db();
  leader_name_ = best->follower->name();
  seed_log_from(*leader_db_);
  leader_db_->set_wal_sink(
      [this](const std::vector<sqldb::WalRecord>& records) { on_commit(records); });

  const std::uint64_t leader_lsn = leader_db_->last_lsn();
  const Shipment announce{epoch_, {}};
  const std::string wire = encode_shipment(announce);
  for (const auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    if (slot.is_leader || slot.dead) continue;
    // A follower that replayed past the new leader (async mode's unacked
    // tail) has diverged history; snapshot bootstrap truncates it back to
    // the elected state.
    slot.acked_lsn = std::min(slot.acked_lsn, leader_lsn);
    if (slot.follower->last_lsn() > leader_lsn) slot.force_bootstrap = true;
    try {
      slot.link->deliver(wire.size());
      slot.follower->handle_shipment(wire);  // epoch announcement
    } catch (const UnavailableError&) {
      // It will learn the epoch when its link heals and pump() reaches it.
    }
  }
  publish(events::EventType::kReplicationEpoch, leader_name_, "promoted",
          static_cast<double>(epoch_));
  return leader_name_;
}

std::vector<Ack> ControlPlane::broadcast(const Shipment& shipment) {
  std::vector<Ack> acks;
  const std::string wire = encode_shipment(shipment);
  for (const auto& slot : slots_) {
    if (slot->is_leader || slot->dead) continue;
    try {
      slot->link->deliver(wire.size());
      acks.push_back(slot->follower->handle_shipment(wire));
    } catch (const UnavailableError& error) {
      acks.push_back(Ack{0, 0, false, error.what()});
    }
  }
  return acks;
}

ControlPlaneStatus ControlPlane::status() const {
  ControlPlaneStatus status;
  status.leader = leader_name_;
  status.epoch = epoch_;
  status.mode = config_.mode;
  status.leader_lsn = leader_db_ != nullptr ? leader_db_->last_lsn() : 0;
  for (const auto& slot : slots_) {
    FollowerStatus fs;
    fs.name = slot->follower->name();
    fs.epoch = slot->follower->epoch();
    fs.last_lsn = slot->follower->last_lsn();
    fs.acked_lsn = slot->acked_lsn;
    fs.connected = slot->connected && !slot->link->severed();
    fs.is_leader = slot->is_leader;
    fs.dead = slot->dead;
    fs.reconnects = slot->reconnects;
    fs.bootstraps = slot->bootstraps;
    fs.fenced = slot->follower->fenced();
    status.followers.push_back(std::move(fs));
  }
  status.shipped_groups = shipped_groups_;
  status.shipped_bytes = shipped_bytes_;
  status.bootstraps = bootstraps_;
  status.quorum_failures = quorum_failures_;
  {
    std::lock_guard<std::mutex> lock(log_mutex_);
    status.log_evictions = log_evictions_;
  }
  return status;
}

std::string render_status(const ControlPlaneStatus& status) {
  std::string out =
      cat("control plane: leader=", status.leader.empty() ? "<none>" : status.leader,
          " epoch=", status.epoch, " mode=", commit_mode_name(status.mode),
          " leader_lsn=", status.leader_lsn, "\n");
  for (const FollowerStatus& f : status.followers) {
    out += cat("  ", f.name, ": epoch=", f.epoch, " lsn=", f.last_lsn,
               " acked=", f.acked_lsn, " lag=",
               status.leader_lsn > f.acked_lsn && !f.is_leader
                   ? status.leader_lsn - f.acked_lsn
                   : 0,
               f.is_leader ? " [leader]" : "", f.dead ? " [dead]" : "",
               f.connected ? "" : " [disconnected]", f.fenced > 0 ? " [fenced " : "",
               f.fenced > 0 ? cat(f.fenced, "x]") : "", "\n");
  }
  out += cat("  shipped: ", status.shipped_groups, " groups / ", status.shipped_bytes,
             " bytes; bootstraps=", status.bootstraps,
             " quorum_failures=", status.quorum_failures,
             " log_evictions=", status.log_evictions, "\n");
  return out;
}

}  // namespace rocks::replication
