#include "replication/follower.hpp"

#include <map>
#include <utility>

#include "services/generators.hpp"
#include "sqldb/wal.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::replication {

using strings::cat;

Follower::Follower(netsim::Simulator& sim, const rpm::SynthDistro* distro,
                   FollowerConfig config)
    : sim_(sim), config_(std::move(config)) {
  // The replica's own durable store: recovery first (a restarted follower
  // resumes from whatever it had replayed), then the write fence — every
  // local DML is redirected to the leader, only replication writes.
  recovery_ = db_.open_durable(disk_, config_.state_dir);
  db_.set_read_only(true, cat("this frontend is a read-only replica (", config_.name,
                              "); writes go to the leader"));

  // The same generated-configuration services the leader registers, so both
  // render byte-identical /etc content from the same database state.
  services::register_standard_services(services_, config_.ip);
  services_.attach(db_.journal());

  if (distro != nullptr) {
    configuration_ = kickstart::make_default_configuration(*distro);
    configuration_->graph.set_bus(&db_.journal(),
                                  std::string(kickstart::Generator::kGraphChannel));
    configuration_->files.set_bus(&db_.journal(),
                                  std::string(kickstart::Generator::kNodeFilesChannel));
    rocksdist_ = std::make_unique<rocksdist::RocksDist>(
        disk_, rocksdist::DistConfig{"/home/install", config_.dist_version, "i386",
                                     32 * 1024});
    rocksdist_->mirror(distro->repo, cat("redhat/", config_.dist_version));
    rocksdist_->dist(configuration_->files, configuration_->graph);
    http_ = std::make_unique<netsim::HttpServerGroup>(sim_, config_.http_capacity,
                                                      config_.http_servers);
    kickstart_ = std::make_unique<kickstart::KickstartServer>(
        db_, configuration_->files, configuration_->graph, config_.ip,
        cat("http://", config_.ip.to_string(), "/install/rocks-dist"),
        &rocksdist_->distribution());
    if (config_.syslog != nullptr)
      dhcp_ = std::make_unique<netsim::DhcpServer>(sim_, *config_.syslog, config_.name,
                                                   config_.ip);
  }
  flush_services();
}

Ack Follower::handle_shipment(std::string_view wire) {
  Shipment shipment;
  try {
    shipment = decode_shipment(wire);
  } catch (const Error& error) {
    return Ack{epoch_, last_lsn(), false, cat("corrupt shipment envelope: ", error.what())};
  }
  return apply_shipment(shipment);
}

Ack Follower::apply_shipment(const Shipment& shipment) {
  // Epoch fence (DESIGN.md §12.1): a stale leader's traffic is refused
  // before any byte touches state; a newer epoch is adopted.
  if (shipment.epoch < epoch_) {
    ++fenced_;
    return Ack{epoch_, last_lsn(), false,
               cat("fenced: shipment epoch ", shipment.epoch, " below follower epoch ",
                   epoch_)};
  }
  epoch_ = shipment.epoch;

  for (const std::string& group : shipment.groups) {
    const sqldb::WalReadResult decoded = sqldb::read_wal(group);
    if (decoded.torn || decoded.records.empty() ||
        !decoded.records.back().commit) {
      return Ack{epoch_, last_lsn(), false, "corrupt statement group"};
    }
    try {
      db_.replicate_apply(decoded.records);
    } catch (const Error& error) {
      // Typically the LSN-gap StateError: the leader must catch us up from
      // its WAL cursor or re-bootstrap. Nothing from this group applied.
      return Ack{epoch_, last_lsn(), false, error.what()};
    }
  }
  try {
    // Durability before acknowledgement: an acked LSN must survive this
    // follower crashing — promotion correctness depends on it (§12.5).
    db_.wal_flush();
  } catch (const Error& error) {
    return Ack{epoch_, last_lsn(), false, error.what()};
  }
  ++shipments_applied_;
  flush_services();
  return Ack{epoch_, last_lsn(), true, ""};
}

Ack Follower::apply_bootstrap(std::string_view image, std::uint64_t shipment_epoch) {
  if (shipment_epoch < epoch_) {
    ++fenced_;
    return Ack{epoch_, last_lsn(), false,
               cat("fenced: bootstrap epoch ", shipment_epoch, " below follower epoch ",
                   epoch_)};
  }
  epoch_ = shipment_epoch;
  try {
    db_.install_replica_snapshot(image);
  } catch (const Error& error) {
    return Ack{epoch_, last_lsn(), false, error.what()};
  }
  ++bootstraps_;
  services_.mark_all_dirty();
  dhcp_pushed_revision_ = kNeverPushed;
  flush_services();
  return Ack{epoch_, last_lsn(), true, ""};
}

void Follower::promote(std::uint64_t new_epoch) {
  require_state(new_epoch > epoch_,
                cat("promotion epoch ", new_epoch, " must exceed every epoch seen (",
                    epoch_, ")"));
  epoch_ = new_epoch;
  db_.set_read_only(false);
  // A promoted frontend must answer with current derived state: regenerate
  // everything before the first request lands.
  services_.mark_all_dirty();
  dhcp_pushed_revision_ = kNeverPushed;
  flush_services();
}

cluster::NodeEnvironment Follower::environment() {
  require_state(serving(),
                cat(config_.name, " is a storage-only replica; it cannot serve installs"));
  cluster::NodeEnvironment env;
  env.sim = &sim_;
  env.syslog = config_.syslog;
  env.dhcp = dhcp_.get();
  env.kickstart = kickstart_.get();
  env.http = http_.get();
  env.distribution = &rocksdist_->distribution();
  return env;
}

void Follower::flush_services() {
  services_.regenerate(db_, disk_);
  if (dhcp_ == nullptr || !db_.has_table("nodes")) return;
  const std::uint64_t nodes_revision = db_.revision("nodes");
  if (nodes_revision == dhcp_pushed_revision_) return;
  std::map<Mac, netsim::DhcpLease> bindings;
  const auto rows = db_.execute("SELECT mac, name, ip FROM nodes ORDER BY id");
  for (const auto& row : rows.rows) {
    const auto mac = Mac::parse(row[0].to_string());
    const auto ip = Ipv4::parse(row[2].to_string());
    if (!mac || !ip) continue;
    bindings.emplace(*mac, netsim::DhcpLease{*ip, row[1].to_string(), config_.ip});
  }
  dhcp_->configure(std::move(bindings));
  dhcp_pushed_revision_ = nodes_revision;
}

}  // namespace rocks::replication
