#include "vfs/path.hpp"

#include "support/strings.hpp"

namespace rocks::vfs {

std::string normalize(std::string_view path) {
  std::vector<std::string> stack;
  for (const auto& part : strings::split(path, '/')) {
    if (part.empty() || part == ".") continue;
    if (part == "..") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    stack.push_back(part);
  }
  if (stack.empty()) return "/";
  std::string out;
  for (const auto& part : stack) {
    out += '/';
    out += part;
  }
  return out;
}

std::string join(std::string_view base, std::string_view tail) {
  if (!tail.empty() && tail.front() == '/') return normalize(tail);
  return normalize(strings::cat(base, "/", tail));
}

std::string dirname(std::string_view path) {
  const std::string norm = normalize(path);
  const std::size_t slash = norm.find_last_of('/');
  if (slash == 0) return "/";
  return norm.substr(0, slash);
}

std::string basename(std::string_view path) {
  const std::string norm = normalize(path);
  if (norm == "/") return "";
  return norm.substr(norm.find_last_of('/') + 1);
}

std::vector<std::string> components(std::string_view path) {
  const std::string norm = normalize(path);
  std::vector<std::string> out;
  if (norm == "/") return out;
  for (const auto& part : strings::split(norm.substr(1), '/')) out.push_back(part);
  return out;
}

bool is_within(std::string_view path, std::string_view ancestor) {
  const std::string p = normalize(path);
  const std::string a = normalize(ancestor);
  if (a == "/") return true;
  if (p == a) return true;
  return strings::starts_with(p, a) && p.size() > a.size() && p[a.size()] == '/';
}

}  // namespace rocks::vfs
