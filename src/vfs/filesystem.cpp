#include "vfs/filesystem.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "support/error.hpp"
#include "support/strings.hpp"
#include "vfs/path.hpp"

namespace rocks::vfs {
namespace {

constexpr int kMaxSymlinkHops = 40;

std::uint64_t blocks_for(std::uint64_t bytes) {
  const std::uint64_t blocks = (bytes + kBlockSize - 1) / kBlockSize;
  return std::max<std::uint64_t>(blocks, 1) * kBlockSize;
}

}  // namespace

FileSystem::FileSystem() : root_(std::make_unique<Node>()) {
  root_->type = NodeType::kDirectory;
}

const FileSystem::Node* FileSystem::find(std::string_view path, bool follow_final) const {
  std::string current = normalize(path);
  int hops = 0;
  while (true) {
    const Node* node = root_.get();
    std::string resolved = "/";
    const auto parts = components(current);
    bool restart = false;
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (node->type != NodeType::kDirectory) return nullptr;
      const auto it = node->entries.find(parts[i]);
      if (it == node->entries.end()) return nullptr;
      const Node* next = it->second.get();
      const bool is_final = (i + 1 == parts.size());
      if (next->type == NodeType::kSymlink && (!is_final || follow_final)) {
        if (++hops > kMaxSymlinkHops) return nullptr;
        // Re-root: target relative to the symlink's directory, plus the
        // remaining unconsumed components.
        std::string rebased = join(resolved, next->link_target);
        for (std::size_t j = i + 1; j < parts.size(); ++j) rebased = join(rebased, parts[j]);
        current = rebased;
        restart = true;
        break;
      }
      resolved = join(resolved, parts[i]);
      node = next;
    }
    if (!restart) return node;
  }
}

FileSystem::Node* FileSystem::find_mutable(std::string_view path, bool follow_final) {
  return const_cast<Node*>(std::as_const(*this).find(path, follow_final));
}

FileSystem::Node* FileSystem::parent_of(std::string_view path, std::string& leaf_name) {
  const std::string norm = normalize(path);
  if (norm == "/") throw IoError("operation on '/' is not permitted");
  leaf_name = basename(norm);
  Node* parent = find_mutable(dirname(norm), /*follow_final=*/true);
  if (parent == nullptr || parent->type != NodeType::kDirectory)
    throw IoError(strings::cat("parent directory missing: ", dirname(norm)));
  return parent;
}

void FileSystem::mkdir(std::string_view path) {
  std::string leaf;
  Node* parent = parent_of(path, leaf);
  if (parent->entries.contains(leaf))
    throw IoError(strings::cat("mkdir: path exists: ", normalize(path)));
  auto node = std::make_unique<Node>();
  node->type = NodeType::kDirectory;
  parent->entries.emplace(leaf, std::move(node));
}

void FileSystem::mkdir_p(std::string_view path) {
  std::string built = "/";
  for (const auto& part : components(path)) {
    built = join(built, part);
    const Node* existing = find(built, /*follow_final=*/true);
    if (existing == nullptr) {
      mkdir(built);
    } else if (existing->type != NodeType::kDirectory) {
      throw IoError(strings::cat("mkdir_p: not a directory: ", built));
    }
  }
}

std::vector<std::string> FileSystem::list(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/true);
  if (node == nullptr || node->type != NodeType::kDirectory)
    throw IoError(strings::cat("list: not a directory: ", normalize(path)));
  std::vector<std::string> names;
  names.reserve(node->entries.size());
  for (const auto& [name, child] : node->entries) names.push_back(name);
  return names;
}

void FileSystem::arm_write_fault(std::string_view path_substring, std::uint64_t countdown) {
  write_fault_substring_ = std::string(path_substring);
  write_fault_countdown_ = countdown == 0 ? 1 : countdown;
}

void FileSystem::disarm_write_fault() {
  write_fault_substring_.clear();
  write_fault_countdown_ = 0;
}

void FileSystem::check_write_fault(std::string_view path) {
  if (write_fault_substring_.empty()) return;
  if (path.find(write_fault_substring_) == std::string_view::npos) return;
  if (--write_fault_countdown_ > 0) return;
  disarm_write_fault();
  throw IoError(strings::cat("injected write fault: ", normalize(path)));
}

void FileSystem::write_file(std::string_view path, std::string content,
                            std::uint64_t payload_size, std::uint64_t content_hash_hint) {
  check_write_fault(path);
  std::string leaf;
  Node* parent = parent_of(path, leaf);
  auto& slot = parent->entries[leaf];
  if (slot != nullptr && slot->type == NodeType::kDirectory)
    throw IoError(strings::cat("write_file: is a directory: ", normalize(path)));
  if (slot == nullptr) slot = std::make_unique<Node>();
  slot->type = NodeType::kFile;
  slot->content = std::move(content);
  slot->payload = payload_size;
  slot->link_target.clear();
  slot->entries.clear();
  // Trust the caller's digest when offered; otherwise the first file_hash
  // computes and memoizes it.
  slot->hash_cache.store(content_hash_hint, std::memory_order_relaxed);
}

void FileSystem::append_file(std::string_view path, std::string_view content) {
  check_write_fault(path);
  Node* node = find_mutable(path, /*follow_final=*/true);
  if (node == nullptr) {
    write_file(path, std::string(content));
    return;
  }
  if (node->type != NodeType::kFile)
    throw IoError(strings::cat("append_file: not a file: ", normalize(path)));
  node->content += content;
  node->hash_cache.store(0, std::memory_order_relaxed);
}

const std::string& FileSystem::read_file(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/true);
  if (node == nullptr || node->type != NodeType::kFile)
    throw IoError(strings::cat("read_file: no such file: ", normalize(path)));
  return node->content;
}

void FileSystem::symlink(std::string_view target, std::string_view path) {
  std::string leaf;
  Node* parent = parent_of(path, leaf);
  if (parent->entries.contains(leaf))
    throw IoError(strings::cat("symlink: path exists: ", normalize(path)));
  auto node = std::make_unique<Node>();
  node->type = NodeType::kSymlink;
  node->link_target = std::string(target);
  parent->entries.emplace(leaf, std::move(node));
}

std::string FileSystem::readlink(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/false);
  if (node == nullptr || node->type != NodeType::kSymlink)
    throw IoError(strings::cat("readlink: not a symlink: ", normalize(path)));
  return node->link_target;
}

bool FileSystem::exists(std::string_view path) const {
  return find(path, /*follow_final=*/true) != nullptr;
}

bool FileSystem::is_file(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/true);
  return node != nullptr && node->type == NodeType::kFile;
}

bool FileSystem::is_directory(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/true);
  return node != nullptr && node->type == NodeType::kDirectory;
}

bool FileSystem::is_symlink(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/false);
  return node != nullptr && node->type == NodeType::kSymlink;
}

std::optional<Stat> FileSystem::lstat(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/false);
  if (node == nullptr) return std::nullopt;
  return Stat{node->type, node->content.size() + node->payload, node->link_target};
}

std::optional<std::string> FileSystem::resolve(std::string_view path) const {
  // Walk component by component, following symlinks, recording the real path.
  std::string current = normalize(path);
  int hops = 0;
  std::string resolved = "/";
  auto parts = components(current);
  const Node* node = root_.get();
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (node->type != NodeType::kDirectory) return std::nullopt;
    const auto it = node->entries.find(parts[i]);
    if (it == node->entries.end()) return std::nullopt;
    const Node* next = it->second.get();
    if (next->type == NodeType::kSymlink) {
      if (++hops > kMaxSymlinkHops) return std::nullopt;
      std::string rebased = join(resolved, next->link_target);
      for (std::size_t j = i + 1; j < parts.size(); ++j) rebased = join(rebased, parts[j]);
      parts = components(rebased);
      // Not `resolved = "/"`: GCC 12's inlined char*-assignment trips a
      // -Wrestrict false positive (PR105329) under -O3.
      resolved.clear();
      resolved.push_back('/');
      node = root_.get();
      i = static_cast<std::size_t>(-1);
      continue;
    }
    resolved = join(resolved, parts[i]);
    node = next;
  }
  return resolved;
}

bool FileSystem::remove(std::string_view path) {
  std::string leaf;
  const std::string norm = normalize(path);
  if (norm == "/") throw IoError("remove: cannot remove '/'");
  Node* parent = find_mutable(dirname(norm), /*follow_final=*/true);
  if (parent == nullptr || parent->type != NodeType::kDirectory) return false;
  return parent->entries.erase(basename(norm)) > 0;
}

void FileSystem::rename(std::string_view from, std::string_view to) {
  const std::string src = normalize(from);
  const std::string dst = normalize(to);
  if (src == dst) return;
  // A directory cannot move under itself (the subtree would orphan).
  if (is_within(dst, src))
    throw IoError(strings::cat("rename: cannot move ", src, " into itself at ", dst));

  std::string src_leaf;
  Node* src_parent = parent_of(src, src_leaf);
  const auto src_it = src_parent->entries.find(src_leaf);
  if (src_it == src_parent->entries.end())
    throw IoError(strings::cat("rename: no such path: ", src));

  // Resolve the destination parent *before* detaching the source so a
  // failure here leaves the tree untouched.
  std::string dst_leaf;
  Node* dst_parent = parent_of(dst, dst_leaf);
  const auto dst_it = dst_parent->entries.find(dst_leaf);
  if (dst_it != dst_parent->entries.end() && dst_it->second->type == NodeType::kDirectory)
    throw IoError(strings::cat("rename: destination is a directory: ", dst));

  // The swap itself is the atomic step: detach, then attach-or-replace.
  // (Both maps are ours; no observer can interleave within this call.)
  std::unique_ptr<Node> node = std::move(src_it->second);
  src_parent->entries.erase(src_it);
  dst_parent->entries[dst_leaf] = std::move(node);
}

void FileSystem::walk_node(const std::string& path, const Node& node,
                           const std::function<void(const std::string&, const Stat&)>& visit)
    const {
  visit(path, Stat{node.type, node.content.size() + node.payload, node.link_target});
  if (node.type == NodeType::kDirectory) {
    for (const auto& [name, child] : node.entries) {
      walk_node(path == "/" ? "/" + name : path + "/" + name, *child, visit);
    }
  }
}

void FileSystem::walk(std::string_view root,
                      const std::function<void(const std::string&, const Stat&)>& visit) const {
  const Node* node = find(root, /*follow_final=*/true);
  if (node == nullptr) throw IoError(strings::cat("walk: no such path: ", normalize(root)));
  walk_node(normalize(root), *node, visit);
}

std::uint64_t FileSystem::disk_usage(std::string_view root) const {
  std::uint64_t total = 0;
  walk(root, [&](const std::string&, const Stat& st) {
    switch (st.type) {
      case NodeType::kFile: total += blocks_for(st.size); break;
      case NodeType::kDirectory: total += kBlockSize; break;
      case NodeType::kSymlink: total += kBlockSize; break;
    }
  });
  return total;
}

std::uint64_t FileSystem::logical_size(std::string_view root) const {
  std::uint64_t total = 0;
  walk(root, [&](const std::string&, const Stat& st) {
    if (st.type == NodeType::kFile) total += st.size;
  });
  return total;
}

std::size_t FileSystem::count(std::string_view root, NodeType type) const {
  std::size_t total = 0;
  walk(root, [&](const std::string&, const Stat& st) {
    if (st.type == type) ++total;
  });
  return total;
}

std::uint64_t content_hash(std::string_view content) {
  // FNV-style mix over 8-byte words rather than single bytes: config files
  // are re-hashed on every service flush, and hash values are only ever
  // compared against other content_hash results, so widening the stride is
  // observable only as speed. The tail word folds in the residual length so
  // trailing NUL bytes still change the digest.
  std::uint64_t hash = 1469598103934665603ULL;
  const char* p = content.data();
  std::size_t n = content.size();
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    hash ^= word;
    hash *= 1099511628211ULL;
  }
  std::uint64_t tail = 0;
  std::memcpy(&tail, p, n);
  hash ^= tail ^ (static_cast<std::uint64_t>(n) << 56);
  hash *= 1099511628211ULL;
  return hash;
}

std::uint64_t FileSystem::file_hash(std::string_view path) const {
  const Node* node = find(path, /*follow_final=*/true);
  if (node == nullptr || node->type != NodeType::kFile)
    throw IoError(strings::cat("file_hash: no such file: ", normalize(path)));
  std::uint64_t hash = node->hash_cache.load(std::memory_order_relaxed);
  if (hash == 0) {  // 0 doubles as "not cached"; a genuine 0 just recomputes
    hash = content_hash(node->content);
    node->hash_cache.store(hash, std::memory_order_relaxed);
  }
  // Synthetic payload contributes its size so same-name packages with
  // different payloads hash differently.
  for (std::uint64_t v = node->payload; v != 0; v >>= 8) {
    hash ^= v & 0xFF;
    hash *= 1099511628211ULL;
  }
  return hash;
}

void FileSystem::add_partition(std::string_view mount_point) {
  const std::string norm = normalize(mount_point);
  require_state(norm != "/", "add_partition: '/' is the implicit root partition");
  if (std::find(partitions_.begin(), partitions_.end(), norm) == partitions_.end())
    partitions_.push_back(norm);
  mkdir_p(norm);
}

void FileSystem::wipe_root_partition() {
  // Detach preserved subtrees, clear the root, reattach.
  std::vector<std::pair<std::string, std::unique_ptr<Node>>> preserved;
  for (const auto& mount : partitions_) {
    Node* node = find_mutable(mount, /*follow_final=*/false);
    if (node == nullptr) continue;
    std::string leaf;
    Node* parent = parent_of(mount, leaf);
    auto it = parent->entries.find(leaf);
    preserved.emplace_back(mount, std::move(it->second));
    parent->entries.erase(it);
  }
  root_->entries.clear();
  for (auto& [mount, node] : preserved) {
    mkdir_p(dirname(mount));
    std::string leaf;
    Node* parent = parent_of(mount, leaf);
    parent->entries.emplace(leaf, std::move(node));
  }
}

void FileSystem::copy_node(const Node& src, Node& dst) {
  dst.type = src.type;
  dst.content = src.content;
  dst.payload = src.payload;
  dst.hash_cache.store(src.hash_cache.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  dst.link_target = src.link_target;
  dst.entries.clear();
  for (const auto& [name, child] : src.entries) {
    auto copy = std::make_unique<Node>();
    copy_node(*child, *copy);
    dst.entries.emplace(name, std::move(copy));
  }
}

void FileSystem::copy_tree(const FileSystem& from, std::string_view src, std::string_view dst) {
  const Node* src_node = from.find(src, /*follow_final=*/true);
  if (src_node == nullptr) throw IoError(strings::cat("copy_tree: no such path: ", src));
  mkdir_p(dirname(normalize(dst)));
  std::string leaf;
  Node* parent = parent_of(dst, leaf);
  auto copy = std::make_unique<Node>();
  copy_node(*src_node, *copy);
  parent->entries[leaf] = std::move(copy);
}

void FileSystem::link_tree(const FileSystem& from, std::string_view src, std::string_view dst,
                           std::string_view link_prefix) {
  const Node* src_node = from.find(src, /*follow_final=*/true);
  if (src_node == nullptr || src_node->type != NodeType::kDirectory)
    throw IoError(strings::cat("link_tree: no such directory: ", src));
  mkdir_p(dst);
  for (const auto& [name, child] : src_node->entries) {
    const std::string child_dst = join(dst, name);
    const std::string child_link = join(link_prefix, name);
    if (child->type == NodeType::kDirectory) {
      link_tree(from, join(src, name), child_dst, child_link);
    } else {
      if (exists(child_dst)) remove(child_dst);
      symlink(child_link, child_dst);
    }
  }
}

}  // namespace rocks::vfs
