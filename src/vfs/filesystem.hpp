// In-memory filesystem.
//
// Every machine in the simulation (the frontend, each compute node, each
// distribution host) owns one FileSystem. It supports the operations the
// Rocks toolchain exercises:
//   - rocks-dist builds distribution trees made mostly of symbolic links and
//     measures their on-disk footprint (paper: "on the order of 25MB", §6.2.3)
//   - the installer wipes the root partition but preserves all other
//     partitions across reinstalls (§6.3)
//   - the services generators write /etc configuration files whose content
//     hashes feed the consistency/drift model.
//
// Files may carry literal content, a synthetic payload size, or both: RPM
// payloads are hundreds of megabytes in aggregate and are represented by
// size only, while config files carry real bytes.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rocks::vfs {

/// Disk block size used for usage accounting; every file, directory, and
/// symlink occupies at least one block, matching ext2's behaviour closely
/// enough for the paper's size claims.
inline constexpr std::uint64_t kBlockSize = 4096;

enum class NodeType { kFile, kDirectory, kSymlink };

/// 64-bit digest of a byte string (FNV-style, word-at-a-time) — the same
/// hash FileSystem::file_hash applies to file content. Exposed so callers
/// holding the bytes they just wrote (e.g. the service manager's change
/// detection) can hash without re-reading the file. Values are opaque:
/// compare them to other content_hash results, nothing else.
[[nodiscard]] std::uint64_t content_hash(std::string_view content);

struct Stat {
  NodeType type;
  std::uint64_t size;       // content bytes + synthetic payload bytes
  std::string link_target;  // only for symlinks
};

class FileSystem {
 public:
  FileSystem();

  // --- directories -------------------------------------------------------
  /// Creates one directory; parent must exist. Throws IoError otherwise.
  void mkdir(std::string_view path);
  /// Creates the directory and any missing ancestors (no-op if present).
  void mkdir_p(std::string_view path);
  /// Names of the entries directly inside `path`, sorted.
  [[nodiscard]] std::vector<std::string> list(std::string_view path) const;

  // --- files --------------------------------------------------------------
  /// Creates or replaces a regular file. `payload_size` adds synthetic bytes
  /// on top of content.size() for usage accounting. Parent must exist.
  /// Creates or replaces a file. `content_hash_hint`, when nonzero, must be
  /// content_hash(content) — callers that already hashed the bytes (the
  /// service manager's change detection) pass it so file_hash never re-reads
  /// what they just wrote; 0 means "compute lazily on first file_hash".
  void write_file(std::string_view path, std::string content, std::uint64_t payload_size = 0,
                  std::uint64_t content_hash_hint = 0);
  /// Appends to an existing file (creates it when absent).
  void append_file(std::string_view path, std::string_view content);
  /// Content of a regular file, following symlinks. Throws IoError if absent.
  [[nodiscard]] const std::string& read_file(std::string_view path) const;

  // --- symlinks -----------------------------------------------------------
  /// Creates a symlink at `path` pointing at `target` (target may dangle).
  void symlink(std::string_view target, std::string_view path);
  /// The stored target of a symlink (no resolution). Throws if not a symlink.
  [[nodiscard]] std::string readlink(std::string_view path) const;

  // --- queries -------------------------------------------------------------
  [[nodiscard]] bool exists(std::string_view path) const;
  [[nodiscard]] bool is_file(std::string_view path) const;
  [[nodiscard]] bool is_directory(std::string_view path) const;
  [[nodiscard]] bool is_symlink(std::string_view path) const;  // no follow
  /// Stat without following a final symlink; nullopt when absent.
  [[nodiscard]] std::optional<Stat> lstat(std::string_view path) const;

  /// Resolves symlinks in every component; returns the final real path, or
  /// nullopt when any component is missing or a symlink loop is detected.
  [[nodiscard]] std::optional<std::string> resolve(std::string_view path) const;

  // --- removal -------------------------------------------------------------
  /// Removes a file or symlink, or a directory recursively. Returns false
  /// when the path does not exist.
  bool remove(std::string_view path);

  // --- rename --------------------------------------------------------------
  /// Atomically moves `from` to `to`, replacing an existing file or symlink
  /// at the destination in one step — a reader of `to` observes either the
  /// old node or the new one, never an intermediate state. This is the
  /// POSIX rename(2) contract the durability layer builds on: snapshot
  /// publication and config-file writes go through a temp file plus
  /// rename so a crash mid-write never exposes partial content. Throws
  /// IoError when `from` is missing, `to` is an existing directory, the
  /// destination parent is missing, or a directory would move into itself.
  void rename(std::string_view from, std::string_view to);

  // --- traversal & accounting ----------------------------------------------
  /// Depth-first visit of every node under `root` (inclusive), lexicographic
  /// within each directory. Symlinks are reported, not followed.
  void walk(std::string_view root,
            const std::function<void(const std::string& path, const Stat&)>& visit) const;

  /// Disk usage of the subtree in bytes, block-rounded per node (symlinks
  /// are not followed: a symlink costs one block, like an on-disk dirent
  /// plus inode). This is the number rocks-dist reports for a distribution.
  [[nodiscard]] std::uint64_t disk_usage(std::string_view root) const;

  /// Logical bytes (content + synthetic payload) of the subtree following
  /// nothing; used for transfer-size computations.
  [[nodiscard]] std::uint64_t logical_size(std::string_view root) const;

  /// Total number of nodes under `root` of the given type.
  [[nodiscard]] std::size_t count(std::string_view root, NodeType type) const;

  /// FNV-1a hash of a file's content (synthetic payload contributes its
  /// size). Basis of the drift detector and the cfengine-style baseline.
  [[nodiscard]] std::uint64_t file_hash(std::string_view path) const;

  // --- partitions ----------------------------------------------------------
  /// Declares `mount_point` a separate partition (e.g. "/state").
  void add_partition(std::string_view mount_point);
  [[nodiscard]] const std::vector<std::string>& partitions() const { return partitions_; }

  /// Reformats the root partition: removes everything except the contents of
  /// non-root partitions, which survive exactly (paper §6.3: "all non-root
  /// partitions are preserved over reinstalls"). Mount-point directories are
  /// recreated.
  void wipe_root_partition();

  // --- fault injection ------------------------------------------------------
  /// Arms a write fault: the `countdown`-th future write_file/append_file
  /// whose path contains `path_substring` throws IoError before touching
  /// any state, then the fault disarms itself (one failure per arm, like
  /// one ENOSPC/EIO). Models a disk that fails a write — the durability
  /// layer must surface the failure (with its LSN range) instead of
  /// silently dropping the bytes, and retries must find the buffered data
  /// intact.
  void arm_write_fault(std::string_view path_substring, std::uint64_t countdown = 1);
  void disarm_write_fault();

  // --- whole-tree copies -----------------------------------------------------
  /// Recursively copies `src` (in `from`) to `dst` in this filesystem.
  /// Symlinks are copied as symlinks with unchanged targets.
  void copy_tree(const FileSystem& from, std::string_view src, std::string_view dst);

  /// Mirrors `src` (in `from`) into `dst` as a tree of directories whose
  /// files become symlinks pointing into `link_prefix` — the structure
  /// rocks-dist builds for derived distributions (§6.2.3, Figure 6).
  void link_tree(const FileSystem& from, std::string_view src, std::string_view dst,
                 std::string_view link_prefix);

 private:
  struct Node;
  using Dir = std::map<std::string, std::unique_ptr<Node>>;

  struct Node {
    NodeType type = NodeType::kFile;
    std::string content;          // file content (real bytes)
    std::uint64_t payload = 0;    // synthetic extra bytes
    std::string link_target;      // symlink target
    Dir entries;                  // directory children
    // Memoized content_hash(content); 0 means "not cached" (a genuine hash
    // of 0 merely recomputes). Atomic so concurrent file_hash readers can
    // fill it; content mutators reset or refresh it.
    mutable std::atomic<std::uint64_t> hash_cache{0};
  };

  [[nodiscard]] const Node* find(std::string_view path, bool follow_final) const;
  [[nodiscard]] Node* find_mutable(std::string_view path, bool follow_final);
  [[nodiscard]] Node* parent_of(std::string_view path, std::string& leaf_name);
  void walk_node(const std::string& path, const Node& node,
                 const std::function<void(const std::string&, const Stat&)>& visit) const;
  static void copy_node(const Node& src, Node& dst);

  /// Throws IoError when an armed write fault matches `path` and its
  /// countdown expires; called at the top of every mutating file write.
  void check_write_fault(std::string_view path);

  std::unique_ptr<Node> root_;
  std::vector<std::string> partitions_;  // non-root mount points

  // Armed write fault (empty substring = disarmed).
  std::string write_fault_substring_;
  std::uint64_t write_fault_countdown_ = 0;
};

}  // namespace rocks::vfs
