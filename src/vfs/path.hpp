// Absolute-path string utilities for the virtual filesystem.
//
// All vfs paths are absolute, '/'-separated, and normalized (no ".", "..",
// duplicate slashes, or trailing slash except for the root itself).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rocks::vfs {

/// Normalizes `path` ("/a//b/./c/.." -> "/a/b"). A relative input is
/// interpreted against "/". ".." at the root is clamped to the root.
[[nodiscard]] std::string normalize(std::string_view path);

/// Joins and normalizes; an absolute `tail` replaces `base` entirely.
[[nodiscard]] std::string join(std::string_view base, std::string_view tail);

/// Parent directory ("/a/b" -> "/a"; "/" -> "/").
[[nodiscard]] std::string dirname(std::string_view path);

/// Final component ("/a/b" -> "b"; "/" -> "").
[[nodiscard]] std::string basename(std::string_view path);

/// Path components of a normalized path ("/a/b" -> {"a","b"}; "/" -> {}).
[[nodiscard]] std::vector<std::string> components(std::string_view path);

/// True when `path` equals `ancestor` or lies beneath it.
[[nodiscard]] bool is_within(std::string_view path, std::string_view ancestor);

}  // namespace rocks::vfs
