#include "tools/cluster_tools.hpp"

#include <cstdio>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::tools {

using cluster::Node;
using strings::cat;

ForkResult ClusterTools::fork_glob(std::string_view pattern,
                                   const std::function<void(Node&)>& action) {
  ForkResult result;
  for (Node* node : cluster_.nodes()) {
    if (node->hostname().empty() || !strings::glob_match(pattern, node->hostname())) continue;
    if (!node->is_running()) {
      result.unreachable.push_back(node->hostname());
      continue;
    }
    action(*node);
    result.reached.push_back(node->hostname());
  }
  return result;
}

ForkResult ClusterTools::fork_query(std::string_view sql,
                                    const std::function<void(Node&)>& action) {
  ForkResult result;
  for (const auto& name : cluster_.frontend().db().query_column(sql)) {
    Node* node = cluster_.node(name);
    if (node == nullptr) {
      // The frontend itself, switches, and power units live in the nodes
      // table but are not shootable compute hosts.
      result.unknown.push_back(name);
      continue;
    }
    if (!node->is_running()) {
      result.unreachable.push_back(name);
      continue;
    }
    action(*node);
    result.reached.push_back(name);
  }
  return result;
}

ForkResult ClusterTools::kill(std::string_view process, std::string_view sql) {
  std::size_t killed = 0;
  ForkResult result = fork_query(
      sql, [&killed, process](Node& node) { killed += node.kill_processes(process); });
  result.total_killed = killed;
  return result;
}

std::string ClusterTools::status_report() {
  AsciiTable table({"Host", "State", "Installs", "Packages", "Fingerprint"});
  for (Node* node : cluster_.nodes()) {
    char fingerprint[20];
    std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                  static_cast<unsigned long long>(node->software_fingerprint()));
    table.add_row({node->hostname().empty() ? node->mac().to_string() : node->hostname(),
                   std::string(cluster::node_state_name(node->state())),
                   std::to_string(node->install_count()),
                   std::to_string(node->rpmdb().package_count()), fingerprint});
  }
  return table.render();
}

std::string ClusterTools::recovery_report(const sqldb::RecoveryReport& report) {
  std::string out = "durable store recovery:\n";
  out += report.snapshot_loaded
             ? cat("  snapshot: seq ", report.snapshot_seq, " (LSN ", report.snapshot_lsn,
                   "), ", report.snapshots_skipped, " corrupt skipped\n")
             : cat("  snapshot: none loaded, ", report.snapshots_skipped,
                   " corrupt skipped\n");
  out += cat("  wal: ", report.wal_records_replayed, " replayed, ",
             report.wal_records_skipped, " below snapshot, ", report.wal_records_dropped,
             " dropped after gap", report.wal_torn ? ", torn tail truncated" : "", "\n");
  out += cat("  position: LSN ", report.last_lsn, "\n");
  return out;
}

std::string ClusterTools::replication_report(const replication::ControlPlaneStatus& status) {
  return replication::render_status(status);
}

std::string ClusterTools::peer_distribution_report() {
  netsim::PeerDistribution* peers = cluster_.peers();
  if (peers == nullptr) return "peer distribution: disabled (all installs hit the seed)\n";
  const netsim::PeerStats& stats = peers->stats();
  const char* mode = "single-server";
  if (peers->config().mode == netsim::DistMode::kCascade) mode = "cascade";
  if (peers->config().mode == netsim::DistMode::kSwarm) mode = "swarm";
  const double total_bytes = stats.peer_bytes + stats.seed_bytes;
  const double peer_share = total_bytes > 0.0 ? 100.0 * stats.peer_bytes / total_bytes : 0.0;
  std::string out = cat("peer distribution (", mode, "):\n");
  out += cat("  chunks: ", stats.chunk_fetches, " fetched — ", stats.peer_serves,
             " from peers (", stats.rack_local_serves, " rack-local, ",
             stats.cross_rack_serves, " cross-rack), ", stats.seed_serves,
             " from the seed\n");
  out += cat("  bytes: ", fixed(stats.peer_bytes / (1024.0 * 1024.0), 0), " MB via peers (",
             fixed(peer_share, 0), "%), ", fixed(stats.seed_bytes / (1024.0 * 1024.0), 0),
             " MB via seed\n");
  out += cat("  now: ", peers->seeded_count(), " seeded servers, ",
             peers->active_transfers(), " transfers in flight, ", peers->waiting(),
             " installers parked\n");
  out += cat("  churn: ", stats.churn_aborts, " transfers aborted by source death, ",
             stats.waits, " parks\n");
  return out;
}

std::string ClusterTools::trigger_report() {
  events::TriggerEngine& engine = cluster_.triggers();
  AsciiTable table({"Id", "Name", "Event", "Subject", "Action", "Rate limit",
                    "Fired", "Suppressed", "Last fired"});
  for (const events::TriggerStatus& status : engine.list()) {
    table.add_row({std::to_string(status.id), status.spec.name,
                   std::string(events::event_type_name(status.spec.event)),
                   status.spec.subject, status.spec.action,
                   status.spec.rate_limit > 0.0 ? cat(fixed(status.spec.rate_limit, 0), "s")
                                                : "-",
                   std::to_string(status.fired), std::to_string(status.suppressed),
                   status.last_fired < 0 ? "never" : fixed(status.last_fired, 1)});
  }
  std::string out = table.render();
  out += cat("engine: ", engine.events_seen(), " events seen, ", engine.firings(),
             " firings, ", engine.suppressions(), " suppressed, ",
             cluster_.auto_reinstalls(), " auto-reinstalls\n");
  return out;
}

std::string ClusterTools::events_report(std::size_t limit) {
  events::EventBus& bus = cluster_.events();
  std::string out = cat("event spine: ", bus.published(), " published, ",
                        bus.notifications_sent(), " notifications\n");
  for (std::size_t i = 0; i < events::kEventTypeCount; ++i) {
    const auto type = static_cast<events::EventType>(i);
    if (bus.seq(type) == 0) continue;
    out += cat("  [", events::event_type_name(type), "] seq ", bus.seq(type), ":\n");
    for (const events::Event& event : bus.recent(type, limit)) {
      out += cat("    #", event.seq, " t=", fixed(event.time, 1), " ", event.subject,
                 event.detail.empty() ? "" : " ", event.detail,
                 event.value != 0.0 ? cat(" (", fixed(event.value, 0), ")") : "", "\n");
    }
  }
  return out;
}

std::string ClusterTools::engine_status_report(sqldb::Database& db) {
  const sqldb::MvccStatus status = db.mvcc_status();
  std::string out = "mvcc engine:\n";
  out += cat("  commit ts: ", status.commit_ts, "\n");
  out += cat("  read views: ", status.active_read_views, " active (horizon ts ",
             status.min_active_ts, "), ", status.read_views_opened, " opened\n");
  out += cat("  versions: ", status.versions_live, " live, ", status.retired_pending,
             " retired pending, ", status.limbo_versions, " in limbo, ",
             status.versions_reclaimed, " reclaimed\n");
  std::string histogram;
  for (std::size_t i = 0; i < status.chain_histogram.size(); ++i) {
    if (status.chain_histogram[i] == 0) continue;
    histogram += cat(histogram.empty() ? "" : ", ", i + 1,
                     i + 1 == status.chain_histogram.size() ? "+" : "", ": ",
                     status.chain_histogram[i]);
  }
  out += cat("  chains: max ", status.max_chain, " (",
             histogram.empty() ? "empty" : histogram, ")\n");
  AsciiTable table({"Table", "Live", "Versions", "Retired", "Limbo", "Reclaimed", "MaxChain"});
  for (const auto& entry : status.tables)
    table.add_row({entry.table, std::to_string(entry.stats.live_rows),
                   std::to_string(entry.stats.versions),
                   std::to_string(entry.stats.retired_pending),
                   std::to_string(entry.stats.limbo_versions),
                   std::to_string(entry.stats.reclaimed),
                   std::to_string(entry.stats.max_chain)});
  out += table.render();
  return out;
}

std::string ClusterTools::jobs_report(batch::Scheduler& scheduler) {
  std::string out =
      cat("batch queue: ", scheduler.queued_count(), " queued, ",
          scheduler.running_count(), " running, ", scheduler.idle_nodes(), " of ",
          scheduler.registered_nodes(), " nodes idle\n");
  out += scheduler.qstat();
  const batch::SchedulerStats& stats = scheduler.stats();
  out += cat("scheduler: ", stats.started, " starts (", stats.backfilled,
             " backfilled, ", stats.shrunk, " shrunk), ", stats.requeued,
             " requeues, ", stats.drains_started, " drains, ",
             stats.reinstalls_started, " reinstalls (", stats.reinstalls_finished,
             " done)\n");
  const batch::AccountingTotals totals = batch::Accounting::totals(scheduler.db());
  out += cat("accounting: ", totals.completed, " completed, ", totals.cancelled,
             " cancelled, ", totals.duplicate_ids, " duplicate ids, ",
             fixed(totals.node_seconds, 0), " node-seconds\n");
  out += batch::Accounting::report(scheduler.db(), 10);
  return out;
}

}  // namespace rocks::tools
