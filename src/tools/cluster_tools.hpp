// Cluster command-line tools: cluster-fork, cluster-kill, cluster-status.
//
// "By simply adding an SQL interface to the script makes it more powerful
// as the user can intelligently direct the script to a subset of the nodes"
// (paper Section 6.4). cluster-kill takes any SELECT producing hostnames —
// including multi-table joins — and applies the action to exactly that set.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "batch/scheduler.hpp"
#include "cluster/cluster.hpp"
#include "replication/control_plane.hpp"
#include "sqldb/engine.hpp"

namespace rocks::tools {

struct ForkResult {
  std::vector<std::string> reached;      // action ran
  std::vector<std::string> unreachable;  // node known but not running
  std::vector<std::string> unknown;      // name had no node behind it
  std::size_t total_killed = 0;          // for cluster-kill
};

class ClusterTools {
 public:
  explicit ClusterTools(cluster::Cluster& cluster) : cluster_(cluster) {}

  /// cluster-fork: run `action` on every node whose hostname matches the
  /// glob pattern (e.g. "compute-1-*").
  ForkResult fork_glob(std::string_view pattern,
                       const std::function<void(cluster::Node&)>& action);

  /// cluster-fork over an explicit SQL query producing hostnames.
  ForkResult fork_query(std::string_view sql,
                        const std::function<void(cluster::Node&)>& action);

  /// cluster-kill --query="...": kill `process` on the queried nodes. The
  /// default query is the paper's memberships join (all compute nodes).
  ForkResult kill(std::string_view process,
                  std::string_view sql =
                      "select nodes.name from nodes,memberships where "
                      "nodes.membership = memberships.id and "
                      "memberships.name = 'Compute'");

  /// One-line-per-node status table (hostname, state, installs, packages,
  /// software fingerprint).
  [[nodiscard]] std::string status_report();

  /// cluster-status --recovery: what the frontend's durable store did at
  /// boot (snapshot chosen, corrupt ones skipped, WAL records replayed /
  /// dropped, torn tail) — the operator's first stop after a crash.
  [[nodiscard]] static std::string recovery_report(const sqldb::RecoveryReport& report);

  /// cluster-status --replication: leader, epoch, commit mode, and each
  /// follower's durable/acked LSN + lag (DESIGN.md §12).
  [[nodiscard]] static std::string replication_report(
      const replication::ControlPlaneStatus& status);

  /// cluster-status --engine: the MVCC engine's vitals — commit timestamp,
  /// active read views and the reclamation horizon they pin, version-chain
  /// shape (live/retired/limbo, chain-length histogram), and how many
  /// superseded versions have been reclaimed (DESIGN.md §13).
  [[nodiscard]] static std::string engine_status_report(sqldb::Database& db);

  /// cluster-status --peers: where install bytes actually came from — seed
  /// vs peers, rack-local vs cross-rack, current seeded servers / transfers
  /// / parked installers, and churn aborts (DESIGN.md §14). Reports "peer
  /// distribution: disabled" when the cluster runs the plain HTTP path.
  [[nodiscard]] std::string peer_distribution_report();

  /// cluster-status --triggers: the durable trigger table plus firing
  /// accounting — one row per registered trigger (id, name, event, subject
  /// glob, action, rate limit, fired/suppressed counts, last fired), then
  /// the engine totals (DESIGN.md §15.3). Mirrors SLURM's `strigger --get`.
  [[nodiscard]] std::string trigger_report();

  /// cluster-status --events: the newest <= `limit` retained events per
  /// non-empty bus channel, oldest first within a channel (DESIGN.md §15).
  [[nodiscard]] std::string events_report(std::size_t limit = 10);

  /// cluster-status --jobs: the batch scheduler's live queue (qstat), its
  /// start/requeue/drain counters, and the durable accounting ledger — the
  /// exactly-once totals plus an sacct-style tail (DESIGN.md §16).
  [[nodiscard]] static std::string jobs_report(batch::Scheduler& scheduler);

 private:
  cluster::Cluster& cluster_;
};

}  // namespace rocks::tools
