#include "kickstart/generator.hpp"

#include <set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {

std::string localize(std::string_view text, const NodeConfig& config) {
  // Marker-free text (most header commands, many %post bodies) copies
  // straight through; marked text is rewritten in a single pass.
  std::size_t at = text.find('@');
  if (at == std::string_view::npos) return std::string(text);

  const std::string ip = config.ip.to_string();
  const std::string frontend = config.frontend_ip.to_string();
  const struct {
    std::string_view marker;
    const std::string& replacement;
  } markers[] = {
      {"@HOSTNAME@", config.hostname},
      {"@IP@", ip},
      {"@FRONTEND@", frontend},
      {"@DISTRIBUTION@", config.distribution_url},
      {"@ARCH@", config.arch},
  };

  std::string out;
  out.reserve(text.size() + 32);
  std::size_t pos = 0;
  while (at != std::string_view::npos) {
    out.append(text.substr(pos, at - pos));
    pos = at;
    bool replaced = false;
    for (const auto& m : markers) {
      if (text.substr(at, m.marker.size()) == m.marker) {
        out.append(m.replacement);
        pos = at + m.marker.size();
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      out.push_back('@');
      pos = at + 1;
    }
    at = text.find('@', pos);
  }
  out.append(text.substr(pos));
  return out;
}

Generator::Generator(const NodeFileSet& files, const Graph& graph,
                     const rpm::Repository* distro)
    : files_(files), graph_(graph), distro_(distro) {}

Generator::Profile Generator::build_profile(const std::string& appliance,
                                            const std::string& arch) const {
  Profile out;
  // Header: the answers to every interactive-install question (Section 5),
  // identical across nodes except for the localized pieces.
  out.commands.push_back({"install", ""});
  out.commands.push_back({"url", "--url @DISTRIBUTION@"});
  out.commands.push_back({"lang", "en_US"});
  out.commands.push_back({"keyboard", "us"});
  out.commands.push_back({"network", "--bootproto dhcp"});
  out.commands.push_back({"rootpw", "--iscrypted $1$rocks$kickstart"});
  out.commands.push_back({"timezone", "--utc America/Los_Angeles"});
  out.commands.push_back({"zerombr", "yes"});
  // Only the root partition is reformatted; /state/partition1 persists
  // across reinstalls (paper Section 6.3).
  out.commands.push_back({"clearpart", "--linux"});
  out.commands.push_back({"part", "/ --size 4096 --ondisk auto"});
  out.commands.push_back({"part", "/state/partition1 --size 1 --grow --noformat"});
  out.commands.push_back({"auth", "--useshadow --enablenis --nisdomain rocks"});
  out.commands.push_back({"reboot", ""});

  const auto order = graph_.traverse(appliance, arch);
  std::set<std::string> seen_packages;
  for (const auto& module : order) {
    require_found(files_.contains(module),
                  strings::cat("graph references module '", module,
                               "' but no node file defines it"));
    const NodeFile& file = files_.get(module);
    for (const PackageEntry* entry : file.packages_for(arch)) {
      if (entry->optional && distro_ != nullptr && !distro_->contains(entry->name)) continue;
      if (seen_packages.insert(entry->name).second) out.packages.push_back(entry->name);
    }
  }
  // Post sections run in traversal order, after all packages are installed.
  // Bodies stay raw here; localization and empty-trimming happen per node.
  for (const auto& module : order) {
    const NodeFile& file = files_.get(module);
    for (const PostScript* post : file.posts_for(arch))
      out.posts.push_back({module, post->body});
  }
  return out;
}

const Generator::Profile& Generator::profile_for(const std::string& appliance,
                                                 const std::string& arch) const {
  // files_.get_mutable() bumps the NodeFileSet revision, so edits made
  // through it (and graph edge edits) are caught here without any explicit
  // notification.
  if (graph_revision_ != graph_.revision() || files_revision_ != files_.revision()) {
    profiles_.clear();
    graph_revision_ = graph_.revision();
    files_revision_ = files_.revision();
  }
  const auto key = std::make_pair(appliance, arch);
  const auto it = profiles_.find(key);
  if (it != profiles_.end()) {
    ++cache_hits_;
    return it->second;
  }
  ++cache_misses_;
  return profiles_.emplace(key, build_profile(appliance, arch)).first->second;
}

KickstartFile Generator::generate(const NodeConfig& config) const {
  const Profile& profile = profile_for(config.appliance, config.arch);
  KickstartFile out;
  for (const auto& command : profile.commands)
    out.add_command(command.name, localize(command.arguments, config));
  for (const auto& package : profile.packages) out.add_package(package);
  for (const auto& post : profile.posts) {
    const std::string body = localize(post.body, config);
    if (!strings::trim(body).empty())
      out.add_post(post.origin, std::string(strings::trim(body)));
  }
  return out;
}

std::string Generator::generate_text(const NodeConfig& config) const {
  return generate(config).render();
}

}  // namespace rocks::kickstart
