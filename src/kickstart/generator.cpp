#include "kickstart/generator.hpp"

#include <functional>
#include <set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {

std::string localize(std::string_view text, const NodeConfig& config) {
  // Marker-free text (most header commands, many %post bodies) copies
  // straight through; marked text is rewritten in a single pass.
  std::size_t at = text.find('@');
  if (at == std::string_view::npos) return std::string(text);

  const std::string ip = config.ip.to_string();
  const std::string frontend = config.frontend_ip.to_string();
  const struct {
    std::string_view marker;
    const std::string& replacement;
  } markers[] = {
      {"@HOSTNAME@", config.hostname},
      {"@IP@", ip},
      {"@FRONTEND@", frontend},
      {"@DISTRIBUTION@", config.distribution_url},
      {"@ARCH@", config.arch},
  };

  std::string out;
  out.reserve(text.size() + 32);
  std::size_t pos = 0;
  while (at != std::string_view::npos) {
    out.append(text.substr(pos, at - pos));
    pos = at;
    bool replaced = false;
    for (const auto& m : markers) {
      if (text.substr(at, m.marker.size()) == m.marker) {
        out.append(m.replacement);
        pos = at + m.marker.size();
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      out.push_back('@');
      pos = at + 1;
    }
    at = text.find('@', pos);
  }
  out.append(text.substr(pos));
  return out;
}

Generator::Generator(const NodeFileSet& files, const Graph& graph,
                     const rpm::Repository* distro, sqldb::ChangeJournal* bus)
    : files_(files), graph_(graph), distro_(distro), bus_(bus) {
  if (bus_ == nullptr) return;
  // One subscription per kickstart input channel; callbacks only flip the
  // stale flag, so they are safe from any publishing thread.
  for (const std::string_view channel :
       {kGraphChannel, kNodeFilesChannel, kDistributionChannel}) {
    subscriptions_.push_back(bus_->subscribe(
        channel, [this](std::string_view, std::uint64_t) { mark_stale(); }));
  }
}

Generator::~Generator() {
  if (bus_ == nullptr) return;
  for (const std::size_t id : subscriptions_) bus_->unsubscribe(id);
}

Generator::Profile Generator::build_profile(const std::string& appliance,
                                            const std::string& arch) const {
  Profile out;
  // Header: the answers to every interactive-install question (Section 5),
  // identical across nodes except for the localized pieces.
  out.commands.push_back({"install", ""});
  out.commands.push_back({"url", "--url @DISTRIBUTION@"});
  out.commands.push_back({"lang", "en_US"});
  out.commands.push_back({"keyboard", "us"});
  out.commands.push_back({"network", "--bootproto dhcp"});
  out.commands.push_back({"rootpw", "--iscrypted $1$rocks$kickstart"});
  out.commands.push_back({"timezone", "--utc America/Los_Angeles"});
  out.commands.push_back({"zerombr", "yes"});
  // Only the root partition is reformatted; /state/partition1 persists
  // across reinstalls (paper Section 6.3).
  out.commands.push_back({"clearpart", "--linux"});
  out.commands.push_back({"part", "/ --size 4096 --ondisk auto"});
  out.commands.push_back({"part", "/state/partition1 --size 1 --grow --noformat"});
  out.commands.push_back({"auth", "--useshadow --enablenis --nisdomain rocks"});
  out.commands.push_back({"reboot", ""});

  const auto order = graph_.traverse(appliance, arch);
  std::set<std::string> seen_packages;
  for (const auto& module : order) {
    require_found(files_.contains(module),
                  strings::cat("graph references module '", module,
                               "' but no node file defines it"));
    const NodeFile& file = files_.get(module);
    for (const PackageEntry* entry : file.packages_for(arch)) {
      if (entry->optional && distro_ != nullptr && !distro_->contains(entry->name)) continue;
      if (seen_packages.insert(entry->name).second) out.packages.push_back(entry->name);
    }
  }
  // Post sections run in traversal order, after all packages are installed.
  // Bodies stay raw here; localization and empty-trimming happen per node.
  for (const auto& module : order) {
    const NodeFile& file = files_.get(module);
    for (const PostScript* post : file.posts_for(arch))
      out.posts.push_back({module, post->body});
  }
  return out;
}

std::size_t Generator::stripe_of(const std::string& appliance, const std::string& arch) {
  // Mix both halves of the key so appliances sharing an arch still spread.
  return (std::hash<std::string>{}(appliance) * 31 + std::hash<std::string>{}(arch)) % kStripes;
}

void Generator::flush_stripes() const {
  for (auto& stripe : stripes_) {
    std::unique_lock<std::shared_mutex> lock(stripe.mutex);
    stripe.entries.clear();
  }
}

std::shared_ptr<const Generator::Profile> Generator::profile_for(
    const std::string& appliance, const std::string& arch) const {
  // Two staleness sources feed one flush: the bus-set stale flag, and the
  // polled Graph/NodeFileSet revision counters (files_.get_mutable() bumps
  // its revision, so edits made through it are caught even without a bus).
  // Double-checked under flush_mutex_ so concurrent requests flush once,
  // not once each.
  const std::uint64_t graph_now = graph_.revision();
  const std::uint64_t files_now = files_.revision();
  if (stale_.load(std::memory_order_acquire) ||
      graph_revision_.load(std::memory_order_acquire) != graph_now ||
      files_revision_.load(std::memory_order_acquire) != files_now) {
    std::lock_guard<std::mutex> lock(flush_mutex_);
    // Consume the flag before flushing: a publisher racing this flush
    // re-marks stale and the *next* request flushes again, never missing.
    const bool was_stale = stale_.exchange(false, std::memory_order_acq_rel);
    if (was_stale ||
        graph_revision_.load(std::memory_order_relaxed) != graph_now ||
        files_revision_.load(std::memory_order_relaxed) != files_now) {
      flush_stripes();
      graph_revision_.store(graph_now, std::memory_order_release);
      files_revision_.store(files_now, std::memory_order_release);
    }
  }

  Stripe& stripe = stripes_[stripe_of(appliance, arch)];
  const auto key = std::make_pair(appliance, arch);
  {
    std::shared_lock<std::shared_mutex> lock(stripe.mutex);
    const auto it = stripe.entries.find(key);
    if (it != stripe.entries.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside any lock — traversal and package merge are the expensive
  // part, and two threads racing to build the same key is cheaper than
  // serializing every miss. The loser adopts the winner's entry.
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  auto built = std::make_shared<const Profile>(build_profile(appliance, arch));
  std::unique_lock<std::shared_mutex> lock(stripe.mutex);
  return stripe.entries.try_emplace(key, std::move(built)).first->second;
}

KickstartFile Generator::generate(const NodeConfig& config) const {
  const std::shared_ptr<const Profile> profile = profile_for(config.appliance, config.arch);
  KickstartFile out;
  for (const auto& command : profile->commands)
    out.add_command(command.name, localize(command.arguments, config));
  for (const auto& package : profile->packages) out.add_package(package);
  for (const auto& post : profile->posts) {
    const std::string body = localize(post.body, config);
    if (!strings::trim(body).empty())
      out.add_post(post.origin, std::string(strings::trim(body)));
  }
  return out;
}

std::string Generator::generate_text(const NodeConfig& config) const {
  return generate(config).render();
}

}  // namespace rocks::kickstart
