#include "kickstart/generator.hpp"

#include <set>

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {

std::string localize(std::string_view text, const NodeConfig& config) {
  std::string out(text);
  out = strings::replace_all(out, "@HOSTNAME@", config.hostname);
  out = strings::replace_all(out, "@IP@", config.ip.to_string());
  out = strings::replace_all(out, "@FRONTEND@", config.frontend_ip.to_string());
  out = strings::replace_all(out, "@DISTRIBUTION@", config.distribution_url);
  out = strings::replace_all(out, "@ARCH@", config.arch);
  return out;
}

Generator::Generator(const NodeFileSet& files, const Graph& graph,
                     const rpm::Repository* distro)
    : files_(files), graph_(graph), distro_(distro) {}

KickstartFile Generator::generate(const NodeConfig& config) const {
  KickstartFile out;
  // Header: the answers to every interactive-install question (Section 5),
  // identical across nodes except for the localized pieces.
  out.add_command("install", "");
  out.add_command("url", strings::cat("--url ", config.distribution_url));
  out.add_command("lang", "en_US");
  out.add_command("keyboard", "us");
  out.add_command("network", "--bootproto dhcp");
  out.add_command("rootpw", "--iscrypted $1$rocks$kickstart");
  out.add_command("timezone", "--utc America/Los_Angeles");
  out.add_command("zerombr", "yes");
  // Only the root partition is reformatted; /state/partition1 persists
  // across reinstalls (paper Section 6.3).
  out.add_command("clearpart", "--linux");
  out.add_command("part", "/ --size 4096 --ondisk auto");
  out.add_command("part", "/state/partition1 --size 1 --grow --noformat");
  out.add_command("auth", "--useshadow --enablenis --nisdomain rocks");
  out.add_command("reboot", "");

  const auto order = graph_.traverse(config.appliance, config.arch);
  std::set<std::string> seen_packages;
  for (const auto& module : order) {
    require_found(files_.contains(module),
                  strings::cat("graph references module '", module,
                               "' but no node file defines it"));
    const NodeFile& file = files_.get(module);
    for (const PackageEntry* entry : file.packages_for(config.arch)) {
      if (entry->optional && distro_ != nullptr && !distro_->contains(entry->name)) continue;
      if (seen_packages.insert(entry->name).second) out.add_package(entry->name);
    }
  }
  // Post sections run in traversal order, after all packages are installed.
  for (const auto& module : order) {
    const NodeFile& file = files_.get(module);
    for (const PostScript* post : file.posts_for(config.arch)) {
      const std::string body = localize(post->body, config);
      if (!strings::trim(body).empty())
        out.add_post(module, std::string(strings::trim(body)));
    }
  }
  return out;
}

std::string Generator::generate_text(const NodeConfig& config) const {
  return generate(config).render();
}

}  // namespace rocks::kickstart
