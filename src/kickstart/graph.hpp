// The XML graph file.
//
// "An XML-based graph file links all the defined modules together with
// directed edges... The roots of the graph represent appliances, such as
// compute and frontend" (paper Section 6.1, Figures 3-4). Dialect:
//
//   <GRAPH>
//     <DESCRIPTION>...</DESCRIPTION>
//     <EDGE FROM="compute" TO="mpi" [ARCH="ia64"]/>
//     ...
//   </GRAPH>
//
// Traversal from an appliance root yields the module list whose node files
// are merged into that appliance's kickstart file.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "kickstart/nodefile.hpp"
#include "xml/dom.hpp"

namespace rocks::sqldb {
class ChangeJournal;
}

namespace rocks::kickstart {

struct Edge {
  std::string from;
  std::string to;
  std::string arch;  // empty = all architectures
};

class Graph {
 public:
  [[nodiscard]] static Graph parse(std::string_view xml_text);
  [[nodiscard]] static Graph from_element(const xml::Element& root);

  void add_edge(std::string from, std::string to, std::string arch = "");
  /// Removes every from->to edge; returns how many were removed. This is
  /// the "edit the graph to customize a distribution" workflow of §6.2.3.
  std::size_t remove_edge(std::string_view from, std::string_view to);

  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Bumped on every edge mutation. Cache layers (Generator's appliance
  /// profile cache) compare this against the value they captured to detect
  /// graph edits without being told.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// Attaches the graph to the change bus: every edge mutation publishes a
  /// touch on `channel` (normally Generator::kGraphChannel) so subscribers
  /// are pushed the change instead of polling revision(). Pass nullptr to
  /// detach. The journal must outlive this graph (or be detached first).
  void set_bus(sqldb::ChangeJournal* bus, std::string channel);
  [[nodiscard]] const std::string& description() const { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

  /// All node names mentioned by any edge.
  [[nodiscard]] std::set<std::string> nodes() const;

  /// Roots: nodes with outgoing edges but no incoming ones — the appliances.
  [[nodiscard]] std::vector<std::string> appliances() const;

  /// Depth-first preorder from `root`, following edges whose arch matches,
  /// visiting each module once. The root itself is first — exactly the
  /// "compute, mpi, c-development" order of the paper's Figure 4 walk.
  [[nodiscard]] std::vector<std::string> traverse(std::string_view root,
                                                  std::string_view arch = "") const;

  /// Edges that reference a module with no node file in `files` (lint).
  [[nodiscard]] std::vector<std::string> undefined_modules(const NodeFileSet& files) const;

  /// True when the subgraph reachable from `root` contains a cycle.
  /// Traversal tolerates cycles (visited-set), but lint reports them.
  [[nodiscard]] bool has_cycle() const;

  /// Graphviz DOT rendering of the whole graph — the paper's Figure 4.
  [[nodiscard]] std::string to_dot() const;

  /// Serializes back to the XML dialect.
  [[nodiscard]] std::string to_xml() const;

 private:
  void publish() const;

  std::string description_;
  std::vector<Edge> edges_;
  std::uint64_t revision_ = 0;
  sqldb::ChangeJournal* bus_ = nullptr;
  std::string bus_channel_;
};

}  // namespace rocks::kickstart
