// The default Rocks configuration: the node files and graph that ship on
// the CD ("We develop and distribute the default set of node and graph
// files that are automatically installed when a user creates a frontend
// node", paper Section 6.1 footnote).
//
// Package names are drawn from the synthetic Red Hat release so the graph,
// the distribution, and the installer agree.
#pragma once

#include "kickstart/graph.hpp"
#include "kickstart/nodefile.hpp"
#include "rpm/synth.hpp"

namespace rocks::kickstart {

struct DefaultConfiguration {
  NodeFileSet files;
  Graph graph;
};

/// Builds the default appliance graph:
///
///   frontend -> base, mpi, dhcp-server, mysql, installation-server,
///               nis-server, nfs-server, pbs-server, web-server, x11
///   compute  -> base, mpi, pbs-mom, myrinet, ekv
///   nfs      -> base, nfs-server
///   web      -> base, web-server
///   mpi      -> c-development        (the paper's Figure 4 walk:
///                                     compute, mpi, c-development, ...)
[[nodiscard]] DefaultConfiguration make_default_configuration(const rpm::SynthDistro& distro);

/// The paper's Figure 2 node file text (DHCP server), used verbatim as the
/// dhcp-server module.
[[nodiscard]] const char* figure2_dhcp_server_xml();

}  // namespace rocks::kickstart
