#include "kickstart/nodefile.hpp"

#include "sqldb/journal.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace rocks::kickstart {
namespace {

bool tag_is(const xml::Element& element, std::string_view name) {
  return strings::to_lower(element.name()) == strings::to_lower(name);
}

std::string attr_ci(const xml::Element& element, std::string_view name) {
  for (const auto& attr : element.attributes())
    if (strings::to_lower(attr.name) == strings::to_lower(name)) return attr.value;
  return "";
}

}  // namespace

NodeFile NodeFile::parse(std::string name, std::string_view xml_text) {
  return from_element(std::move(name), xml::parse(xml_text).root);
}

NodeFile NodeFile::from_element(std::string name, const xml::Element& root) {
  if (!tag_is(root, "KICKSTART"))
    throw ParseError(strings::cat("node file '", name, "': root element must be <KICKSTART>, got <",
                                  root.name(), ">"));
  NodeFile out(std::move(name));
  for (const auto& child : root.children()) {
    if (!child.is_element()) continue;
    const xml::Element& element = child.element_value();
    if (tag_is(element, "DESCRIPTION")) {
      out.description_ = std::string(strings::trim(element.text()));
    } else if (tag_is(element, "PACKAGE")) {
      const std::string pkg = std::string(strings::trim(element.text()));
      if (pkg.empty())
        throw ParseError(strings::cat("node file '", out.name_, "': empty <PACKAGE>"));
      out.add_package(pkg, attr_ci(element, "ARCH"),
                      strings::to_lower(attr_ci(element, "TYPE")) == "optional");
    } else if (tag_is(element, "POST")) {
      out.add_post(element.text(), attr_ci(element, "ARCH"));
    } else {
      throw ParseError(strings::cat("node file '", out.name_, "': unknown element <",
                                    element.name(), ">"));
    }
  }
  return out;
}

void NodeFile::add_package(std::string package, std::string arch, bool optional) {
  packages_.push_back({std::move(package), std::move(arch), optional});
}

void NodeFile::add_post(std::string body, std::string arch) {
  posts_.push_back({std::move(arch), std::move(body)});
}

std::vector<const PackageEntry*> NodeFile::packages_for(std::string_view arch) const {
  std::vector<const PackageEntry*> out;
  for (const auto& entry : packages_)
    if (entry.arch.empty() || entry.arch == arch) out.push_back(&entry);
  return out;
}

std::vector<const PostScript*> NodeFile::posts_for(std::string_view arch) const {
  std::vector<const PostScript*> out;
  for (const auto& post : posts_)
    if (post.arch.empty() || post.arch == arch) out.push_back(&post);
  return out;
}

std::string NodeFile::to_xml() const {
  xml::Document doc;
  doc.declaration = R"(XML VERSION="1.0" STANDALONE="no")";
  doc.root = xml::Element("KICKSTART");
  if (!description_.empty()) {
    xml::Element desc("DESCRIPTION");
    desc.add_text(description_);
    doc.root.add_child(std::move(desc));
  }
  for (const auto& entry : packages_) {
    xml::Element pkg("PACKAGE");
    if (!entry.arch.empty()) pkg.set_attribute("ARCH", entry.arch);
    if (entry.optional) pkg.set_attribute("TYPE", "optional");
    pkg.add_text(entry.name);
    doc.root.add_child(std::move(pkg));
  }
  for (const auto& post : posts_) {
    xml::Element elem("POST");
    if (!post.arch.empty()) elem.set_attribute("ARCH", post.arch);
    elem.add_text(post.body);
    doc.root.add_child(std::move(elem));
  }
  return xml::write(doc);
}

void NodeFileSet::set_bus(sqldb::ChangeJournal* bus, std::string channel) {
  bus_ = bus;
  bus_channel_ = std::move(channel);
}

void NodeFileSet::publish() const {
  if (bus_ != nullptr) bus_->touch(bus_channel_);
}

void NodeFileSet::add(NodeFile file) {
  const std::string key = file.name();
  files_.insert_or_assign(key, std::move(file));
  ++revision_;
  publish();
}

bool NodeFileSet::contains(std::string_view name) const { return files_.contains(name); }

const NodeFile& NodeFileSet::get(std::string_view name) const {
  const auto it = files_.find(name);
  require_found(it != files_.end(),
                strings::cat("no node file named '", std::string(name), "'"));
  return it->second;
}

NodeFile& NodeFileSet::get_mutable(std::string_view name) {
  const auto it = files_.find(name);
  require_found(it != files_.end(),
                strings::cat("no node file named '", std::string(name), "'"));
  ++revision_;  // caller may edit through the reference
  publish();
  return it->second;
}

std::vector<std::string> NodeFileSet::names() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, file] : files_) out.push_back(name);
  return out;
}

}  // namespace rocks::kickstart
