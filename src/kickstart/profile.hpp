// The Red Hat-compliant kickstart file.
//
// "the end result for node installation is a Red Hat compliant text-based
// Kickstart file" (paper Section 3.1). This models the three parts the
// toolkit manipulates: header commands, the %packages manifest, and %post
// scripts — and can render to and parse from the text format, because the
// simulated installer consumes the *text*, exactly as anaconda does.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rocks::kickstart {

struct HeaderCommand {
  std::string name;       // "lang", "rootpw", "url", "part", ...
  std::string arguments;  // raw remainder of the line
};

struct PostSection {
  std::string origin;  // node file the section came from (emitted as comment)
  std::string body;
};

class KickstartFile {
 public:
  // --- header -------------------------------------------------------------
  void add_command(std::string name, std::string arguments);
  [[nodiscard]] const std::vector<HeaderCommand>& commands() const { return commands_; }
  /// First argument string of the named command, or empty.
  [[nodiscard]] std::string command_arguments(std::string_view name) const;
  [[nodiscard]] bool has_command(std::string_view name) const;

  // --- %packages ------------------------------------------------------------
  void add_package(std::string name);
  [[nodiscard]] const std::vector<std::string>& packages() const { return packages_; }

  // --- %post ------------------------------------------------------------------
  void add_post(std::string origin, std::string body);
  [[nodiscard]] const std::vector<PostSection>& posts() const { return posts_; }

  /// Renders the Red Hat text format:
  ///   command lines, blank, "%packages", one name per line,
  ///   then one "%post" block per section.
  [[nodiscard]] std::string render() const;

  /// Parses text produced by render() (or written by hand in the same
  /// format). Throws ParseError on structural problems.
  [[nodiscard]] static KickstartFile parse(std::string_view text);

 private:
  std::vector<HeaderCommand> commands_;
  std::vector<std::string> packages_;
  std::vector<PostSection> posts_;
};

}  // namespace rocks::kickstart
