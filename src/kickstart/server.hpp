// The kickstart CGI service.
//
// "At installation time, a machine requests its kickstart file via HTTP
// from a CGI script on the frontend server. This script uses the requesting
// node's IP address to drive a series of SQL queries that determine the
// appliance type, software distribution, and localization of the node"
// (paper Section 6.1). KickstartServer is that script: sqldb in, kickstart
// text out.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "kickstart/generator.hpp"
#include "sqldb/engine.hpp"
#include "support/threadpool.hpp"

namespace rocks::kickstart {

/// Creates the cluster's configuration tables when absent:
///   nodes(id, mac, name, membership, rack, rank, ip, arch, comment)
///   memberships(id, name, appliance, compute)
///   appliances(id, name, graph_root)
///   site(name, value)                        -- site-wide key/value config
/// and seeds memberships/appliances with the paper's Table III rows.
void ensure_cluster_schema(sqldb::Database& db);

/// Convenience: inserts one row into nodes (mac/name/membership/rack/rank/
/// ip/arch/comment), returning nothing; reads happen through SQL.
void insert_node_row(sqldb::Database& db, std::string_view mac, std::string_view name,
                     int membership, int rack, int rank, std::string_view ip,
                     std::string_view arch = "i386", std::string_view comment = "");

class KickstartServer {
 public:
  /// `distribution_url` is the HTTP base installing nodes pull RPMs from.
  KickstartServer(sqldb::Database& db, const NodeFileSet& files, const Graph& graph,
                  Ipv4 frontend_ip, std::string distribution_url,
                  const rpm::Repository* distro = nullptr);

  /// Resolves the requesting IP to a NodeConfig via SQL. Throws LookupError
  /// when the IP is not in the nodes table or its membership has no
  /// kickstartable appliance.
  [[nodiscard]] NodeConfig resolve(Ipv4 requester) const;

  /// The CGI entry point: IP in, kickstart text out. Throws
  /// UnavailableError while the availability probe reports the service down
  /// (the installer's HTTP fetch sees a refused connection and must retry).
  /// Safe to call concurrently (the Database locks reads shared, the
  /// profile cache is striped — DESIGN.md §9).
  [[nodiscard]] std::string handle_request(Ipv4 requester);
  [[nodiscard]] KickstartFile handle_request_file(Ipv4 requester);

  /// One batch of a mass reinstall (Section 6.3): every node in
  /// `requesters` asking at once. Slot i holds the kickstart text for
  /// requesters[i], or empty with errors[i] set when that request failed —
  /// one bad node never aborts the batch.
  struct BatchReport {
    std::vector<std::string> results;  // per-request kickstart text
    std::vector<std::string> errors;   // per-request error, "" when served
    std::size_t served = 0;
    std::size_t failed = 0;
    /// Wall-clock of the batch under the simulated serving cost model:
    /// ceil(N / workers) rounds of kSimulatedRequestSeconds each (requests
    /// are uniform — every node differs only in hostname/IP).
    double simulated_seconds = 0.0;
  };

  /// Per-request CGI service time charged by the simulated cost model,
  /// calibrated to PR 2's measured hot path (resolve 8.8 µs + generate
  /// 18 µs, rounded up for render and HTTP framing).
  static constexpr double kSimulatedRequestSeconds = 30e-6;

  /// Fans the batch across `pool`. Requests run genuinely concurrently
  /// (shared SQL locks, striped profile cache); the report's
  /// simulated_seconds charges ceil(N/pool.size()) serving rounds.
  [[nodiscard]] BatchReport handle_many(support::ThreadPool& pool,
                                        const std::vector<Ipv4>& requesters);

  /// Models frontend httpd/CGI outages: while `probe` returns false every
  /// request is refused. An empty probe means always available.
  void set_availability_probe(std::function<bool()> probe) { available_ = std::move(probe); }

  // Profile invalidation flows through the change bus: the generator is
  // subscribed to the kickstart channels of db.journal(), so graph,
  // node-file, and distribution publishers invalidate it without a wrapper
  // here (DESIGN.md §10).
  [[nodiscard]] const Generator& generator() const { return generator_; }

  [[nodiscard]] std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_refused() const {
    return refused_.load(std::memory_order_relaxed);
  }

 private:
  sqldb::Database& db_;
  Generator generator_;
  Ipv4 frontend_ip_;
  std::string distribution_url_;
  std::function<bool()> available_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> refused_{0};
};

}  // namespace rocks::kickstart
