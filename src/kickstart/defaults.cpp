#include "kickstart/defaults.hpp"

#include "support/strings.hpp"

namespace rocks::kickstart {
namespace {

/// Adds every name that exists in the repository; names the synthetic
/// release does not carry are skipped so the default graph always generates
/// installable kickstart files.
void add_available(NodeFile& file, const rpm::Repository& repo,
                   std::initializer_list<const char*> names) {
  for (const char* name : names)
    if (repo.contains(name)) file.add_package(name);
}

}  // namespace

const char* figure2_dhcp_server_xml() {
  return R"(<?XML VERSION="1.0" STANDALONE="no"?>
<KICKSTART>
        <DESCRIPTION>Setup the DHCP server for the cluster</DESCRIPTION>
        <PACKAGE>dhcp</PACKAGE>
        <POST>
                <!-- tell dhcp just to listen to eth0 -->
                awk ' \
                        /^DHCPD_INTERFACES/ {
                                printf("DHCPD_INTERFACES=\"eth0\"\n");
                                next;
                        }
                        {
                                print $0;
                        } ' /etc/sysconfig/dhcpd > /tmp/dhcpd
                mv /tmp/dhcpd /etc/sysconfig/dhcpd
        </POST>
</KICKSTART>
)";
}

DefaultConfiguration make_default_configuration(const rpm::SynthDistro& distro) {
  DefaultConfiguration out;
  const rpm::Repository& repo = distro.repo;

  // --- base: the minimal server every appliance shares --------------------
  NodeFile base("base");
  base.set_description("Minimal Red Hat server plus Rocks glue");
  for (const auto& name : distro.base) {
    // Bootloaders are architecture-conditional (added below with ARCH
    // attributes) — the Section 6.1 "one framework, three processor types"
    // mechanism in action.
    if (name == "grub" || name == "elilo") continue;
    if (repo.contains(name)) base.add_package(name);
  }
  if (repo.contains("grub")) base.add_package("grub", "i386");
  if (repo.contains("elilo")) base.add_package("elilo", "ia64");
  base.add_post(
      "# point syslog at the frontend\n"
      "echo '*.info @@FRONTEND@' >> /etc/syslog.conf\n"
      "# NIS client binds to the frontend (paper section 5)\n"
      "echo 'domain rocks server @FRONTEND@' > /etc/yp.conf\n"
      "echo '@HOSTNAME@' > /etc/hostname\n");

  // --- c-development -------------------------------------------------------
  NodeFile cdev("c-development");
  cdev.set_description("Compilers and kernel sources for on-node builds");
  add_available(cdev, repo,
                {"gcc", "gcc-g77", "cpp", "binutils", "glibc-devel", "make", "kernel-source"});

  // --- mpi -------------------------------------------------------------------
  NodeFile mpi("mpi");
  mpi.set_description("Message passing libraries (MPICH, PVM, ATLAS)");
  add_available(mpi, repo, {"mpich", "mpich-gm", "pvm", "atlas", "rexec"});
  mpi.add_package("intel-mkl", /*arch=*/"", /*optional=*/true);

  // --- myrinet: driver is rebuilt from source on first boot ----------------
  NodeFile myrinet("myrinet");
  myrinet.set_description("Myrinet GM support; driver compiled on-node");
  add_available(myrinet, repo, {"gm", "gm-driver"});
  myrinet.add_post(
      "# rebuild the GM driver against the running kernel (section 6.3)\n"
      "cd /usr/src/gm && make && insmod gm.o\n");

  // --- scheduling -------------------------------------------------------------
  NodeFile pbs_mom("pbs-mom");
  pbs_mom.set_description("PBS execution daemon");
  add_available(pbs_mom, repo, {"pbs-mom"});
  pbs_mom.add_post("echo '$clienthost @FRONTEND@' > /var/spool/pbs/mom_priv/config\n");

  NodeFile pbs_server("pbs-server");
  pbs_server.set_description("PBS server plus the Maui scheduler, started with a default queue");
  add_available(pbs_server, repo, {"pbs-server", "maui"});
  pbs_server.add_post(
      "qmgr -c 'create queue default'\n"
      "qmgr -c 'set server scheduling = true'\n");

  // --- ekv: the install-console shim ----------------------------------------
  NodeFile ekv("ekv");
  ekv.set_description("Ethernet keyboard and video: install console on a telnet port");
  add_available(ekv, repo, {"rocks-ekv", "telnet"});
  ekv.add_post("chkconfig ekv on\n");

  // --- frontend services -------------------------------------------------------
  NodeFile dhcp_server =
      NodeFile::parse("dhcp-server", figure2_dhcp_server_xml());

  NodeFile mysql("mysql");
  mysql.set_description("Cluster configuration database");
  add_available(mysql, repo, {"mysql", "mysql-server"});
  mysql.add_post("mysqladmin create cluster\n");

  NodeFile nis_server("nis-server");
  nis_server.set_description("NIS master for account synchronization");
  add_available(nis_server, repo, {"ypserv", "yp-tools"});
  nis_server.add_post("echo rocks > /etc/domainname && make -C /var/yp\n");

  NodeFile nfs_server("nfs-server");
  nfs_server.set_description("Exports /export/home to the cluster");
  add_available(nfs_server, repo, {"nfs-utils", "portmap", "quota", "raidtools"});
  nfs_server.add_post("echo '/export/home 10.0.0.0/255.0.0.0(rw)' >> /etc/exports\n");

  NodeFile web_server("web-server");
  web_server.set_description("HTTP service for kickstart and RPM distribution");
  add_available(web_server, repo, {"apache", "php", "mod_ssl"});
  web_server.add_post("chkconfig httpd on\n");

  NodeFile installation_server("installation-server");
  installation_server.set_description("rocks-dist, insert-ethers, shoot-node");
  add_available(installation_server, repo,
                {"rocks-dist", "rocks-tools", "rocks-kickstart-profiles", "insert-ethers",
                 "shoot-node", "wget"});
  installation_server.add_post("rocks-dist mirror && rocks-dist dist\n");

  NodeFile x11("x11");
  x11.set_description("X libraries for the console and shoot-node xterms");
  add_available(x11, repo, {"XFree86-libs", "xterm"});

  NodeFile compilers("compilers");
  compilers.set_description("Commercial compilers on the frontend (section 4.1)");
  for (const char* name : {"intel-cc", "intel-fortran", "pgi-hpf"})
    compilers.add_package(name, /*arch=*/"", /*optional=*/true);

  // --- appliance roots -----------------------------------------------------
  NodeFile compute("compute");
  compute.set_description("Compute appliance: a container for parallel jobs");
  compute.add_post("# report readiness to the frontend\n"
                   "echo ready | telnet @FRONTEND@ 8649\n");

  NodeFile frontend("frontend");
  frontend.set_description("Frontend appliance: every service the cluster needs");

  NodeFile nfs("nfs");
  nfs.set_description("Dedicated NFS server appliance");

  NodeFile web("web");
  web.set_description("Dedicated web server appliance");

  for (NodeFile* file : {&base, &cdev, &mpi, &myrinet, &pbs_mom, &pbs_server, &ekv,
                         &dhcp_server, &mysql, &nis_server, &nfs_server, &web_server,
                         &installation_server, &x11, &compilers, &compute, &frontend, &nfs,
                         &web})
    out.files.add(*file);

  // --- the graph -------------------------------------------------------------
  Graph& g = out.graph;
  g.set_description("Default NPACI Rocks appliance graph");
  g.add_edge("compute", "base");
  g.add_edge("compute", "mpi");
  g.add_edge("compute", "pbs-mom");
  g.add_edge("compute", "myrinet");
  g.add_edge("compute", "ekv");
  g.add_edge("mpi", "c-development");
  g.add_edge("frontend", "base");
  g.add_edge("frontend", "mpi");
  g.add_edge("frontend", "compilers");
  g.add_edge("frontend", "dhcp-server");
  g.add_edge("frontend", "mysql");
  g.add_edge("frontend", "installation-server");
  g.add_edge("frontend", "nis-server");
  g.add_edge("frontend", "nfs-server");
  g.add_edge("frontend", "pbs-server");
  g.add_edge("frontend", "web-server");
  g.add_edge("frontend", "x11");
  g.add_edge("nfs", "base");
  g.add_edge("nfs", "nfs-server");
  g.add_edge("web", "base");
  g.add_edge("web", "web-server");
  return out;
}

}  // namespace rocks::kickstart
