// XML node files.
//
// "A node file is a small single-purpose module that specifies the packages
// and per-package post configuration commands for a specific service"
// (paper Section 6.1, Figure 2). Tags follow the paper's dialect:
//
//   <KICKSTART>
//     <DESCRIPTION>...</DESCRIPTION>
//     <PACKAGE [ARCH="ia64"] [TYPE="optional"]>dhcp</PACKAGE>   (0..n)
//     <POST [ARCH="..."]> shell commands </POST>                 (0..n)
//   </KICKSTART>
//
// Tag and attribute names are matched case-insensitively, since real Rocks
// files migrated from upper- to lower-case over time.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "xml/dom.hpp"

namespace rocks::sqldb {
class ChangeJournal;
}

namespace rocks::kickstart {

struct PackageEntry {
  std::string name;
  std::string arch;      // empty = all architectures
  bool optional = false; // TYPE="optional": skipped when not in the distro
};

struct PostScript {
  std::string arch;  // empty = all architectures
  std::string body;  // verbatim shell text
};

class NodeFile {
 public:
  NodeFile() = default;
  explicit NodeFile(std::string name) : name_(std::move(name)) {}

  /// Parses the paper's XML dialect. `name` is the module name (the file's
  /// basename in a real distribution's build directory).
  [[nodiscard]] static NodeFile parse(std::string name, std::string_view xml_text);
  [[nodiscard]] static NodeFile from_element(std::string name, const xml::Element& root);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const { return description_; }
  void set_description(std::string text) { description_ = std::move(text); }

  [[nodiscard]] const std::vector<PackageEntry>& packages() const { return packages_; }
  [[nodiscard]] const std::vector<PostScript>& posts() const { return posts_; }

  void add_package(std::string package, std::string arch = "", bool optional = false);
  void add_post(std::string body, std::string arch = "");

  /// Package names applicable to `arch`.
  [[nodiscard]] std::vector<const PackageEntry*> packages_for(std::string_view arch) const;
  [[nodiscard]] std::vector<const PostScript*> posts_for(std::string_view arch) const;

  /// Serializes back to the XML dialect (used when rocks-dist copies the
  /// configuration infrastructure into a derived distribution).
  [[nodiscard]] std::string to_xml() const;

 private:
  std::string name_;
  std::string description_;
  std::vector<PackageEntry> packages_;
  std::vector<PostScript> posts_;
};

/// The set of node files of one distribution, keyed by module name.
class NodeFileSet {
 public:
  void add(NodeFile file);
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] const NodeFile& get(std::string_view name) const;
  [[nodiscard]] NodeFile& get_mutable(std::string_view name);
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return files_.size(); }

  /// Bumped on add() and on every get_mutable() handout (the caller may
  /// edit through the reference, so the set conservatively assumes it did).
  /// Cache layers compare this to detect node-file edits.
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// Attaches the set to the change bus: every mutation (add / get_mutable
  /// handout) publishes a touch on `channel` (normally
  /// Generator::kNodeFilesChannel). Pass nullptr to detach. The journal
  /// must outlive this set (or be detached first).
  void set_bus(sqldb::ChangeJournal* bus, std::string channel);

 private:
  void publish() const;

  std::map<std::string, NodeFile, std::less<>> files_;
  std::uint64_t revision_ = 0;
  sqldb::ChangeJournal* bus_ = nullptr;
  std::string bus_channel_;
};

}  // namespace rocks::kickstart
