#include "kickstart/graph.hpp"

#include <algorithm>
#include <functional>

#include "sqldb/journal.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace rocks::kickstart {
namespace {

bool tag_is(const xml::Element& element, std::string_view name) {
  return strings::to_lower(element.name()) == strings::to_lower(name);
}

std::string attr_ci(const xml::Element& element, std::string_view name) {
  for (const auto& attr : element.attributes())
    if (strings::to_lower(attr.name) == strings::to_lower(name)) return attr.value;
  return "";
}

}  // namespace

Graph Graph::parse(std::string_view xml_text) {
  return from_element(xml::parse(xml_text).root);
}

Graph Graph::from_element(const xml::Element& root) {
  if (!tag_is(root, "GRAPH"))
    throw ParseError(strings::cat("graph file: root element must be <GRAPH>, got <",
                                  root.name(), ">"));
  Graph out;
  for (const auto& child : root.children()) {
    if (!child.is_element()) continue;
    const xml::Element& element = child.element_value();
    if (tag_is(element, "DESCRIPTION")) {
      out.description_ = std::string(strings::trim(element.text()));
    } else if (tag_is(element, "EDGE")) {
      const std::string from = attr_ci(element, "FROM");
      const std::string to = attr_ci(element, "TO");
      if (from.empty() || to.empty())
        throw ParseError("graph file: <EDGE> needs FROM and TO attributes");
      out.add_edge(from, to, attr_ci(element, "ARCH"));
    } else {
      throw ParseError(strings::cat("graph file: unknown element <", element.name(), ">"));
    }
  }
  return out;
}

void Graph::set_bus(sqldb::ChangeJournal* bus, std::string channel) {
  bus_ = bus;
  bus_channel_ = std::move(channel);
}

void Graph::publish() const {
  if (bus_ != nullptr) bus_->touch(bus_channel_);
}

void Graph::add_edge(std::string from, std::string to, std::string arch) {
  edges_.push_back({std::move(from), std::move(to), std::move(arch)});
  ++revision_;
  publish();
}

std::size_t Graph::remove_edge(std::string_view from, std::string_view to) {
  const std::size_t before = edges_.size();
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [&](const Edge& edge) {
                                return edge.from == from && edge.to == to;
                              }),
               edges_.end());
  if (before != edges_.size()) {
    ++revision_;
    publish();
  }
  return before - edges_.size();
}

std::set<std::string> Graph::nodes() const {
  std::set<std::string> out;
  for (const auto& edge : edges_) {
    out.insert(edge.from);
    out.insert(edge.to);
  }
  return out;
}

std::vector<std::string> Graph::appliances() const {
  std::set<std::string> has_incoming;
  for (const auto& edge : edges_) has_incoming.insert(edge.to);
  std::vector<std::string> out;
  for (const auto& node : nodes())
    if (!has_incoming.contains(node)) out.push_back(node);
  return out;
}

std::vector<std::string> Graph::traverse(std::string_view root, std::string_view arch) const {
  std::vector<std::string> order;
  std::set<std::string, std::less<>> visited;
  const std::function<void(const std::string&)> visit = [&](const std::string& node) {
    if (!visited.insert(node).second) return;
    order.push_back(node);
    for (const auto& edge : edges_) {
      if (edge.from != node) continue;
      if (!edge.arch.empty() && !arch.empty() && edge.arch != arch) continue;
      visit(edge.to);
    }
  };
  visit(std::string(root));
  return order;
}

std::vector<std::string> Graph::undefined_modules(const NodeFileSet& files) const {
  std::set<std::string> missing;
  for (const auto& node : nodes())
    if (!files.contains(node)) missing.insert(node);
  return {missing.begin(), missing.end()};
}

bool Graph::has_cycle() const {
  // Colour-marking DFS over the full edge set.
  std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
  std::map<std::string, std::vector<const Edge*>> out_edges;
  for (const auto& edge : edges_) out_edges[edge.from].push_back(&edge);
  bool cyclic = false;
  const std::function<void(const std::string&)> visit = [&](const std::string& node) {
    colour[node] = 1;
    for (const Edge* edge : out_edges[node]) {
      const int c = colour[edge->to];
      if (c == 1) {
        cyclic = true;
      } else if (c == 0) {
        visit(edge->to);
      }
      if (cyclic) return;
    }
    colour[node] = 2;
  };
  for (const auto& node : nodes()) {
    if (colour[node] == 0) visit(node);
    if (cyclic) return true;
  }
  return false;
}

std::string Graph::to_dot() const {
  std::string out = "digraph rocks {\n  rankdir=TB;\n";
  // Appliances (roots) drawn as boxes, modules as ellipses — matching the
  // paper's Figure 4 visual language.
  const auto roots = appliances();
  for (const auto& root : roots)
    out += strings::cat("  \"", root, "\" [shape=box, style=bold];\n");
  for (const auto& edge : edges_) {
    out += strings::cat("  \"", edge.from, "\" -> \"", edge.to, "\"");
    if (!edge.arch.empty()) out += strings::cat(" [label=\"", edge.arch, "\"]");
    out += ";\n";
  }
  out += "}\n";
  return out;
}

std::string Graph::to_xml() const {
  xml::Document doc;
  doc.declaration = R"(XML VERSION="1.0" STANDALONE="no")";
  doc.root = xml::Element("GRAPH");
  if (!description_.empty()) {
    xml::Element desc("DESCRIPTION");
    desc.add_text(description_);
    doc.root.add_child(std::move(desc));
  }
  for (const auto& edge : edges_) {
    xml::Element elem("EDGE");
    elem.set_attribute("FROM", edge.from);
    elem.set_attribute("TO", edge.to);
    if (!edge.arch.empty()) elem.set_attribute("ARCH", edge.arch);
    doc.root.add_child(std::move(elem));
  }
  return xml::write(doc);
}

}  // namespace rocks::kickstart
