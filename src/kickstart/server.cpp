#include "kickstart/server.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {

void ensure_cluster_schema(sqldb::Database& db) {
  if (db.has_table("nodes")) return;
  db.execute(
      "CREATE TABLE nodes (id INT PRIMARY KEY AUTO_INCREMENT, mac TEXT, name TEXT, "
      "membership INT, rack INT, rank INT, ip TEXT, arch TEXT, comment TEXT)");
  db.execute(
      "CREATE TABLE memberships (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, "
      "appliance INT, compute TEXT)");
  db.execute(
      "CREATE TABLE appliances (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, "
      "graph_root TEXT)");
  db.execute("CREATE TABLE site (name TEXT, value TEXT)");

  // The CGI hot path resolves nodes by ip (kickstart requests), by mac
  // (dhcpd/insert-ethers), and joins nodes.membership = memberships.id;
  // primary-key columns are indexed automatically at CREATE TABLE.
  db.execute("CREATE INDEX nodes_ip ON nodes (ip)");
  db.execute("CREATE INDEX nodes_mac ON nodes (mac)");
  db.execute("CREATE INDEX nodes_membership ON nodes (membership)");

  // Appliances: which graph root a membership kickstarts from. Switches and
  // power units are real appliances without an OS (empty graph_root).
  db.execute(
      "INSERT INTO appliances (name, graph_root) VALUES "
      "('frontend', 'frontend'), ('compute', 'compute'), ('nfs', 'nfs'), "
      "('network', ''), ('power', ''), ('web', 'web')");
  // The paper's Table III, verbatim.
  db.execute(
      "INSERT INTO memberships (name, appliance, compute) VALUES "
      "('Frontend', 1, 'no'), ('Compute', 2, 'yes'), ('External', 1, 'no'), "
      "('Ethernet Switches', 4, 'no'), ('Myrinet Switches', 4, 'no'), "
      "('Power Units', 5, 'no')");
  // Memberships 7/8 appear in the paper's Table II (NFS and web servers).
  db.execute(
      "INSERT INTO memberships (id, name, appliance, compute) VALUES "
      "(7, 'NFS Servers', 3, 'no'), (8, 'Web Servers', 6, 'no')");
}

void insert_node_row(sqldb::Database& db, std::string_view mac, std::string_view name,
                     int membership, int rack, int rank, std::string_view ip,
                     std::string_view arch, std::string_view comment) {
  db.execute(strings::cat(
      "INSERT INTO nodes (mac, name, membership, rack, rank, ip, arch, comment) VALUES ('",
      mac, "', '", name, "', ", membership, ", ", rack, ", ", rank, ", '", ip, "', '", arch,
      "', '", comment, "')"));
}

KickstartServer::KickstartServer(sqldb::Database& db, const NodeFileSet& files,
                                 const Graph& graph, Ipv4 frontend_ip,
                                 std::string distribution_url, const rpm::Repository* distro)
    : db_(db),
      generator_(files, graph, distro, &db.journal()),
      frontend_ip_(frontend_ip),
      distribution_url_(std::move(distribution_url)) {}

NodeConfig KickstartServer::resolve(Ipv4 requester) const {
  // One pinned read view for both lookups: the node row and its membership
  // resolve against the same committed state, so a concurrent re-membership
  // (or insert-ethers burst) can never make the two queries disagree.
  sqldb::ReadView view = db_.read_view();
  const auto node = view.execute(strings::cat(
      "SELECT name, membership, arch FROM nodes WHERE ip = '", requester.to_string(), "'"));
  require_found(node.row_count() == 1,
                strings::cat("kickstart request from unknown address ", requester.to_string()));

  // SELECT order is name, membership, arch — positional access avoids
  // rebuilding the name->index map for this two-query hot path.
  const sqldb::Value& name = node.at(0, 0);
  const sqldb::Value& membership = node.at(0, 1);
  const sqldb::Value& arch = node.at(0, 2);
  const auto appliance = view.execute(strings::cat(
      "SELECT appliances.graph_root FROM appliances, memberships WHERE "
      "memberships.appliance = appliances.id AND memberships.id = ",
      membership.to_string()));
  require_found(appliance.row_count() == 1,
                strings::cat("node ", name.to_string(), " has membership with no appliance"));
  const std::string graph_root = appliance.rows[0][0].to_string();
  require_found(!graph_root.empty(),
                strings::cat("appliance for ", name.to_string(),
                             " is not kickstartable (no graph root)"));

  NodeConfig config;
  config.hostname = name.to_string();
  config.appliance = graph_root;
  config.arch = arch.is_null() ? "i386" : arch.to_string();
  config.ip = requester;
  config.frontend_ip = frontend_ip_;
  config.distribution_url = distribution_url_;
  return config;
}

std::string KickstartServer::handle_request(Ipv4 requester) {
  return handle_request_file(requester).render();
}

KickstartFile KickstartServer::handle_request_file(Ipv4 requester) {
  if (available_ && !available_()) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    throw UnavailableError(
        strings::cat("kickstart: CGI unavailable for ", requester.to_string(),
                     " (frontend httpd down)"));
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  return generator_.generate(resolve(requester));
}

KickstartServer::BatchReport KickstartServer::handle_many(
    support::ThreadPool& pool, const std::vector<Ipv4>& requesters) {
  BatchReport report;
  report.results.resize(requesters.size());
  report.errors.resize(requesters.size());
  std::atomic<std::size_t> served{0};
  // Each index writes only its own slots, so the fan-out needs no locking
  // of its own; the Database/Generator locks below carry the concurrency.
  pool.parallel_for(requesters.size(), [&](std::size_t i) {
    try {
      report.results[i] = handle_request(requesters[i]);
      served.fetch_add(1, std::memory_order_relaxed);
    } catch (const Error& error) {
      report.errors[i] = error.what();
    }
  });
  report.served = served.load();
  report.failed = requesters.size() - report.served;
  report.simulated_seconds =
      support::parallel_wall_seconds(requesters.size(), pool.size(), kSimulatedRequestSeconds);
  return report;
}

}  // namespace rocks::kickstart
