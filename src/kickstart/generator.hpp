// Kickstart file generation: graph traversal -> merged package list and
// %post sections -> Red Hat-compliant text (paper Section 6.1).
//
// The CGI hot path serves hundreds of nodes that differ only in hostname/IP,
// so the appliance-level work (graph traversal, package merge, distribution
// pruning, header assembly) is memoized per (appliance, arch) as a Profile
// skeleton; each request only substitutes the @MARKER@s for its node. The
// cache self-invalidates on Graph/NodeFileSet revision changes and on bus
// notifications; distribution (Repository) edits publish on
// kDistributionChannel (or call invalidate_profiles() when bus-less) — see
// DESIGN.md §8.3 and §10 for the contract.
//
// Concurrency (DESIGN.md §9): generate() may be called from many threads at
// once (KickstartServer::handle_many). The profile cache is lock-striped —
// (appliance, arch) hashes to one of kStripes shards, each with its own
// reader-writer lock — so a mass reinstall's cache hits never contend on a
// single mutex. Profiles are handed out as shared_ptr snapshots: a reader
// mid-generate keeps its profile alive even if invalidate_profiles() runs
// concurrently. The Graph/NodeFileSet/Repository themselves must not be
// mutated while requests are in flight (they are the serving config, not
// the cache).
//
// Invalidation flows through the change bus (DESIGN.md §10): a Generator
// constructed with a ChangeJournal subscribes to the kickstart input
// channels (graph, node files, distribution) and marks itself stale when
// any is touched; the next generate() flushes once. Bus-less Generators
// fall back to polling the Graph/NodeFileSet revision counters — both
// paths feed the same single stale/flush mechanism.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "kickstart/graph.hpp"
#include "kickstart/nodefile.hpp"
#include "kickstart/profile.hpp"
#include "rpm/repository.hpp"
#include "sqldb/journal.hpp"
#include "support/ip.hpp"

namespace rocks::kickstart {

/// Node-specific parameters — what the CGI script learns from its SQL
/// queries before expanding the graph.
struct NodeConfig {
  std::string hostname;
  std::string appliance;  // graph root to traverse from
  std::string arch = "i386";
  Ipv4 ip;
  Ipv4 frontend_ip;
  std::string distribution_url;  // e.g. "http://10.1.1.1/install/rocks-dist"
};

/// Localization markers usable inside POST bodies; the generator replaces
/// them with the requesting node's values:
///   @HOSTNAME@  @IP@  @FRONTEND@  @DISTRIBUTION@  @ARCH@
[[nodiscard]] std::string localize(std::string_view text, const NodeConfig& config);

class Generator {
 public:
  // Bus channels the kickstart inputs publish on (Graph::set_bus /
  // NodeFileSet::set_bus / the frontend's distribution rebuilds).
  static constexpr std::string_view kGraphChannel = "kickstart.graph";
  static constexpr std::string_view kNodeFilesChannel = "kickstart.nodefiles";
  static constexpr std::string_view kDistributionChannel = "kickstart.distribution";

  /// `distro` (optional) prunes TYPE="optional" packages that the
  /// distribution does not carry; required packages are never pruned (a
  /// missing one surfaces at install time, as on a real cluster).
  /// `bus` (optional) subscribes the profile cache to the three kickstart
  /// channels above; without it, staleness is detected by polling the
  /// Graph/NodeFileSet revision counters only.
  Generator(const NodeFileSet& files, const Graph& graph,
            const rpm::Repository* distro = nullptr,
            sqldb::ChangeJournal* bus = nullptr);
  ~Generator();
  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  /// Expands the graph from `config.appliance` and assembles the kickstart
  /// file. Throws LookupError when the appliance or any traversed module
  /// has no node file.
  [[nodiscard]] KickstartFile generate(const NodeConfig& config) const;

  /// generate() + render() in one step — the CGI script's output.
  [[nodiscard]] std::string generate_text(const NodeConfig& config) const;

  /// Marks the profile cache stale; the next generate() flushes it once
  /// (a deferred bus-style flush — the same path bus notifications take).
  /// Safe to call from any thread, including bus callbacks: only an atomic
  /// flag is written. In-flight generates finish on their snapshots.
  void mark_stale() const { stale_.store(true, std::memory_order_release); }

  /// Drops every cached profile (deferred to the next generate()). Call
  /// after mutating the Repository handed to the constructor when no bus
  /// publishes kDistributionChannel — with a bus, prefer touching that
  /// channel so every subscriber learns of the change, not just this one.
  void invalidate_profiles() const { mark_stale(); }

  // Profile-cache observability (tests, tuning).
  [[nodiscard]] std::uint64_t profile_cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t profile_cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

 private:
  /// The appliance-level kickstart skeleton: everything generate() can
  /// compute without knowing which node is asking. Marker text (@HOSTNAME@,
  /// @DISTRIBUTION@, ...) is left un-substituted and post bodies untrimmed
  /// so per-node localization stays byte-identical to the uncached path.
  struct Profile {
    std::vector<HeaderCommand> commands;
    std::vector<std::string> packages;
    std::vector<PostSection> posts;  // raw bodies, markers intact
  };

  /// Returns the cached profile for (appliance, arch) as a snapshot,
  /// building it on miss. Checks the Graph/NodeFileSet revisions first and
  /// flushes the whole cache when either moved.
  std::shared_ptr<const Profile> profile_for(const std::string& appliance,
                                             const std::string& arch) const;

  /// Builds a profile from scratch (the pre-cache generate() body).
  [[nodiscard]] Profile build_profile(const std::string& appliance,
                                      const std::string& arch) const;

  const NodeFileSet& files_;
  const Graph& graph_;
  const rpm::Repository* distro_;
  sqldb::ChangeJournal* bus_ = nullptr;
  std::vector<std::size_t> subscriptions_;  // bus subscription ids

  // Lock-striped profile cache. A shard's shared lock covers lookups, its
  // exclusive lock covers inserts and the flush; entries are shared_ptr so
  // a flush never yanks a profile out from under a reader.
  static constexpr std::size_t kStripes = 8;
  struct Stripe {
    mutable std::shared_mutex mutex;
    std::map<std::pair<std::string, std::string>, std::shared_ptr<const Profile>> entries;
  };
  [[nodiscard]] static std::size_t stripe_of(const std::string& appliance,
                                             const std::string& arch);
  void flush_stripes() const;

  mutable std::array<Stripe, kStripes> stripes_;
  // Serializes revision-triggered flushes (flush + counter update must be
  // one step); ordered before the stripe locks in the hierarchy.
  mutable std::mutex flush_mutex_;
  /// Set by bus callbacks and invalidate_profiles(); consumed (exchanged
  /// false) by the next profile_for() flush.
  mutable std::atomic<bool> stale_{false};
  mutable std::atomic<std::uint64_t> graph_revision_{0};
  mutable std::atomic<std::uint64_t> files_revision_{0};
  mutable std::atomic<std::uint64_t> cache_hits_{0};
  mutable std::atomic<std::uint64_t> cache_misses_{0};
};

}  // namespace rocks::kickstart
