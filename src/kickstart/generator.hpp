// Kickstart file generation: graph traversal -> merged package list and
// %post sections -> Red Hat-compliant text (paper Section 6.1).
#pragma once

#include <string>

#include "kickstart/graph.hpp"
#include "kickstart/nodefile.hpp"
#include "kickstart/profile.hpp"
#include "rpm/repository.hpp"
#include "support/ip.hpp"

namespace rocks::kickstart {

/// Node-specific parameters — what the CGI script learns from its SQL
/// queries before expanding the graph.
struct NodeConfig {
  std::string hostname;
  std::string appliance;  // graph root to traverse from
  std::string arch = "i386";
  Ipv4 ip;
  Ipv4 frontend_ip;
  std::string distribution_url;  // e.g. "http://10.1.1.1/install/rocks-dist"
};

/// Localization markers usable inside POST bodies; the generator replaces
/// them with the requesting node's values:
///   @HOSTNAME@  @IP@  @FRONTEND@  @DISTRIBUTION@  @ARCH@
[[nodiscard]] std::string localize(std::string_view text, const NodeConfig& config);

class Generator {
 public:
  /// `distro` (optional) prunes TYPE="optional" packages that the
  /// distribution does not carry; required packages are never pruned (a
  /// missing one surfaces at install time, as on a real cluster).
  Generator(const NodeFileSet& files, const Graph& graph,
            const rpm::Repository* distro = nullptr);

  /// Expands the graph from `config.appliance` and assembles the kickstart
  /// file. Throws LookupError when the appliance or any traversed module
  /// has no node file.
  [[nodiscard]] KickstartFile generate(const NodeConfig& config) const;

  /// generate() + render() in one step — the CGI script's output.
  [[nodiscard]] std::string generate_text(const NodeConfig& config) const;

 private:
  const NodeFileSet& files_;
  const Graph& graph_;
  const rpm::Repository* distro_;
};

}  // namespace rocks::kickstart
