// The frontend installation web form.
//
// "Rocks is installed with a floppy and a CD and the frontend Kickstart
// file is built from a simple web form" (paper Section 7). FormAnswers is
// the form's field set; build_frontend_kickstart turns it into the
// frontend's kickstart file by expanding the frontend appliance subgraph
// with the site's localization applied.
#pragma once

#include <string>

#include "kickstart/generator.hpp"

namespace rocks::kickstart {

struct FormAnswers {
  std::string cluster_name = "rocks-cluster";
  std::string frontend_hostname = "frontend-0";
  Ipv4 public_ip{198, 202, 75, 1};
  Ipv4 private_ip{10, 1, 1, 1};
  Ipv4 netmask{255, 0, 0, 0};
  Ipv4 gateway{198, 202, 75, 254};
  Ipv4 dns_server{198, 202, 75, 26};
  std::string root_password_crypted = "$1$rocks$form";
  std::string timezone = "America/Los_Angeles";
  std::string distribution_version = "7.2";

  /// Rejects obviously broken forms (empty hostname, public == private
  /// address, empty password). Throws ParseError with the reason.
  void validate() const;
};

/// Builds the frontend kickstart file: the frontend appliance expansion
/// plus the site-specific header the form answers provide (dual-homed
/// network configuration, cluster name, passwords).
[[nodiscard]] KickstartFile build_frontend_kickstart(const FormAnswers& answers,
                                                     const NodeFileSet& files,
                                                     const Graph& graph,
                                                     const rpm::Repository* distro = nullptr);

}  // namespace rocks::kickstart
