#include "kickstart/frontend_form.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {

using strings::cat;

void FormAnswers::validate() const {
  if (strings::trim(frontend_hostname).empty())
    throw ParseError("frontend form: hostname must not be empty");
  if (public_ip == private_ip)
    throw ParseError("frontend form: public and private addresses must differ");
  if (root_password_crypted.empty())
    throw ParseError("frontend form: a root password is required");
  if (strings::trim(cluster_name).empty())
    throw ParseError("frontend form: cluster name must not be empty");
}

KickstartFile build_frontend_kickstart(const FormAnswers& answers, const NodeFileSet& files,
                                       const Graph& graph, const rpm::Repository* distro) {
  answers.validate();

  NodeConfig config;
  config.hostname = answers.frontend_hostname;
  config.appliance = "frontend";
  config.ip = answers.private_ip;
  config.frontend_ip = answers.private_ip;
  config.distribution_url =
      cat("http://", answers.private_ip.to_string(), "/install/rocks-dist");

  const Generator generator(files, graph, distro);
  KickstartFile base = generator.generate(config);

  // Rebuild the header with the site's answers: the frontend is dual-homed
  // (eth0 private cluster network, eth1 public) and statically addressed —
  // the one machine DHCP cannot configure.
  KickstartFile out;
  out.add_command("install", "");
  out.add_command("url", cat("--url ", config.distribution_url));
  out.add_command("lang", "en_US");
  out.add_command("keyboard", "us");
  out.add_command("network",
                  cat("--device eth0 --bootproto static --ip ",
                      answers.private_ip.to_string(), " --netmask ",
                      answers.netmask.to_string()));
  out.add_command("network",
                  cat("--device eth1 --bootproto static --ip ",
                      answers.public_ip.to_string(), " --gateway ",
                      answers.gateway.to_string(), " --nameserver ",
                      answers.dns_server.to_string()));
  out.add_command("rootpw", cat("--iscrypted ", answers.root_password_crypted));
  out.add_command("timezone", cat("--utc ", answers.timezone));
  out.add_command("zerombr", "yes");
  out.add_command("clearpart", "--all");
  out.add_command("part", "/ --size 4096 --ondisk auto");
  out.add_command("part", "/export --size 1 --grow");
  out.add_command("auth", "--useshadow --enablenis --nisdomain rocks");
  out.add_command("reboot", "");

  for (const auto& pkg : base.packages()) out.add_package(pkg);
  out.add_post("frontend-form",
               cat("echo '", answers.cluster_name, "' > /etc/rocks-release\n",
                   "hostname ", answers.frontend_hostname, "\n"));
  for (const auto& post : base.posts()) out.add_post(post.origin, post.body);
  return out;
}

}  // namespace rocks::kickstart
