#include "kickstart/profile.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::kickstart {

void KickstartFile::add_command(std::string name, std::string arguments) {
  commands_.push_back({std::move(name), std::move(arguments)});
}

std::string KickstartFile::command_arguments(std::string_view name) const {
  for (const auto& cmd : commands_)
    if (cmd.name == name) return cmd.arguments;
  return "";
}

bool KickstartFile::has_command(std::string_view name) const {
  for (const auto& cmd : commands_)
    if (cmd.name == name) return true;
  return false;
}

void KickstartFile::add_package(std::string name) { packages_.push_back(std::move(name)); }

void KickstartFile::add_post(std::string origin, std::string body) {
  posts_.push_back({std::move(origin), std::move(body)});
}

std::string KickstartFile::render() const {
  std::string out;
  for (const auto& cmd : commands_) {
    out += cmd.name;
    if (!cmd.arguments.empty()) {
      out += ' ';
      out += cmd.arguments;
    }
    out += '\n';
  }
  out += "\n%packages\n";
  for (const auto& pkg : packages_) {
    out += pkg;
    out += '\n';
  }
  for (const auto& post : posts_) {
    out += "\n%post\n";
    if (!post.origin.empty()) out += strings::cat("# from node file: ", post.origin, "\n");
    out += post.body;
    if (post.body.empty() || post.body.back() != '\n') out += '\n';
  }
  return out;
}

KickstartFile KickstartFile::parse(std::string_view text) {
  KickstartFile out;
  enum class Section { kHeader, kPackages, kPost };
  Section section = Section::kHeader;
  std::string post_origin;
  std::string post_body;
  const auto flush_post = [&] {
    if (section == Section::kPost) {
      out.add_post(post_origin, post_body);
      post_origin.clear();
      post_body.clear();
    }
  };

  for (const auto& raw_line : strings::split(text, '\n')) {
    const std::string_view line = raw_line;
    const std::string_view trimmed = strings::trim(line);
    if (trimmed == "%packages") {
      flush_post();
      section = Section::kPackages;
      continue;
    }
    if (trimmed == "%post") {
      flush_post();
      section = Section::kPost;
      continue;
    }
    if (!trimmed.empty() && trimmed[0] == '%')
      throw ParseError(strings::cat("unknown kickstart section '", std::string(trimmed), "'"));

    switch (section) {
      case Section::kHeader: {
        if (trimmed.empty()) break;
        if (trimmed[0] == '#') break;
        const std::size_t space = trimmed.find(' ');
        if (space == std::string_view::npos) {
          out.add_command(std::string(trimmed), "");
        } else {
          out.add_command(std::string(trimmed.substr(0, space)),
                          std::string(strings::trim(trimmed.substr(space + 1))));
        }
        break;
      }
      case Section::kPackages:
        if (!trimmed.empty() && trimmed[0] != '#') out.add_package(std::string(trimmed));
        break;
      case Section::kPost:
        if (strings::starts_with(trimmed, "# from node file: ") && post_body.empty() &&
            post_origin.empty()) {
          post_origin = std::string(trimmed.substr(std::string_view("# from node file: ").size()));
          break;
        }
        post_body += line;
        post_body += '\n';
        break;
    }
  }
  flush_post();
  return out;
}

}  // namespace rocks::kickstart
