#include "monitor/recovery.hpp"

namespace rocks::monitor {

RecoveryReport RecoveryManager::recover(const std::vector<std::string>& dead) {
  RecoveryReport report;
  for (const auto& hostname : dead) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->hardware_failed()) continue;  // straight to the cart
    cluster_.pdu().power_cycle(hostname);
    report.power_cycled.push_back(hostname);
  }
  cluster_.run_until_stable();
  for (const auto& hostname : dead) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) {
      report.recovered.push_back(hostname);
    } else {
      report.needs_crash_cart.push_back(hostname);
    }
  }
  return report;
}

std::vector<std::string> RecoveryManager::sweep_failed() {
  std::vector<std::string> swept;
  for (cluster::Node* node : cluster_.nodes()) {
    if (!node->failed() || node->hardware_failed()) continue;
    ++escalations_;
    swept.push_back(node->hostname());
    if (cluster_.pdu().has_outlet(node->hostname())) {
      cluster_.pdu().power_cycle(node->hostname());
    } else {
      node->hard_power_cycle();
    }
  }
  if (swept.empty()) return swept;
  cluster_.run_until_stable();
  std::vector<std::string> revived;
  for (const auto& hostname : swept) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) revived.push_back(hostname);
  }
  return revived;
}

std::vector<std::string> RecoveryManager::crash_cart_visit(
    const std::vector<std::string>& hosts) {
  std::vector<std::string> revived;
  for (const auto& hostname : hosts) {
    ++crash_cart_trips_;
    cluster::Node* node = cluster_.node(hostname);
    if (node == nullptr) continue;
    node->repair_hardware();
    node->power_on();
  }
  cluster_.run_until_stable();
  for (const auto& hostname : hosts) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) revived.push_back(hostname);
  }
  return revived;
}

}  // namespace rocks::monitor
