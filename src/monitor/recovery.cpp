#include "monitor/recovery.hpp"

namespace rocks::monitor {

void RecoveryManager::attach(events::EventBus& bus) {
  detach();
  bus_ = &bus;
  subscription_ = bus.subscribe(events::EventType::kNodeState,
                                [this](const events::Event& event) {
    if (event.detail != "failed") return;
    // Zero-delay hop off the publisher's stack (the node's own state
    // observer); the ladder runs when the simulator drains the event.
    cluster_.sim().schedule(0.0, [this, hostname = event.subject] {
      cluster::Node* node = cluster_.node(hostname);
      if (node == nullptr || !node->failed() || node->hardware_failed()) return;
      escalate(hostname);
    });
  });
}

void RecoveryManager::detach() {
  if (bus_ == nullptr) return;
  bus_->unsubscribe(subscription_);
  bus_ = nullptr;
}

void RecoveryManager::escalate(const std::string& hostname) {
  ++escalations_;
  if (cluster_.pdu().has_outlet(hostname)) {
    cluster_.pdu().power_cycle(hostname);
  } else {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr) node->hard_power_cycle();
  }
  if (bus_ != nullptr)
    bus_->publish(events::Event{events::EventType::kRecovery, hostname, "escalation",
                                static_cast<double>(escalations_), 0.0, 0});
}

RecoveryReport RecoveryManager::recover(const std::vector<std::string>& dead) {
  RecoveryReport report;
  for (const auto& hostname : dead) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->hardware_failed()) continue;  // straight to the cart
    cluster_.pdu().power_cycle(hostname);
    report.power_cycled.push_back(hostname);
  }
  cluster_.run_until_stable();
  for (const auto& hostname : dead) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) {
      report.recovered.push_back(hostname);
    } else {
      report.needs_crash_cart.push_back(hostname);
    }
  }
  return report;
}

std::vector<std::string> RecoveryManager::sweep_failed() {
  std::vector<std::string> swept;
  for (cluster::Node* node : cluster_.nodes()) {
    if (!node->failed() || node->hardware_failed()) continue;
    swept.push_back(node->hostname());
    escalate(node->hostname());
  }
  if (swept.empty()) return swept;
  cluster_.run_until_stable();
  std::vector<std::string> revived;
  for (const auto& hostname : swept) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) revived.push_back(hostname);
  }
  return revived;
}

std::vector<std::string> RecoveryManager::crash_cart_visit(
    const std::vector<std::string>& hosts) {
  std::vector<std::string> revived;
  for (const auto& hostname : hosts) {
    ++crash_cart_trips_;
    cluster::Node* node = cluster_.node(hostname);
    if (node == nullptr) continue;
    node->repair_hardware();
    node->power_on();
  }
  cluster_.run_until_stable();
  for (const auto& hostname : hosts) {
    cluster::Node* node = cluster_.node(hostname);
    if (node != nullptr && node->is_running()) revived.push_back(hostname);
  }
  return revived;
}

}  // namespace rocks::monitor
