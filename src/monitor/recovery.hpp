// The Section 4 recovery ladder, automated:
//
//   "If a compute node doesn't respond over the network, it can be remotely
//    power cycled by executing a hard power cycle command for its outlet on
//    a network-enabled power distribution unit. If the compute node is
//    still unresponsive, physical intervention is required. For this case,
//    we have a crash cart."
//
// RecoveryManager takes the monitor's dead list, power-cycles each outlet
// (which on a Rocks node means a full reinstall), and reports which nodes
// came back versus which need the crash cart.
#pragma once

#include <string>
#include <vector>

#include "monitor/ganglia.hpp"

namespace rocks::monitor {

struct RecoveryReport {
  std::vector<std::string> power_cycled;
  std::vector<std::string> recovered;        // back to kRunning after the cycle
  std::vector<std::string> needs_crash_cart;  // still dark: hardware repair
};

class RecoveryManager {
 public:
  explicit RecoveryManager(cluster::Cluster& cluster) : cluster_(cluster) {}

  /// Power-cycles every host in `dead`, waits for the cluster to settle,
  /// and classifies the outcomes.
  RecoveryReport recover(const std::vector<std::string>& dead);

  /// Physical intervention: wheel the crash cart to each host, swap the
  /// hardware, and power it back on (it reinstalls itself from scratch).
  /// Returns hosts successfully revived.
  std::vector<std::string> crash_cart_visit(const std::vector<std::string>& hosts);

  [[nodiscard]] std::size_t crash_cart_trips() const { return crash_cart_trips_; }

 private:
  cluster::Cluster& cluster_;
  std::size_t crash_cart_trips_ = 0;
};

}  // namespace rocks::monitor
