// The Section 4 recovery ladder, automated:
//
//   "If a compute node doesn't respond over the network, it can be remotely
//    power cycled by executing a hard power cycle command for its outlet on
//    a network-enabled power distribution unit. If the compute node is
//    still unresponsive, physical intervention is required. For this case,
//    we have a crash cart."
//
// RecoveryManager takes the monitor's dead list, power-cycles each outlet
// (which on a Rocks node means a full reinstall), and reports which nodes
// came back versus which need the crash cart.
//
// With attach(), the same escalation ladder runs off the event spine
// (DESIGN.md §15) instead of a periodic sweep: a kNodeState event whose
// detail is "failed" schedules the power-cycle escalation directly, so a
// node that exhausts its install retry budget is recycled the moment it
// gives up — no operator cron job scanning for kFailed.
#pragma once

#include <string>
#include <vector>

#include "events/bus.hpp"
#include "monitor/ganglia.hpp"

namespace rocks::monitor {

struct RecoveryReport {
  std::vector<std::string> power_cycled;
  std::vector<std::string> recovered;        // back to kRunning after the cycle
  std::vector<std::string> needs_crash_cart;  // still dark: hardware repair
};

class RecoveryManager {
 public:
  explicit RecoveryManager(cluster::Cluster& cluster) : cluster_(cluster) {}
  ~RecoveryManager() { detach(); }
  RecoveryManager(const RecoveryManager&) = delete;
  RecoveryManager& operator=(const RecoveryManager&) = delete;

  /// Bus-driven escalation: subscribes to kNodeState and, when a node
  /// reports "failed", schedules the same PDU/hard power-cycle ladder
  /// sweep_failed() applies — via a zero-delay simulator event, never on
  /// the publisher's stack. Each escalation publishes kRecovery.
  void attach(events::EventBus& bus);
  void detach();

  /// Power-cycles every host in `dead`, waits for the cluster to settle,
  /// and classifies the outcomes. Hosts whose hardware is known-failed are
  /// not cycled — the PDU cannot bring them back, so burning a cycle on
  /// them (and counting it as an automated recovery attempt) would be a
  /// lie; they go straight to needs_crash_cart.
  RecoveryReport recover(const std::vector<std::string>& dead);

  /// Escalation for installs that gave up: every node sitting in kFailed
  /// (retry/watchdog budget exhausted) is hard power cycled for a fresh
  /// install attempt. Returns the hostnames that came back to kRunning.
  /// Call after disarming (or outliving) the fault plan that wedged them.
  std::vector<std::string> sweep_failed();

  /// Physical intervention: wheel the crash cart to each host, swap the
  /// hardware, and power it back on (it reinstalls itself from scratch).
  /// Returns hosts successfully revived.
  std::vector<std::string> crash_cart_visit(const std::vector<std::string>& hosts);

  [[nodiscard]] std::size_t crash_cart_trips() const { return crash_cart_trips_; }
  /// Lifetime count of failed-install escalations performed by sweep_failed.
  [[nodiscard]] std::size_t escalations() const { return escalations_; }

 private:
  /// The shared ladder rung: PDU power-cycle when the host has an outlet,
  /// hard cycle otherwise. Counts the escalation.
  void escalate(const std::string& hostname);

  cluster::Cluster& cluster_;
  events::EventBus* bus_ = nullptr;
  std::size_t subscription_ = 0;
  std::size_t crash_cart_trips_ = 0;
  std::size_t escalations_ = 0;
};

}  // namespace rocks::monitor
