// Cluster health monitoring (a ganglia-style heartbeat aggregator).
//
// The paper names "health monitoring for large-scale clusters" as one of
// the consistent, nagging problems (Section 1); its Section 4 management
// strategy depends on knowing, from the frontend, which nodes stopped
// responding over Ethernet. Every running node multicasts a heartbeat with
// a small metric record; the aggregator keeps the last-seen table and
// flags nodes silent longer than the dead-after threshold. (The Rocks
// group's collaborators at UC Berkeley — acknowledged in the paper — built
// exactly this as Ganglia.)
//
// Liveness itself is tracked by the event spine's HealthAggregator
// (DESIGN.md §15.4): heartbeats stamp O(1) leaf cells in a rollup tree
// shaped like the rack topology, and dead_nodes() converges the tree in
// O(depth) rounds instead of scanning every host. Leaf scans publish
// kNodeDown/kNodeUp on the cluster bus, and root summary changes publish
// kHealthSummary — the feed the trigger engine's auto-reinstall rules run
// on. The per-host metric record stays here (the aggregator carries
// counts, not load averages).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/cluster.hpp"
#include "events/aggregator.hpp"

namespace rocks::monitor {

struct Metrics {
  double load_one = 0.0;          // 1-minute load average proxy
  std::size_t processes = 0;      // running job processes
  std::uint64_t disk_used = 0;    // bytes on the root partition
  std::size_t packages = 0;       // installed package count
};

struct NodeView {
  std::string host;
  bool alive = false;
  double last_heartbeat = -1.0;   // simulation time; <0 = never seen
  Metrics metrics;
};

struct MonitorConfig {
  double heartbeat_interval = 10.0;
  /// A node silent for longer than this is declared dead.
  double dead_after = 30.0;
  /// Rollup tree shape (§15.4). Defaults mirror a 32-node rack fanning into
  /// 32-port aggregation switches; start() adopts the cluster's rack size
  /// when a topology is configured.
  std::size_t leaf_size = 32;
  std::size_t fanout = 32;
};

class GangliaMonitor {
 public:
  GangliaMonitor(cluster::Cluster& cluster, MonitorConfig config = {});

  /// Begins watching every current node (heartbeat emitters are armed on a
  /// staggered phase so 32 heartbeats do not land on one instant), and
  /// schedules one aggregation rollup round per heartbeat interval so
  /// kNodeDown/kHealthSummary events flow without anyone polling.
  void start();
  void stop();

  /// The last-known state of every watched node.
  [[nodiscard]] std::vector<NodeView> cluster_view() const;
  /// Hosts whose heartbeat is older than dead_after (or never arrived
  /// though the node was seen before the cutoff). Converges the rollup
  /// tree on demand: O(changed leaves × depth), not O(hosts).
  [[nodiscard]] std::vector<std::string> dead_nodes() const;
  [[nodiscard]] std::size_t heartbeats_received() const { return heartbeats_; }

  /// The rollup tree behind dead_nodes(); converged state reflects the last
  /// query or scheduled round, not necessarily "now".
  [[nodiscard]] const events::HealthAggregator& aggregator() const { return aggregator_; }

  /// The web-page view (the paper's SCE comparison praises visualization;
  /// ours is an honest ASCII table).
  [[nodiscard]] std::string report() const;

 private:
  void arm(cluster::Node* node, double phase);
  void beat(cluster::Node* node);
  void arm_rollup();

  cluster::Cluster& cluster_;
  MonitorConfig config_;
  bool active_ = false;
  std::uint64_t generation_ = 0;  // invalidates armed emitters on stop()
  std::map<std::string, NodeView> views_;
  std::map<std::string, std::size_t> endpoint_of_;  // hostname -> leaf cell
  // Converged on demand in const queries (dead_nodes, report).
  mutable events::HealthAggregator aggregator_;
  std::size_t heartbeats_ = 0;
};

}  // namespace rocks::monitor
