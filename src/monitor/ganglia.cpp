#include "monitor/ganglia.hpp"

#include <algorithm>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::monitor {

using cluster::Node;

GangliaMonitor::GangliaMonitor(cluster::Cluster& cluster, MonitorConfig config)
    : cluster_(cluster), config_(config) {}

void GangliaMonitor::start() {
  if (active_) return;
  active_ = true;
  ++generation_;
  double phase = 0.0;
  const double step = config_.heartbeat_interval /
                      std::max<std::size_t>(cluster_.nodes().size(), 1);
  for (Node* node : cluster_.nodes()) {
    if (node->hostname().empty()) continue;
    views_.emplace(node->hostname(), NodeView{node->hostname(), false, -1.0, {}});
    arm(node, phase);
    phase += step;
  }
}

void GangliaMonitor::stop() {
  active_ = false;
  ++generation_;
}

void GangliaMonitor::arm(Node* node, double phase) {
  const std::uint64_t generation = generation_;
  cluster_.sim().schedule(phase, [this, node, generation] {
    if (generation != generation_) return;
    beat(node);
  });
}

void GangliaMonitor::beat(Node* node) {
  // A powered, running node emits; anything else is silent — the monitor
  // learns about deaths only through the silence.
  if (node->is_running()) {
    ++heartbeats_;
    NodeView& view = views_[node->hostname()];
    view.host = node->hostname();
    view.alive = true;
    view.last_heartbeat = cluster_.sim().now();
    view.metrics.processes = node->process_count();
    view.metrics.load_one = static_cast<double>(node->process_count());
    view.metrics.packages = node->rpmdb().package_count();
    std::uint64_t state_bytes = 0;
    if (node->fs().exists("/state")) state_bytes = node->fs().disk_usage("/state");
    view.metrics.disk_used = node->fs().disk_usage("/") - state_bytes;
  }
  arm(node, config_.heartbeat_interval);
}

std::vector<NodeView> GangliaMonitor::cluster_view() const {
  std::vector<NodeView> out;
  const double now = cluster_.sim().now();
  for (const auto& [host, view] : views_) {
    NodeView copy = view;
    copy.alive = view.last_heartbeat >= 0.0 &&
                 now - view.last_heartbeat <= config_.dead_after;
    out.push_back(std::move(copy));
  }
  return out;
}

std::vector<std::string> GangliaMonitor::dead_nodes() const {
  std::vector<std::string> out;
  for (const auto& view : cluster_view())
    if (!view.alive) out.push_back(view.host);
  return out;
}

std::string GangliaMonitor::report() const {
  AsciiTable table({"Host", "Status", "Last seen (s)", "Load", "Procs", "Packages",
                    "Disk (MB)"});
  for (const auto& view : cluster_view()) {
    table.add_row({view.host, view.alive ? "up" : "DEAD",
                   view.last_heartbeat < 0 ? "never" : fixed(view.last_heartbeat, 1),
                   fixed(view.metrics.load_one, 2), std::to_string(view.metrics.processes),
                   std::to_string(view.metrics.packages),
                   fixed(static_cast<double>(view.metrics.disk_used) / (1024.0 * 1024.0), 0)});
  }
  return table.render();
}

}  // namespace rocks::monitor
