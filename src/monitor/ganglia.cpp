#include "monitor/ganglia.hpp"

#include <algorithm>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::monitor {

using cluster::Node;

namespace {

events::AggregatorConfig tree_shape(const MonitorConfig& config) {
  events::AggregatorConfig shape;
  shape.leaf_size = config.leaf_size;
  shape.fanout = config.fanout;
  shape.dead_after = config.dead_after;
  return shape;
}

}  // namespace

GangliaMonitor::GangliaMonitor(cluster::Cluster& cluster, MonitorConfig config)
    : cluster_(cluster),
      config_(config),
      aggregator_(tree_shape(config), &cluster.events()) {}

void GangliaMonitor::start() {
  if (active_) return;
  active_ = true;
  ++generation_;
  // One leaf per rack when the cluster has a topology: the rollup tree then
  // mirrors the physical multicast domains, like gmond/gmetad.
  if (cluster_.topology() != nullptr) {
    config_.leaf_size = cluster_.topology()->config().nodes_per_rack;
    aggregator_ = events::HealthAggregator(tree_shape(config_), &cluster_.events());
    endpoint_of_.clear();
  }
  double phase = 0.0;
  const double step = config_.heartbeat_interval /
                      std::max<std::size_t>(cluster_.nodes().size(), 1);
  for (Node* node : cluster_.nodes()) {
    if (node->hostname().empty()) continue;
    views_.emplace(node->hostname(), NodeView{node->hostname(), false, -1.0, {}});
    if (!endpoint_of_.contains(node->hostname())) {
      const std::size_t endpoint = endpoint_of_.size();
      endpoint_of_.emplace(node->hostname(), endpoint);
      aggregator_.register_endpoints(endpoint + 1);
      aggregator_.set_name(endpoint, node->hostname());
    }
    arm(node, phase);
    phase += step;
  }
  arm_rollup();
}

void GangliaMonitor::stop() {
  active_ = false;
  ++generation_;
}

void GangliaMonitor::arm(Node* node, double phase) {
  const std::uint64_t generation = generation_;
  cluster_.sim().schedule(phase, [this, node, generation] {
    if (generation != generation_) return;
    beat(node);
  });
}

void GangliaMonitor::arm_rollup() {
  // The scheduled sweep that replaces polling: one rollup round per
  // heartbeat interval moves summaries one level and publishes any
  // kNodeDown/kNodeUp/kHealthSummary transitions as a side effect.
  const std::uint64_t generation = generation_;
  cluster_.sim().schedule(config_.heartbeat_interval, [this, generation] {
    if (generation != generation_) return;
    aggregator_.rollup_round(cluster_.sim().now());
    arm_rollup();
  });
}

void GangliaMonitor::beat(Node* node) {
  // A powered, running node emits; anything else is silent — the monitor
  // learns about deaths only through the silence.
  if (node->is_running()) {
    ++heartbeats_;
    NodeView& view = views_[node->hostname()];
    view.host = node->hostname();
    view.alive = true;
    view.last_heartbeat = cluster_.sim().now();
    view.metrics.processes = node->process_count();
    view.metrics.load_one = static_cast<double>(node->process_count());
    view.metrics.packages = node->rpmdb().package_count();
    std::uint64_t state_bytes = 0;
    if (node->fs().exists("/state")) state_bytes = node->fs().disk_usage("/state");
    view.metrics.disk_used = node->fs().disk_usage("/") - state_bytes;
    const auto endpoint = endpoint_of_.find(node->hostname());
    if (endpoint != endpoint_of_.end())
      aggregator_.heartbeat(endpoint->second, cluster_.sim().now());
  }
  arm(node, config_.heartbeat_interval);
}

std::vector<NodeView> GangliaMonitor::cluster_view() const {
  std::vector<NodeView> out;
  const double now = cluster_.sim().now();
  for (const auto& [host, view] : views_) {
    NodeView copy = view;
    copy.alive = view.last_heartbeat >= 0.0 &&
                 now - view.last_heartbeat <= config_.dead_after;
    out.push_back(std::move(copy));
  }
  return out;
}

std::vector<std::string> GangliaMonitor::dead_nodes() const {
  // Converge the rollup tree to "now" and read the committed dead set —
  // O(changed leaves × depth). Hosts watched before the aggregator existed
  // (started without hostnames) fall back into no leaf and cannot appear;
  // start() always maps every watched host, so the sets agree.
  aggregator_.converge(cluster_.sim().now());
  return aggregator_.dead_endpoints();
}

std::string GangliaMonitor::report() const {
  AsciiTable table({"Host", "Status", "Last seen (s)", "Load", "Procs", "Packages",
                    "Disk (MB)"});
  for (const auto& view : cluster_view()) {
    table.add_row({view.host, view.alive ? "up" : "DEAD",
                   view.last_heartbeat < 0 ? "never" : fixed(view.last_heartbeat, 1),
                   fixed(view.metrics.load_one, 2), std::to_string(view.metrics.processes),
                   std::to_string(view.metrics.packages),
                   fixed(static_cast<double>(view.metrics.disk_used) / (1024.0 * 1024.0), 0)});
  }
  return table.render();
}

}  // namespace rocks::monitor
