// The frontend node: every service the cluster depends on.
//
// "The frontend node requires the skills of a savvy UNIX user, as this is a
// machine which runs many of the services found on any robust server"
// (paper Section 5). One Frontend owns the SQL database, the kickstart CGI
// service, DHCP, the HTTP distribution servers, rocks-dist, and the service
// manager that regenerates /etc configuration from database reports.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "events/bus.hpp"
#include "kickstart/defaults.hpp"
#include "kickstart/server.hpp"
#include "netsim/dhcp.hpp"
#include "netsim/engine.hpp"
#include "netsim/http.hpp"
#include "netsim/syslog.hpp"
#include "rocksdist/rocksdist.hpp"
#include "services/manager.hpp"
#include "sqldb/engine.hpp"
#include "vfs/filesystem.hpp"

// Forward declaration: nodes receive their environment from the frontend.
namespace rocks::cluster {
struct NodeEnvironment;
}

namespace rocks::cluster {

struct FrontendConfig {
  std::string name = "frontend-0";
  Ipv4 ip{10, 1, 1, 1};
  Mac mac{0x0030C1D8AC80ULL};  // the paper's Table II frontend MAC
  /// Sustained HTTP source rate per server in bytes/s (paper micro-benchmark:
  /// the dual-PIII on Fast Ethernet sourced 7-8 MB/s).
  double http_capacity = 7.5 * 1024 * 1024;
  /// Per-download stream cap in bytes/s; 0 = uncapped. Lets benches model
  /// "one TCP stream sources 7.5 MB/s, many streams fill the NIC".
  double http_per_stream_cap = 0.0;
  std::size_t http_servers = 1;
  std::string dist_version = "7.2";

  /// Durable configuration store (DESIGN.md §11). When `state_fs` is set,
  /// the database opens a WAL + snapshot store under `state_dir` on that
  /// filesystem *before* the schema bootstrap, recovering whatever a
  /// previous frontend committed there. Pass a FileSystem that outlives the
  /// Frontend (it models the frontend's disk, which survives the process):
  /// after a crash, Frontend::recover() with the same config rebuilds the
  /// exact committed cluster state — registered nodes, users, site rows —
  /// and regenerates every derived config file. Null keeps the database
  /// purely in RAM (the pre-§11 behaviour).
  vfs::FileSystem* state_fs = nullptr;
  std::string state_dir = "/state/db";
  /// Statements per WAL flush (1 = every commit durable before it returns;
  /// see Database::set_wal_group_commit). insert-ethers batches flush the
  /// WAL before acknowledging regardless, so a larger batch here trades
  /// only unacknowledged tail work.
  std::size_t wal_group_commit = 1;
};

class Frontend {
 public:
  /// Boots the frontend: creates the database schema, registers its own
  /// nodes-table row, mirrors `distro` with rocks-dist, builds the
  /// distribution tree, and starts all services.
  Frontend(netsim::Simulator& sim, netsim::SyslogBus& syslog, const rpm::SynthDistro& distro,
           FrontendConfig config = {});

  /// Crash recovery, spelled out: constructs a frontend from the durable
  /// store in `config.state_fs` (which must be set — throws StateError
  /// otherwise). Semantically identical to the constructor — recovery IS a
  /// cold boot against a surviving disk — but the call site reads as what
  /// it is, and the factory asserts a store is actually present. Every
  /// service is regenerated on the way up, so config files a crash left
  /// stale (or never wrote) match the recovered database before the call
  /// returns.
  [[nodiscard]] static std::unique_ptr<Frontend> recover(netsim::Simulator& sim,
                                                         netsim::SyslogBus& syslog,
                                                         const rpm::SynthDistro& distro,
                                                         FrontendConfig config);

  /// What open_durable() found at boot; all-zero when state_fs was null.
  [[nodiscard]] const sqldb::RecoveryReport& recovery() const { return recovery_; }
  /// True when the boot recovered pre-existing committed state (a snapshot,
  /// WAL records, or both) rather than initializing a fresh store.
  [[nodiscard]] bool recovered() const {
    return recovery_.snapshot_loaded || recovery_.wal_records_replayed > 0;
  }

  /// Checkpoints the database (Database::snapshot()): bounds recovery time
  /// and WAL growth. Zero-pause for readers — the snapshot serializes from
  /// a pinned MVCC read view, so kickstart resolves and report renders keep
  /// running while the image is written; writers block only for the brief
  /// capture and swap phases, never for serialization or file I/O. Returns
  /// the snapshot sequence number.
  std::uint64_t checkpoint() { return db_.snapshot(); }

  [[nodiscard]] const FrontendConfig& config() const { return config_; }
  [[nodiscard]] sqldb::Database& db() { return db_; }
  [[nodiscard]] vfs::FileSystem& fs() { return fs_; }
  [[nodiscard]] netsim::DhcpServer& dhcp() { return dhcp_; }
  [[nodiscard]] netsim::HttpServerGroup& http() { return http_; }
  [[nodiscard]] kickstart::KickstartServer& kickstart_server() { return *kickstart_server_; }
  [[nodiscard]] rocksdist::RocksDist& rocksdist() { return rocksdist_; }
  [[nodiscard]] services::ServiceManager& services() { return services_; }
  [[nodiscard]] kickstart::NodeFileSet& node_files() { return configuration_.files; }
  [[nodiscard]] kickstart::Graph& graph() { return configuration_.graph; }
  [[nodiscard]] const rpm::Repository& distribution() const {
    return rocksdist_.distribution();
  }

  /// Installs the replication commit barrier (DESIGN.md §12.4): invoked by
  /// flush_services() after the local WAL durability flush and before any
  /// output becomes externally visible. Under quorum-ack commit the barrier
  /// ships pending WAL groups and throws UnavailableError when a majority
  /// of the voting set has not acknowledged — the flush aborts and the
  /// batch is never acknowledged to the operator. Null (the default) keeps
  /// the single-frontend behaviour.
  void set_commit_barrier(std::function<void()> barrier) {
    commit_barrier_ = std::move(barrier);
  }

  /// Attaches the frontend to the event spine (DESIGN.md §15): the service
  /// manager re-subscribes through the bus's kConfigChange channel instead
  /// of the raw journal, and flush_services() publishes one kServiceFlush
  /// per restarted service. Null detaches (back to the raw journal).
  void set_event_bus(events::EventBus* bus);

  /// Flushes the change bus: regenerates the config files whose source
  /// tables changed since the last flush (dirty services only), restarts
  /// the ones whose content moved, and re-pushes DHCP bindings when the
  /// nodes table changed. This is the normal post-commit path — its cost
  /// tracks the size of the change, not the cluster.
  services::ServiceManager::Report flush_services();

  /// Legacy full regeneration: marks every service dirty, flushes, and
  /// forces a DHCP binding push. Returns the restarted service names.
  std::vector<std::string> regenerate_services();

  /// useradd: adds an account row and pushes the NIS maps ("User account
  /// configuration ... synchronized from the frontend node to compute nodes
  /// with the Network Information Service", Section 5). Home directories
  /// live under the NFS-exported /export/home.
  void add_user(std::string_view name, int uid, std::string_view shell = "/bin/bash");

  /// What a compute node's ypbind resolves: the current NIS passwd map.
  [[nodiscard]] std::string nis_passwd_map();

  /// Re-runs rocks-dist (after mirroring updates or editing the XML infra).
  rocksdist::DistReport rebuild_distribution();

  /// Mirrors an errata repository, then rebuilds ("If Red Hat ships it, so
  /// do we", Section 6.2.1).
  rocksdist::DistReport apply_updates(const rpm::Repository& updates);

  /// The wiring a Node needs to boot and install.
  [[nodiscard]] NodeEnvironment environment();

 private:
  netsim::Simulator& sim_;
  netsim::SyslogBus& syslog_;
  FrontendConfig config_;
  vfs::FileSystem fs_;
  sqldb::Database db_;
  kickstart::DefaultConfiguration configuration_;
  rocksdist::RocksDist rocksdist_;
  netsim::HttpServerGroup http_;
  netsim::DhcpServer dhcp_;
  std::unique_ptr<kickstart::KickstartServer> kickstart_server_;
  services::ServiceManager services_;
  /// nodes-table journal revision the DHCP server's bindings reflect;
  /// kNeverPushed forces the next flush to push.
  static constexpr std::uint64_t kNeverPushed = ~std::uint64_t{0};
  std::uint64_t dhcp_pushed_revision_ = kNeverPushed;
  sqldb::RecoveryReport recovery_;
  std::function<void()> commit_barrier_;  // replication quorum/ship hook
  events::EventBus* bus_ = nullptr;       // the cluster's event spine
};

}  // namespace rocks::cluster
