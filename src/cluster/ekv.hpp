// eKV - Ethernet Keyboard and Video.
//
// "This is accomplished by slightly modifying Red Hat's Kickstart
// installation program, anaconda, to capture standard output and present it
// on a telnet-compatible port" (paper Section 6.3, Figure 7). EkvConsole is
// that capture channel: the installer writes lines, shoot-node's xterm (or
// anything else) attaches as a watcher, and screen() renders the Figure 7
// progress panel.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

namespace rocks::cluster {

struct EkvLine {
  double time = 0.0;
  std::string text;
};

/// Package-installation progress, mirroring the counters on the Figure 7
/// screen (Total/Completed/Remaining packages and bytes).
struct EkvProgress {
  std::size_t total_packages = 0;
  std::size_t completed_packages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t completed_bytes = 0;
  std::string current_package;

  [[nodiscard]] std::size_t remaining_packages() const {
    return total_packages - completed_packages;
  }
  [[nodiscard]] std::uint64_t remaining_bytes() const { return total_bytes - completed_bytes; }
};

class EkvConsole {
 public:
  using Watcher = std::function<void(const EkvLine&)>;

  explicit EkvConsole(std::string node_name) : node_name_(std::move(node_name)) {}

  /// Installer-side: emit one status line at simulation time `now`.
  void write_line(double now, std::string text);
  void set_progress(const EkvProgress& progress) { progress_ = progress; }

  /// Viewer-side keystrokes: "we've also inserted code that allows users to
  /// interact with the installation through the same xterm window" (§6.3).
  /// Input is echoed into the console stream, prefixed "<<", so both sides
  /// of the telnet session appear in the capture.
  void send_input(double now, std::string text);
  [[nodiscard]] std::size_t inputs_received() const { return inputs_; }

  /// Viewer-side: attach a watcher (every subsequent line is delivered).
  std::size_t attach(Watcher watcher);
  void detach(std::size_t id);

  [[nodiscard]] const std::deque<EkvLine>& lines() const { return lines_; }
  [[nodiscard]] const EkvProgress& progress() const { return progress_; }

  /// Renders the telnet screen: a Figure 7-style header, the progress
  /// counters, and the last `tail` output lines.
  [[nodiscard]] std::string screen(std::size_t tail = 8) const;

 private:
  std::string node_name_;
  std::deque<EkvLine> lines_;
  EkvProgress progress_;
  std::vector<std::pair<std::size_t, Watcher>> watchers_;
  std::size_t next_watcher_ = 1;
  std::size_t inputs_ = 0;
  static constexpr std::size_t kLineCap = 4096;
};

}  // namespace rocks::cluster
