// insert-ethers: automatic node integration.
//
// "Insert-ethers monitors syslog messages for DHCP requests from new hosts
// and when found, generates a hostname, determines the next free IP
// address, binds the hostname and IP address to its Ethernet MAC address,
// and inserts this information into the database. Insert-ethers then
// rebuilds service-specific configuration files ... and restarting the
// respective services" (paper Section 6.4).
#pragma once

#include <string>
#include <vector>

#include "cluster/frontend.hpp"
#include "support/ip.hpp"

namespace rocks::cluster {

struct InsertEthersOptions {
  /// Which membership new nodes join (2 = Compute, per Table III).
  int membership = 2;
  /// Hostname prefix; full names are "<basename>-<rack>-<rank>".
  std::string basename = "compute";
  /// Current cabinet; ranks count up within it. Sequential booting binds
  /// hostnames to physical positions (the paper's footnote on seriality).
  int rack = 0;
  /// Architecture recorded for new nodes.
  std::string arch = "i386";
  /// IPs are handed out downward from here, skipping taken addresses.
  Ipv4 ip_ceiling{10, 255, 255, 254};
  /// Flush the change bus (regenerate dirty services, push DHCP bindings)
  /// after every discovery, so the node's next DHCP retry succeeds. Turn
  /// off to coalesce a burst of registrations into one flush() — N nodes
  /// then restart each service once, not N times.
  bool auto_flush = true;
};

class InsertEthers {
 public:
  InsertEthers(Frontend& frontend, netsim::SyslogBus& syslog, InsertEthersOptions options = {});
  ~InsertEthers();
  InsertEthers(const InsertEthers&) = delete;
  InsertEthers& operator=(const InsertEthers&) = delete;

  /// Begin/stop watching syslog. (The real tool runs only while the
  /// administrator integrates nodes.)
  void start();
  void stop();

  /// Moving the crash cart to the next cabinet.
  void set_rack(int rack) { options_.rack = rack; }
  void set_membership(int membership, std::string basename);
  /// The administrator selects the hardware architecture of the nodes being
  /// integrated (recorded in the nodes table; the kickstart CGI reads it).
  void set_arch(std::string arch) { options_.arch = std::move(arch); }

  /// Registers a burst of known MACs directly (no syslog round-trip), then
  /// flushes the bus once: every service restarts at most once for the
  /// whole batch. Returns how many were newly inserted (duplicates skip).
  int register_batch(const std::vector<Mac>& macs);

  /// Flushes pending changes to the services (used with auto_flush=false).
  void flush();

  /// Event spine hookup: each successful registration publishes kMembership
  /// (subject = new hostname, value = total inserted). Null detaches.
  void set_event_bus(events::EventBus* bus) { bus_ = bus; }

  [[nodiscard]] int nodes_inserted() const { return inserted_; }
  [[nodiscard]] const std::vector<std::string>& insertion_log() const { return log_; }

 private:
  void on_syslog(const netsim::SyslogMessage& message);
  /// Allocates name/rank/IP and inserts the row; false when the MAC is
  /// already registered. Does not flush.
  bool insert_node(const Mac& mac);
  [[nodiscard]] Ipv4 next_free_ip() const;
  [[nodiscard]] int next_rank() const;

  Frontend& frontend_;
  netsim::SyslogBus& syslog_;
  InsertEthersOptions options_;
  events::EventBus* bus_ = nullptr;
  std::size_t subscription_ = 0;
  bool active_ = false;
  int inserted_ = 0;
  std::vector<std::string> log_;
};

}  // namespace rocks::cluster
