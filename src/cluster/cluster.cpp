#include "cluster/cluster.hpp"

#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::cluster {

using strings::cat;

Cluster::Cluster(ClusterConfig config)
    : config_(std::move(config)), distro_(rpm::make_redhat_release(config_.synth)) {
  frontend_ = std::make_unique<Frontend>(sim_, syslog_, distro_, config_.frontend);
  insert_ethers_ = std::make_unique<InsertEthers>(*frontend_, syslog_);

  // The event spine (DESIGN.md §15): one bus clocked by the simulator, the
  // frontend journal bridged onto kConfigChange, and the trigger engine's
  // durable table living in the frontend database — so registered triggers
  // and their firing accounting survive a frontend crash and replicate to
  // follower frontends like every other table.
  bus_ = std::make_unique<events::EventBus>([this] { return sim_.now(); });
  bus_->bridge_journal(frontend_->db().journal());
  frontend_->set_event_bus(bus_.get());
  insert_ethers_->set_event_bus(bus_.get());
  triggers_ = std::make_unique<events::TriggerEngine>(frontend_->db(), *bus_);
  triggers_->register_action(
      "reinstall", [this](const events::Event& event, const std::string&) {
        schedule_auto_reinstall(event.subject);
      });
  triggers_->register_action("flush", [this](const events::Event&, const std::string&) {
    sim_.schedule(0.0, [this] { frontend_->flush_services(); });
  });
  if (config_.enable_peer_distribution) {
    netsim::TopologyConfig topology = config_.topology;
    if (topology.rack_capacity <= 0.0) {
      topology.rack_capacity = 12.0 * 1024 * 1024;
      topology.uplink_capacity = 12.0 * 1024 * 1024;
    }
    topology_ = std::make_unique<netsim::RackTopology>(sim_, topology);
    peers_ = std::make_unique<netsim::PeerDistribution>(sim_, *topology_, frontend_->http(),
                                                        config_.peer);
  }
}

Cluster::~Cluster() {
  // Re-point the service manager at the journal so nothing inside frontend_
  // still references the bus when triggers_ and bus_ destroy first.
  frontend_->set_event_bus(nullptr);
  insert_ethers_->set_event_bus(nullptr);
}

Node& Cluster::add_node(std::string arch) {
  // Locally administered MACs, deterministic per node index.
  const Mac mac(0x0250'8BE0'0000ULL + static_cast<std::uint64_t>(next_mac_suffix_++));
  NodeEnvironment env = frontend_->environment();
  env.peers = peers_.get();
  nodes_.push_back(
      std::make_unique<Node>(env, mac, std::move(arch), config_.timings));
  Node* raw = nodes_.back().get();
  raw->set_state_observer([this, raw](NodeState state) {
    bus_->publish(events::Event{
        events::EventType::kNodeState,
        raw->hostname().empty() ? raw->mac().to_string() : raw->hostname(),
        std::string(node_state_name(state)), static_cast<double>(raw->install_count()),
        0.0, 0});
  });
  if (peers_) {
    // Endpoint ids follow add order, so racks fill bottom-up like a real
    // integration pass.
    const auto endpoint = static_cast<std::uint32_t>(nodes_.size() - 1);
    peers_->register_endpoints(endpoint + 1);
    nodes_.back()->join_peer_network(endpoint);
  }
  return *nodes_.back();
}

void Cluster::integrate_all() {
  insert_ethers_->start();
  std::vector<Node*> pending;
  double at = 0.0;
  for (auto& node : nodes_) {
    if (node->state() != NodeState::kOff || node->install_count() > 0) continue;
    Node* raw = node.get();
    pending.push_back(raw);
    sim_.schedule(at, [raw] { raw->power_on(); });
    at += config_.integration_stagger;
  }
  // Run until every node being integrated reaches kRunning (the generic
  // stability check would return immediately: a not-yet-powered node looks
  // "stable").
  const double deadline = sim_.now() + 36000.0 + at;
  while (true) {
    bool all_running = true;
    for (Node* node : pending)
      if (!node->is_running()) all_running = false;
    if (all_running) break;
    require_state(sim_.now() < deadline, "integration did not complete within the time cap");
    require_state(sim_.step(), "integration deadlocked: nodes pending but no events queued");
  }
  insert_ethers_->stop();

  // Give every integrated node a PDU outlet named after its hostname.
  for (auto& node : nodes_) {
    if (node->hostname().empty()) continue;
    Node* raw = node.get();
    pdu_.attach(node->hostname(), [raw] { raw->hard_power_cycle(); });
  }
}

std::vector<Node*> Cluster::nodes() {
  std::vector<Node*> out;
  out.reserve(nodes_.size());
  for (auto& node : nodes_) out.push_back(node.get());
  return out;
}

Node* Cluster::node(std::string_view hostname) {
  for (auto& node : nodes_)
    if (node->hostname() == hostname) return node.get();
  return nullptr;
}

void Cluster::shoot_node(std::string_view hostname, bool watch_ekv) {
  Node* target = node(hostname);
  require_found(target != nullptr, cat("shoot-node: unknown host ", std::string(hostname)));
  target->shoot();
  if (watch_ekv) {
    // The xterm shoot-node pops up: capture the node's screen when it next
    // finishes (simplified to a final snapshot).
    Node* raw = target;
    raw->on_running([this, raw] { ekv_captures_.push_back(raw->ekv().screen()); });
  }
}

double Cluster::reinstall_all() {
  const double start = sim_.now();
  for (auto& node : nodes_) {
    if (node->state() == NodeState::kRunning) node->shoot();
  }
  run_until_stable();
  return sim_.now() - start;
}

netsim::FaultInjector& Cluster::arm_faults(netsim::FaultPlan plan) {
  disarm_faults();
  faults_ = std::make_unique<netsim::FaultInjector>(sim_, std::move(plan));
  faults_->wire_http(&frontend_->http());
  faults_->wire_power([this](std::size_t target, double restore_after) {
    if (nodes_.empty()) return;
    Node* victim = nodes_[target % nodes_.size()].get();
    victim->power_off();
    ++pending_flap_restores_;
    sim_.schedule(restore_after, [this, victim] {
      --pending_flap_restores_;
      // Power returns: per the paper's footnote a hard cycle forces a
      // reinstall. Skip nodes someone powered/repaired in the meantime.
      if (victim->state() == NodeState::kOff && !victim->hardware_failed())
        victim->hard_power_cycle();
    });
  });
  faults_->set_observer([this](std::string_view kind, std::string_view detail) {
    bus_->publish(events::Event{events::EventType::kFault, std::string(kind),
                                std::string(detail), 0.0, 0.0, 0});
  });
  frontend_->dhcp().set_fault_injector(faults_.get());
  frontend_->kickstart_server().set_availability_probe(
      [injector = faults_.get()] { return injector->kickstart_available(); });
  faults_->arm();
  return *faults_;
}

void Cluster::schedule_auto_reinstall(std::string hostname) {
  // Zero-delay hop: the trigger fired on some publisher's stack (possibly a
  // node's own state observer); the node is only driven once that stack
  // unwinds and the simulator runs the event.
  sim_.schedule(0.0, [this, hostname = std::move(hostname)] {
    Node* target = node(hostname);
    if (target == nullptr || target->hardware_failed()) return;
    if (target->is_running()) {
      target->shoot();
    } else if (pdu_.has_outlet(hostname) &&
               (target->failed() || target->state() == NodeState::kOff)) {
      pdu_.power_cycle(hostname);
    } else if (target->failed() || target->state() == NodeState::kOff) {
      target->hard_power_cycle();
    } else {
      return;  // already mid-install; the ladder is running
    }
    ++auto_reinstalls_;
    bus_->publish(events::Event{events::EventType::kRecovery, hostname, "auto-reinstall",
                                static_cast<double>(auto_reinstalls_), 0.0, 0});
  });
}

void Cluster::disarm_faults() {
  if (!faults_) return;
  faults_->disarm();
  frontend_->dhcp().set_fault_injector(nullptr);
  frontend_->kickstart_server().set_availability_probe({});
  faults_.reset();
}

void Cluster::run_until_stable(double max_seconds) {
  const double deadline = sim_.now() + max_seconds;
  while (sim_.now() < deadline) {
    // kOff only counts as stable when no power-flap restore is pending for
    // it; kFailed is stable (the node waits for recovery escalation).
    bool all_stable = pending_flap_restores_ == 0;
    for (auto& node : nodes_) {
      if (!all_stable) break;
      if (node->state() != NodeState::kRunning && node->state() != NodeState::kOff &&
          node->state() != NodeState::kFailed) {
        all_stable = false;
        break;
      }
    }
    if (all_stable) return;
    if (!sim_.step()) {
      // No pending events but nodes not running: a node is stuck waiting on
      // something that will never come (e.g. unknown DHCP with insert-ethers
      // stopped). Surface it rather than spin.
      throw StateError("cluster deadlocked: nodes pending but no events queued");
    }
  }
  throw StateError("cluster did not stabilize within the time cap");
}

bool Cluster::consistent() {
  std::uint64_t fingerprint = 0;
  bool first = true;
  for (auto& node : nodes_) {
    if (!node->is_running()) continue;
    if (!strings::starts_with(node->hostname(), "compute-")) continue;
    if (first) {
      fingerprint = node->software_fingerprint();
      first = false;
    } else if (node->software_fingerprint() != fingerprint) {
      return false;
    }
  }
  return true;
}

}  // namespace rocks::cluster
