// The whole machine: frontend + compute nodes + power + the integration and
// reinstallation workflows. This is the top-level facade benches and
// examples drive.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/frontend.hpp"
#include "cluster/insert_ethers.hpp"
#include "cluster/node.hpp"
#include "events/bus.hpp"
#include "events/trigger.hpp"
#include "netsim/fault.hpp"
#include "netsim/peer.hpp"
#include "netsim/power.hpp"
#include "netsim/topology.hpp"
#include "rpm/synth.hpp"

namespace rocks::cluster {

struct ClusterConfig {
  rpm::SynthOptions synth;
  FrontendConfig frontend;
  NodeTimings timings;
  /// Seconds between sequential node power-ons during integration
  /// (insert-ethers requires serial booting to bind rack/rank positions).
  double integration_stagger = 20.0;

  /// Peer-assisted distribution (DESIGN.md §14). Off by default: installs
  /// pull straight from the frontend HTTP group, exactly as before. When on,
  /// nodes are placed on the rack topology in add_node order and downloads
  /// go through the swarm.
  bool enable_peer_distribution = false;
  netsim::PeerConfig peer;
  /// Rack fabric for the peer paths; rack_capacity <= 0 picks a default of
  /// 12 MB/s leaf + 12 MB/s uplink (switched Fast Ethernet with a modest
  /// oversubscribed gigabit-era uplink).
  netsim::TopologyConfig topology;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();
  // Frontend and the nodes hold references into this object: not movable.
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] netsim::Simulator& sim() { return sim_; }
  [[nodiscard]] netsim::SyslogBus& syslog() { return syslog_; }
  [[nodiscard]] Frontend& frontend() { return *frontend_; }
  [[nodiscard]] netsim::PowerDistributionUnit& pdu() { return pdu_; }
  [[nodiscard]] const rpm::SynthDistro& distro() const { return distro_; }
  [[nodiscard]] InsertEthers& insert_ethers() { return *insert_ethers_; }
  /// Peer distribution service; nullptr unless enable_peer_distribution.
  [[nodiscard]] netsim::PeerDistribution* peers() { return peers_.get(); }
  [[nodiscard]] netsim::RackTopology* topology() { return topology_.get(); }

  // --- the event spine (DESIGN.md §15) ---------------------------------------
  /// The cluster-wide event bus. Wired at construction: the frontend's
  /// change journal is bridged onto kConfigChange, every node's installer
  /// transitions publish kNodeState, armed faults publish kFault,
  /// insert-ethers registrations publish kMembership, and service restarts
  /// publish kServiceFlush. Clocked by sim().now().
  [[nodiscard]] events::EventBus& events() { return *bus_; }
  /// The durable trigger engine over the frontend database. Two actions are
  /// pre-registered beyond the built-in "alert": "reinstall" (drive the
  /// event's subject node back through the install path — shoot-node when
  /// running, PDU/hard power cycle when failed or dark) and "flush"
  /// (Frontend::flush_services). Both run via a zero-delay simulator event,
  /// never re-entering the publisher's stack.
  [[nodiscard]] events::TriggerEngine& triggers() { return *triggers_; }
  /// Lifetime count of trigger-driven "reinstall" actions that actually
  /// drove a node (the self-healing drill's zero-operator assertion).
  [[nodiscard]] std::size_t auto_reinstalls() const { return auto_reinstalls_; }

  /// Adds a bare node (a machine racked and cabled, never booted).
  Node& add_node(std::string arch = "i386");

  /// The full integration workflow: run insert-ethers, power nodes on
  /// sequentially, and simulate until every node reaches kRunning. Each
  /// integrated node gets a PDU outlet named after its hostname.
  void integrate_all();

  [[nodiscard]] std::vector<Node*> nodes();
  /// Node by hostname; nullptr when unknown.
  [[nodiscard]] Node* node(std::string_view hostname);

  /// shoot-node for one host: sends the reinstall message and (optionally)
  /// attaches an eKV watcher that mirrors install output.
  void shoot_node(std::string_view hostname, bool watch_ekv = false);
  /// Public face of the trigger engine's "reinstall" ladder: on the next
  /// simulator step, drives `hostname` back through the install path —
  /// shoot when running, power cycle when failed or dark. The batch
  /// scheduler's drain -> reinstall hook lands here.
  void request_reinstall(std::string hostname) {
    schedule_auto_reinstall(std::move(hostname));
  }
  /// Reinstall every compute node concurrently (the "reinstall cluster"
  /// job of Section 5) and run until all are back. Returns the makespan in
  /// seconds.
  double reinstall_all();

  /// Runs the simulator until every node is stable — kRunning, kOff (with no
  /// pending power-flap restore), or kFailed — with a safety cap.
  void run_until_stable(double max_seconds = 36000.0);

  // --- fault injection -------------------------------------------------------
  /// Arms a fault plan against this cluster: wires the injector into DHCP
  /// (dropped DISCOVERs), the kickstart CGI (outage windows), the HTTP
  /// group (crashes, flow kills), and maps power-flap targets onto nodes by
  /// index (a flap is a hard power cycle, so per the paper's footnote the
  /// victim reinstalls). Replaces any previously armed plan.
  netsim::FaultInjector& arm_faults(netsim::FaultPlan plan);
  /// Cancels pending fault events and detaches all probes.
  void disarm_faults();
  /// The armed injector, nullptr when none.
  [[nodiscard]] netsim::FaultInjector* faults() { return faults_.get(); }

  /// True when all running nodes of the Compute membership report the same
  /// software fingerprint — the question Section 3.2's pitfalls revolve
  /// around, answered here in O(nodes) instead of an audit.
  [[nodiscard]] bool consistent();

  /// Latest eKV screens captured by shoot_node watchers.
  [[nodiscard]] const std::vector<std::string>& ekv_captures() const { return ekv_captures_; }

 private:
  /// The "reinstall" trigger action: schedules a zero-delay event that
  /// drives `hostname` back through the install path (see triggers()).
  void schedule_auto_reinstall(std::string hostname);

  ClusterConfig config_;
  netsim::Simulator sim_;
  netsim::SyslogBus syslog_;
  rpm::SynthDistro distro_;
  std::unique_ptr<Frontend> frontend_;
  std::unique_ptr<InsertEthers> insert_ethers_;
  netsim::PowerDistributionUnit pdu_;
  std::unique_ptr<netsim::RackTopology> topology_;
  std::unique_ptr<netsim::PeerDistribution> peers_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::string> ekv_captures_;
  std::unique_ptr<netsim::FaultInjector> faults_;
  std::size_t pending_flap_restores_ = 0;
  int next_mac_suffix_ = 1;
  std::size_t auto_reinstalls_ = 0;
  // The spine's teardown is circular by reference (the bus bridges the
  // frontend's journal; the frontend's service manager subscribes to the
  // bus), so ~Cluster() breaks the frontend->bus edge explicitly before
  // these run: triggers_, then bus_, then (by declaration order) frontend_.
  std::unique_ptr<events::EventBus> bus_;
  std::unique_ptr<events::TriggerEngine> triggers_;
};

}  // namespace rocks::cluster
