#include "cluster/ekv.hpp"

#include <algorithm>

#include "support/strings.hpp"
#include "support/table.hpp"

namespace rocks::cluster {

void EkvConsole::write_line(double now, std::string text) {
  lines_.push_back({now, std::move(text)});
  if (lines_.size() > kLineCap) lines_.pop_front();
  for (const auto& [id, watcher] : watchers_) watcher(lines_.back());
}

void EkvConsole::send_input(double now, std::string text) {
  ++inputs_;
  write_line(now, "<< " + std::move(text));
}

std::size_t EkvConsole::attach(Watcher watcher) {
  const std::size_t id = next_watcher_++;
  watchers_.emplace_back(id, std::move(watcher));
  return id;
}

void EkvConsole::detach(std::size_t id) {
  watchers_.erase(std::remove_if(watchers_.begin(), watchers_.end(),
                                 [id](const auto& entry) { return entry.first == id; }),
                  watchers_.end());
}

std::string EkvConsole::screen(std::size_t tail) const {
  std::string out;
  out += strings::cat("Red Hat Linux (C) 2000 Red Hat, Inc.  --  eKV on ", node_name_,
                      "  --  Install System\n");
  out += strings::cat("+", std::string(64, '-'), "+\n");
  out += strings::cat("| Package Installation\n");
  if (!progress_.current_package.empty())
    out += strings::cat("|   Name   : ", progress_.current_package, "\n");
  out += strings::cat("|               Packages        Bytes\n");
  out += strings::cat("|   Total     : ", progress_.total_packages, "\t\t",
                      fixed(static_cast<double>(progress_.total_bytes) / (1024.0 * 1024.0), 0),
                      "M\n");
  out += strings::cat(
      "|   Completed : ", progress_.completed_packages, "\t\t",
      fixed(static_cast<double>(progress_.completed_bytes) / (1024.0 * 1024.0), 0), "M\n");
  out += strings::cat(
      "|   Remaining : ", progress_.remaining_packages(), "\t\t",
      fixed(static_cast<double>(progress_.remaining_bytes()) / (1024.0 * 1024.0), 0), "M\n");
  out += strings::cat("+", std::string(64, '-'), "+\n");
  const std::size_t start = lines_.size() > tail ? lines_.size() - tail : 0;
  for (std::size_t i = start; i < lines_.size(); ++i)
    out += strings::cat("[", fixed(lines_[i].time, 1), "s] ", lines_[i].text, "\n");
  return out;
}

}  // namespace rocks::cluster
