// A cluster node and its installer state machine.
//
// "Reinstallation is the primary mechanism for forcing the base OS on the
// root partition of compute nodes to a known state" (paper Section 6.3).
// A node's life is a loop through:
//
//   kOff -> (power_on, blank disk or install flag) kInstallWait
//        -> DHCP + kickstart request over HTTP      kInstalling
//        -> RPM download via the shared channel     (fluid flow, 1 MB/s cap)
//        -> post-configuration + driver rebuild     kPostConfig
//        -> final boot                               kRunning
//
// A hard power cycle at any point forces a fresh reinstall (the paper's
// footnote: "A hard power cycle on a Rocks compute node forces the node to
// reinstall itself"); shoot-node does the same gracefully. Non-root
// partitions survive; the root partition is always rebuilt from the
// distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "cluster/ekv.hpp"
#include "kickstart/server.hpp"
#include "netsim/dhcp.hpp"
#include "netsim/engine.hpp"
#include "netsim/http.hpp"
#include "netsim/peer.hpp"
#include "netsim/syslog.hpp"
#include "rpm/rpmdb.hpp"
#include "rpm/solver.hpp"
#include "support/rng.hpp"
#include "vfs/filesystem.hpp"

namespace rocks::cluster {

enum class NodeState {
  kOff,
  kInstallWait,  // booted into the installer, waiting for DHCP + kickstart
  kInstalling,   // pulling and installing RPMs
  kPostConfig,   // %post scripts, driver rebuild
  kRebooting,    // final boot into the installed system
  kRunning,
  kFailed,  // installer gave up (retry/watchdog budget exhausted); needs
            // recovery escalation (a power cycle restarts the install)
};

[[nodiscard]] std::string_view node_state_name(NodeState state);

/// Phase durations (seconds). The defaults calibrate a single-node Myrinet
/// reinstall to the paper's Table I row: 60 (boot into installer) + 10
/// (DHCP/kickstart) + 40 (disk format) + 223 (download+install at the 1 MB/s
/// install-pipeline demand) + 75 (%post) + 120 (driver rebuild, from the
/// gm-driver package) + 90 (final boot) = 618 s = 10.3 min.
struct NodeTimings {
  double installer_boot = 60.0;
  double dhcp_and_kickstart = 10.0;
  double disk_format = 40.0;
  double post_config = 75.0;
  double final_boot = 90.0;
  /// Client-side consume rate of the install pipeline in bytes/s: the node
  /// can only install as fast as rpm writes to disk (~1 MB/s on the PIIIs).
  double install_demand = 1.0 * 1024 * 1024;

  // --- robustness knobs ------------------------------------------------------
  // All retry schedules are zero-cost on the happy path: the FIRST retry of
  // any phase fires after exactly its base interval (so the Table I
  // calibration and the insert-ethers integration loop are timing-identical
  // to a fault-free installer), and only subsequent retries back off
  // exponentially (doubling, capped) with multiplicative jitter to avoid
  // synchronized retry storms from a 32-node pulse.

  /// DHCP retry base while unanswered (insert-ethers integration loop, lost
  /// DISCOVERs) and its backoff cap.
  double dhcp_retry = 10.0;
  double dhcp_retry_max = 80.0;
  /// Kickstart CGI retry base/cap (transient refused connections).
  double kickstart_retry = 5.0;
  double kickstart_retry_max = 60.0;
  /// Re-request base/cap after a download aborted by a server crash or a
  /// connection reset.
  double download_retry = 5.0;
  double download_retry_max = 60.0;
  /// Jitter fraction applied from the second retry on: the delay is
  /// multiplied by a uniform draw from [1, 1 + retry_jitter). 0 disables.
  double retry_jitter = 0.25;
  /// Aborted-download re-requests allowed per install before giving up.
  int download_retry_budget = 8;
  /// Watchdog: an install still not finished after this many seconds is
  /// assumed wedged and hard power cycled (0 disables). The default is far
  /// above the ~618 s worst-case clean install, so it never fires without
  /// real faults.
  double install_watchdog = 3600.0;
  /// Consecutive watchdog power cycles before the node declares itself
  /// failed and waits for recovery escalation.
  int watchdog_budget = 3;
};

/// The services a booting node talks to; owned by the frontend.
struct NodeEnvironment {
  netsim::Simulator* sim = nullptr;
  netsim::SyslogBus* syslog = nullptr;
  netsim::DhcpServer* dhcp = nullptr;
  kickstart::KickstartServer* kickstart = nullptr;
  netsim::HttpServerGroup* http = nullptr;
  const rpm::Repository* distribution = nullptr;  // what HTTP serves
  /// Optional peer-assisted distribution (DESIGN.md §14). When wired — and
  /// the node has joined via join_peer_network() — package downloads go
  /// through the swarm instead of straight to the HTTP group.
  netsim::PeerDistribution* peers = nullptr;
};

class Node {
 public:
  Node(NodeEnvironment env, Mac mac, std::string arch = "i386", NodeTimings timings = {});

  // --- identity ------------------------------------------------------------
  [[nodiscard]] const Mac& mac() const { return mac_; }
  [[nodiscard]] const std::string& arch() const { return arch_; }
  /// Hostname/IP are learned from DHCP; empty/0 before first integration.
  [[nodiscard]] const std::string& hostname() const { return hostname_; }
  [[nodiscard]] Ipv4 ip() const { return ip_; }

  // --- control ---------------------------------------------------------------
  /// Applies power. A node with no installed OS — or one whose reinstall
  /// flag is set — boots into the installer; otherwise boots normally.
  void power_on();
  void power_off();
  /// Hard power cycle: off, then on with the reinstall flag forced.
  void hard_power_cycle();
  /// shoot-node's message: reboot into installation mode gracefully.
  void shoot();

  // --- state -------------------------------------------------------------------
  [[nodiscard]] NodeState state() const { return state_; }
  [[nodiscard]] bool is_running() const { return state_ == NodeState::kRunning; }
  [[nodiscard]] bool failed() const { return state_ == NodeState::kFailed; }
  [[nodiscard]] int install_count() const { return install_count_; }
  /// Wall-clock seconds of the most recent completed reinstall.
  [[nodiscard]] double last_install_duration() const { return last_install_duration_; }
  [[nodiscard]] std::uint64_t bytes_downloaded_total() const { return bytes_downloaded_; }

  // --- robustness telemetry ----------------------------------------------------
  /// Lifetime count of download re-requests after aborted flows.
  [[nodiscard]] std::uint64_t download_retries() const { return download_retries_; }
  /// Lifetime count of watchdog-initiated hard power cycles.
  [[nodiscard]] std::uint64_t watchdog_fires() const { return watchdog_fires_; }
  /// Lifetime count of installs that gave up (entered kFailed).
  [[nodiscard]] std::uint64_t install_failures() const { return install_failures_; }

  // --- the machine ------------------------------------------------------------
  [[nodiscard]] vfs::FileSystem& fs() { return fs_; }
  [[nodiscard]] const vfs::FileSystem& fs() const { return fs_; }
  [[nodiscard]] const rpm::RpmDatabase& rpmdb() const { return rpmdb_; }
  [[nodiscard]] EkvConsole& ekv() { return ekv_; }

  /// Equal fingerprints <=> identical installed package sets.
  [[nodiscard]] std::uint64_t software_fingerprint() const { return rpmdb_.fingerprint(); }

  // --- experiment hooks ---------------------------------------------------------
  /// Simulates configuration drift: overwrite a file by hand.
  void corrupt_file(std::string_view path, std::string_view content);
  /// Simulates a user building unpackaged software on the node.
  void install_rogue_package(const rpm::Package& package);
  /// Replaces this node's software state with a bit-copy of `model`'s root
  /// partition and package database — the disk-cloning baseline's apply
  /// step. Only meaningful while running.
  void clone_software_from(const Node& model);

  // --- processes (the cluster-kill substrate) --------------------------------
  /// Starts a named process; only running nodes accept jobs.
  void launch_process(std::string name);
  /// Kills every process with the given name; returns how many died.
  std::size_t kill_processes(std::string_view name);
  [[nodiscard]] std::size_t process_count() const { return processes_.size(); }
  [[nodiscard]] std::size_t process_count(std::string_view name) const;

  /// Fires whenever the node reaches kRunning.
  void on_running(std::function<void()> callback) { on_running_ = std::move(callback); }

  /// Fires on every installer state-machine transition, after state() moved.
  /// The cluster wires this to publish kNodeState onto the event spine; the
  /// observer must not re-enter the node synchronously (schedule instead).
  void set_state_observer(std::function<void(NodeState)> observer) {
    state_observer_ = std::move(observer);
  }

  // --- peer-assisted distribution (DESIGN.md §14) ----------------------------
  /// Assigns this node's endpoint id in the peer distribution network; the
  /// cluster calls this right after add_node. Downloads use the swarm from
  /// the next install on.
  void join_peer_network(std::uint32_t endpoint) { peer_endpoint_ = endpoint; }
  [[nodiscard]] bool peer_networked() const {
    return env_.peers != nullptr && peer_endpoint_ >= 0;
  }

  // --- control-plane failover (DESIGN.md §12.5) ------------------------------
  /// Re-points this node's services at a new provider (a promoted replica
  /// frontend). Only non-null fields of `env` replace the current wiring;
  /// the change takes effect on the node's next request or retry, so an
  /// install stalled on a dead frontend resumes against the new one without
  /// a power cycle.
  void repoint(const NodeEnvironment& env);

  // --- hardware failures (Section 4: the crash-cart workflow) ---------------
  /// The node's Ethernet/motherboard dies: it drops off the network and no
  /// amount of remote power cycling brings it back ("physical intervention
  /// is required").
  void inject_hardware_fault();
  [[nodiscard]] bool hardware_failed() const { return hardware_failed_; }
  /// The crash cart arrives: hardware is swapped; the node is left powered
  /// off with a blank disk (next power-on reinstalls).
  void repair_hardware();

 private:
  /// The in-flight install's context, kept across download retries so an
  /// aborted flow re-requests only the bytes it is still missing.
  struct InstallJob {
    kickstart::KickstartFile profile;
    rpm::Resolution resolution;
    double driver_build_seconds = 0.0;
    double bytes_remaining = 0.0;
    int retries = 0;  // against NodeTimings::download_retry_budget
  };

  /// The single write path for state_: every transition funnels through here
  /// so the state observer sees all of them.
  void set_state(NodeState state);
  void enter_install();
  void request_dhcp();
  void request_kickstart();
  void begin_download(const kickstart::KickstartFile& profile);
  void start_download();
  void retry_download(std::string why);
  void finish_install();
  void fail_install(std::string reason);
  void arm_watchdog();
  void disarm_watchdog();
  /// Backoff schedule: attempt 1 waits exactly `base` (deterministic, keeps
  /// fault-free timing identical); attempt n doubles up to `cap`, then
  /// multiplies by [1, 1 + retry_jitter).
  [[nodiscard]] double retry_delay(double base, double cap, int attempt);
  void log(std::string text);
  [[nodiscard]] bool epoch_valid(std::uint64_t epoch) const { return epoch == epoch_; }

  NodeEnvironment env_;
  Mac mac_;
  std::string arch_;
  NodeTimings timings_;

  NodeState state_ = NodeState::kOff;
  bool reinstall_on_boot_ = true;  // blank disk: first boot always installs
  std::int64_t peer_endpoint_ = -1;  // -1: not part of a peer network
  bool hardware_failed_ = false;
  std::string hostname_;
  Ipv4 ip_;
  std::uint64_t epoch_ = 0;  // bumped on power events; stale callbacks no-op

  vfs::FileSystem fs_;
  rpm::RpmDatabase rpmdb_;
  EkvConsole ekv_;

  int install_count_ = 0;
  double install_started_ = 0.0;
  double last_install_duration_ = 0.0;
  std::uint64_t bytes_downloaded_ = 0;
  std::optional<netsim::HttpServerGroup::Ticket> download_;
  std::unique_ptr<InstallJob> job_;
  std::function<void()> on_running_;
  std::function<void(NodeState)> state_observer_;
  std::multiset<std::string> processes_;

  // Robustness state. The jitter RNG is seeded from the MAC so every node
  // retries on its own deterministic schedule.
  Rng rng_;
  int dhcp_attempts_ = 0;
  int kickstart_attempts_ = 0;
  int watchdog_cycles_ = 0;
  bool watchdog_armed_ = false;
  netsim::EventId watchdog_event_ = 0;
  std::uint64_t download_retries_ = 0;
  std::uint64_t watchdog_fires_ = 0;
  std::uint64_t install_failures_ = 0;
};

}  // namespace rocks::cluster
