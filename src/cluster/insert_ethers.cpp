#include "cluster/insert_ethers.hpp"

#include <set>

#include "support/crashpoint.hpp"
#include "support/strings.hpp"

namespace rocks::cluster {

using strings::cat;

InsertEthers::InsertEthers(Frontend& frontend, netsim::SyslogBus& syslog,
                           InsertEthersOptions options)
    : frontend_(frontend), syslog_(syslog), options_(std::move(options)) {}

InsertEthers::~InsertEthers() { stop(); }

void InsertEthers::start() {
  if (active_) return;
  active_ = true;
  subscription_ =
      syslog_.subscribe([this](const netsim::SyslogMessage& m) { on_syslog(m); });
}

void InsertEthers::stop() {
  if (!active_) return;
  syslog_.unsubscribe(subscription_);
  active_ = false;
}

void InsertEthers::set_membership(int membership, std::string basename) {
  options_.membership = membership;
  options_.basename = std::move(basename);
}

Ipv4 InsertEthers::next_free_ip() const {
  std::set<std::string> taken;
  for (const auto& ip : frontend_.db().query_column("SELECT ip FROM nodes"))
    taken.insert(ip);
  Ipv4 candidate = options_.ip_ceiling;
  while (taken.contains(candidate.to_string())) candidate = candidate.prev();
  return candidate;
}

int InsertEthers::next_rank() const {
  const auto rows = frontend_.db().execute(
      cat("SELECT rank FROM nodes WHERE membership = ", options_.membership,
          " AND rack = ", options_.rack, " ORDER BY rank DESC LIMIT 1"));
  if (rows.row_count() == 0) return 0;
  return static_cast<int>(rows.rows[0][0].as_int()) + 1;
}

bool InsertEthers::insert_node(const Mac& mac) {
  // Already known? (Several retries can race one insertion.)
  const auto existing = frontend_.db().execute(
      cat("SELECT name FROM nodes WHERE mac = '", mac.to_string(), "'"));
  if (existing.row_count() != 0) return false;

  const int rank = next_rank();
  const std::string name = cat(options_.basename, "-", options_.rack, "-", rank);
  const Ipv4 ip = next_free_ip();
  kickstart::insert_node_row(frontend_.db(), mac.to_string(), name, options_.membership,
                             options_.rack, rank, ip.to_string(), options_.arch,
                             "Compute node");
  ++inserted_;
  log_.push_back(cat("inserted ", name, " (", mac.to_string(), " -> ", ip.to_string(), ")"));
  if (bus_ != nullptr)
    bus_->publish(events::Event{events::EventType::kMembership, name, mac.to_string(),
                                static_cast<double>(inserted_), 0.0, 0});
  return true;
}

void InsertEthers::flush() { frontend_.flush_services(); }

int InsertEthers::register_batch(const std::vector<Mac>& macs) {
  // The commits mark services dirty through the bus as they land; one
  // flush at the end coalesces the whole burst — each service restarts at
  // most once no matter how many nodes were registered. Each node is one
  // INSERT statement, so a crash anywhere in the loop leaves a prefix of
  // fully-registered nodes (never a half-registered one); the final flush
  // is the durability barrier — only after it may the batch be
  // acknowledged to the operator.
  int fresh = 0;
  for (const Mac& mac : macs) {
    support::crash_point("insert_ethers.batch");
    if (insert_node(mac)) ++fresh;
  }
  flush();
  return fresh;
}

void InsertEthers::on_syslog(const netsim::SyslogMessage& message) {
  // The discovery signature: dhcpd logging a request it could not answer.
  if (message.facility != "dhcpd") return;
  if (!strings::contains(message.text, "DHCPDISCOVER")) return;
  if (!strings::contains(message.text, "no free leases")) return;

  // "DHCPDISCOVER from <mac> via eth0: ..."
  const auto words = strings::split_ws(message.text);
  std::string mac_text;
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    if (words[i] == "from") {
      mac_text = words[i + 1];
      break;
    }
  }
  const auto mac = Mac::parse(mac_text);
  if (!mac) return;
  if (!insert_node(*mac)) return;

  // Flush the bus (dirty services + DHCP bindings) so the node's DHCP
  // retry succeeds; batch integrations defer this to one flush() call.
  if (options_.auto_flush) flush();
}

}  // namespace rocks::cluster
