#include "cluster/frontend.hpp"

#include "cluster/node.hpp"
#include "services/generators.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"

namespace rocks::cluster {

using strings::cat;

Frontend::Frontend(netsim::Simulator& sim, netsim::SyslogBus& syslog,
                   const rpm::SynthDistro& distro, FrontendConfig config)
    : sim_(sim),
      syslog_(syslog),
      config_(std::move(config)),
      configuration_(kickstart::make_default_configuration(distro)),
      rocksdist_(fs_, rocksdist::DistConfig{"/home/install", config_.dist_version, "i386",
                                            32 * 1024}),
      http_(sim, config_.http_capacity, config_.http_servers),
      dhcp_(sim, syslog, config_.name, config_.ip) {
  http_.set_per_stream_cap(config_.http_per_stream_cap);
  // Durable store first (DESIGN.md §11): recovery must run against an empty
  // database, and everything the bootstrap below commits is then logged.
  if (config_.state_fs != nullptr) {
    recovery_ = db_.open_durable(*config_.state_fs, config_.state_dir);
    db_.set_wal_group_commit(config_.wal_group_commit);
  }
  // Database bootstrap: schema plus our own row (the first thing the CD
  // install does, Section 6.4). Both steps are idempotent so a recovered
  // boot passes straight through: the schema guard is has_table, and the
  // frontend row is keyed by our MAC.
  kickstart::ensure_cluster_schema(db_);
  if (db_.execute(cat("SELECT id FROM nodes WHERE mac = '", config_.mac.to_string(), "'"))
          .row_count() == 0) {
    kickstart::insert_node_row(db_, config_.mac.to_string(), config_.name, /*membership=*/1,
                               /*rack=*/0, /*rank=*/0, config_.ip.to_string(), "i386",
                               "Gateway machine");
  }

  // Wire the kickstart inputs to the change bus: graph/node-file edits and
  // distribution rebuilds publish on their channels, and every subscriber
  // (the profile cache, dirty services) learns of them the same way table
  // changes propagate (DESIGN.md §10).
  configuration_.graph.set_bus(&db_.journal(),
                               std::string(kickstart::Generator::kGraphChannel));
  configuration_.files.set_bus(&db_.journal(),
                               std::string(kickstart::Generator::kNodeFilesChannel));

  // rocks-dist: mirror the stock release, build the distribution tree.
  rocksdist_.mirror(distro.repo, cat("redhat/", config_.dist_version));
  rocksdist_.dist(configuration_.files, configuration_.graph);

  kickstart_server_ = std::make_unique<kickstart::KickstartServer>(
      db_, configuration_.files, configuration_.graph, config_.ip,
      cat("http://", config_.ip.to_string(), "/install/rocks-dist"),
      &rocksdist_.distribution());

  // The generated-configuration services (Section 6.4); the same set a
  // replica frontend registers (DESIGN.md §12.3), so leader and follower
  // render byte-identical /etc content from the same database state.
  services::register_standard_services(services_, config_.ip);
  // From here on, commits mark services dirty and flush_services() renders
  // exactly the dirty ones.
  services_.attach(db_.journal());
  regenerate_services();
}

std::unique_ptr<Frontend> Frontend::recover(netsim::Simulator& sim, netsim::SyslogBus& syslog,
                                            const rpm::SynthDistro& distro,
                                            FrontendConfig config) {
  require_state(config.state_fs != nullptr,
                "Frontend::recover() needs a durable store (FrontendConfig::state_fs)");
  return std::make_unique<Frontend>(sim, syslog, distro, std::move(config));
}

void Frontend::set_event_bus(events::EventBus* bus) {
  bus_ = bus;
  // The service manager's dirty tracking moves onto the spine: identical
  // semantics (kConfigChange carries every journal notification through the
  // bridge), one subscription mechanism for the whole system.
  if (bus_ != nullptr) {
    services_.attach(*bus_);
  } else {
    services_.attach(db_.journal());
  }
}

services::ServiceManager::Report Frontend::flush_services() {
  // Durability barrier before anything becomes externally visible: a config
  // file or DHCP binding must never reflect state a crash could forget. A
  // flush failure (IoError with the undurable LSN range) propagates — the
  // caller's batch is NOT acknowledged.
  if (db_.durable()) db_.wal_flush();
  // Replication barrier (DESIGN.md §12.4): under quorum-ack commit this
  // ships the flushed groups and throws until a majority acknowledges.
  if (commit_barrier_) commit_barrier_();
  auto report = services_.regenerate(db_, fs_);

  // The DHCP daemon's static bindings follow the nodes table; re-push only
  // when it actually moved since the last push (the restart re-reads the
  // conf, so a burst of registrations coalesces into one reconfigure).
  const std::uint64_t nodes_revision = db_.revision("nodes");
  if (nodes_revision != dhcp_pushed_revision_) {
    std::map<Mac, netsim::DhcpLease> bindings;
    const auto rows = db_.execute("SELECT mac, name, ip FROM nodes ORDER BY id");
    for (const auto& row : rows.rows) {
      const auto mac = Mac::parse(row[0].to_string());
      const auto ip = Ipv4::parse(row[2].to_string());
      if (!mac || !ip) continue;
      bindings.emplace(*mac, netsim::DhcpLease{*ip, row[1].to_string(), config_.ip});
    }
    dhcp_.configure(std::move(bindings));
    dhcp_pushed_revision_ = nodes_revision;
  }
  if (bus_ != nullptr) {
    for (const std::string& service : report.restarted)
      bus_->publish(events::Event{events::EventType::kServiceFlush, service, "restarted",
                                  static_cast<double>(services_.restarts(service)), 0.0, 0});
  }
  return report;
}

std::vector<std::string> Frontend::regenerate_services() {
  services_.mark_all_dirty();
  dhcp_pushed_revision_ = kNeverPushed;  // force the binding push
  return flush_services().restarted;
}

void Frontend::add_user(std::string_view name, int uid, std::string_view shell) {
  services::ensure_users_table(db_);
  db_.execute(cat("INSERT INTO users VALUES ('", name, "', ", uid, ", '/export/home/", name,
                  "', '", shell, "')"));
  fs_.mkdir_p(cat("/export/home/", name));
  // The INSERT marked nis/nfs dirty through the bus; flush renders just
  // those and pushes the fresh NIS map.
  flush_services();
}

std::string Frontend::nis_passwd_map() {
  services::ensure_users_table(db_);
  return fs_.is_file("/var/yp/passwd") ? fs_.read_file("/var/yp/passwd")
                                       : services::generate_nis_passwd(db_);
}

rocksdist::DistReport Frontend::rebuild_distribution() {
  auto report = rocksdist_.dist(configuration_.files, configuration_.graph);
  // The distribution contents changed: publish so the kickstart profile
  // cache (subscribed to this channel) rebuilds — previously this required
  // remembering to call invalidate_profiles() by hand.
  db_.journal().touch(kickstart::Generator::kDistributionChannel);
  return report;
}

rocksdist::DistReport Frontend::apply_updates(const rpm::Repository& updates) {
  rocksdist_.mirror(updates, cat("updates/", config_.dist_version));
  return rebuild_distribution();
}

NodeEnvironment Frontend::environment() {
  NodeEnvironment env;
  env.sim = &sim_;
  env.syslog = &syslog_;
  env.dhcp = &dhcp_;
  env.kickstart = kickstart_server_.get();
  env.http = &http_;
  env.distribution = &rocksdist_.distribution();
  return env;
}

}  // namespace rocks::cluster
