#include "cluster/frontend.hpp"

#include "cluster/node.hpp"
#include "services/generators.hpp"
#include "support/strings.hpp"

namespace rocks::cluster {

using strings::cat;

Frontend::Frontend(netsim::Simulator& sim, netsim::SyslogBus& syslog,
                   const rpm::SynthDistro& distro, FrontendConfig config)
    : sim_(sim),
      syslog_(syslog),
      config_(std::move(config)),
      configuration_(kickstart::make_default_configuration(distro)),
      rocksdist_(fs_, rocksdist::DistConfig{"/home/install", config_.dist_version, "i386",
                                            32 * 1024}),
      http_(sim, config_.http_capacity, config_.http_servers),
      dhcp_(sim, syslog, config_.name, config_.ip) {
  http_.set_per_stream_cap(config_.http_per_stream_cap);
  // Database bootstrap: schema plus our own row (the first thing the CD
  // install does, Section 6.4).
  kickstart::ensure_cluster_schema(db_);
  kickstart::insert_node_row(db_, config_.mac.to_string(), config_.name, /*membership=*/1,
                             /*rack=*/0, /*rank=*/0, config_.ip.to_string(), "i386",
                             "Gateway machine");

  // rocks-dist: mirror the stock release, build the distribution tree.
  rocksdist_.mirror(distro.repo, cat("redhat/", config_.dist_version));
  rocksdist_.dist(configuration_.files, configuration_.graph);

  kickstart_server_ = std::make_unique<kickstart::KickstartServer>(
      db_, configuration_.files, configuration_.graph, config_.ip,
      cat("http://", config_.ip.to_string(), "/install/rocks-dist"),
      &rocksdist_.distribution());

  // The generated-configuration services (Section 6.4).
  services_.register_service("dhcpd", "/etc/dhcpd.conf", [this](sqldb::Database& db) {
    return services::generate_dhcpd_conf(db, config_.ip);
  });
  services_.register_service("hosts", "/etc/hosts", services::generate_hosts);
  services_.register_service("pbs", "/var/spool/pbs/server_priv/nodes",
                             [](sqldb::Database& db) {
                               return services::generate_pbs_nodes(db);
                             });
  services_.register_service("nis", "/var/yp/passwd", services::generate_nis_passwd);
  services_.register_service("nfs", "/etc/exports", services::generate_nfs_exports);
  regenerate_services();
}

std::vector<std::string> Frontend::regenerate_services() {
  const auto restarted = services_.regenerate(db_, fs_);

  // Push static bindings to the DHCP daemon (its restart re-reads the conf).
  std::map<Mac, netsim::DhcpLease> bindings;
  const auto rows = db_.execute("SELECT mac, name, ip FROM nodes ORDER BY id");
  for (const auto& row : rows.rows) {
    const auto mac = Mac::parse(row[0].to_string());
    const auto ip = Ipv4::parse(row[2].to_string());
    if (!mac || !ip) continue;
    bindings.emplace(*mac, netsim::DhcpLease{*ip, row[1].to_string(), config_.ip});
  }
  dhcp_.configure(std::move(bindings));
  return restarted;
}

void Frontend::add_user(std::string_view name, int uid, std::string_view shell) {
  services::ensure_users_table(db_);
  db_.execute(cat("INSERT INTO users VALUES ('", name, "', ", uid, ", '/export/home/", name,
                  "', '", shell, "')"));
  fs_.mkdir_p(cat("/export/home/", name));
  regenerate_services();  // pushes the fresh NIS map
}

std::string Frontend::nis_passwd_map() {
  services::ensure_users_table(db_);
  return fs_.is_file("/var/yp/passwd") ? fs_.read_file("/var/yp/passwd")
                                       : services::generate_nis_passwd(db_);
}

rocksdist::DistReport Frontend::rebuild_distribution() {
  return rocksdist_.dist(configuration_.files, configuration_.graph);
}

rocksdist::DistReport Frontend::apply_updates(const rpm::Repository& updates) {
  rocksdist_.mirror(updates, cat("updates/", config_.dist_version));
  return rebuild_distribution();
}

NodeEnvironment Frontend::environment() {
  NodeEnvironment env;
  env.sim = &sim_;
  env.syslog = &syslog_;
  env.dhcp = &dhcp_;
  env.kickstart = kickstart_server_.get();
  env.http = &http_;
  env.distribution = &rocksdist_.distribution();
  return env;
}

}  // namespace rocks::cluster
