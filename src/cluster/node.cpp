#include "cluster/node.hpp"

#include <algorithm>
#include <cstdio>

#include "support/backoff.hpp"
#include "support/error.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "vfs/path.hpp"

namespace rocks::cluster {

using strings::cat;

std::string_view node_state_name(NodeState state) {
  switch (state) {
    case NodeState::kOff: return "off";
    case NodeState::kInstallWait: return "install-wait";
    case NodeState::kInstalling: return "installing";
    case NodeState::kPostConfig: return "post-config";
    case NodeState::kRebooting: return "rebooting";
    case NodeState::kRunning: return "running";
    case NodeState::kFailed: return "failed";
  }
  return "?";
}

Node::Node(NodeEnvironment env, Mac mac, std::string arch, NodeTimings timings)
    : env_(env),
      mac_(mac),
      arch_(std::move(arch)),
      timings_(timings),
      ekv_(cat("node-", mac.to_string())),
      rng_(mac.value() * 0x9E3779B97F4A7C15ULL + 0xC0FFEE) {
  require_state(env_.sim != nullptr && env_.syslog != nullptr,
                "Node needs at least a simulator and a syslog bus");
  fs_.add_partition("/state/partition1");
}

void Node::set_state(NodeState state) {
  if (state_ == state) return;
  state_ = state;
  if (auto observer = state_observer_) observer(state);  // copy: may reset itself
}

void Node::log(std::string text) {
  ekv_.write_line(env_.sim->now(), text);
  env_.syslog->publish({env_.sim->now(), "ekv",
                        hostname_.empty() ? mac_.to_string() : hostname_, std::move(text)});
}

void Node::power_on() {
  require_state(state_ == NodeState::kOff, "power_on: node is already powered");
  ++epoch_;
  if (hardware_failed_) {
    // Power flows but the machine never reaches the network: from the
    // frontend it is simply dark (Section 4: "an administrator is 'in the
    // dark' from the moment the node is powered on").
    return;
  }
  if (reinstall_on_boot_) {
    enter_install();
  } else {
    set_state(NodeState::kRebooting);
    const std::uint64_t epoch = epoch_;
    env_.sim->schedule(timings_.final_boot, [this, epoch] {
      if (!epoch_valid(epoch)) return;
      set_state(NodeState::kRunning);
      log("boot complete");
      // A normally-booted node holds the full distribution on disk: it can
      // serve installing peers without having gone through fetch() itself.
      if (peer_networked())
        env_.peers->mark_seeded(static_cast<std::uint32_t>(peer_endpoint_));
      if (auto callback = on_running_) callback();  // copy: callback may reset itself
    });
  }
}

void Node::power_off() {
  ++epoch_;  // cancels every in-flight phase
  disarm_watchdog();
  if (download_ && download_->server != nullptr) {
    download_->server->abort(download_->flow);
    download_.reset();
  }
  // Dying mid-swarm: our own fetch is silently dropped, and every peer we
  // were serving gets its abort callback (the churn path the retry/backoff
  // machinery already handles).
  if (peer_networked())
    env_.peers->node_offline(static_cast<std::uint32_t>(peer_endpoint_));
  processes_.clear();
  set_state(NodeState::kOff);
}

void Node::hard_power_cycle() {
  power_off();
  reinstall_on_boot_ = true;  // the paper's footnote: hard cycle => reinstall
  power_on();
}

void Node::shoot() {
  require_state(state_ == NodeState::kRunning,
                cat("shoot: node ", hostname_, " is not running (state: ",
                    node_state_name(state_), ")"));
  log("shoot-node: rebooting into installation mode");
  power_off();
  reinstall_on_boot_ = true;
  power_on();
}

void Node::enter_install() {
  set_state(NodeState::kInstallWait);
  if (peer_networked())
    env_.peers->begin_install(static_cast<std::uint32_t>(peer_endpoint_));
  install_started_ = env_.sim->now();
  dhcp_attempts_ = 0;
  kickstart_attempts_ = 0;
  job_.reset();
  arm_watchdog();
  log("entering installation mode");
  const std::uint64_t epoch = epoch_;
  env_.sim->schedule(timings_.installer_boot, [this, epoch] {
    if (!epoch_valid(epoch)) return;
    request_dhcp();
  });
}

double Node::retry_delay(double base, double cap, int attempt) {
  // The shared policy (support/backoff.hpp): attempt 1 is always exactly
  // `base` — the fault-free path (and the insert-ethers first-boot loop)
  // must not depend on the RNG at all — then doubling capped, with
  // multiplicative jitter. The replication reconnect loop uses the same
  // policy, so the two schedules cannot drift.
  return support::BackoffPolicy{base, cap, timings_.retry_jitter}.delay(attempt, rng_);
}

void Node::repoint(const NodeEnvironment& env) {
  // Failover: only the services the new environment actually offers are
  // re-pointed; null fields keep the current wiring (a promoted replica
  // frontend typically brings kickstart + HTTP, while DHCP leases already
  // held remain valid). In-flight phases captured their epoch, not the
  // service pointers, so the very next retry or request uses the new
  // wiring without a power cycle.
  if (env.dhcp != nullptr) env_.dhcp = env.dhcp;
  if (env.kickstart != nullptr) env_.kickstart = env.kickstart;
  if (env.http != nullptr) env_.http = env.http;
  if (env.distribution != nullptr) env_.distribution = env.distribution;
  if (env.peers != nullptr) env_.peers = env.peers;
}

void Node::request_dhcp() {
  require_state(env_.dhcp != nullptr, "node has no DHCP server wired");
  const std::uint64_t epoch = epoch_;
  const auto lease = env_.dhcp->discover(mac_);
  if (!lease) {
    // Unknown to the cluster yet (insert-ethers will add us) or the
    // broadcast was lost on the wire: keep retrying. The first retry fires
    // at exactly the base interval; after that we back off with jitter so a
    // whole pulse of nodes does not hammer dhcpd in lockstep.
    ++dhcp_attempts_;
    const double delay =
        retry_delay(timings_.dhcp_retry, timings_.dhcp_retry_max, dhcp_attempts_);
    if (dhcp_attempts_ >= 2)
      log(cat("dhcp: no offer (attempt ", dhcp_attempts_, "); retrying in ",
              fixed(delay, 1), " s"));
    env_.sim->schedule(delay, [this, epoch] {
      if (!epoch_valid(epoch)) return;
      request_dhcp();
    });
    return;
  }
  dhcp_attempts_ = 0;
  hostname_ = lease->hostname;
  ip_ = lease->ip;
  log(cat("dhcp: bound to ", ip_.to_string(), " as ", hostname_));

  env_.sim->schedule(timings_.dhcp_and_kickstart, [this, epoch] {
    if (!epoch_valid(epoch)) return;
    request_kickstart();
  });
}

void Node::request_kickstart() {
  require_state(env_.kickstart != nullptr, "node has no kickstart server wired");
  const std::uint64_t epoch = epoch_;
  kickstart::KickstartFile profile;
  try {
    profile = env_.kickstart->handle_request_file(ip_);
  } catch (const UnavailableError& outage) {
    ++kickstart_attempts_;
    const double delay = retry_delay(timings_.kickstart_retry, timings_.kickstart_retry_max,
                                     kickstart_attempts_);
    log(cat("kickstart: request refused (", outage.what(), "); retry #",
            kickstart_attempts_, " in ", fixed(delay, 1), " s"));
    env_.sim->schedule(delay, [this, epoch] {
      if (!epoch_valid(epoch)) return;
      request_kickstart();
    });
    return;
  }
  kickstart_attempts_ = 0;
  log(cat("kickstart: received profile with ", profile.packages().size(), " packages"));
  env_.sim->schedule(timings_.disk_format, [this, epoch, profile] {
    if (!epoch_valid(epoch)) return;
    begin_download(profile);
  });
}

void Node::begin_download(const kickstart::KickstartFile& profile) {
  require_state(env_.http != nullptr && env_.distribution != nullptr,
                "node has no HTTP distribution wired");
  set_state(NodeState::kInstalling);

  const rpm::Resolution resolution =
      rpm::resolve(*env_.distribution, profile.packages(), arch_);
  if (!resolution.complete())
    log(cat("WARNING: ", resolution.missing.size(),
            " requirements missing from the distribution (first: ", resolution.missing[0],
            ")"));

  double driver_build = 0.0;
  for (const rpm::Package* pkg : resolution.install_order)
    if (pkg->is_source) driver_build += pkg->build_seconds;

  const auto bytes = static_cast<double>(resolution.total_bytes());
  EkvProgress progress;
  progress.total_packages = resolution.install_order.size();
  progress.total_bytes = resolution.total_bytes();
  ekv_.set_progress(progress);
  log(cat("downloading ", resolution.install_order.size(), " packages, ",
          fixed(bytes / (1024.0 * 1024.0), 0), " MB over HTTP"));

  job_ = std::make_unique<InstallJob>();
  job_->profile = profile;
  job_->resolution = resolution;
  job_->driver_build_seconds = driver_build;
  job_->bytes_remaining = bytes;
  start_download();
}

void Node::start_download() {
  const std::uint64_t epoch = epoch_;
  if (peer_networked()) {
    // The swarm resumes from its chunk cache, so every (re)request asks for
    // the full payload; the abort callback reports total bytes held, from
    // which the remainder is derived for the log and the failure ledger.
    const auto total = static_cast<double>(job_->resolution.total_bytes());
    env_.peers->fetch(
        static_cast<std::uint32_t>(peer_endpoint_), total, timings_.install_demand,
        [this, epoch] {
          if (!epoch_valid(epoch)) return;
          job_->bytes_remaining = 0.0;
          finish_install();
        },
        [this, epoch, total](double delivered) {
          if (!epoch_valid(epoch)) return;
          job_->bytes_remaining = std::max(0.0, total - delivered);
          retry_download("peer transfer aborted by source churn");
        });
    return;
  }
  download_ = env_.http->serve(
      job_->bytes_remaining, timings_.install_demand,
      [this, epoch] {
        if (!epoch_valid(epoch)) return;
        download_.reset();
        job_->bytes_remaining = 0.0;
        finish_install();
      },
      [this, epoch](double delivered) {
        if (!epoch_valid(epoch)) return;
        download_.reset();
        job_->bytes_remaining = std::max(0.0, job_->bytes_remaining - delivered);
        retry_download("connection reset by install server");
      });
  if (download_->server == nullptr) {
    download_.reset();
    retry_download("no install server available");
  }
}

void Node::retry_download(std::string why) {
  ++job_->retries;
  if (job_->retries > timings_.download_retry_budget) {
    fail_install(cat("download retry budget (", timings_.download_retry_budget,
                     ") exhausted: ", why));
    return;
  }
  ++download_retries_;
  const double delay =
      retry_delay(timings_.download_retry, timings_.download_retry_max, job_->retries);
  log(cat("download interrupted (", why, "); retry #", job_->retries, " of ",
          timings_.download_retry_budget, " in ", fixed(delay, 1), " s, ",
          fixed(job_->bytes_remaining / (1024.0 * 1024.0), 0), " MB left"));
  const std::uint64_t epoch = epoch_;
  env_.sim->schedule(delay, [this, epoch] {
    if (!epoch_valid(epoch)) return;
    start_download();
  });
}

void Node::fail_install(std::string reason) {
  disarm_watchdog();
  if (download_ && download_->server != nullptr) download_->server->abort(download_->flow);
  download_.reset();
  // A failed installer stops fetching AND serving (its installer
  // environment is wedged; peers fail over to other sources).
  if (peer_networked())
    env_.peers->node_offline(static_cast<std::uint32_t>(peer_endpoint_));
  job_.reset();
  ++install_failures_;
  ++epoch_;  // anything else still scheduled for this install is void
  set_state(NodeState::kFailed);
  log(cat("install FAILED: ", reason, "; waiting for recovery escalation"));
}

void Node::arm_watchdog() {
  if (timings_.install_watchdog <= 0.0) return;
  disarm_watchdog();
  watchdog_armed_ = true;
  const std::uint64_t epoch = epoch_;
  watchdog_event_ = env_.sim->schedule(timings_.install_watchdog, [this, epoch] {
    watchdog_armed_ = false;
    if (!epoch_valid(epoch)) return;
    if (state_ == NodeState::kRunning || state_ == NodeState::kOff ||
        state_ == NodeState::kFailed)
      return;
    if (watchdog_cycles_ >= timings_.watchdog_budget) {
      fail_install(cat("still ", node_state_name(state_), " after ",
                       fixed(timings_.install_watchdog, 0), " s and ", watchdog_cycles_,
                       " watchdog power cycles"));
      return;
    }
    ++watchdog_cycles_;
    ++watchdog_fires_;
    log(cat("watchdog: install wedged (", node_state_name(state_), " after ",
            fixed(timings_.install_watchdog, 0), " s); hard power cycle #",
            watchdog_cycles_, " of ", timings_.watchdog_budget));
    hard_power_cycle();
  });
}

void Node::disarm_watchdog() {
  if (!watchdog_armed_) return;
  env_.sim->cancel(watchdog_event_);
  watchdog_armed_ = false;
}

void Node::finish_install() {
  const kickstart::KickstartFile& profile = job_->profile;
  const rpm::Resolution& resolution = job_->resolution;
  const double driver_build_seconds = job_->driver_build_seconds;
  bytes_downloaded_ += resolution.total_bytes();

  // The root partition is rebuilt from scratch; /state/partition1 survives.
  fs_.wipe_root_partition();
  rpmdb_.clear();
  for (const rpm::Package* pkg : resolution.install_order) rpmdb_.install(*pkg, fs_);

  // Materialize the %post sections: each runs as a script, and its already
  // localized body lands under /etc/rc.d/rocks-post.d (node-specific
  // generated configuration — intentionally distinct per host).
  fs_.mkdir_p("/etc/rc.d/rocks-post.d");
  int post_index = 0;
  for (const auto& post : profile.posts()) {
    char prefix[16];
    std::snprintf(prefix, sizeof prefix, "%02d", post_index++);
    fs_.write_file(strings::cat("/etc/rc.d/rocks-post.d/", prefix, "-", post.origin),
                   post.body);
  }

  EkvProgress progress = ekv_.progress();
  progress.completed_packages = progress.total_packages;
  progress.completed_bytes = progress.total_bytes;
  ekv_.set_progress(progress);
  log("package installation complete, running %post");

  job_.reset();
  set_state(NodeState::kPostConfig);
  const std::uint64_t epoch = epoch_;
  env_.sim->schedule(
      timings_.post_config + driver_build_seconds, [this, epoch, driver_build_seconds] {
        if (!epoch_valid(epoch)) return;
        if (driver_build_seconds > 0.0)
          log(cat("rebuilt Myrinet driver from source in ", fixed(driver_build_seconds, 0),
                  " s"));
        set_state(NodeState::kRebooting);
        env_.sim->schedule(timings_.final_boot, [this, epoch] {
          if (!epoch_valid(epoch)) return;
          set_state(NodeState::kRunning);
          disarm_watchdog();
          watchdog_cycles_ = 0;  // a full success resets the escalation ladder
          reinstall_on_boot_ = false;
          ++install_count_;
          last_install_duration_ = env_.sim->now() - install_started_;
          log(cat("reinstall #", install_count_, " complete in ",
                  fixed(last_install_duration_, 0), " s"));
          if (auto callback = on_running_) callback();  // copy: callback may reset itself
        });
      });
}

void Node::inject_hardware_fault() {
  hardware_failed_ = true;
  power_off();
}

void Node::repair_hardware() {
  hardware_failed_ = false;
  power_off();
  reinstall_on_boot_ = true;  // replacement hardware boots into an install
}

void Node::corrupt_file(std::string_view path, std::string_view content) {
  require_state(state_ == NodeState::kRunning, "corrupt_file: node is not running");
  if (fs_.exists(path)) fs_.remove(path);
  fs_.mkdir_p(vfs::dirname(std::string(path)));
  fs_.write_file(path, std::string(content));
}

void Node::install_rogue_package(const rpm::Package& package) {
  require_state(state_ == NodeState::kRunning, "install_rogue_package: node is not running");
  rpmdb_.install(package, fs_);
}

void Node::clone_software_from(const Node& model) {
  require_state(state_ == NodeState::kRunning, "clone_software_from: node is not running");
  fs_.wipe_root_partition();
  for (const auto& entry : model.fs_.list("/")) {
    if (entry == "state") continue;  // cloning targets the system partition
    fs_.copy_tree(model.fs_, "/" + entry, "/" + entry);
  }
  rpmdb_ = model.rpmdb_;
}

void Node::launch_process(std::string name) {
  require_state(state_ == NodeState::kRunning, "launch_process: node is not running");
  processes_.insert(std::move(name));
}

std::size_t Node::kill_processes(std::string_view name) {
  return processes_.erase(std::string(name));
}

std::size_t Node::process_count(std::string_view name) const {
  return processes_.count(std::string(name));
}

}  // namespace rocks::cluster
