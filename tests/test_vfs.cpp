// Unit tests for the virtual filesystem: paths, CRUD, symlinks, partitions,
// and the accounting rocks-dist relies on.
#include <gtest/gtest.h>

#include "support/error.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/path.hpp"

namespace rocks::vfs {
namespace {

struct NormCase {
  const char* input;
  const char* expected;
};

class NormalizeTest : public ::testing::TestWithParam<NormCase> {};

TEST_P(NormalizeTest, Normalizes) {
  EXPECT_EQ(normalize(GetParam().input), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(Paths, NormalizeTest,
                         ::testing::Values(NormCase{"/", "/"}, NormCase{"", "/"},
                                           NormCase{"/a/b", "/a/b"},
                                           NormCase{"/a//b/", "/a/b"},
                                           NormCase{"/a/./b", "/a/b"},
                                           NormCase{"/a/b/..", "/a"},
                                           NormCase{"/../..", "/"},
                                           NormCase{"relative/x", "/relative/x"},
                                           NormCase{"/a/b/../../c", "/c"}));

TEST(Path, JoinAndDirname) {
  EXPECT_EQ(join("/a", "b/c"), "/a/b/c");
  EXPECT_EQ(join("/a", "/abs"), "/abs");
  EXPECT_EQ(dirname("/a/b"), "/a");
  EXPECT_EQ(dirname("/a"), "/");
  EXPECT_EQ(dirname("/"), "/");
  EXPECT_EQ(basename("/a/b"), "b");
  EXPECT_EQ(basename("/"), "");
}

TEST(Path, IsWithin) {
  EXPECT_TRUE(is_within("/a/b", "/a"));
  EXPECT_TRUE(is_within("/a", "/a"));
  EXPECT_FALSE(is_within("/ab", "/a"));
  EXPECT_TRUE(is_within("/anything", "/"));
}

class FsTest : public ::testing::Test {
 protected:
  FileSystem fs;
};

TEST_F(FsTest, MkdirAndList) {
  fs.mkdir("/etc");
  fs.mkdir_p("/usr/share/doc");
  EXPECT_TRUE(fs.is_directory("/usr/share"));
  fs.write_file("/etc/hosts", "127.0.0.1 localhost\n");
  EXPECT_EQ(fs.list("/etc"), (std::vector<std::string>{"hosts"}));
  EXPECT_THROW(fs.list("/etc/hosts"), IoError);
  EXPECT_THROW(fs.list("/nope"), IoError);
}

TEST_F(FsTest, MkdirRequiresParent) {
  EXPECT_THROW(fs.mkdir("/a/b"), IoError);
  fs.mkdir("/a");
  fs.mkdir("/a/b");
  EXPECT_THROW(fs.mkdir("/a/b"), IoError);  // already exists
  EXPECT_NO_THROW(fs.mkdir_p("/a/b"));      // mkdir_p tolerates it
}

TEST_F(FsTest, WriteAndReadFile) {
  fs.mkdir("/etc");
  fs.write_file("/etc/motd", "hello");
  EXPECT_EQ(fs.read_file("/etc/motd"), "hello");
  fs.write_file("/etc/motd", "replaced");
  EXPECT_EQ(fs.read_file("/etc/motd"), "replaced");
  fs.append_file("/etc/motd", "!");
  EXPECT_EQ(fs.read_file("/etc/motd"), "replaced!");
  EXPECT_THROW((void)fs.read_file("/etc/nothing"), IoError);
  EXPECT_THROW((void)fs.read_file("/etc"), IoError);
}

TEST_F(FsTest, SymlinkResolution) {
  fs.mkdir_p("/mirror/redhat");
  fs.write_file("/mirror/redhat/pkg.rpm", "bytes");
  fs.mkdir_p("/dist");
  fs.symlink("/mirror/redhat/pkg.rpm", "/dist/pkg.rpm");
  EXPECT_TRUE(fs.is_symlink("/dist/pkg.rpm"));
  EXPECT_TRUE(fs.is_file("/dist/pkg.rpm"));  // follows the link
  EXPECT_EQ(fs.read_file("/dist/pkg.rpm"), "bytes");
  EXPECT_EQ(fs.readlink("/dist/pkg.rpm"), "/mirror/redhat/pkg.rpm");
  EXPECT_EQ(fs.resolve("/dist/pkg.rpm"), "/mirror/redhat/pkg.rpm");
}

TEST_F(FsTest, RelativeSymlinkResolvesAgainstItsDirectory) {
  fs.mkdir_p("/a/real");
  fs.write_file("/a/real/f", "x");
  fs.symlink("real/f", "/a/link");
  EXPECT_EQ(fs.read_file("/a/link"), "x");
}

TEST_F(FsTest, SymlinkThroughDirectoryComponent) {
  fs.mkdir_p("/data/v1");
  fs.write_file("/data/v1/file", "v1");
  fs.symlink("/data/v1", "/current");
  EXPECT_EQ(fs.read_file("/current/file"), "v1");
}

TEST_F(FsTest, SymlinkLoopDetected) {
  fs.symlink("/b", "/a");
  fs.symlink("/a", "/b");
  EXPECT_FALSE(fs.resolve("/a").has_value());
  EXPECT_FALSE(fs.exists("/a"));
}

TEST_F(FsTest, DanglingSymlink) {
  fs.symlink("/nowhere", "/dangling");
  EXPECT_TRUE(fs.is_symlink("/dangling"));
  EXPECT_FALSE(fs.exists("/dangling"));  // follow fails
  EXPECT_THROW((void)fs.read_file("/dangling"), IoError);
}

TEST_F(FsTest, RemoveRecursive) {
  fs.mkdir_p("/tree/a/b");
  fs.write_file("/tree/a/b/f", "x");
  EXPECT_TRUE(fs.remove("/tree"));
  EXPECT_FALSE(fs.exists("/tree"));
  EXPECT_FALSE(fs.remove("/tree"));
  EXPECT_THROW(fs.remove("/"), IoError);
}

TEST_F(FsTest, WalkVisitsEverythingInOrder) {
  fs.mkdir_p("/r/a");
  fs.write_file("/r/a/f1", "1");
  fs.write_file("/r/b", "2");
  std::vector<std::string> seen;
  fs.walk("/r", [&](const std::string& path, const Stat&) { seen.push_back(path); });
  EXPECT_EQ(seen, (std::vector<std::string>{"/r", "/r/a", "/r/a/f1", "/r/b"}));
}

TEST_F(FsTest, DiskUsageBlockRounded) {
  fs.mkdir("/d");
  fs.write_file("/d/small", "x");                        // 1 block
  fs.write_file("/d/big", "", 2 * kBlockSize + 1);       // 3 blocks
  fs.symlink("/d/small", "/d/link");                     // 1 block
  // dir + small + big + link = 1 + 1 + 3 + 1 blocks
  EXPECT_EQ(fs.disk_usage("/d"), 6 * kBlockSize);
  EXPECT_EQ(fs.logical_size("/d"), 1 + 2 * kBlockSize + 1);
}

TEST_F(FsTest, CountByType) {
  fs.mkdir_p("/x/y");
  fs.write_file("/x/f", "");
  fs.symlink("/x/f", "/x/l");
  EXPECT_EQ(fs.count("/x", NodeType::kFile), 1u);
  EXPECT_EQ(fs.count("/x", NodeType::kSymlink), 1u);
  EXPECT_EQ(fs.count("/x", NodeType::kDirectory), 2u);  // /x and /x/y
}

TEST_F(FsTest, FileHashDetectsContentAndPayloadChanges) {
  fs.mkdir("/e");
  fs.write_file("/e/f", "same", 10);
  const auto h1 = fs.file_hash("/e/f");
  fs.write_file("/e/f", "same", 11);
  const auto h2 = fs.file_hash("/e/f");
  fs.write_file("/e/f", "diff", 10);
  const auto h3 = fs.file_hash("/e/f");
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
  fs.write_file("/e/f", "same", 10);
  EXPECT_EQ(fs.file_hash("/e/f"), h1);
}

TEST_F(FsTest, PartitionSurvivesWipe) {
  fs.add_partition("/state");
  fs.mkdir_p("/etc");
  fs.write_file("/etc/hosts", "stale");
  fs.write_file("/state/experiment.dat", "precious");
  fs.wipe_root_partition();
  EXPECT_FALSE(fs.exists("/etc/hosts"));
  EXPECT_TRUE(fs.exists("/state/experiment.dat"));
  EXPECT_EQ(fs.read_file("/state/experiment.dat"), "precious");
}

TEST_F(FsTest, WipeWithoutPartitionsClearsEverything) {
  fs.mkdir_p("/a/b");
  fs.write_file("/a/b/f", "x");
  fs.wipe_root_partition();
  EXPECT_FALSE(fs.exists("/a"));
  EXPECT_TRUE(fs.is_directory("/"));
}

TEST_F(FsTest, CopyTreeDeepCopies) {
  FileSystem src;
  src.mkdir_p("/t/d");
  src.write_file("/t/f", "data", 100);
  src.symlink("/t/f", "/t/l");
  fs.mkdir_p("/dst");
  fs.copy_tree(src, "/t", "/dst/t");
  EXPECT_EQ(fs.read_file("/dst/t/f"), "data");
  EXPECT_TRUE(fs.is_directory("/dst/t/d"));
  EXPECT_EQ(fs.readlink("/dst/t/l"), "/t/f");
  src.write_file("/t/f", "mutated");
  EXPECT_EQ(fs.read_file("/dst/t/f"), "data");  // independent copy
}

TEST_F(FsTest, LinkTreeMirrorsWithSymlinks) {
  FileSystem mirror;
  mirror.mkdir_p("/m/RPMS");
  mirror.write_file("/m/RPMS/a.rpm", "", 5000);
  mirror.write_file("/m/RPMS/b.rpm", "", 6000);
  fs.mkdir_p("/dist");
  fs.link_tree(mirror, "/m", "/dist/7.2", "/m");
  EXPECT_TRUE(fs.is_symlink("/dist/7.2/RPMS/a.rpm"));
  EXPECT_EQ(fs.readlink("/dist/7.2/RPMS/a.rpm"), "/m/RPMS/a.rpm");
  EXPECT_TRUE(fs.is_directory("/dist/7.2/RPMS"));
  // A link tree is cheap: 2 dirs + 2 symlinks regardless of payload size.
  EXPECT_EQ(fs.disk_usage("/dist/7.2"), 4 * kBlockSize);
}

TEST_F(FsTest, ChainedSymlinks) {
  fs.mkdir_p("/real");
  fs.write_file("/real/f", "deep");
  fs.symlink("/real", "/hop1");
  fs.symlink("/hop1", "/hop2");
  fs.symlink("/hop2/f", "/hop3");
  EXPECT_EQ(fs.read_file("/hop3"), "deep");
  EXPECT_EQ(fs.resolve("/hop3"), "/real/f");
}

TEST_F(FsTest, WriteThroughSymlinkUpdatesTarget) {
  fs.mkdir_p("/data");
  fs.write_file("/data/conf", "v1");
  fs.symlink("/data/conf", "/etc-link");
  fs.append_file("/etc-link", "+v2");
  EXPECT_EQ(fs.read_file("/data/conf"), "v1+v2");
}

TEST_F(FsTest, CopyTreeReplacesExistingDestination) {
  FileSystem src;
  src.mkdir_p("/t");
  src.write_file("/t/f", "new");
  fs.mkdir_p("/dst/t");
  fs.write_file("/dst/t/old", "stale");
  fs.copy_tree(src, "/t", "/dst/t");
  EXPECT_FALSE(fs.exists("/dst/t/old"));
  EXPECT_EQ(fs.read_file("/dst/t/f"), "new");
}

TEST_F(FsTest, MultiplePartitionsAllSurvive) {
  fs.add_partition("/state");
  fs.add_partition("/scratch/local");
  fs.write_file("/state/a", "1");
  fs.write_file("/scratch/local/b", "2");
  fs.mkdir_p("/usr/bin");
  fs.write_file("/usr/bin/c", "3");
  fs.wipe_root_partition();
  EXPECT_EQ(fs.read_file("/state/a"), "1");
  EXPECT_EQ(fs.read_file("/scratch/local/b"), "2");
  EXPECT_FALSE(fs.exists("/usr/bin"));
}

TEST_F(FsTest, AddPartitionRejectsRoot) {
  EXPECT_THROW(fs.add_partition("/"), StateError);
}

TEST_F(FsTest, WriteFileRequiresParentAndRejectsDirTarget) {
  EXPECT_THROW(fs.write_file("/no/parent", "x"), IoError);
  fs.mkdir("/d");
  EXPECT_THROW(fs.write_file("/d", "x"), IoError);
  EXPECT_THROW(fs.symlink("/x", "/d"), IoError);  // path exists
}

TEST_F(FsTest, LstatDoesNotFollow) {
  fs.write_file("/target", "1234567", 100);
  fs.symlink("/target", "/link");
  const auto link_stat = fs.lstat("/link");
  ASSERT_TRUE(link_stat.has_value());
  EXPECT_EQ(link_stat->type, NodeType::kSymlink);
  EXPECT_EQ(link_stat->link_target, "/target");
  const auto file_stat = fs.lstat("/target");
  EXPECT_EQ(file_stat->type, NodeType::kFile);
  EXPECT_EQ(file_stat->size, 107u);
  EXPECT_FALSE(fs.lstat("/ghost").has_value());
}

// --- rename (the durability layer's atomic-publication primitive) -----------

TEST_F(FsTest, RenameMovesFileWithContent) {
  fs.mkdir_p("/a/b");
  fs.write_file("/a/b/file", "payload");
  fs.rename("/a/b/file", "/a/moved");
  EXPECT_FALSE(fs.exists("/a/b/file"));
  EXPECT_EQ(fs.read_file("/a/moved"), "payload");
}

TEST_F(FsTest, RenameReplacesExistingFileAtomically) {
  fs.mkdir_p("/etc");
  fs.write_file("/etc/hosts", "old contents");
  fs.write_file("/etc/hosts.tmp", "new contents");
  fs.rename("/etc/hosts.tmp", "/etc/hosts");
  EXPECT_EQ(fs.read_file("/etc/hosts"), "new contents");
  EXPECT_FALSE(fs.exists("/etc/hosts.tmp"));
}

TEST_F(FsTest, RenameMovesDirectorySubtree) {
  fs.mkdir_p("/src/sub");
  fs.write_file("/src/sub/f", "x");
  fs.mkdir("/dst");
  fs.rename("/src", "/dst/renamed");
  EXPECT_EQ(fs.read_file("/dst/renamed/sub/f"), "x");
  EXPECT_FALSE(fs.exists("/src"));
}

TEST_F(FsTest, RenamePreservesFileHashCache) {
  fs.write_file("/a", "bytes", 0, content_hash("bytes"));
  fs.rename("/a", "/b");
  EXPECT_EQ(fs.file_hash("/b"), content_hash("bytes"));
}

TEST_F(FsTest, RenameSamePathIsNoOp) {
  fs.write_file("/f", "v");
  fs.rename("/f", "/f");
  EXPECT_EQ(fs.read_file("/f"), "v");
}

TEST_F(FsTest, RenameErrors) {
  fs.mkdir_p("/dir/inner");
  fs.write_file("/file", "x");
  EXPECT_THROW(fs.rename("/ghost", "/x"), IoError);           // missing source
  EXPECT_THROW(fs.rename("/file", "/nope/x"), IoError);       // missing dest parent
  EXPECT_THROW(fs.rename("/file", "/dir"), IoError);          // dest is a directory
  EXPECT_THROW(fs.rename("/dir", "/dir/inner/x"), IoError);   // dir into itself
}

}  // namespace
}  // namespace rocks::vfs
